//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no crates.io access, so the workspace's
//! benches run on this minimal, API-compatible harness: it executes each
//! benchmark for a fixed number of timed samples (after one warm-up run)
//! and prints mean / min / max wall-clock per iteration. No statistics
//! engine, no HTML reports — enough to compare configurations and catch
//! order-of-magnitude regressions, which is all the workspace benches use
//! Criterion for.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-implementation of `std::hint::black_box` passthrough used by benches.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Label of one benchmark within a group.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Identify a benchmark by its parameter value alone.
    pub fn from_parameter<D: Display>(p: D) -> BenchmarkId {
        BenchmarkId(p.to_string())
    }

    /// Identify a benchmark by function name and parameter.
    pub fn new<D: Display>(name: &str, p: D) -> BenchmarkId {
        BenchmarkId(format!("{name}/{p}"))
    }
}

/// Top-level harness handle (mirrors `criterion::Criterion`).
#[derive(Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("\n== group {name} ==");
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: 20,
            _c: self,
        }
    }

    /// Benchmark a single function outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new(20);
        f(&mut b);
        b.report(name);
        self
    }
}

/// A group of benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _c: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benchmark a closure parameterized by `input`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b, input);
        b.report(&format!("{}/{}", self.name, id.0));
        self
    }

    /// Benchmark an input-free closure.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: BenchmarkId,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        b.report(&format!("{}/{}", self.name, id.0));
        self
    }

    /// End the group (printing is incremental; nothing to flush).
    pub fn finish(self) {}
}

/// Passed to benchmark closures; times the routine as soon as it is given
/// (real Criterion defers the runs, but deferring would force a `'static`
/// bound the real `Bencher::iter` does not have).
pub struct Bencher {
    samples: usize,
    times: Vec<Duration>,
}

impl Bencher {
    fn new(samples: usize) -> Bencher {
        Bencher {
            samples,
            times: Vec::new(),
        }
    }

    /// Run and time the routine. The value it returns is dropped inside
    /// the timed region, as in real Criterion.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine()); // warm-up
        self.times = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let t = Instant::now();
            black_box(routine());
            self.times.push(t.elapsed());
        }
    }

    fn report(self, label: &str) {
        if self.times.is_empty() {
            println!("{label}: no routine registered");
            return;
        }
        let total: Duration = self.times.iter().sum();
        let mean = total / self.times.len() as u32;
        let min = self.times.iter().min().copied().unwrap_or_default();
        let max = self.times.iter().max().copied().unwrap_or_default();
        println!(
            "{label}: mean {} (min {}, max {}, {} samples)",
            fmt_duration(mean),
            fmt_duration(min),
            fmt_duration(max),
            self.times.len()
        );
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

/// Build a function that runs a list of benchmark functions in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Entry point: run every group. Accepts and ignores cargo-bench CLI args.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
