//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the *API subset it actually uses* over `std::sync` primitives:
//! `Mutex` (non-poisoning `lock()` returning the guard directly) and
//! `Condvar` (`wait` on a `&mut MutexGuard`). Semantics match parking_lot
//! where it matters here: panicking while holding a lock does **not**
//! poison it — the checkpointing failure injector unwinds simulated
//! process threads that may hold model locks.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;

/// A mutual-exclusion primitive with parking_lot's non-poisoning `lock()`.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until it is available. Unlike
    /// `std::sync::Mutex`, a panic in another holder does not poison.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(self.0.lock().unwrap_or_else(PoisonError::into_inner)))
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(Some(g))),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard(Some(p.into_inner()))),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

/// RAII guard returned by [`Mutex::lock`].
///
/// Wraps the std guard in an `Option` so [`Condvar::wait`] can temporarily
/// take ownership (std's `wait` consumes and returns the guard, while
/// parking_lot's borrows it mutably).
pub struct MutexGuard<'a, T: ?Sized>(Option<std::sync::MutexGuard<'a, T>>);

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.0.as_ref().expect("guard taken during condvar wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.0.as_mut().expect("guard taken during condvar wait")
    }
}

/// Condition variable compatible with [`MutexGuard`].
#[derive(Default)]
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    /// Create a new condition variable.
    pub const fn new() -> Condvar {
        Condvar(std::sync::Condvar::new())
    }

    /// Block until notified, releasing the guard's lock while waiting.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.0.take().expect("guard already taken");
        let inner = self.0.wait(inner).unwrap_or_else(PoisonError::into_inner);
        guard.0 = Some(inner);
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wake all waiters.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn panic_does_not_poison() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("boom");
        })
        .join();
        assert_eq!(*m.lock(), 0); // lock() still succeeds
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut ready = m.lock();
            while !*ready {
                cv.wait(&mut ready);
            }
        });
        {
            let (m, cv) = &*pair;
            *m.lock() = true;
            cv.notify_all();
        }
        t.join().unwrap();
    }
}
