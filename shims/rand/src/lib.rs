//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no crates.io access, so this workspace vendors
//! the small `rand` API subset it uses: `rngs::StdRng`, `SeedableRng::
//! seed_from_u64`, and `Rng::{gen_range, gen_bool}` over half-open ranges.
//! The generator is xoshiro256++ seeded through splitmix64 — statistically
//! solid for simulation workloads and deterministic per seed. Streams do
//! **not** match the real `StdRng` (ChaCha12); everything in this workspace
//! only relies on per-seed determinism, not on specific streams.

use std::ops::Range;

/// Core trait: a source of uniformly distributed `u64`s.
pub trait RngCore {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Derive a full generator state from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling helpers, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from a half-open range.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range)
    }

    /// Bernoulli sample with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample_range(self, 0.0..1.0) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Types uniformly sampleable from a `Range`.
pub trait SampleUniform: Sized {
    /// Sample uniformly from `range` (half-open; must be non-empty).
    fn sample_range<R: RngCore>(rng: &mut R, range: Range<Self>) -> Self;
}

macro_rules! impl_sample_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "gen_range on empty range");
                let span = (range.end as u128).wrapping_sub(range.start as u128) as u64;
                // Modulo bias is < 2^-32 for every span used in this
                // workspace (all far below 2^32): acceptable for simulation.
                range.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_sample_int!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_signed {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "gen_range on empty range");
                let span = (range.end as i128 - range.start as i128) as u64;
                range.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}

impl_sample_signed!(i32 => u32, i64 => u64, isize => usize);

impl SampleUniform for f64 {
    fn sample_range<R: RngCore>(rng: &mut R, range: Range<Self>) -> Self {
        assert!(range.start < range.end, "gen_range on empty range");
        // 53 uniform mantissa bits in [0, 1).
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        range.start + (range.end - range.start) * unit
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // splitmix64 expansion, as recommended by the xoshiro authors.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
        let mut c = StdRng::seed_from_u64(8);
        let same: Vec<u64> = (0..20).map(|_| c.gen_range(0u64..1_000_000)).collect();
        let mut a2 = StdRng::seed_from_u64(7);
        let other: Vec<u64> = (0..20).map(|_| a2.gen_range(0u64..1_000_000)).collect();
        assert_ne!(same, other);
    }

    #[test]
    fn ranges_are_respected() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = r.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let f = r.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let i = r.gen_range(-5i32..5);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn f64_is_roughly_uniform() {
        let mut r = StdRng::seed_from_u64(99);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.gen_range(0.0f64..1.0)).sum::<f64>() / n as f64;
        assert!((0.49..0.51).contains(&mean), "mean {mean}");
    }
}
