//! Randomized property tests over the core invariants (seeded, so every
//! run checks the same cases):
//!
//! * the simulation kernel is deterministic and time-monotonic for
//!   arbitrary sleep/compute schedules;
//! * the network model never violates per-channel FIFO for arbitrary
//!   message sequences;
//! * any ring workload under either protocol, killed at an arbitrary time,
//!   recovers to a clean completion (the recovery-cut correctness that the
//!   whole checkpointing design exists to guarantee);
//! * checkpointing never makes a job *faster* than its failure-free,
//!   checkpoint-free baseline.

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use ftmpi::ft::{run_job, FailurePlan, FtConfig, JobSpec, ProtocolChoice};
use ftmpi::mpi::{app_fn, AppFn};
use ftmpi::net::{LinkConfig, NetModel, NodeId, Topology};
use ftmpi::sim::{Sim, SimDuration, SimTime};

/// Ring workload used by the recovery properties.
fn ring_app(iters: usize, bytes: u64, compute_ms: u64) -> AppFn {
    app_fn(move |mut mpi| async move {
        let n = mpi.size();
        let right = (mpi.rank() + 1) % n;
        let left = (mpi.rank() + n - 1) % n;
        for i in 0..iters {
            let req = mpi.irecv(Some(left), Some((i % 997) as i32)).await;
            mpi.send(right, (i % 997) as i32, bytes).await;
            mpi.wait(req).await;
            mpi.compute(SimDuration::from_millis(compute_ms));
        }
        mpi
    })
}

/// Arbitrary sleep schedules: final time equals the max per-process total,
/// and reruns are bit-identical.
#[test]
fn kernel_determinism() {
    let mut rng = StdRng::seed_from_u64(0xD5E7);
    for _case in 0..16 {
        let nprocs = rng.gen_range(1usize..8);
        let steps: Vec<Vec<u64>> = (0..nprocs)
            .map(|_| {
                let len = rng.gen_range(1usize..20);
                (0..len).map(|_| rng.gen_range(1u64..5_000)).collect()
            })
            .collect();
        let run = |steps: &Vec<Vec<u64>>| {
            let mut sim = Sim::new();
            for (i, plan) in steps.iter().enumerate() {
                let plan = plan.clone();
                sim.spawn(format!("p{i}"), move |mut ctx| async move {
                    for &d in &plan {
                        ctx.sleep(SimDuration::from_nanos(d)).await;
                    }
                });
            }
            let report = sim.run().unwrap();
            (report.final_time.as_nanos(), report.events_executed)
        };
        let a = run(&steps);
        let b = run(&steps);
        assert_eq!(a, b);
        let expect: u64 = steps.iter().map(|p| p.iter().sum::<u64>()).max().unwrap();
        assert_eq!(a.0, expect);
    }
}

/// Per-channel FIFO holds for arbitrary interleavings of small and large
/// messages across random node pairs.
#[test]
fn network_fifo() {
    const SIZES: [u64; 5] = [64, 512, 2048, 65_536, 1 << 20];
    let mut rng = StdRng::seed_from_u64(0xF1F0);
    for _case in 0..16 {
        let nmsgs = rng.gen_range(1usize..80);
        let mut net = NetModel::new(Topology::single_cluster(6, LinkConfig::gige()));
        let mut last: std::collections::HashMap<(usize, usize), SimTime> =
            std::collections::HashMap::new();
        let mut t = SimTime::ZERO;
        for _ in 0..nmsgs {
            let src = rng.gen_range(0usize..6);
            let dst = rng.gen_range(0usize..6);
            let bytes = SIZES[rng.gen_range(0usize..SIZES.len())];
            let d = net.transfer(NodeId(src), NodeId(dst), bytes, t);
            let floor = last.entry((src, dst)).or_insert(SimTime::ZERO);
            assert!(d.delivered >= *floor, "FIFO violated on {src}->{dst}");
            *floor = d.delivered;
            assert!(d.delivered >= t);
            t += SimDuration::from_micros(3);
        }
    }
}

/// Kill a ring job at an arbitrary time under either protocol: it must
/// complete with a clean cut (no stray or missing messages), and cost at
/// least as much as the failure-free run.
#[test]
fn recovery_is_clean_for_any_failure_time() {
    let mut rng = StdRng::seed_from_u64(0x5EC0);
    for case in 0..16 {
        let kill_ms = rng.gen_range(200u64..12_000);
        let victim = rng.gen_range(0usize..5);
        let use_vcl = rng.gen_bool(0.5);
        let period_ms = rng.gen_range(500u64..3_000);
        let proto = if use_vcl {
            ProtocolChoice::Vcl
        } else {
            ProtocolChoice::Pcl
        };
        let app = ring_app(80, 2_048, 50);
        let mk_spec = || {
            let mut spec = JobSpec::new(5, proto, Arc::clone(&app));
            spec.servers = 2;
            spec.ft = FtConfig {
                period: SimDuration::from_millis(period_ms),
                image_bytes: 2 << 20,
                ..FtConfig::default()
            };
            spec
        };
        let clean = run_job(mk_spec()).unwrap();
        let mut spec = mk_spec();
        spec.failures = FailurePlan::kill_at(SimTime::from_nanos(kill_ms * 1_000_000), victim);
        let failed = run_job(spec).unwrap();
        // The kill might land after completion; both outcomes must be clean.
        let ctx = format!("case {case}: kill {kill_ms} ms, victim {victim}, {proto:?}");
        assert_eq!(failed.leftover_unexpected, 0, "{ctx}");
        assert_eq!(failed.leftover_posted, 0, "{ctx}");
        if failed.rt.restarts == 1 {
            assert!(
                failed.completion_secs() >= clean.completion_secs() - 1e-9,
                "{ctx}"
            );
        }
    }
}

/// Two failures at arbitrary times also recover cleanly.
#[test]
fn double_failures_recover() {
    let mut rng = StdRng::seed_from_u64(0xD0B1);
    for case in 0..12 {
        let k1_ms = rng.gen_range(300u64..6_000);
        let gap_ms = rng.gen_range(1_500u64..6_000);
        let v1 = rng.gen_range(0usize..4);
        let v2 = rng.gen_range(0usize..4);
        let app = ring_app(60, 1_024, 40);
        let mut spec = JobSpec::new(4, ProtocolChoice::Pcl, app);
        spec.servers = 1;
        spec.ft = FtConfig {
            period: SimDuration::from_millis(900),
            image_bytes: 1 << 20,
            ..FtConfig::default()
        };
        spec.failures = FailurePlan {
            kills: vec![
                (SimTime::from_nanos(k1_ms * 1_000_000), v1),
                (SimTime::from_nanos((k1_ms + gap_ms) * 1_000_000), v2),
            ],
            ..FailurePlan::default()
        };
        let res = run_job(spec).unwrap();
        let ctx = format!(
            "case {case}: kills at {k1_ms}/{} ms of {v1}/{v2}",
            k1_ms + gap_ms
        );
        assert_eq!(res.leftover_unexpected, 0, "{ctx}");
        assert_eq!(res.leftover_posted, 0, "{ctx}");
    }
}

/// Checkpointing overhead is non-negative and bounded for a compute-heavy
/// workload (waves overlap computation).
#[test]
fn overhead_is_bounded() {
    let mut rng = StdRng::seed_from_u64(0x0BED);
    for _case in 0..8 {
        let period_ms = rng.gen_range(800u64..5_000);
        let app = ring_app(40, 1_024, 100);
        let base = run_job(JobSpec::new(4, ProtocolChoice::Dummy, Arc::clone(&app))).unwrap();
        let mut spec = JobSpec::new(4, ProtocolChoice::Vcl, app);
        spec.ft = FtConfig {
            period: SimDuration::from_millis(period_ms),
            image_bytes: 1 << 20,
            ..FtConfig::default()
        };
        let ckpt = run_job(spec).unwrap();
        assert!(ckpt.completion_secs() >= base.completion_secs() - 1e-9);
        assert!(
            ckpt.completion_secs() < base.completion_secs() * 1.5,
            "non-blocking checkpointing cost exploded: {} vs {}",
            ckpt.completion_secs(),
            base.completion_secs()
        );
    }
}

/// The fused shift primitive survives arbitrary failure timings too: a cut
/// between a shift's send and receive halves must replay only the receive
/// (no duplicate, no loss).
#[test]
fn shift_recovery_is_clean() {
    let mut rng = StdRng::seed_from_u64(0x517F);
    for case in 0..12 {
        let kill_ms = rng.gen_range(200u64..10_000);
        let victim = rng.gen_range(0usize..4);
        let use_vcl = rng.gen_bool(0.5);
        let proto = if use_vcl {
            ProtocolChoice::Vcl
        } else {
            ProtocolChoice::Pcl
        };
        let app: AppFn = app_fn(|mut mpi| async move {
            let n = mpi.size();
            let right = (mpi.rank() + 1) % n;
            let left = (mpi.rank() + n - 1) % n;
            for lap in 0..70 {
                mpi.shift(right, left, lap % 997, 8_192).await;
                mpi.compute(SimDuration::from_millis(60));
            }
            mpi
        });
        let mut spec = JobSpec::new(4, proto, app);
        spec.servers = 2;
        spec.ft = FtConfig {
            period: SimDuration::from_millis(700),
            image_bytes: 2 << 20,
            ..FtConfig::default()
        };
        spec.failures = FailurePlan::kill_at(SimTime::from_nanos(kill_ms * 1_000_000), victim);
        let res = run_job(spec).unwrap();
        let ctx = format!("case {case}: kill {kill_ms} ms, victim {victim}, {proto:?}");
        assert_eq!(res.leftover_unexpected, 0, "{ctx}");
        assert_eq!(res.leftover_posted, 0, "{ctx}");
    }
}
