//! End-to-end integration tests spanning all crates: NAS workloads under
//! each protocol, on each platform, with and without failures.

use std::sync::Arc;

use ftmpi_bench::SweepRunner;

use ftmpi::ft::{run_job, FailurePlan, FtConfig, JobSpec, Platform, ProtocolChoice};
use ftmpi::nas::{bt, cg, ftb, lu, mg, synth, Machine, NasClass};
use ftmpi::net::{LinkConfig, SoftwareStack};
use ftmpi::sim::{SimDuration, SimTime};

fn machine() -> Machine {
    Machine::mflops(400.0) // fast machine: keep test workloads short
}

fn spec_for(
    wl: &ftmpi::nas::Workload,
    nranks: usize,
    proto: ProtocolChoice,
    period_s: f64,
) -> JobSpec {
    let mut spec = JobSpec::new(nranks, proto, Arc::clone(&wl.app));
    spec.servers = 2;
    spec.ft = FtConfig {
        period: SimDuration::from_secs_f64(period_s),
        first_wave_delay: SimDuration::from_millis(100),
        image_bytes: wl.image_bytes.min(8 << 20),
        ..FtConfig::default()
    };
    spec
}

const PROTOS: [ProtocolChoice; 3] = [
    ProtocolChoice::Dummy,
    ProtocolChoice::Vcl,
    ProtocolChoice::Pcl,
];

#[test]
fn bt_runs_under_all_protocols() {
    let wl = bt::workload(NasClass::S, 4, machine());
    let mut runner = SweepRunner::new(PROTOS.len());
    for proto in PROTOS {
        let spec = spec_for(&wl, 4, proto, 0.5);
        runner.add(format!("bt/{proto:?}"), move || spec);
    }
    for (proto, result) in PROTOS.into_iter().zip(runner.run()) {
        let res = result.expect("bt run");
        assert_eq!(res.leftover_unexpected, 0);
        assert_eq!(res.leftover_posted, 0);
        if proto != ProtocolChoice::Dummy {
            assert!(res.waves() >= 1, "{proto:?} took no checkpoints");
        }
    }
}

#[test]
fn cg_runs_under_all_protocols() {
    let wl = cg::workload(NasClass::S, 8, machine());
    let mut runner = SweepRunner::new(PROTOS.len());
    for proto in PROTOS {
        let spec = spec_for(&wl, 8, proto, 0.2);
        runner.add(format!("cg/{proto:?}"), move || spec);
    }
    for result in runner.run() {
        let res = result.expect("cg run");
        assert_eq!(res.leftover_unexpected, 0);
        assert_eq!(res.leftover_posted, 0);
    }
}

#[test]
fn extra_nas_kernels_complete() {
    let m = machine();
    let workloads = vec![
        lu::workload(NasClass::S, 6, m),
        mg::workload(NasClass::S, 4, m),
        ftb::workload(NasClass::S, 4, m),
    ];
    let names: Vec<String> = workloads.iter().map(|wl| wl.name.clone()).collect();
    let mut runner = SweepRunner::new(workloads.len());
    for wl in workloads {
        let spec = spec_for(&wl, wl_nranks(&wl.name), ProtocolChoice::Pcl, 0.5);
        runner.add(wl.name.clone(), move || spec);
    }
    for (name, result) in names.into_iter().zip(runner.run()) {
        let res = result.unwrap_or_else(|e| panic!("{name} failed: {e}"));
        assert_eq!(res.leftover_unexpected, 0, "{name}");
    }
}

fn wl_nranks(name: &str) -> usize {
    name.rsplit('.').next().unwrap().parse().unwrap()
}

#[test]
fn bt_recovers_from_failure_under_both_protocols() {
    let wl = bt::workload(NasClass::S, 4, Machine::mflops(50.0)); // longer run
    for proto in [ProtocolChoice::Vcl, ProtocolChoice::Pcl] {
        let clean = run_job(spec_for(&wl, 4, proto, 1.0)).expect("clean");
        let mut spec = spec_for(&wl, 4, proto, 1.0);
        let kill = SimTime::from_nanos((clean.completion_secs() * 0.5 * 1e9) as u64);
        spec.failures = FailurePlan::kill_at(kill, 1);
        let failed = run_job(spec).expect("failed run");
        assert_eq!(failed.rt.restarts, 1, "{proto:?}");
        assert!(
            failed.completion_secs() > clean.completion_secs(),
            "{proto:?}"
        );
        assert_eq!(failed.leftover_unexpected, 0, "{proto:?}");
        assert_eq!(failed.leftover_posted, 0, "{proto:?}");
    }
}

#[test]
fn cg_recovers_from_failure() {
    let wl = cg::workload(NasClass::S, 4, Machine::mflops(20.0));
    let clean = run_job(spec_for(&wl, 4, ProtocolChoice::Pcl, 0.5)).expect("clean");
    let mut spec = spec_for(&wl, 4, ProtocolChoice::Pcl, 0.5);
    let kill = SimTime::from_nanos((clean.completion_secs() * 0.6 * 1e9) as u64);
    spec.failures = FailurePlan::kill_at(kill, 2);
    let failed = run_job(spec).expect("failed run");
    assert_eq!(failed.rt.restarts, 1);
    assert_eq!(failed.leftover_unexpected, 0);
}

#[test]
fn grid_platform_runs_bt() {
    // A slow machine keeps the run long enough for several waves.
    let wl = bt::workload(NasClass::S, 25, Machine::mflops(5.0));
    let mut spec = spec_for(&wl, 25, ProtocolChoice::Pcl, 0.5);
    spec.platform = Platform::Grid;
    spec.servers = 1;
    let res = run_job(spec).expect("grid run");
    assert!(res.waves() >= 1);
    assert_eq!(res.leftover_unexpected, 0);
}

#[test]
fn grid_is_slower_than_cluster_for_the_same_job() {
    // 64 ranks overflow the first grid cluster (47 compute nodes), so the
    // job genuinely crosses WAN links.
    let wl = bt::workload(NasClass::S, 64, machine());
    let cluster = run_job(spec_for(&wl, 64, ProtocolChoice::Dummy, 10.0)).expect("cluster");
    let mut spec = spec_for(&wl, 64, ProtocolChoice::Dummy, 10.0);
    spec.platform = Platform::Grid;
    let grid = run_job(spec).expect("grid");
    assert!(
        grid.completion_secs() > cluster.completion_secs(),
        "grid {} !> cluster {}",
        grid.completion_secs(),
        cluster.completion_secs()
    );
}

#[test]
fn myrinet_beats_gige_for_latency_bound_cg() {
    let wl = cg::workload(NasClass::S, 8, machine());
    let mut gige = spec_for(&wl, 8, ProtocolChoice::Dummy, 10.0);
    gige.platform = Platform::Cluster(LinkConfig::gige());
    let mut myri = spec_for(&wl, 8, ProtocolChoice::Dummy, 10.0);
    myri.platform = Platform::Cluster(LinkConfig::myrinet2000());
    myri.stack = Some(SoftwareStack::NemesisGm);
    let t_gige = run_job(gige).expect("gige").completion_secs();
    let t_myri = run_job(myri).expect("myri").completion_secs();
    assert!(t_myri < t_gige, "myrinet {t_myri} !< gige {t_gige}");
}

#[test]
fn netpipe_ratios_match_the_paper() {
    use parking_lot::Mutex;
    let measure = |nodes: [usize; 2]| {
        let results: synth::PingPongResults = Arc::new(Mutex::new(Vec::new()));
        let app = synth::netpipe_app(1 << 20, 2, Arc::clone(&results));
        let mut spec = JobSpec::new(2, ProtocolChoice::Dummy, app);
        spec.platform = Platform::Grid;
        spec.placement_override = Some(vec![
            ftmpi::net::NodeId(nodes[0]),
            ftmpi::net::NodeId(nodes[1]),
        ]);
        run_job(spec).expect("netpipe");
        let out = results.lock().clone();
        out
    };
    let intra = measure([101, 102]);
    let inter = measure([0, 101]);
    let bw_ratio = intra.last().unwrap().bandwidth / inter.last().unwrap().bandwidth;
    assert!(
        (10.0..40.0).contains(&bw_ratio),
        "intra/inter bandwidth ratio {bw_ratio} out of the paper's ~20× range"
    );
    let lat_ratio = inter[0].one_way_secs / intra[0].one_way_secs;
    assert!(lat_ratio > 30.0, "latency ratio {lat_ratio} too small");
}

#[test]
fn token_ring_is_strictly_serialized() {
    let app = synth::token_ring(10, 64);
    let res = run_job(JobSpec::new(5, ProtocolChoice::Dummy, app)).expect("ring");
    // 10 laps × 5 hops.
    assert_eq!(res.rt.msgs_sent, 50);
}

#[test]
fn full_stack_determinism_with_failures() {
    let run_once = || {
        let wl = bt::workload(NasClass::S, 9, Machine::mflops(50.0));
        let mut spec = spec_for(&wl, 9, ProtocolChoice::Vcl, 1.0);
        spec.failures = FailurePlan {
            kills: vec![
                (SimTime::from_nanos(3_000_000_000), 2),
                (SimTime::from_nanos(9_000_000_000), 7),
            ],
            ..FailurePlan::default()
        };
        let res = run_job(spec).expect("run");
        (res.completion.as_nanos(), res.waves(), res.events)
    };
    assert_eq!(run_once(), run_once());
}
