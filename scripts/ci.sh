#!/usr/bin/env sh
# Repo CI gate: formatting, lints, then the tier-1 verify
# (build + full test suite). Run from the repo root:
#
#   sh scripts/ci.sh
#
# Fails fast: the first failing step aborts the run.
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (workspace, all targets)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> tier-1: cargo build --release"
cargo build --release --workspace

echo "==> tier-1: cargo test -q"
cargo test -q --workspace

echo "==> ftmpi-check lint"
cargo run -q --release -p ftmpi-check -- lint

echo "==> ftmpi-check smoke (invariants + perturbation)"
cargo run -q --release -p ftmpi-check -- smoke

echo "CI green."
