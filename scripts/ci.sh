#!/usr/bin/env sh
# Repo CI gate: formatting, lints, then the tier-1 verify
# (build + full test suite). Run from the repo root:
#
#   sh scripts/ci.sh
#
# Fails fast: the first failing step aborts the run.
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (workspace, all targets)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> tier-1: cargo build --release"
cargo build --release --workspace

echo "==> tier-1: cargo test -q"
cargo test -q --workspace

echo "==> tier-1 again under the legacy threaded backend (FTMPI_THREADED=1)"
FTMPI_THREADED=1 cargo test -q --workspace

echo "==> ftmpi-check lint"
cargo run -q --release -p ftmpi-check -- lint

echo "==> ftmpi-check smoke (invariants + perturbation)"
cargo run -q --release -p ftmpi-check -- smoke

echo "==> ftmpi-check storm --smoke (kills, partitions, node deaths, corruption)"
DIFF_TMP="${TMPDIR:-/tmp}/ftmpi-ci-backends-$$"
rm -rf "$DIFF_TMP"
mkdir -p "$DIFF_TMP"
cargo run -q --release -p ftmpi-check -- storm --smoke | tee "$DIFF_TMP/storm-coro.log"
# The integrity families must actually be in the campaign for both
# protocols — a silent drop here would un-pin the corruption machinery.
for fam in flipfetch scrubrace allreplicas tornwrite quarantine; do
    grep -q "storm.corrupt.$fam.pcl" "$DIFF_TMP/storm-coro.log"
    grep -q "storm.corrupt.$fam.vcl" "$DIFF_TMP/storm-coro.log"
done

echo "==> storm --smoke under FTMPI_THREADED=1 (must match state-for-state)"
FTMPI_THREADED=1 cargo run -q --release -p ftmpi-check -- storm --smoke \
    > "$DIFF_TMP/storm-threaded.log"
cmp "$DIFF_TMP/storm-coro.log" "$DIFF_TMP/storm-threaded.log"

echo "==> ftmpi-check explore --smoke (DPOR over tied schedules, BENCH_explore.json)"
cargo run -q --release -p ftmpi-check -- explore --smoke | tee "$DIFF_TMP/explore-coro.log"

echo "==> explore --smoke under FTMPI_THREADED=1 (must match state-for-state)"
FTMPI_THREADED=1 cargo run -q --release -p ftmpi-check -- explore --smoke \
    > "$DIFF_TMP/explore-threaded.log"
cmp "$DIFF_TMP/explore-coro.log" "$DIFF_TMP/explore-threaded.log"

echo "==> ftmpi-check storm --mine --smoke (coverage-guided miner, BENCH_storm.json)"
cargo run -q --release -p ftmpi-check -- storm --mine --smoke | tee "$DIFF_TMP/mine-1.log"
cp BENCH_storm.json "$DIFF_TMP/mine-1.json"
cp results/storm/corpus.txt "$DIFF_TMP/mine-1-corpus.txt"
# The corruption genes must survive into the mined corpus: the seed
# genomes carry a targeted flip and a rotting disk, and both encode.
grep -q "corrupt@" "$DIFF_TMP/mine-1-corpus.txt"
grep -q "rot@" "$DIFF_TMP/mine-1-corpus.txt"

echo "==> storm --mine --smoke under the heap backend (must be byte-identical)"
FTMPI_NO_LADDER=1 cargo run -q --release -p ftmpi-check -- storm --mine --smoke \
    > "$DIFF_TMP/mine-2.log"
cmp "$DIFF_TMP/mine-1.log" "$DIFF_TMP/mine-2.log"
cmp "$DIFF_TMP/mine-1.json" BENCH_storm.json
cmp "$DIFF_TMP/mine-1-corpus.txt" results/storm/corpus.txt
rm -rf "$DIFF_TMP"

echo "==> cache prune round trip (ftmpi-bench cache --prune)"
PRUNE_TMP="${TMPDIR:-/tmp}/ftmpi-ci-prune-$$"
rm -rf "$PRUNE_TMP"
mkdir -p "$PRUNE_TMP/results/.cache"
# An orphaned temp file and a corrupt entry: both must be swept.
printf 'half-written' > "$PRUNE_TMP/results/.cache/.tmp-123-0"
printf 'not a cache entry' > "$PRUNE_TMP/results/.cache/r-deadbeef"
cargo run -q --release -p ftmpi-bench --bin ftmpi-bench -- \
    cache --prune --out "$PRUNE_TMP/results" | grep -q "removed 2"
test ! -e "$PRUNE_TMP/results/.cache/.tmp-123-0"
test ! -e "$PRUNE_TMP/results/.cache/r-deadbeef"
rm -rf "$PRUNE_TMP"

echo "==> result-cache round trip (fig5_servers cold, then warm from disk)"
CACHE_TMP="${TMPDIR:-/tmp}/ftmpi-ci-cache-$$"
rm -rf "$CACHE_TMP"
mkdir -p "$CACHE_TMP"
cargo run -q --release -p ftmpi-bench --bin fig5_servers -- \
    --fast --out "$CACHE_TMP/results" > "$CACHE_TMP/cold.log"
cp "$CACHE_TMP/results/fig5.json" "$CACHE_TMP/cold.json"
# Same figure against the now-populated cache: every configuration must
# come from disk (zero misses, zero simulations) and the JSON must be
# byte-identical to the cold run's.
cargo run -q --release -p ftmpi-bench --bin fig5_servers -- \
    --fast --out "$CACHE_TMP/results" > "$CACHE_TMP/warm.log"
grep -q "/ 0 misses" "$CACHE_TMP/warm.log"
grep -q "rank-thread pool: 0 checkouts" "$CACHE_TMP/warm.log"
cmp "$CACHE_TMP/cold.json" "$CACHE_TMP/results/fig5.json"
# Ladder, pool, batching, and cache off: the figure must still be
# byte-identical — the heap backend and unbatched flows are the reference
# semantics, not a degraded mode.
rm "$CACHE_TMP/results/fig5.json"
FTMPI_NO_LADDER=1 FTMPI_NO_POOL=1 FTMPI_NO_BATCH=1 FTMPI_NO_CACHE=1 \
    cargo run -q --release -p ftmpi-bench --bin fig5_servers -- \
    --fast --out "$CACHE_TMP/results" > "$CACHE_TMP/plain.log"
cmp "$CACHE_TMP/cold.json" "$CACHE_TMP/results/fig5.json"
# Legacy threaded rank backend: still byte-identical — the coroutine and
# thread-per-rank executions are interchangeable wherever both can run.
rm "$CACHE_TMP/results/fig5.json"
FTMPI_THREADED=1 FTMPI_NO_CACHE=1 \
    cargo run -q --release -p ftmpi-bench --bin fig5_servers -- \
    --fast --out "$CACHE_TMP/results" > "$CACHE_TMP/threaded.log"
cmp "$CACHE_TMP/cold.json" "$CACHE_TMP/results/fig5.json"
rm -rf "$CACHE_TMP"

echo "==> calibration seed cache (cold calibrate run, zero simulations)"
SEED_TMP="${TMPDIR:-/tmp}/ftmpi-ci-seed-$$"
rm -rf "$SEED_TMP"
# A cold out dir must be served entirely by the committed seed entries.
cargo run -q --release -p ftmpi-bench --bin calibrate -- \
    --out "$SEED_TMP/results" > "$SEED_TMP.log"
grep -q "6 hits (6 from disk) / 0 misses" "$SEED_TMP.log"
rm -rf "$SEED_TMP" "$SEED_TMP.log"

echo "==> kernel microbench (ladder vs heap, BENCH_kernel.json)"
cargo run -q --release -p ftmpi-bench --bin kernel_bench -- --quick

echo "==> rank-scale bench (coroutines vs threads, 10^5-rank runs, BENCH_scale.json)"
cargo run -q --release -p ftmpi-bench --bin scale_bench -- --quick

echo "CI green."
