#!/usr/bin/env python3
"""Fill EXPERIMENTS.md placeholders from an all_figures log.

Usage: python3 scripts/fill_experiments.py /tmp/all_figures.log

Extracts the printed tables of selected experiments and splices them into
EXPERIMENTS.md at the `<!-- NAME -->` markers, converting the aligned-text
tables to Markdown.
"""

import re
import sys


def sections(log: str):
    """Split the log into {binary_name: text} chunks."""
    parts = re.split(r"^#{8,} (\w+) #{8,}$", log, flags=re.M)
    out = {}
    for i in range(1, len(parts) - 1, 2):
        out[parts[i]] = parts[i + 1]
    return out


def tables(text: str):
    """Extract (title, header, rows) of each `=== title ===` table."""
    out = []
    lines = text.splitlines()
    i = 0
    while i < len(lines):
        m = re.match(r"^=== (.+) ===$", lines[i])
        if not m:
            i += 1
            continue
        title = m.group(1)
        header = lines[i + 1].split()
        rows = []
        j = i + 3  # skip the dashes
        while j < len(lines) and lines[j].strip() and not lines[j].startswith(("===", "[", "(")):
            rows.append(lines[j].split())
            j += 1
        out.append((title, header, rows))
        i = j
    return out


def md_table(header, rows):
    head = "| " + " | ".join(header) + " |"
    sep = "|" + "---|" * len(header)
    body = "\n".join("| " + " | ".join(r) + " |" for r in rows)
    return f"{head}\n{sep}\n{body}"


def main():
    log = open(sys.argv[1]).read()
    secs = sections(log)
    exp = open("EXPERIMENTS.md").read()

    def fill(marker: str, content: str):
        nonlocal exp
        exp = exp.replace(f"<!-- {marker} -->", content)

    if "fig6_scaling" in secs:
        tbls = tables(secs["fig6_scaling"])
        chunks = []
        for title, header, rows in tbls:
            keep = [r for r in rows if r[0] in {"4", "64", "144", "169", "196", "256"}]
            chunks.append(f"**{title}**\n\n" + md_table(header, keep))
        fill("FIG6_TABLE", "\n\n".join(chunks))
    if "fig8_myrinet_scaling" in secs:
        t = tables(secs["fig8_myrinet_scaling"])[0]
        fill("FIG8_TABLE", md_table(t[1], t[2]))
    if "fig9_grid400" in secs:
        t = tables(secs["fig9_grid400"])[0]
        fill("FIG9_TABLE", md_table(t[1], t[2]))
    if "fig10_grid_scaling" in secs:
        t = tables(secs["fig10_grid_scaling"])[0]
        fill("FIG10_TABLE", md_table(t[1], t[2]))
    if "calibrate" in secs:
        t = tables(secs["calibrate"])[0]
        fill("CALIBRATION_TABLE", md_table(t[1], t[2]))
    # Extension experiment tables, appended as one block.
    ext = []
    for name in ("recovery_cost", "mttf_period", "ablation_design", "future_work"):
        if name in secs:
            for title, header, rows in tables(secs[name]):
                ext.append(f"**{title}** (`{name}`)\n\n" + md_table(header, rows))
    if ext:
        fill("EXTENSION_RESULTS", "\n\n".join(ext))

    open("EXPERIMENTS.md", "w").write(exp)
    print("filled")


if __name__ == "__main__":
    main()
