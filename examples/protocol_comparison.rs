//! Domain example: the paper's central comparison in miniature — blocking
//! vs. non-blocking coordinated checkpointing across checkpoint frequencies
//! on a latency-bound workload (CG over Myrinet), showing the crossover the
//! paper reports in Fig. 7.
//!
//! ```sh
//! cargo run --release --example protocol_comparison
//! ```

use ftmpi::ft::{run_job, FtConfig, JobSpec, Platform, ProtocolChoice};
use ftmpi::nas::{cg, Machine, NasClass};
use ftmpi::net::{LinkConfig, SoftwareStack};
use ftmpi::sim::SimDuration;

fn main() {
    let nranks = 16;
    let wl = cg::workload(NasClass::B, nranks, Machine::mflops(80.0));
    println!("workload: {} on a Myrinet cluster\n", wl.name);
    println!(
        "{:>10} | {:>16} | {:>16}",
        "period(s)", "pcl-nemesis (s)", "vcl-daemon (s)"
    );

    for period_s in [2u64, 5, 10, 30, 120] {
        let mut times = Vec::new();
        for (proto, stack) in [
            (ProtocolChoice::Pcl, SoftwareStack::NemesisGm),
            (ProtocolChoice::Vcl, SoftwareStack::VclDaemon),
        ] {
            let mut spec = JobSpec::new(nranks, proto, wl.app.clone());
            spec.platform = Platform::Cluster(LinkConfig::myrinet2000());
            spec.stack = Some(stack);
            spec.servers = 2;
            spec.ft = FtConfig {
                period: SimDuration::from_secs(period_s),
                image_bytes: wl.image_bytes,
                ..FtConfig::default()
            };
            let res = run_job(spec).expect("run");
            times.push((res.completion_secs(), res.waves()));
        }
        println!(
            "{:>10} | {:>10.1} w={:<3} | {:>10.1} w={:<3}",
            period_s, times[0].0, times[0].1, times[1].0, times[1].1
        );
    }
    println!("\nThe blocking protocol over the fast OS-bypass stack wins at sensible");
    println!("frequencies; the non-blocking protocol's per-message daemon cost only");
    println!("pays off when checkpoints are taken very frequently (paper §5.3).");
}
