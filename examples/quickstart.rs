//! Quickstart: run a small MPI application under the blocking (Pcl)
//! coordinated-checkpointing protocol, kill a rank mid-run, and watch the
//! job roll back to the last committed wave and still finish.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use std::sync::Arc;

use ftmpi::ft::{run_job, FailurePlan, JobSpec, ProtocolChoice};
use ftmpi::mpi::{app_fn, AppFn};
use ftmpi::sim::{SimDuration, SimTime};

fn main() {
    // A 6-rank ring: every iteration each rank passes 4 kB to its right
    // neighbour and then "computes" for 50 ms of virtual time.
    let iterations = 200;
    let app: AppFn = app_fn(move |mut mpi| async move {
        let n = mpi.size();
        let right = (mpi.rank() + 1) % n;
        let left = (mpi.rank() + n - 1) % n;
        for i in 0..iterations {
            let req = mpi.irecv(Some(left), Some(i % 1000)).await;
            mpi.send(right, i % 1000, 4096).await;
            mpi.wait(req).await;
            mpi.compute(SimDuration::from_millis(50));
        }
        mpi
    });

    // Failure-free baseline without any checkpointing.
    let baseline =
        run_job(JobSpec::new(6, ProtocolChoice::Dummy, Arc::clone(&app))).expect("baseline run");

    // The same job under Pcl, checkpointing every 2 s, with rank 3 killed
    // at t = 6.5 s.
    let mut spec = JobSpec::new(6, ProtocolChoice::Pcl, app);
    spec.ft.period = SimDuration::from_secs(2);
    spec.ft.image_bytes = 8 << 20;
    spec.failures = FailurePlan::kill_at(SimTime::from_nanos(6_500_000_000), 3);
    let result = run_job(spec).expect("fault-tolerant run");

    println!(
        "baseline (no checkpoints, no failure): {:7.2} s",
        baseline.completion_secs()
    );
    println!(
        "Pcl, 2 s waves, rank 3 killed at 6.5 s:  {:7.2} s",
        result.completion_secs()
    );
    println!("  checkpoint waves committed: {}", result.waves());
    println!("  restarts performed:         {}", result.rt.restarts);
    println!(
        "  checkpoint data shipped:    {:.1} MiB",
        result.ft.image_bytes_sent as f64 / (1 << 20) as f64
    );
    println!("  sends delayed by waves:     {}", result.ft.sends_delayed);
    assert_eq!(result.rt.restarts, 1);
    assert_eq!(result.leftover_unexpected, 0, "recovery cut must be clean");
    println!("\nThe job lost less than one checkpoint period of work and completed.");
}
