//! Domain example: compare the two checkpointing protocols on NAS BT over a
//! Gigabit-Ethernet cluster — a miniature of the paper's §5.2 study.
//!
//! ```sh
//! cargo run --release --example nas_cluster
//! ```

use ftmpi::ft::{run_job, FtConfig, JobSpec, Platform, ProtocolChoice};
use ftmpi::nas::{bt, Machine, NasClass};
use ftmpi::net::LinkConfig;
use ftmpi::sim::SimDuration;

fn main() {
    let nranks = 16;
    let machine = Machine::mflops(150.0);
    let wl = bt::workload(NasClass::A, nranks, machine);
    println!(
        "workload: {} ({} MiB images)",
        wl.name,
        wl.image_bytes >> 20
    );
    println!(
        "{:<8} {:>10} {:>7} {:>12} {:>14}",
        "proto", "time (s)", "waves", "overhead", "ckpt data"
    );

    let mut baseline = None;
    for proto in [
        ProtocolChoice::Dummy,
        ProtocolChoice::Vcl,
        ProtocolChoice::Pcl,
    ] {
        let mut spec = JobSpec::new(nranks, proto, wl.app.clone());
        spec.platform = Platform::Cluster(LinkConfig::gige());
        spec.servers = 2;
        spec.ft = FtConfig {
            period: SimDuration::from_secs(10),
            image_bytes: wl.image_bytes,
            ..FtConfig::default()
        };
        let res = run_job(spec).expect("run");
        let t = res.completion_secs();
        let base = *baseline.get_or_insert(t);
        println!(
            "{:<8} {:>10.2} {:>7} {:>11.1}% {:>10.1} MiB",
            match proto {
                ProtocolChoice::Dummy => "none",
                ProtocolChoice::Vcl => "vcl",
                ProtocolChoice::Pcl => "pcl",
                ProtocolChoice::Mlog => "mlog",
            },
            t,
            res.waves(),
            (t / base - 1.0) * 100.0,
            (res.ft.image_bytes_sent + res.ft.log_bytes_sent) as f64 / (1 << 20) as f64,
        );
    }
    println!("\nVcl never interrupts communication; Pcl synchronizes every wave.");
}
