//! Domain example: a long BT run across the multi-cluster grid under a
//! Poisson failure process, protected by the blocking protocol — the
//! scenario motivating the paper's conclusion that the checkpoint period
//! should track the platform MTTF.
//!
//! ```sh
//! cargo run --release --example grid_failures
//! ```

use ftmpi::ft::{run_job, FailurePlan, FtConfig, JobSpec, Platform, ProtocolChoice};
use ftmpi::nas::{bt, Machine, NasClass};
use ftmpi::sim::{SimDuration, SimTime};

fn main() {
    let nranks = 100;
    let wl = bt::workload(NasClass::A, nranks, Machine::mflops(100.0));
    println!("workload: {} over the 6-cluster grid", wl.name);

    let mttf = SimDuration::from_secs(60);
    let horizon = SimTime::from_nanos(1_800_000_000_000);

    println!(
        "{:>10} {:>10} {:>8} {:>9}",
        "period(s)", "time(s)", "waves", "restarts"
    );
    for period_s in [10u64, 30, 60, 120, 600] {
        let mut spec = JobSpec::new(nranks, ProtocolChoice::Pcl, wl.app.clone());
        spec.platform = Platform::Grid;
        spec.servers = 1; // one checkpoint server per cluster
        spec.ft = FtConfig {
            period: SimDuration::from_secs(period_s),
            image_bytes: wl.image_bytes,
            ..FtConfig::default()
        };
        spec.failures = FailurePlan::poisson(mttf, horizon, nranks, 2024);
        let res = run_job(spec).expect("grid run");
        println!(
            "{:>10} {:>10.1} {:>8} {:>9}",
            period_s,
            res.completion_secs(),
            res.waves(),
            res.rt.restarts
        );
    }
    println!(
        "\nWith failures every ~{} s, checkpointing too rarely loses whole",
        mttf.as_secs_f64()
    );
    println!("periods of work per failure, while checkpointing too often pays wave");
    println!("synchronization continuously — the sweet spot tracks the MTTF.");
}
