//! `ftmpi` — blocking vs. non-blocking coordinated checkpointing for
//! fault-tolerant MPI, reproduced as a deterministic simulation study.
//!
//! This facade crate re-exports the workspace layers:
//!
//! * [`sim`] — deterministic process-oriented discrete-event kernel;
//! * [`net`] — cluster / Myrinet / grid network resource model;
//! * [`mpi`] — MPI-like runtime with protocol hooks;
//! * [`ft`] — the checkpointing protocols (Vcl, Pcl), checkpoint servers,
//!   failure injection and recovery — the paper's contribution;
//! * [`nas`] — NAS Parallel Benchmark skeleton workloads.
//!
//! # Quickstart
//!
//! ```
//! use ftmpi::ft::{run_job, JobSpec, ProtocolChoice};
//! use ftmpi::mpi::app_fn;
//! use ftmpi::sim::SimDuration;
//!
//! // Four ranks exchange a ring token 50 times under the blocking
//! // checkpointing protocol.
//! let app: ftmpi::mpi::AppFn = app_fn(|mut mpi| async move {
//!     let n = mpi.size();
//!     let (right, left) = ((mpi.rank() + 1) % n, (mpi.rank() + n - 1) % n);
//!     for i in 0..50 {
//!         let req = mpi.irecv(Some(left), Some(i)).await;
//!         mpi.send(right, i, 1024).await;
//!         mpi.wait(req).await;
//!         mpi.compute(SimDuration::from_millis(20));
//!     }
//!     mpi
//! });
//! let mut spec = JobSpec::new(4, ProtocolChoice::Pcl, app);
//! spec.ft.period = SimDuration::from_millis(300);
//! let result = run_job(spec).unwrap();
//! assert!(result.waves() >= 1);
//! ```

pub use ftmpi_core as ft;
pub use ftmpi_mpi as mpi;
pub use ftmpi_nas as nas;
pub use ftmpi_net as net;
pub use ftmpi_sim as sim;
