//! Job assembly and execution: platform + deployment + protocol + workload
//! in one call, returning the metrics every experiment consumes.

use std::sync::Arc;

use ftmpi_mpi::{
    spawn_rank, AppFn, DummyProtocol, Placement, Protocol, RaceFixture, RuntimeConfig, RuntimeCore,
    RuntimeStats, World, WorldRef,
};
use ftmpi_net::{fault_lane, LinkConfig, LinkFaultKind, NetFaultPlan, NetModel, SoftwareStack};
use ftmpi_sim::{Sim, SimDuration, SimTime};

use crate::config::FtConfig;
use crate::deploy::Deployment;
use crate::failure::FailurePlan;
use crate::mlog::Mlog;
use crate::pcl::Pcl;
use crate::recovery::{
    arm_scrubber, corrupt_images, inject_kill, inject_kill_many, mlog_fail_and_restart,
    partition_cut, server_fail,
};
use crate::stats::FtStats;
use crate::vcl::Vcl;

/// Which fault-tolerance implementation runs the job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProtocolChoice {
    /// No fault tolerance (Vdummy / plain MPICH2 runs).
    Dummy,
    /// Non-blocking coordinated checkpointing (MPICH-Vcl).
    Vcl,
    /// Blocking coordinated checkpointing (MPICH2-Pcl).
    Pcl,
    /// Uncoordinated checkpointing + pessimistic receiver-based message
    /// logging (the §2 alternative; single-rank recovery).
    Mlog,
}

/// Which platform hosts the job.
#[derive(Debug, Clone)]
pub enum Platform {
    /// A single cluster with the given intra-cluster link.
    Cluster(LinkConfig),
    /// The six-cluster Grid5000 subset of §5.4.
    Grid,
}

/// Everything needed to run one experiment configuration. Cloning is cheap
/// — the application closure is shared through its `Arc`.
#[derive(Clone)]
pub struct JobSpec {
    /// Number of MPI ranks.
    pub nranks: usize,
    /// Protocol under test.
    pub protocol: ProtocolChoice,
    /// Software stack carrying messages. `None` picks the protocol's
    /// natural stack: the Vcl daemon stack for Vcl, TCP sockets otherwise.
    pub stack: Option<SoftwareStack>,
    /// Checkpointing parameters.
    pub ft: FtConfig,
    /// Platform.
    pub platform: Platform,
    /// Checkpoint servers (total for clusters, per cluster for the grid).
    pub servers: usize,
    /// Ranks above this use two-per-node placement (clusters; paper: 144).
    pub single_threshold: usize,
    /// The application every rank runs.
    pub app: AppFn,
    /// Failure schedule.
    pub failures: FailurePlan,
    /// Network-fault schedule (link down/degrade/restore events and named
    /// partitions). Empty by default: the fault machinery is inert and the
    /// run is byte-identical to a fault-free one.
    pub net_faults: NetFaultPlan,
    /// Abort the run at this virtual time (guard against protocol bugs).
    pub max_virtual_time: Option<SimTime>,
    /// Override the deployment's rank→node placement (platform
    /// characterization tools that pin ranks to specific nodes).
    pub placement_override: Option<Vec<ftmpi_net::NodeId>>,
    /// Proactive checkpoint triggers: a wave is initiated at each time
    /// (failure-prediction hooks from the paper's conclusion). No-ops for
    /// the Dummy protocol or while a wave is already in flight.
    pub wave_triggers: Vec<SimTime>,
}

impl JobSpec {
    /// A spec with paper-style defaults on a GigE cluster.
    pub fn new(nranks: usize, protocol: ProtocolChoice, app: AppFn) -> JobSpec {
        JobSpec {
            nranks,
            protocol,
            stack: None,
            ft: FtConfig::default(),
            platform: Platform::Cluster(LinkConfig::gige()),
            servers: 1,
            single_threshold: 144,
            app,
            failures: FailurePlan::none(),
            net_faults: NetFaultPlan::none(),
            max_virtual_time: None,
            placement_override: None,
            wave_triggers: Vec::new(),
        }
    }
}

/// Metrics of a completed job.
#[derive(Debug, Clone)]
pub struct JobResult {
    /// Job completion time (first spawn to last finalize).
    pub completion: SimDuration,
    /// Fault-tolerance statistics (all-zero for the Dummy protocol).
    pub ft: FtStats,
    /// Runtime statistics.
    pub rt: RuntimeStats,
    /// Kernel events executed (simulation cost indicator).
    pub events: u64,
    /// Messages delivered but never consumed (must be 0 for well-formed
    /// applications; nonzero after a restart indicates a broken cut).
    pub leftover_unexpected: usize,
    /// Receives posted but never matched (0 for well-formed applications).
    pub leftover_posted: usize,
}

impl JobResult {
    /// Committed checkpoint waves.
    pub fn waves(&self) -> u64 {
        self.ft.waves_committed
    }

    /// Completion time in seconds.
    pub fn completion_secs(&self) -> f64 {
        self.completion.as_secs_f64()
    }

    /// Serialize for the persistent memo cache: one `key=value` line per
    /// field, integers only (virtual times are raw nanosecond counts), so a
    /// disk round-trip reproduces the result bit-for-bit and cached figure
    /// output stays byte-identical to a fresh simulation.
    pub fn encode(&self) -> String {
        let mut out = String::with_capacity(512);
        let mut line = |k: &str, v: u64| {
            out.push_str(k);
            out.push('=');
            out.push_str(&v.to_string());
            out.push('\n');
        };
        line("completion_ns", self.completion.as_nanos());
        line("ft.waves_started", self.ft.waves_started);
        line("ft.waves_committed", self.ft.waves_committed);
        line("ft.image_bytes_sent", self.ft.image_bytes_sent);
        line("ft.log_bytes_sent", self.ft.log_bytes_sent);
        line("ft.msgs_logged", self.ft.msgs_logged);
        line("ft.sends_delayed", self.ft.sends_delayed);
        line("ft.arrivals_delayed", self.ft.arrivals_delayed);
        line("ft.restarts", self.ft.restarts);
        line("ft.waves_aborted", self.ft.waves_aborted);
        line("ft.rollback_depth_max", self.ft.rollback_depth_max);
        line("ft.lost_work_ns", self.ft.lost_work.as_nanos());
        line("ft.images_refetched", self.ft.images_refetched);
        line("ft.orphan_images_end", self.ft.orphan_images_end);
        line("ft.images_rerouted", self.ft.images_rerouted);
        line("ft.partitions_suppressed", self.ft.partitions_suppressed);
        line("ft.partitions_expired", self.ft.partitions_expired);
        line("ft.retries_exhausted", self.ft.retries_exhausted);
        line("ft.replica_depth_max", self.ft.replica_depth_max);
        line(
            "ft.images_corrupt_detected",
            self.ft.images_corrupt_detected,
        );
        line("ft.images_repaired", self.ft.images_repaired);
        line("ft.servers_quarantined", self.ft.servers_quarantined);
        line("rt.msgs_sent", self.rt.msgs_sent);
        line("rt.bytes_sent", self.rt.bytes_sent);
        line("rt.msgs_delivered", self.rt.msgs_delivered);
        line("rt.finished_ranks", self.rt.finished_ranks as u64);
        line("rt.restarts", self.rt.restarts);
        line("rt.link_retries", self.rt.link_retries);
        line("events", self.events);
        line("leftover_unexpected", self.leftover_unexpected as u64);
        line("leftover_posted", self.leftover_posted as u64);
        out.push_str("rt.completion_time_ns=");
        match self.rt.completion_time {
            Some(t) => out.push_str(&t.as_nanos().to_string()),
            None => out.push_str("none"),
        }
        out.push('\n');
        out.push_str("ft.wave_timings=");
        for (i, w) in self.ft.wave_timings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{}:{}:{}",
                w.wave,
                w.started_at.as_nanos(),
                w.committed_at.as_nanos()
            ));
        }
        out.push('\n');
        out
    }

    /// Parse [`JobResult::encode`] output. Strict: every field must appear
    /// exactly once with a well-formed value, and unknown keys are rejected,
    /// so truncated or garbled cache entries decode to `None` (and get
    /// recomputed) instead of yielding corrupt results.
    pub fn decode(text: &str) -> Option<JobResult> {
        let mut ints = std::collections::HashMap::new();
        let mut completion_time: Option<Option<SimTime>> = None;
        let mut wave_timings: Option<Vec<crate::stats::WaveTiming>> = None;
        for raw in text.lines() {
            let line = raw.trim_end_matches('\r');
            if line.is_empty() {
                continue;
            }
            let (key, value) = line.split_once('=')?;
            match key {
                "rt.completion_time_ns" => {
                    let parsed = if value == "none" {
                        None
                    } else {
                        Some(SimTime::from_nanos(value.parse().ok()?))
                    };
                    if completion_time.replace(parsed).is_some() {
                        return None; // duplicate key
                    }
                }
                "ft.wave_timings" => {
                    let mut timings = Vec::new();
                    if !value.is_empty() {
                        for item in value.split(',') {
                            let mut parts = item.split(':');
                            let wave = parts.next()?.parse().ok()?;
                            let started = parts.next()?.parse().ok()?;
                            let committed = parts.next()?.parse().ok()?;
                            if parts.next().is_some() {
                                return None;
                            }
                            timings.push(crate::stats::WaveTiming {
                                wave,
                                started_at: SimTime::from_nanos(started),
                                committed_at: SimTime::from_nanos(committed),
                            });
                        }
                    }
                    if wave_timings.replace(timings).is_some() {
                        return None;
                    }
                }
                _ => {
                    let v: u64 = value.parse().ok()?;
                    if ints.insert(key, v).is_some() {
                        return None;
                    }
                }
            }
        }
        let mut take = |k: &str| ints.remove(k);
        let result = JobResult {
            completion: SimDuration::from_nanos(take("completion_ns")?),
            ft: FtStats {
                waves_started: take("ft.waves_started")?,
                waves_committed: take("ft.waves_committed")?,
                wave_timings: wave_timings?,
                image_bytes_sent: take("ft.image_bytes_sent")?,
                log_bytes_sent: take("ft.log_bytes_sent")?,
                msgs_logged: take("ft.msgs_logged")?,
                sends_delayed: take("ft.sends_delayed")?,
                arrivals_delayed: take("ft.arrivals_delayed")?,
                restarts: take("ft.restarts")?,
                waves_aborted: take("ft.waves_aborted")?,
                rollback_depth_max: take("ft.rollback_depth_max")?,
                lost_work: SimDuration::from_nanos(take("ft.lost_work_ns")?),
                images_refetched: take("ft.images_refetched")?,
                orphan_images_end: take("ft.orphan_images_end")?,
                images_rerouted: take("ft.images_rerouted")?,
                partitions_suppressed: take("ft.partitions_suppressed")?,
                partitions_expired: take("ft.partitions_expired")?,
                retries_exhausted: take("ft.retries_exhausted")?,
                replica_depth_max: take("ft.replica_depth_max")?,
                images_corrupt_detected: take("ft.images_corrupt_detected")?,
                images_repaired: take("ft.images_repaired")?,
                servers_quarantined: take("ft.servers_quarantined")?,
            },
            rt: RuntimeStats {
                msgs_sent: take("rt.msgs_sent")?,
                bytes_sent: take("rt.bytes_sent")?,
                msgs_delivered: take("rt.msgs_delivered")?,
                finished_ranks: take("rt.finished_ranks")? as usize,
                completion_time: completion_time?,
                restarts: take("rt.restarts")?,
                link_retries: take("rt.link_retries")?,
            },
            events: take("events")?,
            leftover_unexpected: take("leftover_unexpected")? as usize,
            leftover_posted: take("leftover_posted")? as usize,
        };
        if !ints.is_empty() {
            return None; // unknown keys: not something encode() produced
        }
        Some(result)
    }
}

/// Why a job could not run or finish.
#[derive(Debug)]
pub enum JobError {
    /// The Vcl implementation does not scale past its `select()` limit
    /// (the paper could not run Vcl beyond ~300 processes).
    VclProcessLimit {
        /// Requested job size.
        requested: usize,
        /// Implementation limit.
        limit: usize,
    },
    /// The simulation failed (deadlock or panic — a protocol/model bug).
    Sim(String),
    /// The failure/recovery path hit a fatal routing error (see
    /// [`crate::recovery::RecoveryError`]); the message names the broken
    /// scenario instead of the old downcast panic aborting the process.
    Recovery(String),
    /// The run ended without every rank finishing (hit the time guard).
    /// Carries a per-rank status dump for diagnosis.
    Incomplete {
        /// One line per rank: status, ops completed, blocked flag.
        ranks: Vec<String>,
    },
    /// The job's network-fault plan is structurally invalid (see
    /// [`ftmpi_net::FaultPlanError`]); nothing was scheduled.
    FaultPlan(ftmpi_net::FaultPlanError),
}

impl std::fmt::Display for JobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JobError::VclProcessLimit { requested, limit } => write!(
                f,
                "Vcl cannot run {requested} processes: select() multiplexing \
                 caps it at {limit} (see §5.4)"
            ),
            JobError::Sim(e) => write!(f, "simulation error: {e}"),
            JobError::Recovery(e) => write!(f, "recovery error: {e}"),
            JobError::Incomplete { ranks } => {
                write!(f, "job did not complete; ranks: {}", ranks.join("; "))
            }
            JobError::FaultPlan(e) => write!(f, "invalid fault plan: {e}"),
        }
    }
}

impl std::error::Error for JobError {}

/// Build the deployment for a spec.
pub fn build_deployment(spec: &JobSpec) -> Deployment {
    match &spec.platform {
        Platform::Cluster(link) => Deployment::cluster(
            spec.nranks,
            spec.servers.max(1),
            link.clone(),
            spec.single_threshold,
        ),
        Platform::Grid => Deployment::grid(spec.nranks, spec.servers.max(1)),
    }
}

/// Observation and perturbation knobs for a run (see [`run_job_with`]).
#[derive(Debug, Clone, Default)]
pub struct RunOptions {
    /// Record the structured protocol trace (checker input). Off by
    /// default: tracing is behind a lock-free gate and costs nothing when
    /// disabled.
    pub trace: bool,
    /// Perturb same-time event tiebreaks with this seed (race detection).
    /// `None` keeps the canonical deterministic schedule.
    pub tiebreak_seed: Option<u64>,
    /// Drive the run under a prescribed schedule (exploration mode): at
    /// each multi-candidate instant the kernel takes the next index from
    /// this list, falling back to 0 (the canonical order) beyond its end.
    /// `None` leaves the kernel policy-free — the ordinary fast path.
    pub schedule: Option<Vec<usize>>,
    /// Force the event-queue backend (`true` = ladder), overriding the
    /// `FTMPI_NO_LADDER` environment default (the explorer's differential-
    /// backend mode). `None` keeps the default.
    pub ladder: Option<bool>,
    /// Force the process backend (`true` = legacy OS threads), overriding
    /// the `FTMPI_THREADED` environment default (differential-backend
    /// testing). `None` keeps the default (stackless coroutines).
    pub threaded: Option<bool>,
    /// Re-open one of the two historical races as a regression fixture for
    /// the schedule explorer (see [`RaceFixture`]). `None` — always, outside
    /// explorer tests — leaves every protocol path exactly as shipped.
    pub race_fixture: Option<RaceFixture>,
}

/// The scheduling record of an explored run: every multi-candidate choice
/// point and every executed step, as recorded by the kernel (see
/// [`ftmpi_sim::Decision`] / [`ftmpi_sim::StepRecord`]). Empty unless
/// [`RunOptions::schedule`] engaged exploration mode.
#[derive(Debug, Default)]
pub struct ScheduleLog {
    /// Choice points in execution order.
    pub decisions: Vec<ftmpi_sim::Decision>,
    /// Executed steps with trace-effect windows.
    pub steps: Vec<ftmpi_sim::StepRecord>,
}

/// Run one job to completion and collect its metrics.
pub fn run_job(spec: JobSpec) -> Result<JobResult, JobError> {
    run_job_with(spec, RunOptions::default()).map(|(res, _)| res)
}

/// Like [`run_job`] but with observation options, also returning the
/// recorded trace (empty unless `opts.trace` is set).
pub fn run_job_with(
    spec: JobSpec,
    opts: RunOptions,
) -> Result<(JobResult, Vec<ftmpi_sim::TraceEvent>), JobError> {
    run_job_explored(spec, opts).map(|(res, trace, _)| (res, trace))
}

/// Like [`run_job_with`] but also returning the [`ScheduleLog`] — the
/// explorer's view of a run's choice points. Costs nothing extra when
/// exploration mode is off (the log is empty).
pub fn run_job_explored(
    spec: JobSpec,
    opts: RunOptions,
) -> Result<(JobResult, Vec<ftmpi_sim::TraceEvent>, ScheduleLog), JobError> {
    if spec.protocol == ProtocolChoice::Vcl && spec.nranks > spec.ft.vcl_process_limit {
        return Err(JobError::VclProcessLimit {
            requested: spec.nranks,
            limit: spec.ft.vcl_process_limit,
        });
    }
    let dep = build_deployment(&spec);
    let stack = spec.stack.unwrap_or(match spec.protocol {
        // Both MPICH-V protocol families ride the daemon architecture.
        ProtocolChoice::Vcl | ProtocolChoice::Mlog => SoftwareStack::VclDaemon,
        _ => SoftwareStack::TcpSock,
    });
    let placement: Placement = match &spec.placement_override {
        Some(nodes) => Placement::explicit(nodes.clone()),
        None => dep.placement.clone(),
    };
    // Effective placement, kept for resolving node-kill victims below.
    let placement_roles = placement.clone();
    let mut rt = RuntimeCore::new(
        NetModel::new(dep.topo.clone()),
        placement,
        RuntimeConfig::for_stack(stack),
    );
    rt.race_fixture = opts.race_fixture;
    let proto: Box<dyn Protocol> = match spec.protocol {
        ProtocolChoice::Dummy => Box::new(DummyProtocol),
        ProtocolChoice::Vcl => Box::new(Vcl::new(spec.ft.clone(), &dep)),
        ProtocolChoice::Pcl => Box::new(Pcl::new(spec.ft.clone(), &dep)),
        ProtocolChoice::Mlog => Box::new(Mlog::new(spec.ft.clone(), &dep)),
    };
    let world: WorldRef = World::new_ref(rt, proto);

    let mut sim = Sim::new();
    // Backend override first (it replaces the still-empty queue), then the
    // policy (it starts lane recording on whichever queue survives).
    if let Some(ladder) = opts.ladder {
        sim.force_queue_backend(ladder);
    }
    if let Some(threaded) = opts.threaded {
        sim.force_threaded(threaded);
    }
    if let Some(prefix) = opts.schedule {
        sim.set_schedule_policy(Box::new(ftmpi_sim::PrescribedPolicy::new(prefix)));
    }
    if let Some(t) = spec.max_virtual_time {
        sim.set_max_time(t);
    }
    if opts.trace {
        sim.enable_trace();
    }
    if let Some(seed) = opts.tiebreak_seed {
        sim.set_tiebreak_seed(seed);
    }

    let w2 = Arc::clone(&world);
    let app = Arc::clone(&spec.app);
    let nranks = spec.nranks;
    let protocol = spec.protocol;
    sim.schedule(SimTime::ZERO, move |sc| {
        for r in 0..nranks {
            spawn_rank(sc, &w2, r, Arc::clone(&app));
        }
        match protocol {
            ProtocolChoice::Dummy => {}
            ProtocolChoice::Vcl => Vcl::start(&w2, sc),
            ProtocolChoice::Pcl => Pcl::start(&w2, sc),
            ProtocolChoice::Mlog => Mlog::start(&w2, sc),
        }
    });

    for &at in &spec.wave_triggers {
        let w2 = Arc::clone(&world);
        sim.schedule(at, move |sc| match protocol {
            ProtocolChoice::Dummy | ProtocolChoice::Mlog => {}
            ProtocolChoice::Vcl => Vcl::trigger_wave_now(&w2, sc),
            ProtocolChoice::Pcl => Pcl::trigger_wave_now(&w2, sc),
        });
    }

    // Server kills are scheduled before rank kills so that at equal times
    // the server's images vanish first: a rank kill in the same nanosecond
    // must not plan its restore against a server that is dying with it
    // (independent Poisson schedules can legally collide — see
    // `FailurePlan::merged`).
    for (at, server) in spec.failures.server_kills.clone() {
        let w2 = Arc::clone(&world);
        sim.schedule(at, move |sc| {
            if let Err(e) = server_fail(sc, &w2, protocol, server) {
                w2.lock().rt.record_fatal(&e.to_string());
            }
        });
    }

    for (at, victim) in spec.failures.kills.clone() {
        let w2 = Arc::clone(&world);
        let app = Arc::clone(&spec.app);
        let ft = spec.ft.clone();
        sim.schedule(at, move |sc| {
            let outcome = if protocol == ProtocolChoice::Mlog {
                mlog_fail_and_restart(sc, &w2, &app, victim, &ft)
            } else {
                inject_kill(sc, &w2, &app, protocol, victim, &ft)
            };
            if let Err(e) = outcome {
                w2.lock().rt.record_fatal(&e.to_string());
            }
        });
    }

    // Node deaths: the node's colocated server fails first (its replicas
    // vanish before the restore wave is planned), then every rank the node
    // hosted dies in one correlated kill. Roles are resolved eagerly from
    // the deployment so the scheduled closure carries plain indices.
    for (at, node) in spec.failures.node_kills.clone() {
        let victims: Vec<usize> = (0..spec.nranks)
            .filter(|&r| placement_roles.node_of(r).0 == node)
            .collect();
        let server_idx = dep.server_nodes.iter().position(|n| n.0 == node);
        let w2 = Arc::clone(&world);
        let app = Arc::clone(&spec.app);
        let ft = spec.ft.clone();
        sim.schedule(at, move |sc| {
            if let Some(idx) = server_idx {
                if let Err(e) = server_fail(sc, &w2, protocol, idx) {
                    w2.lock().rt.record_fatal(&e.to_string());
                }
            }
            let outcome = if protocol == ProtocolChoice::Mlog {
                victims
                    .iter()
                    .try_for_each(|&v| mlog_fail_and_restart(sc, &w2, &app, v, &ft))
            } else {
                inject_kill_many(sc, &w2, &app, protocol, &victims, &ft)
            };
            if let Err(e) = outcome {
                w2.lock().rt.record_fatal(&e.to_string());
            }
        });
    }

    // Network-fault schedule. Every transition runs as a `LinkFault` event
    // on its own fault lane — the lane audit proves none is laneless, and a
    // perturbation seed cannot reorder a transition against itself. The
    // plan is validated up front (and flaps expanded): a structurally
    // broken schedule is a spec bug, not a silent last-writer-wins run.
    if !spec.net_faults.is_empty() {
        spec.net_faults.validate().map_err(JobError::FaultPlan)?;
    }
    let mut fault_idx = 0u64;
    for ev in spec.net_faults.expanded_link_events() {
        let w2 = Arc::clone(&world);
        sim.schedule_link_fault(ev.at, fault_lane(fault_idx), move |_sc| {
            let mut w = w2.lock();
            match ev.kind {
                LinkFaultKind::Down => w.rt.net.set_link_down(ev.from, ev.to),
                LinkFaultKind::Degrade(f) => w.rt.net.degrade_link(ev.from, ev.to, f),
                LinkFaultKind::Restore => w.rt.net.restore_link(ev.from, ev.to),
            }
        });
        fault_idx += 1;
    }
    let service_node = dep.service_node;
    // Server-group partitions resolve their fleet indices to nodes now that
    // placement is known, then schedule exactly like node-set partitions.
    let mut partitions = spec.net_faults.partitions.clone();
    for sp in &spec.net_faults.server_partitions {
        let mut nodes = Vec::with_capacity(sp.servers.len());
        for &idx in &sp.servers {
            match dep.server_nodes.get(idx) {
                Some(&n) => nodes.push(n),
                None => {
                    return Err(JobError::FaultPlan(
                        ftmpi_net::FaultPlanError::BadServerIndex {
                            name: sp.name.clone(),
                            index: idx,
                            fleet: dep.server_nodes.len(),
                        },
                    ))
                }
            }
        }
        partitions.push(ftmpi_net::PartitionSpec {
            name: sp.name.clone(),
            nodes,
            direction: sp.direction,
            start: sp.start,
            heal: sp.heal,
            tear: sp.tear,
        });
    }
    for p in partitions {
        let w2 = Arc::clone(&world);
        let app = Arc::clone(&spec.app);
        let ft = spec.ft.clone();
        let name = p.name.clone();
        let nodes = p.nodes.clone();
        let direction = p.direction;
        let tear = p.tear;
        sim.schedule_link_fault(p.start, fault_lane(fault_idx), move |sc| {
            partition_cut(
                sc,
                &w2,
                &app,
                protocol,
                &ft,
                &name,
                &nodes,
                direction,
                tear,
                service_node,
            );
        });
        fault_idx += 1;
        if let Some(heal) = p.heal {
            let w2 = Arc::clone(&world);
            let name = p.name.clone();
            sim.schedule_link_fault(heal, fault_lane(fault_idx), move |_sc| {
                w2.lock().rt.net.heal_partition(&name);
            });
            fault_idx += 1;
        }
    }

    // Corruption schedule: explicit bit-flips plus expanded silent-rot
    // events, each on its own fault lane (continuing the network-fault
    // counter — corruption races flows and fetch probes touching the same
    // replica exactly like a link transition would).
    for ev in spec.failures.expanded_corruptions() {
        let w2 = Arc::clone(&world);
        sim.schedule_link_fault(ev.at, fault_lane(fault_idx), move |sc| {
            if let Err(e) = corrupt_images(sc, &w2, protocol, ev.server, ev.rank) {
                w2.lock().rt.record_fatal(&e.to_string());
            }
        });
        fault_idx += 1;
    }

    // Background scrubber (off by default). `FTMPI_NO_SCRUB` force-disables
    // it regardless of the spec — the operational kill switch when a scrub
    // storm needs to be ruled out in the field.
    if let Some(interval) = spec.ft.scrub_interval {
        if std::env::var_os("FTMPI_NO_SCRUB").is_none()
            && matches!(protocol, ProtocolChoice::Vcl | ProtocolChoice::Pcl)
        {
            let w2 = Arc::clone(&world);
            sim.schedule(SimTime::ZERO, move |sc| {
                arm_scrubber(sc, &w2, protocol, interval);
            });
        }
    }

    let report = sim.run().map_err(|e| JobError::Sim(e.to_string()))?;

    let w = world.lock();
    if let Some(e) = &w.rt.fatal_error {
        return Err(JobError::Recovery(e.clone()));
    }
    let completion = match w.rt.stats.completion_time {
        Some(t) => t.saturating_since(SimTime::ZERO),
        None => {
            let ranks =
                w.rt.ranks
                    .iter()
                    .enumerate()
                    .map(|(r, rs)| format!("r{r}: {}", rs.debug_summary()))
                    .collect();
            return Err(JobError::Incomplete { ranks });
        }
    };
    let rt_stats = w.rt.stats.clone();
    let (leftover_unexpected, leftover_posted) = w.rt.leftover_messages();
    drop(w);
    // Pull protocol stats (needs the mutable downcast hook).
    let ft_stats = {
        let mut w = world.lock();
        let World { proto, .. } = &mut *w;
        if let Some(vcl) = proto.as_any_mut().downcast_mut::<Vcl>() {
            vcl.finalize_stats();
            vcl.stats.clone()
        } else if let Some(pcl) = proto.as_any_mut().downcast_mut::<Pcl>() {
            pcl.finalize_stats();
            pcl.stats.clone()
        } else if let Some(mlog) = proto.as_any_mut().downcast_mut::<Mlog>() {
            mlog.stats.clone()
        } else {
            FtStats::default()
        }
    };
    Ok((
        JobResult {
            completion,
            ft: ft_stats,
            rt: rt_stats,
            events: report.events_executed,
            leftover_unexpected,
            leftover_posted,
        },
        report.trace,
        ScheduleLog {
            decisions: report.decisions,
            steps: report.steps,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::WaveTiming;

    fn sample() -> JobResult {
        JobResult {
            completion: SimDuration::from_nanos(123_456_789_012),
            ft: FtStats {
                waves_started: 7,
                waves_committed: 6,
                wave_timings: vec![
                    WaveTiming {
                        wave: 1,
                        started_at: SimTime::from_nanos(10),
                        committed_at: SimTime::from_nanos(999),
                    },
                    WaveTiming {
                        wave: 2,
                        started_at: SimTime::from_nanos(2_000),
                        committed_at: SimTime::from_nanos(3_500),
                    },
                ],
                image_bytes_sent: 1 << 40,
                log_bytes_sent: 42,
                msgs_logged: 9,
                sends_delayed: 3,
                arrivals_delayed: 1,
                restarts: 2,
                waves_aborted: 1,
                rollback_depth_max: 1,
                lost_work: SimDuration::from_nanos(7_654_321),
                images_refetched: 2,
                orphan_images_end: 0,
                images_rerouted: 1,
                partitions_suppressed: 3,
                partitions_expired: 1,
                retries_exhausted: 4,
                replica_depth_max: 2,
                images_corrupt_detected: 5,
                images_repaired: 3,
                servers_quarantined: 1,
            },
            rt: RuntimeStats {
                msgs_sent: 1000,
                bytes_sent: u64::MAX,
                msgs_delivered: 998,
                finished_ranks: 64,
                completion_time: Some(SimTime::from_nanos(123_456_789_012)),
                restarts: 2,
                link_retries: 17,
            },
            events: 555_555,
            leftover_unexpected: 0,
            leftover_posted: 0,
        }
    }

    #[test]
    fn encode_decode_roundtrips_bit_for_bit() {
        let r = sample();
        let decoded = JobResult::decode(&r.encode()).expect("decode");
        // Integer-only fields: equality here is bit-for-bit identity.
        assert_eq!(decoded.completion, r.completion);
        assert_eq!(decoded.ft, r.ft);
        assert_eq!(decoded.rt.msgs_sent, r.rt.msgs_sent);
        assert_eq!(decoded.rt.bytes_sent, r.rt.bytes_sent);
        assert_eq!(decoded.rt.msgs_delivered, r.rt.msgs_delivered);
        assert_eq!(decoded.rt.finished_ranks, r.rt.finished_ranks);
        assert_eq!(decoded.rt.completion_time, r.rt.completion_time);
        assert_eq!(decoded.rt.restarts, r.rt.restarts);
        assert_eq!(decoded.rt.link_retries, r.rt.link_retries);
        assert_eq!(decoded.events, r.events);
        assert_eq!(decoded.leftover_unexpected, r.leftover_unexpected);
        assert_eq!(decoded.leftover_posted, r.leftover_posted);
        // And the encoding itself is stable.
        assert_eq!(decoded.encode(), r.encode());
    }

    #[test]
    fn decode_roundtrips_empty_timings_and_running_job() {
        let mut r = sample();
        r.ft.wave_timings.clear();
        r.rt.completion_time = None;
        let decoded = JobResult::decode(&r.encode()).expect("decode");
        assert!(decoded.ft.wave_timings.is_empty());
        assert_eq!(decoded.rt.completion_time, None);
    }

    #[test]
    fn decode_rejects_malformed_input() {
        let good = sample().encode();
        // Truncation (drop the last line).
        let truncated = good.lines().take(10).collect::<Vec<_>>().join("\n");
        assert!(JobResult::decode(&truncated).is_none());
        // Garbled value.
        assert!(JobResult::decode(&good.replace("events=", "events=x")).is_none());
        // Unknown key.
        assert!(JobResult::decode(&format!("{good}bogus=1\n")).is_none());
        // Duplicate key.
        assert!(JobResult::decode(&format!("{good}events=1\n")).is_none());
        // Missing separator.
        assert!(JobResult::decode(&good.replace("ft.restarts=", "ft.restarts ")).is_none());
        assert!(JobResult::decode("").is_none());
    }
}
