//! Job assembly and execution: platform + deployment + protocol + workload
//! in one call, returning the metrics every experiment consumes.

use std::sync::Arc;

use ftmpi_mpi::{
    spawn_rank, AppFn, DummyProtocol, Placement, Protocol, RuntimeConfig, RuntimeCore,
    RuntimeStats, World, WorldRef,
};
use ftmpi_net::{LinkConfig, NetModel, SoftwareStack};
use ftmpi_sim::{Sim, SimDuration, SimTime};

use crate::config::FtConfig;
use crate::deploy::Deployment;
use crate::failure::FailurePlan;
use crate::mlog::Mlog;
use crate::pcl::Pcl;
use crate::recovery::{fail_and_restart, mlog_fail_and_restart};
use crate::stats::FtStats;
use crate::vcl::Vcl;

/// Which fault-tolerance implementation runs the job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProtocolChoice {
    /// No fault tolerance (Vdummy / plain MPICH2 runs).
    Dummy,
    /// Non-blocking coordinated checkpointing (MPICH-Vcl).
    Vcl,
    /// Blocking coordinated checkpointing (MPICH2-Pcl).
    Pcl,
    /// Uncoordinated checkpointing + pessimistic receiver-based message
    /// logging (the §2 alternative; single-rank recovery).
    Mlog,
}

/// Which platform hosts the job.
#[derive(Debug, Clone)]
pub enum Platform {
    /// A single cluster with the given intra-cluster link.
    Cluster(LinkConfig),
    /// The six-cluster Grid5000 subset of §5.4.
    Grid,
}

/// Everything needed to run one experiment configuration.
pub struct JobSpec {
    /// Number of MPI ranks.
    pub nranks: usize,
    /// Protocol under test.
    pub protocol: ProtocolChoice,
    /// Software stack carrying messages. `None` picks the protocol's
    /// natural stack: the Vcl daemon stack for Vcl, TCP sockets otherwise.
    pub stack: Option<SoftwareStack>,
    /// Checkpointing parameters.
    pub ft: FtConfig,
    /// Platform.
    pub platform: Platform,
    /// Checkpoint servers (total for clusters, per cluster for the grid).
    pub servers: usize,
    /// Ranks above this use two-per-node placement (clusters; paper: 144).
    pub single_threshold: usize,
    /// The application every rank runs.
    pub app: AppFn,
    /// Failure schedule.
    pub failures: FailurePlan,
    /// Abort the run at this virtual time (guard against protocol bugs).
    pub max_virtual_time: Option<SimTime>,
    /// Override the deployment's rank→node placement (platform
    /// characterization tools that pin ranks to specific nodes).
    pub placement_override: Option<Vec<ftmpi_net::NodeId>>,
    /// Proactive checkpoint triggers: a wave is initiated at each time
    /// (failure-prediction hooks from the paper's conclusion). No-ops for
    /// the Dummy protocol or while a wave is already in flight.
    pub wave_triggers: Vec<SimTime>,
}

impl JobSpec {
    /// A spec with paper-style defaults on a GigE cluster.
    pub fn new(nranks: usize, protocol: ProtocolChoice, app: AppFn) -> JobSpec {
        JobSpec {
            nranks,
            protocol,
            stack: None,
            ft: FtConfig::default(),
            platform: Platform::Cluster(LinkConfig::gige()),
            servers: 1,
            single_threshold: 144,
            app,
            failures: FailurePlan::none(),
            max_virtual_time: None,
            placement_override: None,
            wave_triggers: Vec::new(),
        }
    }
}

/// Metrics of a completed job.
#[derive(Debug, Clone)]
pub struct JobResult {
    /// Job completion time (first spawn to last finalize).
    pub completion: SimDuration,
    /// Fault-tolerance statistics (all-zero for the Dummy protocol).
    pub ft: FtStats,
    /// Runtime statistics.
    pub rt: RuntimeStats,
    /// Kernel events executed (simulation cost indicator).
    pub events: u64,
    /// Messages delivered but never consumed (must be 0 for well-formed
    /// applications; nonzero after a restart indicates a broken cut).
    pub leftover_unexpected: usize,
    /// Receives posted but never matched (0 for well-formed applications).
    pub leftover_posted: usize,
}

impl JobResult {
    /// Committed checkpoint waves.
    pub fn waves(&self) -> u64 {
        self.ft.waves_committed
    }

    /// Completion time in seconds.
    pub fn completion_secs(&self) -> f64 {
        self.completion.as_secs_f64()
    }
}

/// Why a job could not run or finish.
#[derive(Debug)]
pub enum JobError {
    /// The Vcl implementation does not scale past its `select()` limit
    /// (the paper could not run Vcl beyond ~300 processes).
    VclProcessLimit {
        /// Requested job size.
        requested: usize,
        /// Implementation limit.
        limit: usize,
    },
    /// The simulation failed (deadlock or panic — a protocol/model bug).
    Sim(String),
    /// The run ended without every rank finishing (hit the time guard).
    /// Carries a per-rank status dump for diagnosis.
    Incomplete {
        /// One line per rank: status, ops completed, blocked flag.
        ranks: Vec<String>,
    },
}

impl std::fmt::Display for JobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JobError::VclProcessLimit { requested, limit } => write!(
                f,
                "Vcl cannot run {requested} processes: select() multiplexing \
                 caps it at {limit} (see §5.4)"
            ),
            JobError::Sim(e) => write!(f, "simulation error: {e}"),
            JobError::Incomplete { ranks } => {
                write!(f, "job did not complete; ranks: {}", ranks.join("; "))
            }
        }
    }
}

impl std::error::Error for JobError {}

/// Build the deployment for a spec.
pub fn build_deployment(spec: &JobSpec) -> Deployment {
    match &spec.platform {
        Platform::Cluster(link) => Deployment::cluster(
            spec.nranks,
            spec.servers.max(1),
            link.clone(),
            spec.single_threshold,
        ),
        Platform::Grid => Deployment::grid(spec.nranks, spec.servers.max(1)),
    }
}

/// Observation and perturbation knobs for a run (see [`run_job_with`]).
#[derive(Debug, Clone, Default)]
pub struct RunOptions {
    /// Record the structured protocol trace (checker input). Off by
    /// default: tracing is behind a lock-free gate and costs nothing when
    /// disabled.
    pub trace: bool,
    /// Perturb same-time event tiebreaks with this seed (race detection).
    /// `None` keeps the canonical deterministic schedule.
    pub tiebreak_seed: Option<u64>,
}

/// Run one job to completion and collect its metrics.
pub fn run_job(spec: JobSpec) -> Result<JobResult, JobError> {
    run_job_with(spec, RunOptions::default()).map(|(res, _)| res)
}

/// Like [`run_job`] but with observation options, also returning the
/// recorded trace (empty unless `opts.trace` is set).
pub fn run_job_with(
    spec: JobSpec,
    opts: RunOptions,
) -> Result<(JobResult, Vec<ftmpi_sim::TraceEvent>), JobError> {
    if spec.protocol == ProtocolChoice::Vcl && spec.nranks > spec.ft.vcl_process_limit {
        return Err(JobError::VclProcessLimit {
            requested: spec.nranks,
            limit: spec.ft.vcl_process_limit,
        });
    }
    let dep = build_deployment(&spec);
    let stack = spec.stack.unwrap_or(match spec.protocol {
        // Both MPICH-V protocol families ride the daemon architecture.
        ProtocolChoice::Vcl | ProtocolChoice::Mlog => SoftwareStack::VclDaemon,
        _ => SoftwareStack::TcpSock,
    });
    let placement: Placement = match &spec.placement_override {
        Some(nodes) => Placement::explicit(nodes.clone()),
        None => dep.placement.clone(),
    };
    let rt = RuntimeCore::new(
        NetModel::new(dep.topo.clone()),
        placement,
        RuntimeConfig::for_stack(stack),
    );
    let proto: Box<dyn Protocol> = match spec.protocol {
        ProtocolChoice::Dummy => Box::new(DummyProtocol),
        ProtocolChoice::Vcl => Box::new(Vcl::new(spec.ft.clone(), &dep)),
        ProtocolChoice::Pcl => Box::new(Pcl::new(spec.ft.clone(), &dep)),
        ProtocolChoice::Mlog => Box::new(Mlog::new(spec.ft.clone(), &dep)),
    };
    let world: WorldRef = World::new_ref(rt, proto);

    let mut sim = Sim::new();
    if let Some(t) = spec.max_virtual_time {
        sim.set_max_time(t);
    }
    if opts.trace {
        sim.enable_trace();
    }
    if let Some(seed) = opts.tiebreak_seed {
        sim.set_tiebreak_seed(seed);
    }

    let w2 = Arc::clone(&world);
    let app = Arc::clone(&spec.app);
    let nranks = spec.nranks;
    let protocol = spec.protocol;
    sim.schedule(SimTime::ZERO, move |sc| {
        for r in 0..nranks {
            spawn_rank(sc, &w2, r, Arc::clone(&app));
        }
        match protocol {
            ProtocolChoice::Dummy => {}
            ProtocolChoice::Vcl => Vcl::start(&w2, sc),
            ProtocolChoice::Pcl => Pcl::start(&w2, sc),
            ProtocolChoice::Mlog => Mlog::start(&w2, sc),
        }
    });

    for &at in &spec.wave_triggers {
        let w2 = Arc::clone(&world);
        sim.schedule(at, move |sc| match protocol {
            ProtocolChoice::Dummy | ProtocolChoice::Mlog => {}
            ProtocolChoice::Vcl => Vcl::trigger_wave_now(&w2, sc),
            ProtocolChoice::Pcl => Pcl::trigger_wave_now(&w2, sc),
        });
    }

    for (at, victim) in spec.failures.kills.clone() {
        let w2 = Arc::clone(&world);
        let app = Arc::clone(&spec.app);
        let ft = spec.ft.clone();
        sim.schedule(at, move |sc| {
            if protocol == ProtocolChoice::Mlog {
                mlog_fail_and_restart(sc, &w2, &app, victim, &ft);
            } else {
                fail_and_restart(sc, &w2, &app, protocol, victim, &ft);
            }
        });
    }

    let report = sim.run().map_err(|e| JobError::Sim(e.to_string()))?;

    let w = world.lock();
    let completion = match w.rt.stats.completion_time {
        Some(t) => t.saturating_since(SimTime::ZERO),
        None => {
            let ranks =
                w.rt.ranks
                    .iter()
                    .enumerate()
                    .map(|(r, rs)| format!("r{r}: {}", rs.debug_summary()))
                    .collect();
            return Err(JobError::Incomplete { ranks });
        }
    };
    let rt_stats = w.rt.stats.clone();
    let (leftover_unexpected, leftover_posted) = w.rt.leftover_messages();
    drop(w);
    // Pull protocol stats (needs the mutable downcast hook).
    let ft_stats = {
        let mut w = world.lock();
        let World { proto, .. } = &mut *w;
        if let Some(vcl) = proto.as_any_mut().downcast_mut::<Vcl>() {
            vcl.stats.clone()
        } else if let Some(pcl) = proto.as_any_mut().downcast_mut::<Pcl>() {
            pcl.stats.clone()
        } else if let Some(mlog) = proto.as_any_mut().downcast_mut::<Mlog>() {
            mlog.stats.clone()
        } else {
            FtStats::default()
        }
    };
    Ok((
        JobResult {
            completion,
            ft: ft_stats,
            rt: rt_stats,
            events: report.events_executed,
            leftover_unexpected,
            leftover_posted,
        },
        report.trace,
    ))
}
