//! Deployment construction: compute nodes, checkpoint servers and the
//! service node (dispatcher / mpiexec / checkpoint scheduler) for the three
//! platforms of the paper.

use ftmpi_mpi::{Placement, Rank};
use ftmpi_net::{ClusterId, LinkConfig, NodeId, Topology};

/// A resolved deployment: platform topology plus role assignment.
#[derive(Debug, Clone)]
pub struct Deployment {
    /// The platform.
    pub topo: Topology,
    /// Rank → compute node.
    pub placement: Placement,
    /// Checkpoint-server nodes (dedicated machines).
    pub server_nodes: Vec<NodeId>,
    /// Rank → index into `server_nodes`.
    pub server_of_rank: Vec<usize>,
    /// Node hosting the dispatcher / mpiexec / checkpoint scheduler.
    pub service_node: NodeId,
}

impl Deployment {
    /// Single-cluster deployment in the paper's style: one rank per node up
    /// to `single_threshold` ranks, two ranks per dual-processor node
    /// beyond; `servers` dedicated checkpoint-server nodes; compute nodes
    /// spread round-robin over the servers.
    pub fn cluster(
        nranks: usize,
        servers: usize,
        link: LinkConfig,
        single_threshold: usize,
    ) -> Deployment {
        assert!(nranks > 0 && servers > 0);
        let compute_nodes = if nranks <= single_threshold {
            nranks
        } else {
            nranks.div_ceil(2)
        };
        let total = compute_nodes + servers + 1;
        let topo = Topology::single_cluster(total, link);
        let placement = if nranks <= single_threshold {
            Placement::one_per_node(&topo, nranks)
        } else {
            Placement::two_per_node(&topo, nranks)
        };
        let server_nodes: Vec<NodeId> = (compute_nodes..compute_nodes + servers)
            .map(NodeId)
            .collect();
        // "The computing nodes were distributed equally among the
        //  checkpoint servers."
        let server_of_rank = (0..nranks).map(|r| r % servers).collect();
        Deployment {
            topo,
            placement,
            server_nodes,
            server_of_rank,
            service_node: NodeId(total - 1),
        }
    }

    /// Grid deployment over the six-cluster Grid5000 subset: in each
    /// cluster the last `servers_per_cluster` nodes are checkpoint servers
    /// ("each node used a local machine as its checkpoint server"); ranks
    /// fill the remaining nodes cluster by cluster, one rank per node.
    pub fn grid(nranks: usize, servers_per_cluster: usize) -> Deployment {
        assert!(nranks > 0 && servers_per_cluster > 0);
        let topo = Topology::grid5000();
        let mut compute: Vec<NodeId> = Vec::new();
        let mut servers: Vec<NodeId> = Vec::new();
        let mut server_cluster: Vec<ClusterId> = Vec::new();
        for ci in 0..topo.cluster_count() {
            let nodes: Vec<NodeId> = topo.nodes_of(ClusterId(ci)).collect();
            assert!(
                nodes.len() > servers_per_cluster,
                "cluster {ci} too small for {servers_per_cluster} servers"
            );
            let (comp, srv) = nodes.split_at(nodes.len() - servers_per_cluster);
            compute.extend_from_slice(comp);
            servers.extend_from_slice(srv);
            server_cluster.extend(std::iter::repeat_n(ClusterId(ci), servers_per_cluster));
        }
        assert!(
            nranks < compute.len(),
            "grid holds at most {} ranks (one node reserved for services)",
            compute.len() - 1
        );
        // The service node is the last free compute-class node.
        let service_node = *compute.last().expect("grid clusters provide compute nodes");
        let placement = Placement::explicit(compute[..nranks].to_vec());
        // Every rank uses a server in its own cluster, round-robin.
        let mut per_cluster_counter = vec![0usize; topo.cluster_count()];
        let server_of_rank: Vec<usize> = (0..nranks)
            .map(|r: Rank| {
                let c = topo.cluster_of(placement.node_of(r));
                let local: Vec<usize> = (0..servers.len())
                    .filter(|&s| server_cluster[s] == c)
                    .collect();
                let k = per_cluster_counter[c.0];
                per_cluster_counter[c.0] += 1;
                local[k % local.len()]
            })
            .collect();
        Deployment {
            topo,
            placement,
            server_nodes: servers,
            server_of_rank,
            service_node,
        }
    }

    /// Number of ranks deployed.
    pub fn nranks(&self) -> usize {
        self.placement.ranks()
    }

    /// The checkpoint-server node of a rank.
    pub fn server_node_of(&self, rank: Rank) -> NodeId {
        self.server_nodes[self.server_of_rank[rank]]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cluster_deployment_roles_are_disjoint() {
        let d = Deployment::cluster(64, 8, LinkConfig::gige(), 144);
        assert_eq!(d.nranks(), 64);
        assert_eq!(d.server_nodes.len(), 8);
        // Ranks on nodes 0..63, servers 64..71, service 72.
        assert_eq!(d.placement.node_of(63), NodeId(63));
        assert_eq!(d.server_nodes[0], NodeId(64));
        assert_eq!(d.service_node, NodeId(72));
        // Round-robin server mapping.
        assert_eq!(d.server_of_rank[0], 0);
        assert_eq!(d.server_of_rank[9], 1);
    }

    #[test]
    fn cluster_switches_to_dual_placement_above_threshold() {
        let d = Deployment::cluster(169, 9, LinkConfig::gige(), 144);
        // 169 ranks on 85 dual nodes.
        assert_eq!(d.placement.node_of(168), NodeId(84));
        assert_eq!(d.placement.colocated(0), vec![0, 1]);
    }

    #[test]
    fn grid_deployment_uses_local_servers() {
        let d = Deployment::grid(400, 1);
        assert_eq!(d.nranks(), 400);
        assert_eq!(d.server_nodes.len(), 6);
        for r in [0usize, 50, 150, 399] {
            let rank_cluster = d.topo.cluster_of(d.placement.node_of(r));
            let server_cluster = d.topo.cluster_of(d.server_node_of(r));
            assert_eq!(rank_cluster, server_cluster, "rank {r} server not local");
        }
    }

    #[test]
    fn grid_holds_529_ranks() {
        let d = Deployment::grid(529, 1);
        assert_eq!(d.nranks(), 529);
        // Ranks span multiple clusters.
        let c_first = d.topo.cluster_of(d.placement.node_of(0));
        let c_last = d.topo.cluster_of(d.placement.node_of(528));
        assert_ne!(c_first, c_last);
    }

    #[test]
    #[should_panic(expected = "grid holds")]
    fn grid_overflow_rejected() {
        Deployment::grid(540, 1);
    }
}
