//! Checkpoint-server bookkeeping.
//!
//! The data-plane cost of a checkpoint server is its node's NIC and the
//! flows streaming into it (see [`crate::flow`]); this module keeps the
//! control-plane state: which server stores which rank's image of which
//! wave, and the commit status of waves — the distributed database the
//! paper's FTPM maintains ("to locate which checkpoint server holds which
//! local checkpoint").

use std::collections::HashMap;

use ftmpi_mpi::Rank;
use ftmpi_net::NodeId;
use ftmpi_sim::SimTime;

/// One stored image record.
#[derive(Debug, Clone, Copy)]
pub struct StoredImage {
    /// Server node holding the image.
    pub server: NodeId,
    /// Image size.
    pub bytes: u64,
    /// Time the last byte arrived at the server.
    pub stored_at: SimTime,
}

/// Control-plane state of the checkpoint-server fleet.
#[derive(Debug, Default)]
pub struct CheckpointStore {
    /// (wave, rank) → stored image.
    images: HashMap<(u64, Rank), StoredImage>,
    /// Last committed wave number, if any.
    committed: Option<u64>,
}

impl CheckpointStore {
    /// Record a fully-received image.
    pub fn record_image(&mut self, wave: u64, rank: Rank, img: StoredImage) {
        self.images.insert((wave, rank), img);
    }

    /// Is the image of (wave, rank) fully stored?
    pub fn has_image(&self, wave: u64, rank: Rank) -> bool {
        self.images.contains_key(&(wave, rank))
    }

    /// Which server holds rank `rank`'s image of `wave`?
    pub fn locate(&self, wave: u64, rank: Rank) -> Option<StoredImage> {
        self.images.get(&(wave, rank)).copied()
    }

    /// Mark `wave` committed and garbage-collect superseded waves —
    /// "simple garbage collection reduces the size needed to store the
    /// checkpoints".
    pub fn commit(&mut self, wave: u64) {
        self.committed = Some(wave);
        self.images.retain(|(w, _), _| *w >= wave);
    }

    /// Last committed wave.
    pub fn committed_wave(&self) -> Option<u64> {
        self.committed
    }

    /// Bytes currently held across all servers.
    pub fn stored_bytes(&self) -> u64 {
        self.images.values().map(|i| i.bytes).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn img(bytes: u64) -> StoredImage {
        StoredImage {
            server: NodeId(0),
            bytes,
            stored_at: SimTime::ZERO,
        }
    }

    #[test]
    fn commit_garbage_collects_old_waves() {
        let mut store = CheckpointStore::default();
        for r in 0..4 {
            store.record_image(1, r, img(100));
        }
        for r in 0..4 {
            store.record_image(2, r, img(100));
        }
        assert_eq!(store.stored_bytes(), 800);
        store.commit(2);
        assert_eq!(store.committed_wave(), Some(2));
        assert_eq!(store.stored_bytes(), 400);
        assert!(!store.has_image(1, 0));
        assert!(store.has_image(2, 3));
    }

    #[test]
    fn locate_finds_the_server() {
        let mut store = CheckpointStore::default();
        store.record_image(
            3,
            7,
            StoredImage {
                server: NodeId(42),
                bytes: 5,
                stored_at: SimTime::from_nanos(9),
            },
        );
        let found = store.locate(3, 7).expect("image recorded above");
        assert_eq!(found.server, NodeId(42));
        assert!(store.locate(3, 8).is_none());
    }
}
