//! Checkpoint-server bookkeeping.
//!
//! The data-plane cost of a checkpoint server is its node's NIC and the
//! flows streaming into it (see [`crate::flow`]; note that a stream's
//! chunk events are batched through contention-free windows, so the
//! [`StoredImage::stored_at`] instants recorded here are *completion times
//! of reservations*, byte-identical whether the kernel delivered one event
//! per chunk or one per contention change); this module keeps the
//! control-plane state: which server stores which rank's image of which
//! wave, the commit status of waves, and which server nodes have failed —
//! the distributed database the paper's FTPM maintains ("to locate which
//! checkpoint server holds which local checkpoint").
//!
//! Beyond the paper's always-available single copy, the store supports
//! per-image replica lists (`replicas > 1` streams each image to two
//! servers), a retention window of several committed waves (fallback
//! targets when a server failure loses the newest wave), explicit abort of
//! a partial wave (mid-wave kill garbage collection), and server-failure
//! processing that drops every replica the dead node held.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use ftmpi_mpi::Rank;
use ftmpi_net::NodeId;
use ftmpi_sim::SimTime;

/// XOR mask applied to a stored replica's digest by an injected bit-flip.
/// The simulation stores no payload bytes, so "some stored bits flipped"
/// is modelled as the stored digest no longer matching the digest
/// recomputed from the authoritative wave record. Flipping twice restores
/// the original — matching real media, where a second upset on the same
/// bits is (astronomically unlikely but) self-cancelling.
pub const CORRUPT_FLIP: u64 = 0x5a5a_5a5a_5a5a_5a5a;

/// XOR mask a torn (truncated) write stamps on the digest it records: the
/// server received only a prefix of the stream, so what it stores can
/// never hash to the full image's digest.
pub const TORN_WRITE: u64 = 0xdead_beef_0bad_f00d;

/// One stored image replica.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoredImage {
    /// Server node holding the image.
    pub server: NodeId,
    /// Image size.
    pub bytes: u64,
    /// Time the last byte arrived at the server.
    pub stored_at: SimTime,
    /// Content digest of the bytes actually on the server's disk. Stamped
    /// from [`crate::RankImage::digest`] when the write completes; a
    /// bit-flip or torn write leaves it disagreeing with the digest the
    /// wave record implies, which is how verify-on-fetch detects damage.
    pub digest: u64,
}

/// Typed failure of a checkpoint-store lookup or fetch. Never a panic:
/// restore and scrub paths route these into replica walks, retained-wave
/// fallbacks, or fatal (but clean) job errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoreError {
    /// A replica's stored digest disagrees with the digest the committed
    /// wave record implies — the stored bytes are damaged.
    CorruptImage {
        /// Wave whose image was fetched.
        wave: u64,
        /// Rank whose image was fetched.
        rank: Rank,
        /// Server node holding the damaged replica.
        server: NodeId,
    },
    /// No live server holds any replica of the requested image.
    NoReplica {
        /// Wave whose image was requested.
        wave: u64,
        /// Rank whose image was requested.
        rank: Rank,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::CorruptImage { wave, rank, server } => write!(
                f,
                "image of wave {wave} rank {rank} on server node {} fails digest verification",
                server.0
            ),
            StoreError::NoReplica { wave, rank } => {
                write!(
                    f,
                    "no replica of wave {wave} rank {rank} on any live server"
                )
            }
        }
    }
}

impl std::error::Error for StoreError {}

/// Control-plane state of the checkpoint-server fleet.
#[derive(Debug, Default)]
pub struct CheckpointStore {
    /// (wave, rank) → live replicas of that rank's image. Ordered map so
    /// iteration (garbage-collection audits, orphan counts) is
    /// deterministic.
    images: BTreeMap<(u64, Rank), Vec<StoredImage>>,
    /// Committed waves still retained, ascending. The last entry is the
    /// restore default; earlier entries are fallback targets after a
    /// server failure.
    committed: Vec<u64>,
    /// Failed server nodes; replicas they held are gone and new writes to
    /// them are dropped.
    failed: BTreeSet<NodeId>,
    /// Quarantined server nodes: they exceeded the corruption threshold,
    /// so they receive no new placements (writes are dropped like a dead
    /// server's), but replicas already on them stay fetch candidates —
    /// every fetch verifies, so a still-good copy on a suspect disk is
    /// better than no copy.
    quarantined: BTreeSet<NodeId>,
    /// Per-server count of digest-verification failures detected so far,
    /// feeding the quarantine threshold.
    corrupt_seen: BTreeMap<NodeId, u64>,
    /// How many committed waves to retain (0 behaves as 1 — the paper's
    /// immediate garbage collection).
    retain: usize,
}

impl CheckpointStore {
    /// Set the committed-wave retention window (see `FtConfig::retained_waves`).
    pub fn set_retention(&mut self, retain: usize) {
        self.retain = retain;
    }

    /// Record a fully-received image replica. Writes to a failed or
    /// quarantined server are dropped (the flow raced the failure or the
    /// quarantine decision); a duplicate replica on the same server
    /// replaces the old record. Returns whether the replica was recorded.
    pub fn record_image(&mut self, wave: u64, rank: Rank, img: StoredImage) -> bool {
        if self.failed.contains(&img.server) || self.quarantined.contains(&img.server) {
            return false;
        }
        let replicas = self.images.entry((wave, rank)).or_default();
        if let Some(existing) = replicas.iter_mut().find(|r| r.server == img.server) {
            *existing = img;
        } else {
            replicas.push(img);
        }
        true
    }

    /// Is at least one replica of (wave, rank) fully stored on a live
    /// server?
    pub fn has_image(&self, wave: u64, rank: Rank) -> bool {
        self.images
            .get(&(wave, rank))
            .is_some_and(|r| !r.is_empty())
    }

    /// Which server holds rank `rank`'s image of `wave`? With several live
    /// replicas, deterministically picks the lowest server node id.
    pub fn locate(&self, wave: u64, rank: Rank) -> Option<StoredImage> {
        self.images
            .get(&(wave, rank))?
            .iter()
            .min_by_key(|r| r.server)
            .copied()
    }

    /// Every live server node holding rank `rank`'s image of `wave`,
    /// ascending by node id — the fetch-candidate walk of a
    /// partition-tolerant restore. The first entry equals
    /// [`locate`](CheckpointStore::locate)'s choice.
    pub fn locate_all(&self, wave: u64, rank: Rank) -> Vec<NodeId> {
        let mut nodes: Vec<NodeId> = self
            .images
            .get(&(wave, rank))
            .map(|r| r.iter().map(|i| i.server).collect())
            .unwrap_or_default();
        nodes.sort();
        nodes
    }

    /// Does this specific server node hold a fully-stored replica of
    /// (`wave`, `rank`)? Used to keep a rerouted push from duplicating a
    /// replica that already landed.
    pub fn server_holds(&self, wave: u64, rank: Rank, node: NodeId) -> bool {
        self.images
            .get(&(wave, rank))
            .is_some_and(|r| r.iter().any(|i| i.server == node))
    }

    /// Is at least one replica of (wave, rank) stored whose digest matches
    /// `expected`? The intact-aware twin of
    /// [`has_image`](CheckpointStore::has_image), used when choosing a
    /// restore wave so an all-copies-corrupt image forces the fallback to
    /// an older retained wave instead of a doomed fetch.
    pub fn has_intact_image(&self, wave: u64, rank: Rank, expected: u64) -> bool {
        self.images
            .get(&(wave, rank))
            .is_some_and(|r| r.iter().any(|i| i.digest == expected))
    }

    /// Lowest-node replica of (wave, rank) whose digest matches `expected`
    /// — [`locate`](CheckpointStore::locate) restricted to undamaged
    /// copies.
    pub fn locate_intact(&self, wave: u64, rank: Rank, expected: u64) -> Option<StoredImage> {
        self.images
            .get(&(wave, rank))?
            .iter()
            .filter(|r| r.digest == expected)
            .min_by_key(|r| r.server)
            .copied()
    }

    /// Fetch (wave, rank) from a specific server node, verifying the
    /// stored digest against `expected`. This is the verify-on-fetch
    /// primitive every restore transfer, replica-ladder probe, and scrub
    /// visit goes through: a missing replica and a damaged replica are
    /// *typed* outcomes the caller walks past, never panics.
    pub fn verify_replica(
        &self,
        wave: u64,
        rank: Rank,
        node: NodeId,
        expected: u64,
    ) -> Result<StoredImage, StoreError> {
        let replica = self
            .images
            .get(&(wave, rank))
            .and_then(|r| r.iter().find(|i| i.server == node))
            .ok_or(StoreError::NoReplica { wave, rank })?;
        if replica.digest != expected {
            return Err(StoreError::CorruptImage {
                wave,
                rank,
                server: node,
            });
        }
        Ok(*replica)
    }

    /// Flip the stored digest of the (wave, rank) replica on `node` — an
    /// injected bit-flip on that server's disk. Returns whether a replica
    /// was there to damage. Flipping the same replica twice restores it
    /// (XOR), which the failure planner never does.
    pub fn corrupt_replica(&mut self, wave: u64, rank: Rank, node: NodeId) -> bool {
        if let Some(replica) = self
            .images
            .get_mut(&(wave, rank))
            .and_then(|r| r.iter_mut().find(|i| i.server == node))
        {
            replica.digest ^= CORRUPT_FLIP;
            return true;
        }
        false
    }

    /// Flip the replica of `rank`'s image on `node` belonging to the
    /// *newest* wave stored there — how a seeded silent-corruption event
    /// lands on whatever the disk currently holds. Returns the damaged
    /// wave, or `None` when the server holds nothing for that rank.
    pub fn corrupt_newest(&mut self, rank: Rank, node: NodeId) -> Option<u64> {
        let wave = self
            .images
            .iter()
            .filter(|((_, r), replicas)| *r == rank && replicas.iter().any(|i| i.server == node))
            .map(|((w, _), _)| *w)
            .max()?;
        self.corrupt_replica(wave, rank, node);
        Some(wave)
    }

    /// Flip every replica currently stored on `node` — a whole-disk
    /// bit-rot event. Returns the damaged (wave, rank) slots in
    /// deterministic (map) order, for tracing.
    pub fn corrupt_server(&mut self, node: NodeId) -> Vec<(u64, Rank)> {
        let mut slots = Vec::new();
        for (&(wave, rank), replicas) in self.images.iter_mut() {
            for replica in replicas.iter_mut() {
                if replica.server == node {
                    replica.digest ^= CORRUPT_FLIP;
                    slots.push((wave, rank));
                }
            }
        }
        slots
    }

    /// Note a digest-verification failure attributed to `node`; returns
    /// the server's total detection count, which the caller compares
    /// against the quarantine threshold.
    pub fn note_corruption(&mut self, node: NodeId) -> u64 {
        let count = self.corrupt_seen.entry(node).or_insert(0);
        *count += 1;
        *count
    }

    /// Digest-verification failures attributed to `node` so far.
    pub fn corruption_seen(&self, node: NodeId) -> u64 {
        self.corrupt_seen.get(&node).copied().unwrap_or(0)
    }

    /// Quarantine a server: it stops receiving placements and reroutes
    /// (writes to it are dropped), mirroring dead-server processing, but
    /// replicas already on it remain verified fetch candidates. Returns
    /// false if the node was already quarantined.
    pub fn quarantine_server(&mut self, node: NodeId) -> bool {
        self.quarantined.insert(node)
    }

    /// Has this server node been quarantined?
    pub fn server_quarantined(&self, node: NodeId) -> bool {
        self.quarantined.contains(&node)
    }

    /// Is this node unusable as a placement target (failed or
    /// quarantined)? The single predicate placement and reroute paths
    /// consult.
    pub fn server_unplaceable(&self, node: NodeId) -> bool {
        self.failed.contains(&node) || self.quarantined.contains(&node)
    }

    /// Mark `wave` committed and garbage-collect superseded waves —
    /// "simple garbage collection reduces the size needed to store the
    /// checkpoints" — keeping the newest `retain` committed waves as
    /// fallback restore targets.
    pub fn commit(&mut self, wave: u64) {
        self.committed.push(wave);
        let retain = self.retain.max(1);
        while self.committed.len() > retain {
            self.committed.remove(0);
        }
        let keep = std::mem::take(&mut self.committed);
        self.images
            .retain(|(w, _), _| keep.contains(w) || *w > wave);
        self.committed = keep;
    }

    /// Garbage-collect the partial images of an aborted (uncommitted) wave.
    /// Returns how many replicas were dropped.
    pub fn abort(&mut self, wave: u64) -> u64 {
        let mut dropped = 0u64;
        self.images.retain(|(w, _), replicas| {
            if *w == wave {
                dropped += replicas.len() as u64;
                false
            } else {
                true
            }
        });
        dropped
    }

    /// A checkpoint-server node failed: every replica it held becomes
    /// unavailable and future writes to it are dropped. Returns how many
    /// replicas were lost.
    pub fn fail_server(&mut self, node: NodeId) -> u64 {
        self.failed.insert(node);
        let mut lost = 0u64;
        for replicas in self.images.values_mut() {
            let before = replicas.len();
            replicas.retain(|r| r.server != node);
            lost += (before - replicas.len()) as u64;
        }
        self.images.retain(|_, replicas| !replicas.is_empty());
        lost
    }

    /// Has this server node failed?
    pub fn server_failed(&self, node: NodeId) -> bool {
        self.failed.contains(&node)
    }

    /// Replicas belonging to waves that are neither retained-committed nor
    /// the in-flight wave `except`. Should be zero at any quiescent point —
    /// a non-zero count is a garbage-collection leak.
    pub fn orphan_images(&self, except: Option<u64>) -> u64 {
        self.images
            .iter()
            .filter(|((w, _), _)| !self.committed.contains(w) && Some(*w) != except)
            .map(|(_, replicas)| replicas.len() as u64)
            .sum()
    }

    /// Newest retained committed wave.
    pub fn committed_wave(&self) -> Option<u64> {
        self.committed.last().copied()
    }

    /// All retained committed waves, ascending.
    pub fn committed_waves(&self) -> &[u64] {
        &self.committed
    }

    /// Bytes currently held across all servers.
    pub fn stored_bytes(&self) -> u64 {
        self.images
            .values()
            .flat_map(|r| r.iter())
            .map(|i| i.bytes)
            .sum()
    }
}

/// Live replica targets for an image whose primary server is `primary`:
/// start at the primary's fleet position and walk the fleet circularly,
/// skipping failed and quarantined nodes, until `replicas` live targets
/// are collected (fewer when not enough servers survive). With
/// `replicas == 1` and no failures this is exactly the primary — the
/// paper's single-copy path.
pub(crate) fn replica_targets(
    fleet: &[NodeId],
    primary: NodeId,
    replicas: usize,
    store: &CheckpointStore,
) -> Vec<NodeId> {
    // A primary outside the fleet cannot happen via placement; degrade to
    // walking from the fleet head rather than erroring.
    let start = fleet.iter().position(|&n| n == primary).unwrap_or(0);
    let want = replicas.max(1);
    let mut targets = Vec::new();
    for i in 0..fleet.len() {
        let node = fleet[(start + i) % fleet.len()];
        if !store.server_unplaceable(node) {
            targets.push(node);
            if targets.len() == want {
                break;
            }
        }
    }
    targets
}

#[cfg(test)]
mod tests {
    use super::*;

    fn img(bytes: u64) -> StoredImage {
        img_on(NodeId(0), bytes)
    }

    fn img_on(server: NodeId, bytes: u64) -> StoredImage {
        StoredImage {
            server,
            bytes,
            stored_at: SimTime::ZERO,
            digest: 0,
        }
    }

    #[test]
    fn commit_garbage_collects_old_waves() {
        let mut store = CheckpointStore::default();
        for r in 0..4 {
            store.record_image(1, r, img(100));
        }
        for r in 0..4 {
            store.record_image(2, r, img(100));
        }
        assert_eq!(store.stored_bytes(), 800);
        store.commit(1);
        store.commit(2);
        assert_eq!(store.committed_wave(), Some(2));
        assert_eq!(store.stored_bytes(), 400);
        assert!(!store.has_image(1, 0));
        assert!(store.has_image(2, 3));
        assert_eq!(store.orphan_images(None), 0);
    }

    #[test]
    fn retention_keeps_fallback_waves() {
        let mut store = CheckpointStore::default();
        store.set_retention(2);
        for w in 1..=3u64 {
            for r in 0..2 {
                store.record_image(w, r, img(10));
            }
            store.commit(w);
        }
        // Waves 2 and 3 retained, wave 1 collected.
        assert_eq!(store.committed_waves(), &[2, 3]);
        assert!(!store.has_image(1, 0));
        assert!(store.has_image(2, 0) && store.has_image(3, 1));
        assert_eq!(store.stored_bytes(), 40);
    }

    #[test]
    fn abort_drops_partial_wave_only() {
        let mut store = CheckpointStore::default();
        store.record_image(1, 0, img(5));
        store.commit(1);
        store.record_image(2, 0, img(5));
        store.record_image(2, 1, img(5));
        assert_eq!(store.orphan_images(Some(2)), 0);
        assert_eq!(store.abort(2), 2);
        assert!(!store.has_image(2, 0));
        assert!(store.has_image(1, 0));
        assert_eq!(store.orphan_images(None), 0);
    }

    #[test]
    fn server_failure_loses_its_replicas() {
        let mut store = CheckpointStore::default();
        store.record_image(1, 0, img_on(NodeId(8), 7));
        store.record_image(1, 1, img_on(NodeId(9), 7));
        store.commit(1);
        assert_eq!(store.fail_server(NodeId(8)), 1);
        assert!(store.server_failed(NodeId(8)));
        assert!(!store.has_image(1, 0));
        assert!(store.has_image(1, 1));
        // Late writes to the dead server are dropped.
        store.record_image(1, 0, img_on(NodeId(8), 7));
        assert!(!store.has_image(1, 0));
    }

    #[test]
    fn replicas_survive_single_server_loss() {
        let mut store = CheckpointStore::default();
        store.record_image(1, 0, img_on(NodeId(8), 7));
        store.record_image(1, 0, img_on(NodeId(9), 7));
        assert_eq!(store.stored_bytes(), 14);
        store.fail_server(NodeId(8));
        assert!(store.has_image(1, 0));
        let found = store.locate(1, 0).expect("replica on node 9 survives");
        assert_eq!(found.server, NodeId(9));
        // Duplicate replica on the same server replaces, not accumulates.
        store.record_image(1, 0, img_on(NodeId(9), 9));
        assert_eq!(store.stored_bytes(), 9);
    }

    #[test]
    fn locate_finds_the_server() {
        let mut store = CheckpointStore::default();
        store.record_image(
            3,
            7,
            StoredImage {
                server: NodeId(42),
                bytes: 5,
                stored_at: SimTime::from_nanos(9),
                digest: 0,
            },
        );
        let found = store.locate(3, 7).expect("image recorded above");
        assert_eq!(found.server, NodeId(42));
        assert!(store.locate(3, 8).is_none());
    }

    #[test]
    fn locate_prefers_lowest_server_id() {
        let mut store = CheckpointStore::default();
        store.record_image(1, 0, img_on(NodeId(9), 1));
        store.record_image(1, 0, img_on(NodeId(8), 1));
        let found = store.locate(1, 0).expect("two replicas recorded");
        assert_eq!(found.server, NodeId(8));
    }

    #[test]
    fn locate_all_lists_live_replicas_ascending() {
        let mut store = CheckpointStore::default();
        assert!(store.locate_all(1, 0).is_empty());
        store.record_image(1, 0, img_on(NodeId(9), 1));
        store.record_image(1, 0, img_on(NodeId(8), 1));
        store.record_image(1, 0, img_on(NodeId(12), 1));
        assert_eq!(
            store.locate_all(1, 0),
            vec![NodeId(8), NodeId(9), NodeId(12)]
        );
        // First entry matches locate()'s deterministic choice.
        assert_eq!(
            store.locate(1, 0).expect("image recorded").server,
            NodeId(8)
        );
        assert!(store.server_holds(1, 0, NodeId(9)));
        assert!(!store.server_holds(1, 0, NodeId(10)));
        store.fail_server(NodeId(8));
        assert_eq!(store.locate_all(1, 0), vec![NodeId(9), NodeId(12)]);
        assert!(!store.server_holds(1, 0, NodeId(8)));
    }

    #[test]
    fn locate_all_walk_survives_holder_dying_mid_walk() {
        // A restore collects its candidate walk, the first holder dies
        // before the fetch lands, and the re-walk must skip it while
        // server_holds answers consistently at every step.
        let mut store = CheckpointStore::default();
        store.record_image(1, 0, img_on(NodeId(8), 1));
        store.record_image(1, 0, img_on(NodeId(9), 1));
        store.record_image(1, 0, img_on(NodeId(10), 1));
        let walk = store.locate_all(1, 0);
        assert_eq!(walk, vec![NodeId(8), NodeId(9), NodeId(10)]);
        store.fail_server(walk[0]);
        assert!(!store.server_holds(1, 0, NodeId(8)), "dead holder dropped");
        assert!(store.server_holds(1, 0, NodeId(9)), "later rungs intact");
        assert_eq!(store.locate_all(1, 0), vec![NodeId(9), NodeId(10)]);
        // Kill every rung: the walk is empty, not panicking.
        store.fail_server(NodeId(9));
        store.fail_server(NodeId(10));
        assert!(store.locate_all(1, 0).is_empty());
        assert!(store.locate(1, 0).is_none());
    }

    #[test]
    fn abort_while_located_empties_the_walk() {
        // A wave aborts while a fetch walk is in progress: the partial
        // images vanish, and both server_holds and locate_all must see an
        // empty store rather than stale replicas.
        let mut store = CheckpointStore::default();
        store.record_image(2, 0, img_on(NodeId(8), 1));
        store.record_image(2, 0, img_on(NodeId(9), 1));
        assert_eq!(store.locate_all(2, 0), vec![NodeId(8), NodeId(9)]);
        assert_eq!(store.abort(2), 2);
        assert!(store.locate_all(2, 0).is_empty());
        assert!(!store.server_holds(2, 0, NodeId(8)));
        assert!(!store.server_holds(2, 0, NodeId(9)));
    }

    #[test]
    fn quarantine_excludes_placement_but_keeps_fetch_candidates() {
        let fleet = [NodeId(10), NodeId(11), NodeId(12)];
        let mut store = CheckpointStore::default();
        store.record_image(1, 0, img_on(NodeId(11), 3));
        assert!(store.quarantine_server(NodeId(11)));
        assert!(!store.quarantine_server(NodeId(11)), "idempotent");
        assert!(store.server_quarantined(NodeId(11)));
        assert!(store.server_unplaceable(NodeId(11)));
        assert!(!store.server_failed(NodeId(11)), "quarantine is not death");
        // Placement walks past it.
        assert_eq!(
            replica_targets(&fleet, NodeId(11), 2, &store),
            vec![NodeId(12), NodeId(10)]
        );
        // New writes are dropped, but the existing replica stays a
        // (verified) fetch candidate.
        assert!(!store.record_image(2, 0, img_on(NodeId(11), 3)));
        assert!(!store.has_image(2, 0));
        assert_eq!(store.locate_all(1, 0), vec![NodeId(11)]);
        assert!(store.server_holds(1, 0, NodeId(11)));
    }

    #[test]
    fn verify_replica_types_every_outcome() {
        let mut store = CheckpointStore::default();
        let good = StoredImage {
            digest: 77,
            ..img_on(NodeId(8), 4)
        };
        store.record_image(1, 0, good);
        assert_eq!(
            store.verify_replica(1, 0, NodeId(8), 77).map(|i| i.server),
            Ok(NodeId(8))
        );
        assert_eq!(
            store.verify_replica(1, 0, NodeId(9), 77),
            Err(StoreError::NoReplica { wave: 1, rank: 0 })
        );
        assert!(store.corrupt_replica(1, 0, NodeId(8)));
        assert_eq!(
            store.verify_replica(1, 0, NodeId(8), 77),
            Err(StoreError::CorruptImage {
                wave: 1,
                rank: 0,
                server: NodeId(8),
            })
        );
        assert!(!store.corrupt_replica(1, 0, NodeId(9)), "nothing there");
    }

    #[test]
    fn intact_lookups_walk_past_corrupt_copies() {
        let mut store = CheckpointStore::default();
        store.record_image(
            1,
            0,
            StoredImage {
                digest: 5,
                ..img_on(NodeId(8), 1)
            },
        );
        store.record_image(
            1,
            0,
            StoredImage {
                digest: 5,
                ..img_on(NodeId(9), 1)
            },
        );
        store.corrupt_replica(1, 0, NodeId(8));
        assert!(store.has_intact_image(1, 0, 5));
        assert_eq!(
            store.locate_intact(1, 0, 5).map(|i| i.server),
            Some(NodeId(9)),
            "locate_intact skips the damaged lowest-id copy"
        );
        store.corrupt_replica(1, 0, NodeId(9));
        assert!(!store.has_intact_image(1, 0, 5));
        assert!(store.locate_intact(1, 0, 5).is_none());
        // has_image still sees the damaged copies: existence and
        // integrity are separate questions.
        assert!(store.has_image(1, 0));
    }

    #[test]
    fn corrupt_newest_and_whole_server_flips() {
        let mut store = CheckpointStore::default();
        store.record_image(
            1,
            0,
            StoredImage {
                digest: 1,
                ..img_on(NodeId(8), 1)
            },
        );
        store.record_image(
            2,
            0,
            StoredImage {
                digest: 2,
                ..img_on(NodeId(8), 1)
            },
        );
        store.record_image(
            2,
            1,
            StoredImage {
                digest: 3,
                ..img_on(NodeId(9), 1)
            },
        );
        // Newest wave on node 8 for rank 0 is wave 2.
        assert_eq!(store.corrupt_newest(0, NodeId(8)), Some(2));
        assert!(store.has_intact_image(1, 0, 1), "older wave untouched");
        assert!(!store.has_intact_image(2, 0, 2));
        assert_eq!(store.corrupt_newest(5, NodeId(8)), None, "no such rank");
        // Whole-server rot touches only node 9's slots here.
        assert_eq!(store.corrupt_server(NodeId(9)), vec![(2, 1)]);
        assert!(!store.has_intact_image(2, 1, 3));
    }

    #[test]
    fn corruption_detections_accumulate_per_server() {
        let mut store = CheckpointStore::default();
        assert_eq!(store.corruption_seen(NodeId(8)), 0);
        assert_eq!(store.note_corruption(NodeId(8)), 1);
        assert_eq!(store.note_corruption(NodeId(8)), 2);
        assert_eq!(store.note_corruption(NodeId(9)), 1);
        assert_eq!(store.corruption_seen(NodeId(8)), 2);
    }

    #[test]
    fn replica_targets_walk_the_fleet_past_failures() {
        let fleet = [NodeId(10), NodeId(11), NodeId(12)];
        let mut store = CheckpointStore::default();
        // Single copy, healthy fleet: the primary itself.
        assert_eq!(
            replica_targets(&fleet, NodeId(11), 1, &store),
            vec![NodeId(11)]
        );
        // Two replicas wrap around the fleet end.
        assert_eq!(
            replica_targets(&fleet, NodeId(12), 2, &store),
            vec![NodeId(12), NodeId(10)]
        );
        // A failed primary is skipped.
        store.fail_server(NodeId(11));
        assert_eq!(
            replica_targets(&fleet, NodeId(11), 2, &store),
            vec![NodeId(12), NodeId(10)]
        );
        // Not enough live servers: degrade to what survives.
        store.fail_server(NodeId(10));
        assert_eq!(
            replica_targets(&fleet, NodeId(11), 2, &store),
            vec![NodeId(12)]
        );
        store.fail_server(NodeId(12));
        assert!(replica_targets(&fleet, NodeId(11), 1, &store).is_empty());
    }
}
