//! Mlog: uncoordinated checkpointing with **pessimistic receiver-based
//! message logging** — the alternative family the paper positions itself
//! against (§2, and the MPICH-V line of work it builds on).
//!
//! Mechanics:
//!
//! * every application message is **logged to the rank's checkpoint server
//!   before it is delivered** (pessimistic: no process state may depend on
//!   an unlogged reception). The synchronous log round-trip is the
//!   protocol's failure-free overhead — the reason §2 notes that message
//!   logging "decreases the performance in reliable environments, such as
//!   clusters";
//! * every rank takes **independent periodic checkpoints** (no markers, no
//!   coordination, staggered start); committing an image prunes the log
//!   prefix it supersedes;
//! * on a failure **only the failed rank rolls back**: it restores its last
//!   image, replays its logged receptions in order, receives the messages
//!   buffered while it was down, and suppresses the duplicates of its
//!   re-executed sends at the receivers. No orphans can exist because no
//!   delivery precedes its log record.

use std::any::Any;

use ftmpi_mpi::{
    AppMsg, ArrivalAction, Protocol, Rank, RankStatus, RuntimeCore, SendAction, World, WorldRef,
};
use ftmpi_net::NodeId;
use ftmpi_sim::{SimCtx, SimTime};

use crate::config::FtConfig;
use crate::deploy::Deployment;
use crate::flow::{start_flow, FlowSpec};
use crate::image::RankImage;
use crate::server::{CheckpointStore, StoredImage};
use crate::stats::{FtStats, WaveTiming};

/// Per-rank logging / checkpoint state.
struct MlogRank {
    /// Receiver-based log: every delivered message since the last committed
    /// image, in delivery order.
    log: Vec<AppMsg>,
    /// Messages whose synchronous log write is still in flight (arrived but
    /// not yet stable). On a failure these are re-injected in arrival order
    /// so the channel never reorders across the restart.
    in_flight: Vec<AppMsg>,
    /// Last committed image, with the log position it supersedes.
    image: Option<RankImage>,
    /// Image version counter (stale flow completions are ignored).
    image_version: u64,
    /// An image capture+stream is in flight.
    ckpt_in_flight: bool,
    /// The captured-but-not-yet-landed image, keyed by its version. Kept
    /// per rank (at most one capture is in flight, the `ckpt_in_flight`
    /// guard) so a saturated checkpoint server — thousands of streams
    /// backed up at once — costs O(1) per completion, not a scan of the
    /// whole backlog.
    pending: Option<(u64, RankImage)>,
}

/// The uncoordinated message-logging engine.
pub struct Mlog {
    cfg: FtConfig,
    server_node_of: Vec<NodeId>,
    /// Protocol statistics (wave numbers count per-rank checkpoints).
    pub stats: FtStats,
    /// Server control-plane state.
    pub store: CheckpointStore,
    ranks: Vec<MlogRank>,
}

impl Mlog {
    /// Build the engine for a deployment.
    pub fn new(cfg: FtConfig, dep: &Deployment) -> Mlog {
        Mlog {
            cfg,
            server_node_of: (0..dep.nranks()).map(|r| dep.server_node_of(r)).collect(),
            stats: FtStats::default(),
            store: CheckpointStore::default(),
            ranks: (0..dep.nranks())
                .map(|_| MlogRank {
                    log: Vec::new(),
                    in_flight: Vec::new(),
                    image: None,
                    image_version: 0,
                    ckpt_in_flight: false,
                    pending: None,
                })
                .collect(),
        }
    }

    fn with<R>(w: &mut World, f: impl FnOnce(&mut Mlog, &mut RuntimeCore) -> R) -> R {
        let World { rt, proto } = w;
        let mlog = proto
            .as_any_mut()
            .downcast_mut::<Mlog>()
            .expect("world protocol is not Mlog");
        f(mlog, rt)
    }

    /// Enable the runtime semantics single-rank restart needs and arm the
    /// staggered per-rank checkpoint timers.
    pub fn start(world: &WorldRef, sc: &SimCtx) {
        let mut w = world.lock();
        w.rt.suppress_duplicate_seq = true;
        let n = w.rt.size();
        let (first, period) = Mlog::with(&mut w, |m, _| (m.cfg.first_wave_delay, m.cfg.period));
        let handle = w.rt.world_handle();
        drop(w);
        for r in 0..n {
            // Stagger: rank r starts its cycle r/n of a period late, so the
            // servers never see a synchronized burst (the point of
            // uncoordinated checkpointing).
            let at = sc.now() + first + (period * r as u64) / n as u64;
            Mlog::schedule_rank_ckpt(sc, handle.clone(), r, at, 0);
        }
    }

    /// Public re-arm hook used by the single-rank recovery path.
    pub(crate) fn schedule_rank_ckpt_pub(
        sc: &SimCtx,
        handle: std::sync::Weak<parking_lot::Mutex<World>>,
        r: Rank,
        at: SimTime,
        incarnation: u64,
    ) {
        Mlog::schedule_rank_ckpt(sc, handle, r, at, incarnation);
    }

    /// Arm rank `r`'s next checkpoint at `at` (incarnation-guarded).
    fn schedule_rank_ckpt(
        sc: &SimCtx,
        handle: std::sync::Weak<parking_lot::Mutex<World>>,
        r: Rank,
        at: SimTime,
        incarnation: u64,
    ) {
        sc.schedule(at, move |sc| {
            let Some(world) = handle.upgrade() else {
                return;
            };
            let mut w = world.lock();
            if w.rt.job_complete() || w.rt.ranks[r].incarnation != incarnation {
                return;
            }
            if w.rt.ranks[r].status == RankStatus::Dead {
                return; // restart will re-arm
            }
            Mlog::take_rank_checkpoint(&mut w, sc, r);
        });
    }

    /// Capture and stream rank `r`'s image; commit on completion.
    fn take_rank_checkpoint(w: &mut World, sc: &SimCtx, r: Rank) {
        let handle = w.rt.world_handle();
        let incarnation = w.rt.ranks[r].incarnation;
        let mut flow: Option<(FlowSpec, u64, u64)> = None;
        Mlog::with(w, |m, rt| {
            let mr = &mut m.ranks[r];
            if mr.ckpt_in_flight {
                return;
            }
            mr.ckpt_in_flight = true;
            m.stats.waves_started += 1;
            rt.add_penalty(r, m.cfg.fork_cost);
            let rs = &rt.ranks[r];
            let credit = rt.capture_credit(r, sc.now());
            let image = RankImage {
                ops_completed: rs.ops_completed,
                time_credit: credit,
                taken_at: sc.now(),
                pending: rt.snapshot_pending(r),
                expect_seq: rt.expect_seq_snapshot(r),
                send_seq: rt.send_seq_snapshot(r),
            };
            mr.image_version += 1;
            let version = mr.image_version;
            let log_mark = mr.log.len() as u64;
            // Stash the candidate image alongside the flow; committed only
            // when the stream lands (kept in the closure below).
            flow = Some((
                FlowSpec {
                    src: rt.placement.node_of(r),
                    dst: m.server_node_of[r],
                    bytes: m.cfg.image_bytes,
                    chunk: m.cfg.chunk_bytes,
                    also_disk: m.cfg.write_local_disk,
                },
                version,
                log_mark,
            ));
            // The image commits only when the stream lands. Overwriting a
            // leftover entry from before a restart is fine: that capture
            // was superseded and its completion no longer matches.
            mr.pending = Some((version, image));
        });
        if let Some((spec, version, log_mark)) = flow {
            start_flow(w, sc, spec, move |w, sc, done_at| {
                let _ = handle;
                Mlog::image_stored(w, sc, r, version, log_mark, done_at, incarnation);
            });
        }
    }

    /// A rank's image finished streaming: commit it, prune the log, re-arm.
    #[allow(clippy::too_many_arguments)]
    fn image_stored(
        w: &mut World,
        sc: &SimCtx,
        r: Rank,
        version: u64,
        log_mark: u64,
        done_at: SimTime,
        incarnation: u64,
    ) {
        let handle = w.rt.world_handle();
        let mut next: Option<SimTime> = None;
        Mlog::with(w, |m, rt| {
            let image = match m.ranks[r].pending.take() {
                Some((pv, image)) if pv == version => image,
                // A completion for a superseded capture: put back whatever
                // newer in-flight image it raced with.
                other => {
                    m.ranks[r].pending = other;
                    return;
                }
            };
            let taken_at = image.taken_at;
            let mr = &mut m.ranks[r];
            if mr.image_version != version {
                return; // superseded
            }
            mr.ckpt_in_flight = false;
            // Commit: the log prefix before the capture is superseded.
            mr.log.drain(..(log_mark as usize).min(mr.log.len()));
            mr.image = Some(image);
            m.stats.image_bytes_sent += m.cfg.image_bytes;
            m.stats.waves_committed += 1;
            m.stats.wave_timings.push(WaveTiming {
                wave: m.stats.waves_committed,
                started_at: taken_at,
                committed_at: done_at,
            });
            m.store.record_image(
                version,
                r,
                StoredImage {
                    server: m.server_node_of[r],
                    bytes: m.cfg.image_bytes,
                    stored_at: done_at,
                    // Uncoordinated restores keep the image in-engine and
                    // never digest-verify a fetch; the slot is bookkeeping.
                    digest: 0,
                },
            );
            if rt.ranks[r].incarnation == incarnation {
                next = Some(sc.now() + m.cfg.period);
            }
        });
        if let Some(at) = next {
            Mlog::schedule_rank_ckpt(sc, handle, r, at, incarnation);
        }
    }

    /// Restore data for a single-rank restart.
    pub(crate) fn restore_of(&self, r: Rank) -> (Option<RankImage>, Vec<AppMsg>, NodeId) {
        (
            self.ranks[r].image.clone(),
            self.ranks[r].log.clone(),
            self.server_node_of[r],
        )
    }

    /// Take the messages whose log writes were in flight when the rank
    /// failed; the restart re-injects them in arrival order (their pending
    /// completions die on the incarnation guard).
    pub(crate) fn take_in_flight(&mut self, r: Rank) -> Vec<AppMsg> {
        std::mem::take(&mut self.ranks[r].in_flight)
    }

    /// Reset rank `r`'s protocol state after its restart is orchestrated.
    pub(crate) fn on_rank_restarted(&mut self, r: Rank) {
        let mr = &mut self.ranks[r];
        mr.ckpt_in_flight = false;
        self.stats.restarts += 1;
    }
}

impl Protocol for Mlog {
    fn name(&self) -> &'static str {
        "mlog"
    }

    fn on_runtime_entry(&mut self, _rt: &mut RuntimeCore, _sc: &SimCtx, _rank: Rank) {}

    fn on_send_post(&mut self, _rt: &mut RuntimeCore, _sc: &SimCtx, _msg: &AppMsg) -> SendAction {
        SendAction::Proceed
    }

    fn on_arrival(&mut self, rt: &mut RuntimeCore, sc: &SimCtx, msg: &AppMsg) -> ArrivalAction {
        // Pessimistic logging: ship a copy to the receiver's server and
        // deliver only once the log record is stable. The synchronous
        // round-trip (plus the log traffic on the NIC) is the failure-free
        // price of the protocol.
        let dst_node = rt.placement.node_of(msg.dst);
        let server = self.server_node_of[msg.dst];
        let stored = rt
            .net
            .transfer(dst_node, server, msg.bytes.max(64), sc.now())
            .delivered;
        let ack = rt.net.transfer(server, dst_node, 64, stored).delivered;
        self.stats.msgs_logged += 1;
        self.stats.log_bytes_sent += msg.bytes.max(64);
        self.ranks[msg.dst].in_flight.push(msg.clone());
        let handle = rt.world_handle();
        let epoch = rt.epoch;
        let incarnation = rt.ranks[msg.dst].incarnation;
        let msg = msg.clone();
        sc.schedule(ack, move |sc| {
            let Some(world) = handle.upgrade() else {
                return;
            };
            let mut w = world.lock();
            if w.rt.epoch != epoch {
                return;
            }
            if w.rt.ranks[msg.dst].incarnation != incarnation {
                // The rank died before the log record stabilized. The
                // restart already re-injected this message from the
                // in-flight set, in channel order — this stale completion
                // simply dies.
                return;
            }
            Mlog::with(&mut w, |m, _| {
                let mr = &mut m.ranks[msg.dst];
                mr.in_flight
                    .retain(|f| !(f.src == msg.src && f.seq == msg.seq));
                mr.log.push(msg.clone());
            });
            w.rt.deliver_to_matching(sc, msg);
        });
        ArrivalAction::Hold
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}
