//! Coordinated-checkpointing fault tolerance for the `ftmpi` runtime: the
//! paper's primary contribution.
//!
//! Two protocol engines are provided, matching the two implementations the
//! paper compares:
//!
//! * [`Vcl`] — **non-blocking** coordinated checkpointing (MPICH-Vcl): a
//!   direct implementation of the Chandy–Lamport distributed-snapshot
//!   algorithm. A dedicated *checkpoint scheduler* process initiates waves;
//!   each rank's communication daemon handles markers asynchronously, forks
//!   to stream its image, and logs in-transit channel messages, which are
//!   replayed at restart. Communication is never interrupted.
//!
//! * [`Pcl`] — **blocking** coordinated checkpointing (MPICH2-Pcl): rank 0
//!   initiates waves; markers flush every channel. After sending its
//!   markers a rank delays outgoing posts per channel, and after receiving
//!   a marker on a channel it delays receptions from it, until its local
//!   checkpoint is taken. No channel state needs to be saved; delayed sends
//!   are re-posted after a restart. Marker handling requires the process to
//!   be inside the MPI library (progress engine), which is where the
//!   blocking protocol's synchronization cost comes from.
//!
//! Around the protocols: [`server`] models checkpoint servers and the
//! chunked image/log streams that contend with MPI traffic on the NICs;
//! [`recovery`] implements the dispatcher's kill-all / restore / replay
//! restart; [`failure`] provides targeted and MTTF-driven failure
//! injection; and [`runner`] assembles platform + placement + protocol +
//! workload into a single [`run_job`](runner::run_job) call used by every
//! experiment in the paper-reproduction harness.

#![warn(missing_docs)]

pub mod config;
pub mod deploy;
pub mod failure;
pub mod flow;
pub mod image;
pub mod mlog;
pub mod pcl;
pub mod recovery;
pub mod runner;
pub mod server;
pub mod stats;
pub mod vcl;

pub use config::FtConfig;
pub use deploy::Deployment;
pub use failure::{CorruptionEvent, FailurePlan, SilentCorruptionSpec};
pub use image::RankImage;
pub use mlog::Mlog;
pub use pcl::Pcl;
pub use recovery::RecoveryError;
pub use runner::{
    run_job, run_job_explored, run_job_with, JobError, JobResult, JobSpec, Platform,
    ProtocolChoice, RunOptions, ScheduleLog,
};
pub use server::StoreError;
pub use stats::FtStats;
pub use vcl::Vcl;
