//! Pcl: the **blocking** coordinated checkpointing protocol (MPICH2-Pcl).
//!
//! The protocol synchronizes the processes to *empty the communication
//! layer* before images are taken, so no channel state needs saving
//! (§3 and §4.2 of the paper):
//!
//! * the MPI process of rank 0 periodically starts a wave and sends markers
//!   to every other process;
//! * on its first marker a process enters the `checkpointing` state and
//!   sends markers to every other process;
//! * after sending its markers a process **delays every send post** until
//!   its checkpoint is taken (MPICH2: the hook in the request-posting
//!   function; the delayed messages are part of the image and are sent
//!   again after a restart);
//! * after receiving a marker on a channel the process **delays receptions
//!   from that channel** (Nemesis: the delayed receive queue, discarded at
//!   restart because the sender re-sends);
//! * when a process holds every marker it forks, streams its image to the
//!   checkpoint server, releases its delayed queues and resumes; rank 0
//!   commits the wave once every process reports its image stored, and only
//!   then arms the next timer.
//!
//! Crucially, markers are only *processed* when the process is inside the
//! MPI library (its progress engine runs): a process deep in a compute
//! phase stalls the whole wave — the synchronization cost that makes the
//! blocking protocol expensive at high checkpoint frequencies.

use std::any::Any;

use ftmpi_mpi::{
    AppMsg, ArrivalAction, Protocol, Rank, RankStatus, RuntimeCore, SendAction, World, WorldRef,
};
use ftmpi_net::NodeId;
use ftmpi_sim::{SimCtx, SimTime};

use crate::config::FtConfig;
use crate::deploy::Deployment;
use crate::flow::{send_control, start_flow_guarded, FlowRetry, FlowSpec};
use crate::image::{RankImage, WaveRecord};
use crate::server::{replica_targets, CheckpointStore, StoredImage, TORN_WRITE};
use crate::stats::{FtStats, WaveTiming};

/// Deferred control items awaiting the rank's next library activity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PclCtl {
    /// Rank 0's periodic wave initiation.
    Initiate,
    /// Channel marker from a peer.
    Marker { from: Rank },
}

/// In-flight wave state.
struct PclWave {
    rec: WaveRecord,
    /// Rank has entered the `checkpointing` state (markers sent).
    in_wave: Vec<bool>,
    /// `marker_arrived[dst][src]`: transport-level marker arrival (set even
    /// while processing is deferred — reception blocking is enforced below
    /// the matching engine, like Nemesis' delayed receive queue).
    marker_arrived: Vec<Vec<bool>>,
    /// Markers *processed* per rank.
    markers_processed: Vec<usize>,
    /// Deferred control items per rank.
    pending_ctl: Vec<Vec<PclCtl>>,
    /// Local checkpoint taken.
    ckpt_taken: Vec<bool>,
    /// Sends delayed during the wave, per source rank.
    delayed_sends: Vec<Vec<AppMsg>>,
    /// Arrivals delayed during the wave, per destination rank.
    delayed_arrivals: Vec<Vec<AppMsg>>,
    /// Images reported stored to rank 0.
    images_stored: usize,
    /// Replica flows still streaming, per rank (rank 0 is notified when a
    /// rank's count drains to zero).
    image_flows_left: Vec<usize>,
}

impl PclWave {
    fn new(wave: u64, n: usize, started_at: SimTime) -> PclWave {
        PclWave {
            rec: WaveRecord::new(wave, n, started_at),
            in_wave: vec![false; n],
            marker_arrived: (0..n).map(|_| vec![false; n]).collect(),
            markers_processed: vec![0; n],
            pending_ctl: vec![Vec::new(); n],
            ckpt_taken: vec![false; n],
            delayed_sends: vec![Vec::new(); n],
            delayed_arrivals: vec![Vec::new(); n],
            images_stored: 0,
            image_flows_left: vec![0; n],
        }
    }
}

/// The blocking protocol engine.
pub struct Pcl {
    cfg: FtConfig,
    server_node_of: Vec<NodeId>,
    /// The whole checkpoint-server fleet (replica targets, failure fallback).
    server_nodes: Vec<NodeId>,
    /// Protocol statistics.
    pub stats: FtStats,
    /// Server control-plane state.
    pub store: CheckpointStore,
    /// Retained committed waves, oldest → newest (restart sources; older
    /// entries are fallback targets after a server failure).
    pub committed: Vec<WaveRecord>,
    cur: Option<PclWave>,
    wave_counter: u64,
    /// Wave-timer generation (see Vcl): stale timers die on mismatch.
    timer_gen: u64,
}

impl Pcl {
    /// Build the engine for a deployment.
    pub fn new(cfg: FtConfig, dep: &Deployment) -> Pcl {
        let server_node_of = (0..dep.nranks()).map(|r| dep.server_node_of(r)).collect();
        let mut store = CheckpointStore::default();
        store.set_retention(cfg.retained_waves.max(1));
        Pcl {
            cfg,
            server_node_of,
            server_nodes: dep.server_nodes.clone(),
            stats: FtStats::default(),
            store,
            committed: Vec::new(),
            cur: None,
            wave_counter: 0,
            timer_gen: 0,
        }
    }

    /// Checkpoint-server node of every rank (restore planning).
    pub(crate) fn server_nodes_of_ranks(&self) -> Vec<NodeId> {
        self.server_node_of.clone()
    }

    /// Fault-tolerance knobs (restore planning, scrubber).
    pub(crate) fn ft_cfg(&self) -> &FtConfig {
        &self.cfg
    }

    /// Server node at `idx` in the deployment's fleet, if any.
    pub(crate) fn server_fleet_node(&self, idx: usize) -> Option<NodeId> {
        self.server_nodes.get(idx).copied()
    }

    /// Servers still alive.
    pub(crate) fn live_server_count(&self) -> usize {
        self.server_nodes
            .iter()
            .filter(|n| !self.store.server_failed(**n))
            .count()
    }

    /// Invalidate pending periodic wave timers; returns the new generation.
    pub(crate) fn bump_timer_gen(w: &mut World) -> u64 {
        Pcl::with(w, |p, _| {
            p.timer_gen += 1;
            p.timer_gen
        })
    }

    /// Abort any in-flight wave (failure-restart or server loss): drop the
    /// wave state and garbage-collect its partial images from the server
    /// bookkeeping. Returns whether a wave was actually aborted.
    pub(crate) fn abort_wave(w: &mut World, sc: &SimCtx) -> bool {
        let aborted = Pcl::with(w, |pcl, _| {
            pcl.cur.take().map(|cur| {
                pcl.stats.waves_aborted += 1;
                pcl.store.abort(cur.rec.wave);
                cur.rec.wave
            })
        });
        if let Some(wave) = aborted {
            sc.trace_proto(ftmpi_sim::ProtoEvent::WaveAbort { wave });
        }
        aborted.is_some()
    }

    /// A checkpoint-server node failed: drop every replica it held, abort
    /// the in-flight wave if any (the commit database lost images the wave
    /// needs; its surviving flows die on the wave-number guards), and re-arm
    /// the periodic timer while live servers remain.
    ///
    /// Unlike a restart abort — where the whole job rolls back and delayed
    /// messages are re-sent from the restored images — the job keeps running
    /// here, so the aborted wave's held queues must be released or every
    /// rank still synchronizing would hang forever.
    pub(crate) fn on_server_failed(w: &mut World, sc: &SimCtx, node: NodeId) {
        Pcl::with(w, |pcl, _| pcl.store.fail_server(node));
        Pcl::abort_wave_and_rearm(w, sc);
    }

    /// Abort the in-flight wave (if any), release its held queues, and
    /// re-arm the periodic timer while live servers remain. The tail shared
    /// by [`Pcl::on_server_failed`] and the network-fault push fallback.
    fn abort_wave_and_rearm(w: &mut World, sc: &SimCtx) {
        let taken = Pcl::with(w, |pcl, _| {
            pcl.cur.take().map(|cur| {
                pcl.stats.waves_aborted += 1;
                pcl.store.abort(cur.rec.wave);
                (cur.rec.wave, cur.delayed_sends, cur.delayed_arrivals)
            })
        });
        let aborted = taken.is_some();
        if let Some((wave, delayed_sends, delayed_arrivals)) = taken {
            sc.trace_proto(ftmpi_sim::ProtoEvent::WaveAbort { wave });
            for msg in delayed_sends.into_iter().flatten() {
                w.rt.launch_send(sc, msg);
            }
            for msg in delayed_arrivals.into_iter().flatten() {
                w.rt.deliver_to_matching(sc, msg);
            }
        }
        if aborted && !w.rt.job_complete() {
            let handle = w.rt.world_handle();
            let epoch = w.rt.epoch;
            let next = Pcl::with(w, |pcl, _| {
                if pcl.live_server_count() == 0 {
                    return None; // nowhere to checkpoint to any more
                }
                pcl.timer_gen += 1;
                Some((sc.now() + pcl.cfg.period, pcl.timer_gen))
            });
            if let Some((at, gen)) = next {
                Pcl::schedule_wave_at(sc, handle, at, epoch, gen);
            }
        }
    }

    /// Account end-of-run bookkeeping health (orphaned partial images).
    pub(crate) fn finalize_stats(&mut self) {
        self.stats.orphan_images_end = self
            .store
            .orphan_images(self.cur.as_ref().map(|c| c.rec.wave));
    }

    fn with<R>(w: &mut World, f: impl FnOnce(&mut Pcl, &mut RuntimeCore) -> R) -> R {
        let World { rt, proto } = w;
        let pcl = proto
            .as_any_mut()
            .downcast_mut::<Pcl>()
            .expect("world protocol is not Pcl");
        f(pcl, rt)
    }

    /// Arm the first wave timer.
    pub fn start(world: &WorldRef, sc: &SimCtx) {
        let (at, handle, epoch, gen) = {
            let mut w = world.lock();
            let (delay, gen) = Pcl::with(&mut w, |pcl, _| {
                pcl.timer_gen += 1;
                (pcl.cfg.first_wave_delay, pcl.timer_gen)
            });
            (sc.now() + delay, w.rt.world_handle(), w.rt.epoch, gen)
        };
        Pcl::schedule_wave_at(sc, handle, at, epoch, gen);
    }

    /// Proactively start a wave *now* (failure-prediction trigger from the
    /// paper's conclusion). No-op if a wave is already in flight;
    /// supersedes the pending periodic timer.
    pub fn trigger_wave_now(world: &WorldRef, sc: &SimCtx) {
        let mut w = world.lock();
        if w.rt.job_complete() {
            return;
        }
        let fresh = Pcl::with(&mut w, |pcl, _| {
            pcl.timer_gen += 1;
            pcl.cur.is_none()
        });
        if fresh {
            Pcl::initiate_wave(&mut w, sc);
        }
    }

    /// Schedule a wave initiation at `at` (epoch- and generation-guarded).
    pub fn schedule_wave_at(
        sc: &SimCtx,
        handle: std::sync::Weak<parking_lot::Mutex<World>>,
        at: SimTime,
        epoch: u64,
        gen: u64,
    ) {
        sc.schedule(at, move |sc| {
            let Some(world) = handle.upgrade() else {
                return;
            };
            let mut w = world.lock();
            if w.rt.epoch != epoch || w.rt.job_complete() {
                return;
            }
            let fresh = Pcl::with(&mut w, |pcl, _| pcl.timer_gen == gen && pcl.cur.is_none());
            if fresh {
                Pcl::initiate_wave(&mut w, sc);
            }
        });
    }

    /// Create the wave state and hand the initiation to rank 0.
    fn initiate_wave(w: &mut World, sc: &SimCtx) {
        if Pcl::with(w, |pcl, _| pcl.live_server_count() == 0) {
            return; // every checkpoint server is gone: no more waves
        }
        let n = w.rt.size();
        let wave = Pcl::with(w, |pcl, _| {
            pcl.wave_counter += 1;
            pcl.stats.waves_started += 1;
            pcl.cur = Some(PclWave::new(pcl.wave_counter, n, sc.now()));
            pcl.wave_counter
        });
        sc.trace_proto(ftmpi_sim::ProtoEvent::WaveStart { wave });
        // Rank 0 initiates: processed when its progress engine runs.
        Pcl::queue_ctl(w, sc, 0, PclCtl::Initiate);
    }

    /// Queue a control item for `rank`, processing immediately if the rank
    /// is inside the library (parked in a blocking op) or no longer running
    /// application code.
    fn queue_ctl(w: &mut World, sc: &SimCtx, rank: Rank, ctl: PclCtl) {
        if w.rt.ranks[rank].status == RankStatus::Dead {
            // Undetected-dead rank (detection lag): its library is gone, so
            // it can neither process nor defer control traffic. The wave
            // stalls on it and is aborted by the eventual restart.
            return;
        }
        let in_lib = {
            let rs = &w.rt.ranks[rank];
            rs.blocked_in_lib || rs.status != RankStatus::Running
        };
        let in_lib = in_lib || Pcl::with(w, |pcl, _| pcl.cfg.pcl_async_markers);
        if in_lib {
            Pcl::process_ctl(w, sc, rank, ctl);
        } else {
            Pcl::with(w, |pcl, _| {
                if let Some(cur) = pcl.cur.as_mut() {
                    cur.pending_ctl[rank].push(ctl);
                }
            });
        }
    }

    /// Drain deferred control items for `rank` (library entry).
    fn drain_ctl(w: &mut World, sc: &SimCtx, rank: Rank) {
        loop {
            let next = Pcl::with(w, |pcl, _| {
                pcl.cur.as_mut().and_then(|cur| {
                    if cur.pending_ctl[rank].is_empty() {
                        None
                    } else {
                        Some(cur.pending_ctl[rank].remove(0))
                    }
                })
            });
            match next {
                Some(ctl) => Pcl::process_ctl(w, sc, rank, ctl),
                None => break,
            }
        }
    }

    fn process_ctl(w: &mut World, sc: &SimCtx, rank: Rank, ctl: PclCtl) {
        Pcl::enter_wave(w, sc, rank);
        if let PclCtl::Marker { from } = ctl {
            let all_markers = Pcl::with(w, |pcl, _| {
                let Some(cur) = pcl.cur.as_mut() else {
                    return false;
                };
                cur.markers_processed[rank] += 1;
                let n = cur.in_wave.len();
                let _ = from; // dedup already happened at transport arrival
                cur.markers_processed[rank] == n - 1 && !cur.ckpt_taken[rank]
            });
            if all_markers {
                Pcl::take_checkpoint(w, sc, rank);
            }
        } else {
            // Single-process job: the initiator checkpoints immediately.
            let solo = w.rt.size() == 1;
            if solo {
                Pcl::take_checkpoint(w, sc, rank);
            }
        }
    }

    /// Enter the `checkpointing` state: send markers on every channel; all
    /// subsequent sends are delayed until the local checkpoint.
    fn enter_wave(w: &mut World, sc: &SimCtx, rank: Rank) {
        let handle = w.rt.world_handle();
        let epoch = w.rt.epoch;
        let mut targets: Vec<(Rank, NodeId, NodeId, Option<u64>)> = Vec::new();
        let mut wave = 0;
        Pcl::with(w, |pcl, rt| {
            let Some(cur) = pcl.cur.as_mut() else { return };
            if cur.in_wave[rank] {
                return;
            }
            cur.in_wave[rank] = true;
            wave = cur.rec.wave;
            let src_node = rt.placement.node_of(rank);
            // `LanelessMarkers` regression fixture: schedule the arrivals
            // without the destination lane, re-opening the marker-vs-message
            // order race the lanes fixed (for the schedule explorer).
            let laneless = rt.race_fixture == Some(ftmpi_mpi::RaceFixture::LanelessMarkers);
            for s in 0..cur.in_wave.len() {
                if s != rank {
                    let lane = if laneless {
                        None
                    } else {
                        rt.ranks[s].pid.map(ftmpi_sim::Pid::lane)
                    };
                    targets.push((s, src_node, rt.placement.node_of(s), lane));
                }
            }
        });
        // Markers travel the same channels as application messages (FIFO).
        let ctl_bytes = Pcl::with(w, |pcl, _| pcl.cfg.control_bytes);
        let penalty = w.rt.cfg.profile.message_penalty(ctl_bytes);
        for (s, src_node, dst_node, lane) in targets {
            sc.trace_proto(ftmpi_sim::ProtoEvent::MarkerSend {
                wave,
                from: rank,
                to: s,
            });
            let delivered =
                w.rt.net
                    .transfer_with_overhead(src_node, dst_node, ctl_bytes, sc.now(), penalty)
                    .delivered;
            let h = handle.clone();
            // Same lane as app messages to rank `s`: the marker's position
            // in the channel relative to data arrivals is protocol state.
            sc.schedule_keyed(delivered, lane, move |sc| {
                let Some(world) = h.upgrade() else { return };
                let mut w = world.lock();
                if w.rt.epoch != epoch {
                    return;
                }
                Pcl::on_marker_arrival(&mut w, sc, rank, s, wave);
            });
        }
    }

    /// Transport-level marker arrival on channel `from → to`.
    fn on_marker_arrival(w: &mut World, sc: &SimCtx, from: Rank, to: Rank, wave: u64) {
        let relevant = Pcl::with(w, |pcl, _| {
            let Some(cur) = pcl.cur.as_mut() else {
                return false;
            };
            if cur.rec.wave != wave || cur.marker_arrived[to][from] {
                return false;
            }
            cur.marker_arrived[to][from] = true;
            true
        });
        if relevant {
            sc.trace_proto(ftmpi_sim::ProtoEvent::MarkerRecv { wave, from, to });
            Pcl::queue_ctl(w, sc, to, PclCtl::Marker { from });
        }
    }

    /// All markers held: fork, record the image, stream it, and release the
    /// delayed queues ("after having taken its checkpoint, a process can
    /// send and receive any messages").
    fn take_checkpoint(w: &mut World, sc: &SimCtx, rank: Rank) {
        let _handle = w.rt.world_handle();
        let mut image_flows: Vec<(FlowSpec, u64, NodeId)> = Vec::new();
        let mut release_sends: Vec<AppMsg> = Vec::new();
        let mut release_arrivals: Vec<AppMsg> = Vec::new();
        let mut fork_info: Option<(u64, u64)> = None;
        Pcl::with(w, |pcl, rt| {
            let Some(cur) = pcl.cur.as_mut() else { return };
            if cur.ckpt_taken[rank] {
                return;
            }
            cur.ckpt_taken[rank] = true;
            rt.add_penalty(rank, pcl.cfg.fork_cost);
            let rs = &rt.ranks[rank];
            fork_info = Some((cur.rec.wave, rs.ops_completed));
            let credit = rt.capture_credit(rank, sc.now());
            // Delayed sends are in-memory buffered messages: they are part
            // of the image and will be *sent again* after a restart.
            cur.rec.delayed_sends[rank] = cur.delayed_sends[rank].clone();
            cur.rec.images[rank] = RankImage {
                ops_completed: rs.ops_completed,
                time_credit: credit,
                taken_at: sc.now(),
                pending: rt.snapshot_pending(rank),
                expect_seq: Vec::new(), // coordinated: global restarts reset
                send_seq: Vec::new(),
            };
            // While the image streams through the process's own channel,
            // every MPI operation pays the progress-engine sharing drag.
            rt.ranks[rank].op_drag = pcl.cfg.blocking_stream_drag;
            release_sends = std::mem::take(&mut cur.delayed_sends[rank]);
            // The delayed receive queue is delivered now (post-checkpoint);
            // on restart it is *discarded* — senders re-send.
            release_arrivals = std::mem::take(&mut cur.delayed_arrivals[rank]);
            // One stream per replica target; the local disk is written once.
            let targets = replica_targets(
                &pcl.server_nodes,
                pcl.server_node_of[rank],
                pcl.cfg.replicas,
                &pcl.store,
            );
            cur.image_flows_left[rank] = targets.len();
            let src = rt.placement.node_of(rank);
            for (i, server) in targets.into_iter().enumerate() {
                image_flows.push((
                    FlowSpec {
                        src,
                        dst: server,
                        bytes: pcl.cfg.image_bytes,
                        chunk: pcl.cfg.chunk_bytes,
                        also_disk: pcl.cfg.write_local_disk && i == 0,
                    },
                    cur.rec.wave,
                    server,
                ));
            }
        });
        if let Some((wave, ops)) = fork_info {
            sc.trace_proto(ftmpi_sim::ProtoEvent::Fork { wave, rank, ops });
        }
        for msg in release_sends {
            w.rt.launch_send(sc, msg);
        }
        for msg in release_arrivals {
            w.rt.deliver_to_matching(sc, msg);
        }
        for (spec, wave, server) in image_flows {
            Pcl::start_image_stream(w, sc, spec, rank, wave, server);
        }
    }

    /// Launch one replica stream of `rank`'s wave-`wave` image toward
    /// `server`, under the job's bounded retry budget: if the target stays
    /// unreachable behind a link fault or partition the push surrenders to
    /// [`Pcl::image_push_failed`] and falls back to another replica.
    fn start_image_stream(
        w: &mut World,
        sc: &SimCtx,
        spec: FlowSpec,
        rank: Rank,
        wave: u64,
        server: NodeId,
    ) {
        let retry = Pcl::with(w, |pcl, _| FlowRetry::bounded(&pcl.cfg));
        let fail_spec = spec.clone();
        start_flow_guarded(
            w,
            sc,
            spec,
            retry,
            move |w, sc| Pcl::image_push_failed(w, sc, rank, wave, fail_spec),
            move |w, sc, done_at| Pcl::image_stored(w, sc, rank, wave, server, done_at),
        );
    }

    /// A replica stream of `rank`'s image spent its whole retry budget
    /// against an unreachable server. Reroute the push to the next server
    /// that is live, reachable from the source node, and not already
    /// holding this image (the streaming drag persists — the channel is
    /// still busy); with no such server the wave can never commit, so
    /// abort it, release its held queues, and re-arm the timer.
    fn image_push_failed(w: &mut World, sc: &SimCtx, rank: Rank, wave: u64, spec: FlowSpec) {
        enum Fallback {
            Stale,
            Reroute(NodeId),
            Abort,
        }
        let fb = Pcl::with(w, |pcl, rt| {
            let current = pcl
                .cur
                .as_ref()
                .is_some_and(|cur| cur.rec.wave == wave && cur.image_flows_left[rank] > 0);
            if !current {
                // Stale stream (wave aborted meanwhile): the channel is
                // idle again.
                rt.ranks[rank].op_drag = ftmpi_sim::SimDuration::ZERO;
                return Fallback::Stale;
            }
            pcl.stats.retries_exhausted += 1;
            // A *tearing* cut severed this stream mid-flight: the server is
            // left holding a truncated prefix that can never hash to the
            // image's digest. Record the torn replica (damaged bits, not a
            // placement — no `ImageStore` trace) so fetches and scrubs must
            // walk past it; the `server_holds` reroute filter below then
            // keeps this wave from re-targeting the torn server. A dead or
            // quarantined target keeps nothing (`record_image` drops the
            // write), matching a store that died with its server.
            if pcl.cfg.torn_writes && rt.net.cut_tears(spec.src, spec.dst) {
                let expected = pcl
                    .cur
                    .as_ref()
                    .map(|cur| cur.rec.images[rank].digest(wave, rank))
                    .unwrap_or(0);
                let torn = pcl.store.record_image(
                    wave,
                    rank,
                    StoredImage {
                        server: spec.dst,
                        // The store tracks logical slots, not physical
                        // bytes; the truncated prefix occupies the slot.
                        bytes: spec.bytes,
                        stored_at: sc.now(),
                        digest: expected ^ TORN_WRITE,
                    },
                );
                if torn {
                    sc.trace_proto(ftmpi_sim::ProtoEvent::Corrupt {
                        wave,
                        rank,
                        node: spec.dst.0 as u64,
                    });
                }
            }
            let fleet = &pcl.server_nodes;
            let pos = fleet.iter().position(|n| *n == spec.dst).unwrap_or(0);
            // A candidate must be reachable round-trip: the push streams
            // source → server, the store acknowledgement comes back.
            // Rerouting across a half-open cut would commit an image the
            // wave controller can never hear about. A quarantined server is
            // as unplaceable as a dead one.
            let replacement = (1..fleet.len())
                .map(|i| fleet[(pos + i) % fleet.len()])
                .find(|&cand| {
                    !pcl.store.server_unplaceable(cand)
                        && rt.net.reachable(spec.src, cand)
                        && rt.net.reachable(cand, spec.src)
                        && !pcl.store.server_holds(wave, rank, cand)
                });
            match replacement {
                Some(cand) => {
                    pcl.stats.images_rerouted += 1;
                    Fallback::Reroute(cand)
                }
                None => {
                    // This rank's stream dies here; its drag ends with it.
                    rt.ranks[rank].op_drag = ftmpi_sim::SimDuration::ZERO;
                    Fallback::Abort
                }
            }
        });
        match fb {
            Fallback::Stale => {}
            Fallback::Reroute(cand) => {
                let new_spec = FlowSpec { dst: cand, ..spec };
                Pcl::start_image_stream(w, sc, new_spec, rank, wave, cand);
            }
            Fallback::Abort => Pcl::abort_wave_and_rearm(w, sc),
        }
    }

    /// One replica stream landed on `server`. When the rank's last replica
    /// lands, notify rank 0 ("sends a message to the MPI process of rank 0
    /// such that a new checkpoint wave can be scheduled"). Streams whose
    /// wave was aborted meanwhile (mid-wave server failure — restarts kill
    /// flows on the epoch guard instead) are dropped here. The stored
    /// record carries the image's content digest — what verify-on-fetch
    /// later checks against. A write the store drops because the target was
    /// quarantined while the stream was in flight re-enters the reroute
    /// path (the streaming drag persists — the channel is still busy): the
    /// replica must land on a placeable server for the wave to commit.
    fn image_stored(
        w: &mut World,
        sc: &SimCtx,
        rank: Rank,
        wave: u64,
        server: NodeId,
        done_at: SimTime,
    ) {
        enum Landing {
            Stale,
            Stored,
            Dropped(FlowSpec),
        }
        let _handle = w.rt.world_handle();
        let mut notify: Option<(NodeId, NodeId, u64)> = None;
        let landing = Pcl::with(w, |pcl, rt| {
            let current = pcl
                .cur
                .as_ref()
                .is_some_and(|cur| cur.rec.wave == wave && cur.image_flows_left[rank] > 0);
            if !current {
                // Stale stream (wave aborted): the channel is idle again.
                rt.ranks[rank].op_drag = ftmpi_sim::SimDuration::ZERO;
                return Landing::Stale;
            }
            pcl.stats.image_bytes_sent += pcl.cfg.image_bytes;
            let digest = pcl
                .cur
                .as_ref()
                .map(|cur| cur.rec.images[rank].digest(wave, rank))
                .unwrap_or(0);
            let recorded = pcl.store.record_image(
                wave,
                rank,
                StoredImage {
                    server,
                    bytes: pcl.cfg.image_bytes,
                    stored_at: done_at,
                    digest,
                },
            );
            if !recorded {
                return Landing::Dropped(FlowSpec {
                    src: rt.placement.node_of(rank),
                    dst: server,
                    bytes: pcl.cfg.image_bytes,
                    chunk: pcl.cfg.chunk_bytes,
                    also_disk: false,
                });
            }
            let cur = pcl.cur.as_mut().expect("checked current above");
            cur.image_flows_left[rank] -= 1;
            if cur.image_flows_left[rank] == 0 {
                rt.ranks[rank].op_drag = ftmpi_sim::SimDuration::ZERO;
                notify = Some((
                    rt.placement.node_of(rank),
                    rt.placement.node_of(0),
                    pcl.cfg.control_bytes,
                ));
            }
            Landing::Stored
        });
        match landing {
            Landing::Stale => {}
            Landing::Stored => {
                sc.trace_proto(ftmpi_sim::ProtoEvent::ImageStore {
                    wave,
                    rank,
                    node: server.0 as u64,
                });
                if let Some((src, dst, bytes)) = notify {
                    send_control(w, sc, src, dst, bytes, None, move |w, sc| {
                        Pcl::on_image_report(w, sc, wave);
                    });
                }
            }
            Landing::Dropped(spec) => Pcl::image_push_failed(w, sc, rank, wave, spec),
        }
    }

    /// Rank 0 collects image-stored reports; commits when all arrived.
    fn on_image_report(w: &mut World, sc: &SimCtx, wave: u64) {
        let handle = w.rt.world_handle();
        let epoch = w.rt.epoch;
        let n = w.rt.size();
        let mut next_at: Option<(SimTime, u64)> = None;
        Pcl::with(w, |pcl, _| {
            let Some(cur) = pcl.cur.as_mut() else { return };
            if cur.rec.wave != wave {
                return;
            }
            cur.images_stored += 1;
            if cur.images_stored < n {
                return;
            }
            let mut wave_state = pcl.cur.take().expect("current wave");
            wave_state.rec.committed_at = sc.now();
            pcl.stats.waves_committed += 1;
            pcl.stats.wave_timings.push(WaveTiming {
                wave,
                started_at: wave_state.rec.started_at,
                committed_at: sc.now(),
            });
            pcl.store.commit(wave);
            pcl.committed.push(wave_state.rec);
            let retain = pcl.cfg.retained_waves.max(1);
            while pcl.committed.len() > retain {
                pcl.committed.remove(0);
            }
            pcl.timer_gen += 1;
            next_at = Some((sc.now() + pcl.cfg.period, pcl.timer_gen));
        });
        if next_at.is_some() {
            sc.trace_proto(ftmpi_sim::ProtoEvent::WaveCommit { wave });
        }
        if let Some((at, gen)) = next_at {
            Pcl::schedule_wave_at(sc, handle, at, epoch, gen);
        }
    }
}

impl Protocol for Pcl {
    fn name(&self) -> &'static str {
        "pcl"
    }

    fn on_runtime_entry(&mut self, rt: &mut RuntimeCore, sc: &SimCtx, rank: Rank) {
        // The progress engine runs: handle deferred initiations/markers.
        // Self-scheduling is impossible here (we *are* the protocol, called
        // with the world already borrowed), so drain via the world pattern:
        // take items out, process with local methods that only need rt.
        // To keep the borrow simple the actual drain happens through
        // `Pcl::drain_via_hook`, which mirrors `drain_ctl` but works on
        // `&mut self` + `&mut RuntimeCore`.
        self.drain_via_hook(rt, sc, rank);
    }

    fn on_send_post(&mut self, _rt: &mut RuntimeCore, _sc: &SimCtx, msg: &AppMsg) -> SendAction {
        if let Some(cur) = self.cur.as_mut() {
            if cur.in_wave[msg.src] && !cur.ckpt_taken[msg.src] {
                cur.delayed_sends[msg.src].push(msg.clone());
                self.stats.sends_delayed += 1;
                return SendAction::Hold;
            }
        }
        SendAction::Proceed
    }

    fn on_arrival(&mut self, _rt: &mut RuntimeCore, _sc: &SimCtx, msg: &AppMsg) -> ArrivalAction {
        if msg.src != msg.dst {
            if let Some(cur) = self.cur.as_mut() {
                if cur.marker_arrived[msg.dst][msg.src] && !cur.ckpt_taken[msg.dst] {
                    cur.delayed_arrivals[msg.dst].push(msg.clone());
                    self.stats.arrivals_delayed += 1;
                    return ArrivalAction::Hold;
                }
            }
        }
        ArrivalAction::Deliver
    }

    fn on_rank_finished(&mut self, rt: &mut RuntimeCore, sc: &SimCtx, rank: Rank) {
        // A finished rank's library stays responsive: process anything
        // pending so a wave cannot stall on it.
        self.drain_via_hook(rt, sc, rank);
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

impl Pcl {
    /// Hook-context drain: like [`Pcl::drain_ctl`] but callable while the
    /// protocol itself is the active borrow. Heavy work (marker fan-out,
    /// checkpoint capture) needs the full world, so it is deferred to an
    /// immediate event.
    fn drain_via_hook(&mut self, rt: &mut RuntimeCore, sc: &SimCtx, rank: Rank) {
        let has_pending = self
            .cur
            .as_ref()
            .map(|cur| !cur.pending_ctl[rank].is_empty())
            .unwrap_or(false);
        if !has_pending {
            return;
        }
        let handle = rt.world_handle();
        let epoch = rt.epoch;
        sc.schedule(sc.now(), move |sc| {
            let Some(world) = handle.upgrade() else {
                return;
            };
            let mut w = world.lock();
            if w.rt.epoch != epoch {
                return;
            }
            Pcl::drain_ctl(&mut w, sc, rank);
        });
    }
}
