//! Vcl: the **non-blocking** coordinated checkpointing protocol
//! (MPICH-Vcl) — a direct implementation of the Chandy–Lamport
//! distributed-snapshot algorithm for MPI computations.
//!
//! Roles (§3 and §4.1 of the paper):
//!
//! * a dedicated **checkpoint scheduler** process initiates waves by
//!   sending a marker to every MPI process;
//! * on its first marker of a wave, a rank's daemon records the local state
//!   (the MPI process forks and its image streams to a checkpoint server
//!   while computation continues), then sends a marker on every channel;
//! * every application message received after the local checkpoint and
//!   before the sender's marker is **logged** as the channel's state and
//!   also shipped to the server;
//! * once a rank holds every marker and its image + log are stored, it
//!   acknowledges the scheduler, which commits the wave after collecting
//!   all acknowledgements — and only then arms the timer for the next wave.
//!
//! Communication is *never* interrupted; the cost is the per-message daemon
//! indirection (modelled by the `VclDaemon` software stack) plus log
//! traffic, in exchange for checkpoint transfers that overlap computation.

use std::any::Any;

use ftmpi_mpi::{
    AppMsg, ArrivalAction, Protocol, Rank, RankStatus, RuntimeCore, SendAction, World, WorldRef,
};
use ftmpi_net::NodeId;
use ftmpi_sim::{SimCtx, SimTime};

use crate::config::FtConfig;
use crate::deploy::Deployment;
use crate::flow::{send_control, start_flow, start_flow_guarded, FlowRetry, FlowSpec};
use crate::image::{RankImage, WaveRecord};
use crate::server::{replica_targets, CheckpointStore, StoredImage, TORN_WRITE};
use crate::stats::{FtStats, WaveTiming};

/// In-flight wave state.
struct VclWave {
    rec: WaveRecord,
    /// Rank has recorded its local checkpoint this wave.
    started: Vec<bool>,
    /// `marker_from[dst][src]`: channel marker received.
    marker_from: Vec<Vec<bool>>,
    /// Markers still missing per rank.
    markers_missing: Vec<usize>,
    /// Image fully stored on the server.
    image_done: Vec<bool>,
    /// All channel markers received (log closed).
    channels_closed: Vec<bool>,
    /// Log fully stored (or empty).
    log_done: Vec<bool>,
    /// Acknowledgement sent to the scheduler.
    acked: Vec<bool>,
    /// Acknowledgements received by the scheduler.
    acks: usize,
    /// Replica image streams still in flight, per rank.
    image_flows_left: Vec<usize>,
}

impl VclWave {
    fn new(wave: u64, n: usize, started_at: SimTime) -> VclWave {
        VclWave {
            rec: WaveRecord::new(wave, n, started_at),
            started: vec![false; n],
            marker_from: (0..n).map(|_| vec![false; n]).collect(),
            markers_missing: vec![n - 1; n],
            image_done: vec![false; n],
            channels_closed: vec![n == 1; n],
            // A solo job has no channels, hence no channel state to ship.
            log_done: vec![n == 1; n],
            acked: vec![false; n],
            acks: 0,
            image_flows_left: vec![0; n],
        }
    }
}

/// The non-blocking protocol engine. Implements [`Protocol`] for the
/// runtime hooks and drives waves through self-scheduled events.
pub struct Vcl {
    cfg: FtConfig,
    /// Checkpoint-server node of each rank.
    server_node_of: Vec<NodeId>,
    /// The whole checkpoint-server fleet (replica targets, failure fallback).
    server_nodes: Vec<NodeId>,
    /// Node hosting the checkpoint scheduler.
    scheduler_node: NodeId,
    /// Protocol statistics.
    pub stats: FtStats,
    /// Server control-plane state.
    pub store: CheckpointStore,
    /// Retained committed waves, oldest → newest (restart sources; older
    /// entries are fallback targets after a server failure).
    pub committed: Vec<WaveRecord>,
    cur: Option<VclWave>,
    wave_counter: u64,
    /// Wave-timer generation: stale periodic timers (superseded by a
    /// proactive trigger or a restart) die on a generation mismatch.
    timer_gen: u64,
}

impl Vcl {
    /// Build the engine for a deployment.
    pub fn new(cfg: FtConfig, dep: &Deployment) -> Vcl {
        let server_node_of = (0..dep.nranks()).map(|r| dep.server_node_of(r)).collect();
        let mut store = CheckpointStore::default();
        store.set_retention(cfg.retained_waves.max(1));
        Vcl {
            cfg,
            server_node_of,
            server_nodes: dep.server_nodes.clone(),
            scheduler_node: dep.service_node,
            stats: FtStats::default(),
            store,
            committed: Vec::new(),
            cur: None,
            wave_counter: 0,
            timer_gen: 0,
        }
    }

    /// Checkpoint-server node of every rank (restore planning).
    pub(crate) fn server_nodes_of_ranks(&self) -> Vec<NodeId> {
        self.server_node_of.clone()
    }

    /// The engine's fault-tolerance config, for the recovery and scrub
    /// paths that live outside this module (`cfg` itself stays private).
    pub(crate) fn ft_cfg(&self) -> &FtConfig {
        &self.cfg
    }

    /// Server node at `idx` in the deployment's fleet, if any.
    pub(crate) fn server_fleet_node(&self, idx: usize) -> Option<NodeId> {
        self.server_nodes.get(idx).copied()
    }

    /// Servers still alive.
    pub(crate) fn live_server_count(&self) -> usize {
        self.server_nodes
            .iter()
            .filter(|n| !self.store.server_failed(**n))
            .count()
    }

    /// Invalidate pending periodic wave timers; returns the new generation.
    pub(crate) fn bump_timer_gen(w: &mut World) -> u64 {
        Vcl::with(w, |p, _| {
            p.timer_gen += 1;
            p.timer_gen
        })
    }

    /// Abort any in-flight wave (failure-restart or server loss): drop the
    /// wave state and garbage-collect its partial images from the server
    /// bookkeeping. Returns whether a wave was actually aborted.
    pub(crate) fn abort_wave(w: &mut World, sc: &SimCtx) -> bool {
        let aborted = Vcl::with(w, |vcl, _| {
            vcl.cur.take().map(|cur| {
                vcl.stats.waves_aborted += 1;
                vcl.store.abort(cur.rec.wave);
                cur.rec.wave
            })
        });
        if let Some(wave) = aborted {
            sc.trace_proto(ftmpi_sim::ProtoEvent::WaveAbort { wave });
        }
        aborted.is_some()
    }

    /// A checkpoint-server node failed: drop every replica it held, abort
    /// the in-flight wave if any (its surviving flows die on the
    /// wave-number guards), and re-arm the periodic timer while live
    /// servers remain.
    pub(crate) fn on_server_failed(w: &mut World, sc: &SimCtx, node: NodeId) {
        Vcl::with(w, |vcl, _| vcl.store.fail_server(node));
        let aborted = Vcl::abort_wave(w, sc);
        if aborted && !w.rt.job_complete() {
            let handle = w.rt.world_handle();
            let epoch = w.rt.epoch;
            let next = Vcl::with(w, |vcl, _| {
                if vcl.live_server_count() == 0 {
                    return None; // nowhere to checkpoint to any more
                }
                vcl.timer_gen += 1;
                Some((sc.now() + vcl.cfg.period, vcl.timer_gen))
            });
            if let Some((at, gen)) = next {
                Vcl::schedule_wave_at(sc, handle, at, epoch, gen);
            }
        }
    }

    /// Account end-of-run bookkeeping health (orphaned partial images).
    pub(crate) fn finalize_stats(&mut self) {
        self.stats.orphan_images_end = self
            .store
            .orphan_images(self.cur.as_ref().map(|c| c.rec.wave));
    }

    /// Borrow the engine out of a world (it was installed as the protocol).
    fn with<R>(w: &mut World, f: impl FnOnce(&mut Vcl, &mut RuntimeCore) -> R) -> R {
        let World { rt, proto } = w;
        let vcl = proto
            .as_any_mut()
            .downcast_mut::<Vcl>()
            .expect("world protocol is not Vcl");
        f(vcl, rt)
    }

    /// Arm the first wave timer. Called once by the runner after the world
    /// is constructed and ranks are spawned.
    pub fn start(world: &WorldRef, sc: &SimCtx) {
        let (at, handle, epoch, gen) = {
            let mut w = world.lock();
            let (delay, gen) = Vcl::with(&mut w, |vcl, _| {
                vcl.timer_gen += 1;
                (vcl.cfg.first_wave_delay, vcl.timer_gen)
            });
            (sc.now() + delay, w.rt.world_handle(), w.rt.epoch, gen)
        };
        Vcl::schedule_wave_at(sc, handle, at, epoch, gen);
    }

    /// Proactively start a wave *now* (e.g. a failure predictor fired, per
    /// the paper's conclusion). No-op if a wave is already in flight;
    /// supersedes the pending periodic timer.
    pub fn trigger_wave_now(world: &WorldRef, sc: &SimCtx) {
        let mut w = world.lock();
        if w.rt.job_complete() {
            return;
        }
        Vcl::with(&mut w, |vcl, _| vcl.timer_gen += 1);
        Vcl::begin_wave(&mut w, sc);
    }

    /// Schedule a wave to begin at `at` (epoch- and generation-guarded).
    pub fn schedule_wave_at(
        sc: &SimCtx,
        handle: std::sync::Weak<parking_lot::Mutex<World>>,
        at: SimTime,
        epoch: u64,
        gen: u64,
    ) {
        sc.schedule(at, move |sc| {
            let Some(world) = handle.upgrade() else {
                return;
            };
            let mut w = world.lock();
            if w.rt.epoch != epoch || w.rt.job_complete() {
                return;
            }
            if Vcl::with(&mut w, |vcl, _| vcl.timer_gen != gen) {
                return; // superseded by a trigger or restart
            }
            Vcl::begin_wave(&mut w, sc);
        });
    }

    /// Scheduler: send a marker to every rank.
    fn begin_wave(w: &mut World, sc: &SimCtx) {
        if Vcl::with(w, |vcl, _| {
            vcl.cur.is_some() || vcl.live_server_count() == 0
        }) {
            return; // a wave is already in flight, or no servers survive
        }
        let handle = w.rt.world_handle();
        let n = w.rt.size();
        let (wave, scheduler_node, ctl_bytes, targets) = Vcl::with(w, |vcl, rt| {
            vcl.wave_counter += 1;
            vcl.stats.waves_started += 1;
            vcl.cur = Some(VclWave::new(vcl.wave_counter, n, sc.now()));
            let targets: Vec<(Rank, NodeId)> =
                (0..n).map(|r| (r, rt.placement.node_of(r))).collect();
            (
                vcl.wave_counter,
                vcl.scheduler_node,
                vcl.cfg.control_bytes,
                targets,
            )
        });
        sc.trace_proto(ftmpi_sim::ProtoEvent::WaveStart { wave });
        for (r, node) in targets {
            let h = handle.clone();
            // Scheduler markers race data arrivals at each rank: key by the
            // destination process so the fork's op boundary is schedule-
            // independent. The `LanelessMarkers` regression fixture drops
            // the lane, re-opening that race for the schedule explorer.
            let lane = if w.rt.race_fixture == Some(ftmpi_mpi::RaceFixture::LanelessMarkers) {
                None
            } else {
                w.rt.ranks[r].pid.map(ftmpi_sim::Pid::lane)
            };
            send_control(
                w,
                sc,
                scheduler_node,
                node,
                ctl_bytes,
                lane,
                move |w, sc| {
                    let _ = &h;
                    Vcl::start_local_ckpt(w, sc, r, wave);
                },
            );
        }
    }

    /// A rank's daemon starts its local checkpoint (first marker of the
    /// wave, from the scheduler or from a peer channel).
    fn start_local_ckpt(w: &mut World, sc: &SimCtx, r: Rank, wave: u64) {
        if w.rt.ranks[r].status == RankStatus::Dead {
            // Undetected-dead rank (detection lag): its daemon died with the
            // task, so it cannot fork or forward markers. The wave stalls on
            // it and is aborted by the eventual restart.
            return;
        }
        let handle = w.rt.world_handle();
        let n = w.rt.size();
        let mut marker_targets: Vec<(Rank, NodeId, NodeId)> = Vec::new();
        let mut image_flows: Vec<(FlowSpec, NodeId)> = Vec::new();
        let mut fork_ops: Option<u64> = None;
        Vcl::with(w, |vcl, rt| {
            let Some(cur) = vcl.cur.as_mut() else { return };
            if cur.rec.wave != wave || cur.started[r] {
                return;
            }
            cur.started[r] = true;
            // Fork: the main process pauses for the CoW setup, then
            // computation continues while the clone streams the image.
            rt.add_penalty(r, vcl.cfg.fork_cost);
            let rs = &rt.ranks[r];
            let credit = rt.capture_credit(r, sc.now());
            if std::env::var("FTMPI_DEBUG").is_ok() {
                eprintln!(
                    "[vcl] capture r{r} at {} ops={} pending_seqs={:?}",
                    sc.now(),
                    rs.ops_completed,
                    rt.snapshot_pending(r)
                        .iter()
                        .map(|m| (m.src, m.seq))
                        .collect::<Vec<_>>()
                );
            }
            fork_ops = Some(rs.ops_completed);
            cur.rec.images[r] = RankImage {
                ops_completed: rs.ops_completed,
                time_credit: credit,
                taken_at: sc.now(),
                pending: rt.snapshot_pending(r),
                expect_seq: Vec::new(), // coordinated: global restarts reset
                send_seq: Vec::new(),
            };
            // Channel markers to every peer, FIFO with application traffic.
            let src_node = rt.placement.node_of(r);
            for s in 0..n {
                if s != r {
                    marker_targets.push((s, src_node, rt.placement.node_of(s)));
                }
            }
            // One stream per replica target; the local disk is written once.
            let targets = replica_targets(
                &vcl.server_nodes,
                vcl.server_node_of[r],
                vcl.cfg.replicas,
                &vcl.store,
            );
            cur.image_flows_left[r] = targets.len();
            for (i, server) in targets.into_iter().enumerate() {
                image_flows.push((
                    FlowSpec {
                        src: src_node,
                        dst: server,
                        bytes: vcl.cfg.image_bytes,
                        chunk: vcl.cfg.chunk_bytes,
                        also_disk: vcl.cfg.write_local_disk && i == 0,
                    },
                    server,
                ));
            }
        });
        if let Some(ops) = fork_ops {
            sc.trace_proto(ftmpi_sim::ProtoEvent::Fork { wave, rank: r, ops });
        }
        // Inject channel markers through the same network path as app
        // messages (per-channel FIFO is what Chandy–Lamport relies on).
        for (s, src_node, dst_node) in marker_targets {
            sc.trace_proto(ftmpi_sim::ProtoEvent::MarkerSend {
                wave,
                from: r,
                to: s,
            });
            let ctl_bytes = Vcl::with(w, |vcl, _| vcl.cfg.control_bytes);
            let penalty = w.rt.cfg.profile.message_penalty(ctl_bytes);
            let delivered =
                w.rt.net
                    .transfer_with_overhead(src_node, dst_node, ctl_bytes, sc.now(), penalty)
                    .delivered;
            let h = handle.clone();
            let epoch = w.rt.epoch;
            // Same lane as app messages to rank `s`: the marker's position
            // in the channel relative to data arrivals is protocol state
            // (dropped under the `LanelessMarkers` regression fixture).
            let lane = if w.rt.race_fixture == Some(ftmpi_mpi::RaceFixture::LanelessMarkers) {
                None
            } else {
                w.rt.ranks[s].pid.map(ftmpi_sim::Pid::lane)
            };
            sc.schedule_keyed(delivered, lane, move |sc| {
                let Some(world) = h.upgrade() else { return };
                let mut w = world.lock();
                if w.rt.epoch != epoch {
                    return;
                }
                Vcl::on_channel_marker(&mut w, sc, r, s, wave);
            });
        }
        for (spec, server) in image_flows {
            Vcl::start_image_stream(w, sc, spec, r, wave, server);
        }
    }

    /// Launch one replica stream of rank `r`'s wave-`wave` image toward
    /// `server`, under the job's bounded retry budget: if the target stays
    /// unreachable behind a link fault or partition the push surrenders to
    /// [`Vcl::image_push_failed`] and falls back to another replica.
    fn start_image_stream(
        w: &mut World,
        sc: &SimCtx,
        spec: FlowSpec,
        r: Rank,
        wave: u64,
        server: NodeId,
    ) {
        let retry = Vcl::with(w, |vcl, _| FlowRetry::bounded(&vcl.cfg));
        let fail_spec = spec.clone();
        start_flow_guarded(
            w,
            sc,
            spec,
            retry,
            move |w, sc| Vcl::image_push_failed(w, sc, r, wave, fail_spec),
            move |w, sc, done_at| Vcl::image_stored(w, sc, r, wave, server, done_at),
        );
    }

    /// A replica stream of rank `r`'s image spent its whole retry budget
    /// against an unreachable server. The server itself may be perfectly
    /// healthy — nothing is dropped from the store — but this wave cannot
    /// land its image there, so reroute the push to the next server that is
    /// live, reachable from the source node, and not already holding this
    /// image. With no such server the wave can never commit: abort it and
    /// re-arm the periodic timer (the network-fault analogue of
    /// [`Vcl::on_server_failed`]).
    fn image_push_failed(w: &mut World, sc: &SimCtx, r: Rank, wave: u64, spec: FlowSpec) {
        enum Fallback {
            Stale,
            Reroute(NodeId),
            Abort,
        }
        let fb = Vcl::with(w, |vcl, rt| {
            let current = vcl
                .cur
                .as_ref()
                .is_some_and(|cur| cur.rec.wave == wave && cur.image_flows_left[r] > 0);
            if !current {
                return Fallback::Stale; // the wave died while we backed off
            }
            vcl.stats.retries_exhausted += 1;
            // A *tearing* cut severed this stream mid-flight: the server is
            // left holding a truncated prefix that can never hash to the
            // image's digest. Record the torn replica (damaged bits, not a
            // placement — no `ImageStore` trace) so fetches and scrubs must
            // walk past it; the `server_holds` reroute filter below then
            // keeps this wave from re-targeting the torn server. A dead or
            // quarantined target keeps nothing (`record_image` drops the
            // write), matching a store that died with its server.
            if vcl.cfg.torn_writes && rt.net.cut_tears(spec.src, spec.dst) {
                let expected = vcl
                    .cur
                    .as_ref()
                    .map(|cur| cur.rec.images[r].digest(wave, r))
                    .unwrap_or(0);
                let torn = vcl.store.record_image(
                    wave,
                    r,
                    StoredImage {
                        server: spec.dst,
                        // The store tracks logical slots, not physical
                        // bytes; the truncated prefix occupies the slot.
                        bytes: spec.bytes,
                        stored_at: sc.now(),
                        digest: expected ^ TORN_WRITE,
                    },
                );
                if torn {
                    sc.trace_proto(ftmpi_sim::ProtoEvent::Corrupt {
                        wave,
                        rank: r,
                        node: spec.dst.0 as u64,
                    });
                }
            }
            let fleet = &vcl.server_nodes;
            let pos = fleet.iter().position(|n| *n == spec.dst).unwrap_or(0);
            // Round-trip reachability, as in Pcl: never reroute an image
            // push across a half-open cut whose ack path is dead. A
            // quarantined server is as unplaceable as a dead one.
            let replacement = (1..fleet.len())
                .map(|i| fleet[(pos + i) % fleet.len()])
                .find(|&cand| {
                    !vcl.store.server_unplaceable(cand)
                        && rt.net.reachable(spec.src, cand)
                        && rt.net.reachable(cand, spec.src)
                        && !vcl.store.server_holds(wave, r, cand)
                });
            match replacement {
                Some(cand) => {
                    vcl.stats.images_rerouted += 1;
                    Fallback::Reroute(cand)
                }
                None => Fallback::Abort,
            }
        });
        match fb {
            Fallback::Stale => {}
            Fallback::Reroute(cand) => {
                let new_spec = FlowSpec { dst: cand, ..spec };
                Vcl::start_image_stream(w, sc, new_spec, r, wave, cand);
            }
            Fallback::Abort => {
                let aborted = Vcl::abort_wave(w, sc);
                if aborted && !w.rt.job_complete() {
                    let handle = w.rt.world_handle();
                    let epoch = w.rt.epoch;
                    let next = Vcl::with(w, |vcl, _| {
                        if vcl.live_server_count() == 0 {
                            return None;
                        }
                        vcl.timer_gen += 1;
                        Some((sc.now() + vcl.cfg.period, vcl.timer_gen))
                    });
                    if let Some((at, gen)) = next {
                        Vcl::schedule_wave_at(sc, handle, at, epoch, gen);
                    }
                }
            }
        }
    }

    /// Channel marker from `from` arrived at `to`.
    fn on_channel_marker(w: &mut World, sc: &SimCtx, from: Rank, to: Rank, wave: u64) {
        // Receiving any marker starts the local checkpoint if needed.
        Vcl::start_local_ckpt(w, sc, to, wave);
        let handle = w.rt.world_handle();
        let mut log_flow: Option<(FlowSpec, u64)> = None;
        let mut fresh = false;
        Vcl::with(w, |vcl, rt| {
            let Some(cur) = vcl.cur.as_mut() else { return };
            if cur.rec.wave != wave || cur.marker_from[to][from] {
                return;
            }
            cur.marker_from[to][from] = true;
            fresh = true;
            cur.markers_missing[to] -= 1;
            if cur.markers_missing[to] == 0 {
                cur.channels_closed[to] = true;
                // Ship the logged channel state to the server.
                let bytes: u64 = cur.rec.logs[to].iter().map(|m| m.bytes.max(64)).sum();
                if bytes == 0 {
                    cur.log_done[to] = true;
                } else {
                    log_flow = Some((
                        FlowSpec {
                            src: rt.placement.node_of(to),
                            dst: vcl.server_node_of[to],
                            bytes,
                            chunk: vcl.cfg.chunk_bytes,
                            also_disk: false,
                        },
                        bytes,
                    ));
                }
            }
        });
        if fresh {
            sc.trace_proto(ftmpi_sim::ProtoEvent::MarkerRecv { wave, from, to });
        }
        match log_flow {
            Some((spec, bytes)) => {
                let h = handle.clone();
                start_flow(w, sc, spec, move |w, sc, _| {
                    let _ = &h;
                    Vcl::with(w, |vcl, _| {
                        vcl.stats.log_bytes_sent += bytes;
                        if let Some(cur) = vcl.cur.as_mut() {
                            if cur.rec.wave == wave {
                                cur.log_done[to] = true;
                            }
                        }
                    });
                    Vcl::maybe_ack(w, sc, to, wave);
                });
            }
            None => Vcl::maybe_ack(w, sc, to, wave),
        }
    }

    /// One replica stream of rank `r`'s image landed on `server`. The image
    /// is done once every replica landed; streams whose wave was aborted
    /// meanwhile (mid-wave server failure) are dropped here. The stored
    /// record carries the image's content digest — what verify-on-fetch
    /// later checks against. A write the store drops because the target was
    /// quarantined while the stream was in flight re-enters the reroute
    /// path: the replica must land on a placeable server for the wave to
    /// commit.
    fn image_stored(
        w: &mut World,
        sc: &SimCtx,
        r: Rank,
        wave: u64,
        server: NodeId,
        done_at: SimTime,
    ) {
        enum Landing {
            Stale,
            Stored,
            Dropped(FlowSpec),
        }
        let landing = Vcl::with(w, |vcl, rt| {
            let current = vcl
                .cur
                .as_ref()
                .is_some_and(|cur| cur.rec.wave == wave && cur.image_flows_left[r] > 0);
            if !current {
                return Landing::Stale;
            }
            vcl.stats.image_bytes_sent += vcl.cfg.image_bytes;
            let digest = vcl
                .cur
                .as_ref()
                .map(|cur| cur.rec.images[r].digest(wave, r))
                .unwrap_or(0);
            let recorded = vcl.store.record_image(
                wave,
                r,
                StoredImage {
                    server,
                    bytes: vcl.cfg.image_bytes,
                    stored_at: done_at,
                    digest,
                },
            );
            if !recorded {
                return Landing::Dropped(FlowSpec {
                    src: rt.placement.node_of(r),
                    dst: server,
                    bytes: vcl.cfg.image_bytes,
                    chunk: vcl.cfg.chunk_bytes,
                    also_disk: false,
                });
            }
            let cur = vcl.cur.as_mut().expect("checked current above");
            cur.image_flows_left[r] -= 1;
            if cur.image_flows_left[r] == 0 {
                cur.image_done[r] = true;
            }
            Landing::Stored
        });
        match landing {
            Landing::Stale => {}
            Landing::Stored => {
                sc.trace_proto(ftmpi_sim::ProtoEvent::ImageStore {
                    wave,
                    rank: r,
                    node: server.0 as u64,
                });
                Vcl::maybe_ack(w, sc, r, wave);
            }
            Landing::Dropped(spec) => Vcl::image_push_failed(w, sc, r, wave, spec),
        }
    }

    /// Send the scheduler acknowledgement once image + channels + log are
    /// all complete for rank `r`.
    fn maybe_ack(w: &mut World, sc: &SimCtx, r: Rank, wave: u64) {
        let _handle = w.rt.world_handle();
        let mut send: Option<(NodeId, NodeId, u64)> = None;
        Vcl::with(w, |vcl, rt| {
            let Some(cur) = vcl.cur.as_mut() else { return };
            if cur.rec.wave != wave
                || cur.acked[r]
                || !cur.image_done[r]
                || !cur.channels_closed[r]
                || !cur.log_done[r]
            {
                return;
            }
            cur.acked[r] = true;
            send = Some((
                rt.placement.node_of(r),
                vcl.scheduler_node,
                vcl.cfg.control_bytes,
            ));
        });
        if let Some((src, dst, bytes)) = send {
            send_control(w, sc, src, dst, bytes, None, move |w, sc| {
                Vcl::on_ack(w, sc, wave);
            });
        }
    }

    /// Scheduler: collect an acknowledgement; commit when all arrived.
    fn on_ack(w: &mut World, sc: &SimCtx, wave: u64) {
        let handle = w.rt.world_handle();
        let n = w.rt.size();
        let mut next_at: Option<(SimTime, u64)> = None;
        let epoch = w.rt.epoch;
        Vcl::with(w, |vcl, _| {
            let Some(cur) = vcl.cur.as_mut() else { return };
            if cur.rec.wave != wave {
                return;
            }
            cur.acks += 1;
            if cur.acks < n {
                return;
            }
            // Wave complete: commit and arm the next timer — "the timeout
            // for the next checkpoint wave is set as soon as every process
            // has transferred its image".
            let mut wave_state = vcl.cur.take().expect("current wave");
            wave_state.rec.committed_at = sc.now();
            vcl.stats.waves_committed += 1;
            vcl.stats.wave_timings.push(WaveTiming {
                wave,
                started_at: wave_state.rec.started_at,
                committed_at: sc.now(),
            });
            vcl.store.commit(wave);
            if std::env::var("FTMPI_DEBUG").is_ok() {
                for (d, log) in wave_state.rec.logs.iter().enumerate() {
                    eprintln!(
                        "[vcl] wave {wave} log[{d}] seqs={:?}",
                        log.iter().map(|m| (m.src, m.seq)).collect::<Vec<_>>()
                    );
                }
            }
            vcl.committed.push(wave_state.rec);
            let retain = vcl.cfg.retained_waves.max(1);
            while vcl.committed.len() > retain {
                vcl.committed.remove(0);
            }
            vcl.timer_gen += 1;
            next_at = Some((sc.now() + vcl.cfg.period, vcl.timer_gen));
        });
        if next_at.is_some() {
            sc.trace_proto(ftmpi_sim::ProtoEvent::WaveCommit { wave });
        }
        if let Some((at, gen)) = next_at {
            Vcl::schedule_wave_at(sc, handle, at, epoch, gen);
        }
    }
}

impl Protocol for Vcl {
    fn name(&self) -> &'static str {
        "vcl"
    }

    fn on_runtime_entry(&mut self, _rt: &mut RuntimeCore, _sc: &SimCtx, _rank: Rank) {
        // Markers are handled asynchronously by the communication daemon;
        // nothing is deferred to library entry in the non-blocking protocol.
    }

    fn on_send_post(&mut self, _rt: &mut RuntimeCore, _sc: &SimCtx, _msg: &AppMsg) -> SendAction {
        SendAction::Proceed // never blocks communication
    }

    fn on_arrival(&mut self, rt: &mut RuntimeCore, sc: &SimCtx, msg: &AppMsg) -> ArrivalAction {
        // Chandy–Lamport channel-state recording: log messages received
        // after the local checkpoint and before the sender's marker.
        if msg.src != msg.dst {
            if let Some(cur) = self.cur.as_mut() {
                if cur.started[msg.dst] && !cur.marker_from[msg.dst][msg.src] {
                    sc.trace_proto(ftmpi_sim::ProtoEvent::LogMsg {
                        wave: cur.rec.wave,
                        src: msg.src,
                        dst: msg.dst,
                        seq: msg.seq,
                    });
                    cur.rec.logs[msg.dst].push(msg.clone());
                    self.stats.msgs_logged += 1;
                }
            }
        }
        let _ = rt;
        ArrivalAction::Deliver
    }

    fn on_rank_finished(&mut self, rt: &mut RuntimeCore, sc: &SimCtx, rank: Rank) {
        // Finished ranks keep their daemon: wave participation continues
        // through the event-driven paths above.
        debug_assert!(rt.ranks[rank].status != RankStatus::Dead);
        let _ = (sc, rank);
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}
