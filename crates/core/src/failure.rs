//! Failure injection.
//!
//! The paper emulates failures "by killing the task, not the operating
//! system", with immediate detection through the broken TCP connection.
//! [`FailurePlan`] expresses either explicit kills (deterministic tests and
//! recovery experiments) or an MTTF-driven Poisson process (the extension
//! experiments suggested by the paper's conclusion: the best wave period is
//! tied to the system MTTF). Beyond the paper's model, a plan can also
//! schedule checkpoint-*server* node failures: every image replica stored on
//! the failed server becomes unavailable and a later restart must fall back
//! to an older committed wave (or scratch) unless `replicas > 1` kept
//! another copy alive.
//!
//! ## Kill semantics
//!
//! - Kill times in [`FailurePlan::poisson`] are **strictly increasing**:
//!   exponential inter-arrival gaps are clamped to ≥ 1 ns so two kills never
//!   share an instant (a sub-nanosecond gap would otherwise round to zero
//!   and make recovery order tiebreak-dependent).
//! - The **same victim back-to-back** is legal. If the second kill lands
//!   while the first restart is still staging, it is a *mid-recovery* kill:
//!   the restart restarts cleanly from the same committed wave. If it lands
//!   during the detection lag while the victim is already dead, it is
//!   absorbed as a no-op (one task cannot die twice).
//! - A kill after job completion is a no-op.
//! - **Cross-schedule instants are legal.** The 1 ns clamp only orders kills
//!   *within one* [`FailurePlan::poisson`] (or
//!   [`FailurePlan::poisson_servers`]) schedule; a rank kill and a server
//!   kill — whether hand-placed or produced by two independently seeded
//!   Poisson processes — may land in the same nanosecond. The injection
//!   layer tolerates this without dedupe tricks: server failures are
//!   idempotent (`CheckpointStore::fail_server` marks a `BTreeSet`, so
//!   repeated or coincident failures of one server collapse), and a rank
//!   kill landing at the same instant sees the server already dead by the
//!   time its detection fires, because the runner schedules server kills
//!   before rank kills at equal times.
//! - **Node kills are correlated failures.** [`FailurePlan::node_kills`]
//!   names a *node*: at the scheduled time every rank placed on that node
//!   dies atomically, and a checkpoint server colocated on it fails too —
//!   one cable pull taking out both ranks of a dual-processor node and the
//!   images it stored.

use ftmpi_mpi::Rank;
use ftmpi_sim::{SimDuration, SimTime};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A schedule of task kills and checkpoint-server failures.
#[derive(Debug, Clone, Default)]
pub struct FailurePlan {
    /// `(time, victim rank)` pairs, in any order.
    pub kills: Vec<(SimTime, Rank)>,
    /// `(time, server index)` pairs, in any order. The index selects a
    /// server within the deployment's server fleet (`0..servers`), not a
    /// raw node id — plans stay valid across topology changes.
    pub server_kills: Vec<(SimTime, usize)>,
    /// `(time, node id)` pairs, in any order: correlated whole-node deaths.
    /// At the scheduled time every rank placed on the node is killed in one
    /// atomic detection, and a server whose fleet slot lives on the node
    /// fails first (see the module docs). Node ids are raw topology ids —
    /// unlike server indices they are inherently placement-specific.
    pub node_kills: Vec<(SimTime, usize)>,
}

impl FailurePlan {
    /// No failures (the paper's performance figures are failure-free).
    pub fn none() -> FailurePlan {
        FailurePlan::default()
    }

    /// A single kill of `victim` at `at`.
    pub fn kill_at(at: SimTime, victim: Rank) -> FailurePlan {
        FailurePlan::none().with_kill(at, victim)
    }

    /// A single checkpoint-server failure at `at`.
    pub fn server_kill_at(at: SimTime, server: usize) -> FailurePlan {
        FailurePlan::none().with_server_kill(at, server)
    }

    /// A single whole-node death at `at`.
    pub fn node_kill_at(at: SimTime, node: usize) -> FailurePlan {
        FailurePlan::none().with_node_kill(at, node)
    }

    /// Builder: add a rank kill.
    pub fn with_kill(mut self, at: SimTime, victim: Rank) -> FailurePlan {
        self.kills.push((at, victim));
        self
    }

    /// Builder: add a checkpoint-server failure.
    pub fn with_server_kill(mut self, at: SimTime, server: usize) -> FailurePlan {
        self.server_kills.push((at, server));
        self
    }

    /// Builder: add a correlated whole-node death.
    pub fn with_node_kill(mut self, at: SimTime, node: usize) -> FailurePlan {
        self.node_kills.push((at, node));
        self
    }

    /// Poisson failure process: system-wide exponential inter-arrival times
    /// with the given mean (`mttf`), uniformly random victims, until
    /// `horizon`. Deterministic for a given seed. Kill times are strictly
    /// increasing (gaps clamp to ≥ 1 ns, see the module docs); the same
    /// victim may repeat back-to-back, which exercises the mid-recovery and
    /// detection-lag paths.
    pub fn poisson(mttf: SimDuration, horizon: SimTime, nranks: usize, seed: u64) -> FailurePlan {
        assert!(nranks > 0 && !mttf.is_zero());
        let mut rng = StdRng::seed_from_u64(seed);
        let mut kills = Vec::new();
        let mut t = SimTime::ZERO;
        loop {
            // Inverse-CDF exponential sampling.
            let u: f64 = rng.gen_range(f64::EPSILON..1.0);
            let gap = SimDuration::from_secs_f64(-mttf.as_secs_f64() * u.ln());
            // Tiny samples round to zero nanoseconds; clamp so no two kills
            // share an instant.
            t += gap.max(SimDuration::from_nanos(1));
            if t > horizon {
                break;
            }
            kills.push((t, rng.gen_range(0..nranks)));
        }
        FailurePlan {
            kills,
            ..FailurePlan::default()
        }
    }

    /// MTTF-driven Poisson process over the checkpoint-*server* fleet: the
    /// server-side twin of [`FailurePlan::poisson`], with the same
    /// strictly-increasing clamp and seed determinism. Pair the two (with
    /// different seeds) to model compute and storage failing independently;
    /// entries from the two schedules may then share a nanosecond — see the
    /// module docs for why that is safe.
    pub fn poisson_servers(
        mttf: SimDuration,
        horizon: SimTime,
        nservers: usize,
        seed: u64,
    ) -> FailurePlan {
        assert!(nservers > 0 && !mttf.is_zero());
        let mut rng = StdRng::seed_from_u64(seed);
        let mut server_kills = Vec::new();
        let mut t = SimTime::ZERO;
        loop {
            let u: f64 = rng.gen_range(f64::EPSILON..1.0);
            let gap = SimDuration::from_secs_f64(-mttf.as_secs_f64() * u.ln());
            t += gap.max(SimDuration::from_nanos(1));
            if t > horizon {
                break;
            }
            server_kills.push((t, rng.gen_range(0..nservers)));
        }
        FailurePlan {
            server_kills,
            ..FailurePlan::default()
        }
    }

    /// Merge another plan's schedules into this one (e.g. a rank Poisson
    /// process with a server Poisson process).
    pub fn merged(mut self, other: FailurePlan) -> FailurePlan {
        self.kills.extend(other.kills);
        self.server_kills.extend(other.server_kills);
        self.node_kills.extend(other.node_kills);
        self
    }

    /// Number of scheduled failures (rank kills plus server failures plus
    /// node deaths).
    pub fn len(&self) -> usize {
        self.kills.len() + self.server_kills.len() + self.node_kills.len()
    }

    /// True when no failures of any kind are scheduled.
    pub fn is_empty(&self) -> bool {
        self.kills.is_empty() && self.server_kills.is_empty() && self.node_kills.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_is_deterministic_per_seed() {
        let a = FailurePlan::poisson(
            SimDuration::from_secs(100),
            SimTime::from_nanos(3_600_000_000_000),
            16,
            42,
        );
        let b = FailurePlan::poisson(
            SimDuration::from_secs(100),
            SimTime::from_nanos(3_600_000_000_000),
            16,
            42,
        );
        assert_eq!(a.kills, b.kills);
        let c = FailurePlan::poisson(
            SimDuration::from_secs(100),
            SimTime::from_nanos(3_600_000_000_000),
            16,
            43,
        );
        assert_ne!(a.kills, c.kills);
    }

    #[test]
    fn poisson_rate_is_roughly_right() {
        // 1 hour horizon, 100 s MTTF → ≈36 failures.
        let plan = FailurePlan::poisson(
            SimDuration::from_secs(100),
            SimTime::from_nanos(3_600_000_000_000),
            8,
            7,
        );
        assert!(
            (20..=60).contains(&plan.len()),
            "unexpected failure count {}",
            plan.len()
        );
        assert!(plan.kills.iter().all(|(_, v)| *v < 8));
    }

    #[test]
    fn poisson_kill_times_strictly_increase() {
        // A microscopic MTTF makes nearly every exponential sample round to
        // zero nanoseconds; the 1 ns clamp must still keep times strictly
        // increasing so same-instant kills cannot occur.
        let plan = FailurePlan::poisson(
            SimDuration::from_nanos(1),
            SimTime::from_nanos(10_000),
            4,
            9,
        );
        assert!(
            plan.len() > 100,
            "expected a dense plan, got {}",
            plan.len()
        );
        for w in plan.kills.windows(2) {
            assert!(w[0].0 < w[1].0, "kills share an instant: {:?}", w);
        }
    }

    #[test]
    fn poisson_can_repeat_a_victim_back_to_back() {
        // Documented semantics: the same rank may be the next victim again
        // before the previous recovery finishes. With one rank every kill
        // repeats the victim — the plan must not dedupe them away.
        let plan = FailurePlan::poisson(
            SimDuration::from_secs(1),
            SimTime::from_nanos(60_000_000_000),
            1,
            5,
        );
        assert!(plan.len() >= 2);
        assert!(plan.kills.iter().all(|(_, v)| *v == 0));
    }

    #[test]
    fn kill_at_builds_single_entry() {
        let p = FailurePlan::kill_at(SimTime::from_nanos(5), 3);
        assert_eq!(p.len(), 1);
        assert!(!p.is_empty());
        assert!(FailurePlan::none().is_empty());
    }

    #[test]
    fn server_kills_count_toward_len() {
        let p = FailurePlan::server_kill_at(SimTime::from_nanos(7), 1);
        assert_eq!(p.len(), 1);
        assert!(!p.is_empty());
        let p = p.with_kill(SimTime::from_nanos(9), 0);
        assert_eq!(p.len(), 2);
        let p = FailurePlan::none().with_server_kill(SimTime::from_nanos(3), 0);
        assert_eq!(p.server_kills, vec![(SimTime::from_nanos(3), 0)]);
    }

    #[test]
    fn node_kills_count_toward_len() {
        let p = FailurePlan::node_kill_at(SimTime::from_nanos(11), 2);
        assert_eq!(p.len(), 1);
        assert!(!p.is_empty());
        let p = p.with_node_kill(SimTime::from_nanos(13), 0);
        assert_eq!(
            p.node_kills,
            vec![(SimTime::from_nanos(11), 2), (SimTime::from_nanos(13), 0)]
        );
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn poisson_servers_is_deterministic_and_in_range() {
        let hour = SimTime::from_nanos(3_600_000_000_000);
        let a = FailurePlan::poisson_servers(SimDuration::from_secs(200), hour, 4, 42);
        let b = FailurePlan::poisson_servers(SimDuration::from_secs(200), hour, 4, 42);
        assert_eq!(a.server_kills, b.server_kills);
        assert!(a.kills.is_empty() && a.node_kills.is_empty());
        assert!(
            (8..=35).contains(&a.len()),
            "≈18 server failures expected, got {}",
            a.len()
        );
        assert!(a.server_kills.iter().all(|(_, s)| *s < 4));
        for w in a.server_kills.windows(2) {
            assert!(w[0].0 < w[1].0, "server kills share an instant: {w:?}");
        }
    }

    #[test]
    fn same_nanosecond_across_schedules_is_legal_and_survives_merge() {
        // The strictly-increasing clamp orders kills *within* one Poisson
        // schedule; two independently seeded schedules give no such
        // guarantee across each other. Build the worst case explicitly —
        // a rank kill and a server kill in the same nanosecond — and check
        // the plan carries both entries verbatim (injection-side safety is
        // covered by `coincident_server_and_rank_kill_*` in
        // tests/protocols.rs: `fail_server` is an idempotent BTreeSet
        // insert, and the runner orders server kills before rank kills at
        // equal times).
        let t = SimTime::from_nanos(500);
        let p = FailurePlan::poisson(SimDuration::from_secs(1), SimTime::from_nanos(2), 2, 1)
            .merged(FailurePlan::kill_at(t, 0))
            .merged(FailurePlan::server_kill_at(t, 0))
            .merged(FailurePlan::node_kill_at(t, 3));
        assert!(p.kills.contains(&(t, 0)));
        assert!(p.server_kills.contains(&(t, 0)));
        assert!(p.node_kills.contains(&(t, 3)));
        // Dense schedules with different seeds *can* collide across
        // schedules: verify at least that merging two dense plans keeps
        // every entry (no dedupe at the plan layer).
        let dense_r =
            FailurePlan::poisson(SimDuration::from_nanos(1), SimTime::from_nanos(1_000), 2, 7);
        let dense_s = FailurePlan::poisson_servers(
            SimDuration::from_nanos(1),
            SimTime::from_nanos(1_000),
            2,
            8,
        );
        let merged = dense_r.clone().merged(dense_s.clone());
        assert_eq!(merged.len(), dense_r.len() + dense_s.len());
        let shared = dense_r
            .kills
            .iter()
            .filter(|(t, _)| dense_s.server_kills.iter().any(|(ts, _)| ts == t))
            .count();
        assert!(
            shared > 0,
            "dense independent schedules should collide in this configuration"
        );
    }
}
