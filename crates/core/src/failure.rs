//! Failure injection.
//!
//! The paper emulates failures "by killing the task, not the operating
//! system", with immediate detection through the broken TCP connection.
//! [`FailurePlan`] expresses either explicit kills (deterministic tests and
//! recovery experiments) or an MTTF-driven Poisson process (the extension
//! experiments suggested by the paper's conclusion: the best wave period is
//! tied to the system MTTF). Beyond the paper's model, a plan can also
//! schedule checkpoint-*server* node failures: every image replica stored on
//! the failed server becomes unavailable and a later restart must fall back
//! to an older committed wave (or scratch) unless `replicas > 1` kept
//! another copy alive.
//!
//! ## Kill semantics
//!
//! - Kill times in [`FailurePlan::poisson`] are **strictly increasing**:
//!   exponential inter-arrival gaps are clamped to ≥ 1 ns so two kills never
//!   share an instant (a sub-nanosecond gap would otherwise round to zero
//!   and make recovery order tiebreak-dependent).
//! - The **same victim back-to-back** is legal. If the second kill lands
//!   while the first restart is still staging, it is a *mid-recovery* kill:
//!   the restart restarts cleanly from the same committed wave. If it lands
//!   during the detection lag while the victim is already dead, it is
//!   absorbed as a no-op (one task cannot die twice).
//! - A kill after job completion is a no-op.
//! - **Cross-schedule instants are legal.** The 1 ns clamp only orders kills
//!   *within one* [`FailurePlan::poisson`] (or
//!   [`FailurePlan::poisson_servers`]) schedule; a rank kill and a server
//!   kill — whether hand-placed or produced by two independently seeded
//!   Poisson processes — may land in the same nanosecond. The injection
//!   layer tolerates this without dedupe tricks: server failures are
//!   idempotent (`CheckpointStore::fail_server` marks a `BTreeSet`, so
//!   repeated or coincident failures of one server collapse), and a rank
//!   kill landing at the same instant sees the server already dead by the
//!   time its detection fires, because the runner schedules server kills
//!   before rank kills at equal times.
//! - **Node kills are correlated failures.** [`FailurePlan::node_kills`]
//!   names a *node*: at the scheduled time every rank placed on that node
//!   dies atomically, and a checkpoint server colocated on it fails too —
//!   one cable pull taking out both ranks of a dual-processor node and the
//!   images it stored.

use ftmpi_mpi::Rank;
use ftmpi_sim::{SimDuration, SimTime};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One scheduled bit-flip on a checkpoint server's stored replicas.
///
/// The server is named by fleet index (like
/// [`FailurePlan::server_kills`]), so plans stay valid across topology
/// changes. With `rank: Some(r)` the flip damages the replica of `r`'s
/// image belonging to the newest wave the server currently holds it for;
/// with `rank: None` it is a whole-disk rot event flipping every replica
/// on the server. Either way the event is *silent*: nothing in the
/// runtime reacts until verify-on-fetch or the scrubber reads the
/// damaged copy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CorruptionEvent {
    /// When the stored bits flip.
    pub at: SimTime,
    /// Checkpoint-server fleet index whose disk is damaged.
    pub server: usize,
    /// Rank whose stored image is hit, or `None` for every replica on the
    /// server.
    pub rank: Option<Rank>,
}

/// A seeded silent-corruption process on one checkpoint server: from
/// `start` to `end`, replica damage arrives with exponentially
/// distributed gaps (mean `mtbc` — mean time between corruptions), each
/// event hitting a uniformly drawn rank's stored image. Expansion to
/// concrete [`CorruptionEvent`]s is a pure function of the spec
/// (splitmix64 stream keyed by `seed` and `server`, mirroring
/// `LinkFlapSpec`), so two runs of the same plan damage the identical
/// replicas at the identical instants.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SilentCorruptionSpec {
    /// Checkpoint-server fleet index the process runs on.
    pub server: usize,
    /// Mean time between corruption events.
    pub mtbc: SimDuration,
    /// Window start.
    pub start: SimTime,
    /// Window end.
    pub end: SimTime,
    /// Rank universe the per-event target is drawn from (`0..ranks`).
    pub ranks: usize,
    /// PRNG seed; the stream is also keyed by the server index so several
    /// specs may share a seed without sharing a schedule.
    pub seed: u64,
}

/// One step of the splitmix64 generator — the workspace's standard tiny
/// PRNG for seeded, dependency-free randomness (same recurrence as the
/// flap expansion in `ftmpi-net`).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// An exponential draw with the given mean, never shorter than one
/// nanosecond (a zero-length gap would schedule two corruption events at
/// the same instant on the same lane).
fn exp_draw(state: &mut u64, mean: SimDuration) -> SimDuration {
    let u = ((splitmix64(state) >> 11) as f64 + 0.5) / (1u64 << 53) as f64;
    let ns = -(mean.as_nanos() as f64) * u.ln();
    SimDuration::from_nanos((ns.max(1.0)) as u64)
}

impl SilentCorruptionSpec {
    /// Expand the renewal process into concrete per-rank bit-flip events,
    /// strictly increasing in time within the window.
    pub fn expand(&self) -> Vec<CorruptionEvent> {
        if self.end <= self.start || self.mtbc.is_zero() || self.ranks == 0 {
            return Vec::new();
        }
        // Fold the server index into the stream so specs sharing a seed
        // get distinct schedules.
        let mut key = self.server as u64;
        let mut state = self.seed ^ splitmix64(&mut key);
        let mut events = Vec::new();
        let mut t = self.start;
        loop {
            t += exp_draw(&mut state, self.mtbc);
            if t >= self.end {
                break;
            }
            let rank = (splitmix64(&mut state) % self.ranks as u64) as Rank;
            events.push(CorruptionEvent {
                at: t,
                server: self.server,
                rank: Some(rank),
            });
        }
        events
    }
}

/// A schedule of task kills and checkpoint-server failures.
#[derive(Debug, Clone, Default)]
pub struct FailurePlan {
    /// `(time, victim rank)` pairs, in any order.
    pub kills: Vec<(SimTime, Rank)>,
    /// `(time, server index)` pairs, in any order. The index selects a
    /// server within the deployment's server fleet (`0..servers`), not a
    /// raw node id — plans stay valid across topology changes.
    pub server_kills: Vec<(SimTime, usize)>,
    /// `(time, node id)` pairs, in any order: correlated whole-node deaths.
    /// At the scheduled time every rank placed on the node is killed in one
    /// atomic detection, and a server whose fleet slot lives on the node
    /// fails first (see the module docs). Node ids are raw topology ids —
    /// unlike server indices they are inherently placement-specific.
    pub node_kills: Vec<(SimTime, usize)>,
    /// Explicit bit-flip events on stored replicas, in any order.
    pub corruptions: Vec<CorruptionEvent>,
    /// Seeded silent-corruption processes, expanded to explicit events at
    /// schedule time (see
    /// [`expanded_corruptions`](FailurePlan::expanded_corruptions)).
    pub silent_corruption: Vec<SilentCorruptionSpec>,
}

impl FailurePlan {
    /// No failures (the paper's performance figures are failure-free).
    pub fn none() -> FailurePlan {
        FailurePlan::default()
    }

    /// A single kill of `victim` at `at`.
    pub fn kill_at(at: SimTime, victim: Rank) -> FailurePlan {
        FailurePlan::none().with_kill(at, victim)
    }

    /// A single checkpoint-server failure at `at`.
    pub fn server_kill_at(at: SimTime, server: usize) -> FailurePlan {
        FailurePlan::none().with_server_kill(at, server)
    }

    /// A single whole-node death at `at`.
    pub fn node_kill_at(at: SimTime, node: usize) -> FailurePlan {
        FailurePlan::none().with_node_kill(at, node)
    }

    /// Builder: add a rank kill.
    pub fn with_kill(mut self, at: SimTime, victim: Rank) -> FailurePlan {
        self.kills.push((at, victim));
        self
    }

    /// Builder: add a checkpoint-server failure.
    pub fn with_server_kill(mut self, at: SimTime, server: usize) -> FailurePlan {
        self.server_kills.push((at, server));
        self
    }

    /// Builder: add a correlated whole-node death.
    pub fn with_node_kill(mut self, at: SimTime, node: usize) -> FailurePlan {
        self.node_kills.push((at, node));
        self
    }

    /// Builder: add a bit-flip of `rank`'s newest stored image on fleet
    /// server `server` at `at`.
    pub fn with_corruption(mut self, at: SimTime, server: usize, rank: Rank) -> FailurePlan {
        self.corruptions.push(CorruptionEvent {
            at,
            server,
            rank: Some(rank),
        });
        self
    }

    /// Builder: add a whole-disk rot event flipping every replica stored
    /// on fleet server `server` at `at`.
    pub fn with_server_corruption(mut self, at: SimTime, server: usize) -> FailurePlan {
        self.corruptions.push(CorruptionEvent {
            at,
            server,
            rank: None,
        });
        self
    }

    /// Builder: add a seeded silent-corruption process.
    pub fn with_silent_corruption(mut self, spec: SilentCorruptionSpec) -> FailurePlan {
        self.silent_corruption.push(spec);
        self
    }

    /// Explicit corruption events plus every silent-process expansion, in
    /// plan order (explicit events first, then each spec's schedule).
    /// This is the list the runner actually schedules; its order fixes
    /// the corruption-lane assignment, so it must stay a pure function of
    /// the plan — mirroring `NetFaultPlan::expanded_link_events`.
    pub fn expanded_corruptions(&self) -> Vec<CorruptionEvent> {
        let mut evs = self.corruptions.clone();
        for spec in &self.silent_corruption {
            evs.extend(spec.expand());
        }
        evs
    }

    /// Poisson failure process: system-wide exponential inter-arrival times
    /// with the given mean (`mttf`), uniformly random victims, until
    /// `horizon`. Deterministic for a given seed. Kill times are strictly
    /// increasing (gaps clamp to ≥ 1 ns, see the module docs); the same
    /// victim may repeat back-to-back, which exercises the mid-recovery and
    /// detection-lag paths.
    pub fn poisson(mttf: SimDuration, horizon: SimTime, nranks: usize, seed: u64) -> FailurePlan {
        assert!(nranks > 0 && !mttf.is_zero());
        let mut rng = StdRng::seed_from_u64(seed);
        let mut kills = Vec::new();
        let mut t = SimTime::ZERO;
        loop {
            // Inverse-CDF exponential sampling.
            let u: f64 = rng.gen_range(f64::EPSILON..1.0);
            let gap = SimDuration::from_secs_f64(-mttf.as_secs_f64() * u.ln());
            // Tiny samples round to zero nanoseconds; clamp so no two kills
            // share an instant.
            t += gap.max(SimDuration::from_nanos(1));
            if t > horizon {
                break;
            }
            kills.push((t, rng.gen_range(0..nranks)));
        }
        FailurePlan {
            kills,
            ..FailurePlan::default()
        }
    }

    /// MTTF-driven Poisson process over the checkpoint-*server* fleet: the
    /// server-side twin of [`FailurePlan::poisson`], with the same
    /// strictly-increasing clamp and seed determinism. Pair the two (with
    /// different seeds) to model compute and storage failing independently;
    /// entries from the two schedules may then share a nanosecond — see the
    /// module docs for why that is safe.
    pub fn poisson_servers(
        mttf: SimDuration,
        horizon: SimTime,
        nservers: usize,
        seed: u64,
    ) -> FailurePlan {
        assert!(nservers > 0 && !mttf.is_zero());
        let mut rng = StdRng::seed_from_u64(seed);
        let mut server_kills = Vec::new();
        let mut t = SimTime::ZERO;
        loop {
            let u: f64 = rng.gen_range(f64::EPSILON..1.0);
            let gap = SimDuration::from_secs_f64(-mttf.as_secs_f64() * u.ln());
            t += gap.max(SimDuration::from_nanos(1));
            if t > horizon {
                break;
            }
            server_kills.push((t, rng.gen_range(0..nservers)));
        }
        FailurePlan {
            server_kills,
            ..FailurePlan::default()
        }
    }

    /// Merge another plan's schedules into this one (e.g. a rank Poisson
    /// process with a server Poisson process).
    pub fn merged(mut self, other: FailurePlan) -> FailurePlan {
        self.kills.extend(other.kills);
        self.server_kills.extend(other.server_kills);
        self.node_kills.extend(other.node_kills);
        self.corruptions.extend(other.corruptions);
        self.silent_corruption.extend(other.silent_corruption);
        self
    }

    /// Number of scheduled failures (rank kills plus server failures plus
    /// node deaths plus expanded corruption events).
    pub fn len(&self) -> usize {
        self.kills.len()
            + self.server_kills.len()
            + self.node_kills.len()
            + self.expanded_corruptions().len()
    }

    /// True when no failures of any kind are scheduled.
    pub fn is_empty(&self) -> bool {
        self.kills.is_empty()
            && self.server_kills.is_empty()
            && self.node_kills.is_empty()
            && self.corruptions.is_empty()
            && self.silent_corruption.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_is_deterministic_per_seed() {
        let a = FailurePlan::poisson(
            SimDuration::from_secs(100),
            SimTime::from_nanos(3_600_000_000_000),
            16,
            42,
        );
        let b = FailurePlan::poisson(
            SimDuration::from_secs(100),
            SimTime::from_nanos(3_600_000_000_000),
            16,
            42,
        );
        assert_eq!(a.kills, b.kills);
        let c = FailurePlan::poisson(
            SimDuration::from_secs(100),
            SimTime::from_nanos(3_600_000_000_000),
            16,
            43,
        );
        assert_ne!(a.kills, c.kills);
    }

    #[test]
    fn poisson_rate_is_roughly_right() {
        // 1 hour horizon, 100 s MTTF → ≈36 failures.
        let plan = FailurePlan::poisson(
            SimDuration::from_secs(100),
            SimTime::from_nanos(3_600_000_000_000),
            8,
            7,
        );
        assert!(
            (20..=60).contains(&plan.len()),
            "unexpected failure count {}",
            plan.len()
        );
        assert!(plan.kills.iter().all(|(_, v)| *v < 8));
    }

    #[test]
    fn poisson_kill_times_strictly_increase() {
        // A microscopic MTTF makes nearly every exponential sample round to
        // zero nanoseconds; the 1 ns clamp must still keep times strictly
        // increasing so same-instant kills cannot occur.
        let plan = FailurePlan::poisson(
            SimDuration::from_nanos(1),
            SimTime::from_nanos(10_000),
            4,
            9,
        );
        assert!(
            plan.len() > 100,
            "expected a dense plan, got {}",
            plan.len()
        );
        for w in plan.kills.windows(2) {
            assert!(w[0].0 < w[1].0, "kills share an instant: {:?}", w);
        }
    }

    #[test]
    fn poisson_can_repeat_a_victim_back_to_back() {
        // Documented semantics: the same rank may be the next victim again
        // before the previous recovery finishes. With one rank every kill
        // repeats the victim — the plan must not dedupe them away.
        let plan = FailurePlan::poisson(
            SimDuration::from_secs(1),
            SimTime::from_nanos(60_000_000_000),
            1,
            5,
        );
        assert!(plan.len() >= 2);
        assert!(plan.kills.iter().all(|(_, v)| *v == 0));
    }

    #[test]
    fn kill_at_builds_single_entry() {
        let p = FailurePlan::kill_at(SimTime::from_nanos(5), 3);
        assert_eq!(p.len(), 1);
        assert!(!p.is_empty());
        assert!(FailurePlan::none().is_empty());
    }

    #[test]
    fn server_kills_count_toward_len() {
        let p = FailurePlan::server_kill_at(SimTime::from_nanos(7), 1);
        assert_eq!(p.len(), 1);
        assert!(!p.is_empty());
        let p = p.with_kill(SimTime::from_nanos(9), 0);
        assert_eq!(p.len(), 2);
        let p = FailurePlan::none().with_server_kill(SimTime::from_nanos(3), 0);
        assert_eq!(p.server_kills, vec![(SimTime::from_nanos(3), 0)]);
    }

    #[test]
    fn node_kills_count_toward_len() {
        let p = FailurePlan::node_kill_at(SimTime::from_nanos(11), 2);
        assert_eq!(p.len(), 1);
        assert!(!p.is_empty());
        let p = p.with_node_kill(SimTime::from_nanos(13), 0);
        assert_eq!(
            p.node_kills,
            vec![(SimTime::from_nanos(11), 2), (SimTime::from_nanos(13), 0)]
        );
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn poisson_servers_is_deterministic_and_in_range() {
        let hour = SimTime::from_nanos(3_600_000_000_000);
        let a = FailurePlan::poisson_servers(SimDuration::from_secs(200), hour, 4, 42);
        let b = FailurePlan::poisson_servers(SimDuration::from_secs(200), hour, 4, 42);
        assert_eq!(a.server_kills, b.server_kills);
        assert!(a.kills.is_empty() && a.node_kills.is_empty());
        assert!(
            (8..=35).contains(&a.len()),
            "≈18 server failures expected, got {}",
            a.len()
        );
        assert!(a.server_kills.iter().all(|(_, s)| *s < 4));
        for w in a.server_kills.windows(2) {
            assert!(w[0].0 < w[1].0, "server kills share an instant: {w:?}");
        }
    }

    #[test]
    fn corruption_builders_count_and_merge() {
        let p = FailurePlan::none()
            .with_corruption(SimTime::from_nanos(5), 0, 3)
            .with_server_corruption(SimTime::from_nanos(9), 1);
        assert_eq!(p.len(), 2);
        assert!(!p.is_empty());
        assert_eq!(p.corruptions[0].rank, Some(3));
        assert_eq!(p.corruptions[1].rank, None);
        let merged = FailurePlan::kill_at(SimTime::from_nanos(1), 0).merged(p);
        assert_eq!(merged.len(), 3);
        assert_eq!(merged.corruptions.len(), 2);
    }

    #[test]
    fn silent_corruption_expands_deterministically() {
        let spec = SilentCorruptionSpec {
            server: 1,
            mtbc: SimDuration::from_secs(2),
            start: SimTime::from_nanos(0),
            end: SimTime::from_nanos(60_000_000_000),
            ranks: 8,
            seed: 17,
        };
        let a = spec.expand();
        let b = spec.expand();
        assert_eq!(a, b, "expansion must be a pure function of the spec");
        assert!(!a.is_empty(), "a 60s window at 2s MTBC should fire");
        for (i, ev) in a.iter().enumerate() {
            assert_eq!(ev.server, 1);
            assert!(ev.rank.is_some_and(|r| r < 8), "target drawn in range");
            assert!(ev.at > spec.start && ev.at < spec.end);
            if i > 0 {
                assert!(a[i - 1].at < ev.at, "times strictly increase");
            }
        }
        // Seed and server key the stream.
        let reseeded = SilentCorruptionSpec { seed: 18, ..spec };
        assert_ne!(a, reseeded.expand());
        let moved = SilentCorruptionSpec { server: 0, ..spec };
        let times = |evs: &[CorruptionEvent]| evs.iter().map(|e| e.at).collect::<Vec<_>>();
        assert_ne!(times(&a), times(&moved.expand()));
        // Degenerate windows expand to nothing instead of looping.
        let empty = SilentCorruptionSpec {
            end: spec.start,
            ..spec
        };
        assert!(empty.expand().is_empty());
        let no_ranks = SilentCorruptionSpec { ranks: 0, ..spec };
        assert!(no_ranks.expand().is_empty());
        // A plan carrying only a silent spec is non-empty and its len
        // counts the expansion.
        let p = FailurePlan::none().with_silent_corruption(spec);
        assert!(!p.is_empty());
        assert_eq!(p.len(), a.len());
        assert_eq!(p.expanded_corruptions(), a);
    }

    #[test]
    fn same_nanosecond_across_schedules_is_legal_and_survives_merge() {
        // The strictly-increasing clamp orders kills *within* one Poisson
        // schedule; two independently seeded schedules give no such
        // guarantee across each other. Build the worst case explicitly —
        // a rank kill and a server kill in the same nanosecond — and check
        // the plan carries both entries verbatim (injection-side safety is
        // covered by `coincident_server_and_rank_kill_*` in
        // tests/protocols.rs: `fail_server` is an idempotent BTreeSet
        // insert, and the runner orders server kills before rank kills at
        // equal times).
        let t = SimTime::from_nanos(500);
        let p = FailurePlan::poisson(SimDuration::from_secs(1), SimTime::from_nanos(2), 2, 1)
            .merged(FailurePlan::kill_at(t, 0))
            .merged(FailurePlan::server_kill_at(t, 0))
            .merged(FailurePlan::node_kill_at(t, 3));
        assert!(p.kills.contains(&(t, 0)));
        assert!(p.server_kills.contains(&(t, 0)));
        assert!(p.node_kills.contains(&(t, 3)));
        // Dense schedules with different seeds *can* collide across
        // schedules: verify at least that merging two dense plans keeps
        // every entry (no dedupe at the plan layer).
        let dense_r =
            FailurePlan::poisson(SimDuration::from_nanos(1), SimTime::from_nanos(1_000), 2, 7);
        let dense_s = FailurePlan::poisson_servers(
            SimDuration::from_nanos(1),
            SimTime::from_nanos(1_000),
            2,
            8,
        );
        let merged = dense_r.clone().merged(dense_s.clone());
        assert_eq!(merged.len(), dense_r.len() + dense_s.len());
        let shared = dense_r
            .kills
            .iter()
            .filter(|(t, _)| dense_s.server_kills.iter().any(|(ts, _)| ts == t))
            .count();
        assert!(
            shared > 0,
            "dense independent schedules should collide in this configuration"
        );
    }
}
