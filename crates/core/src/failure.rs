//! Failure injection.
//!
//! The paper emulates failures "by killing the task, not the operating
//! system", with immediate detection through the broken TCP connection.
//! [`FailurePlan`] expresses either explicit kills (deterministic tests and
//! recovery experiments) or an MTTF-driven Poisson process (the extension
//! experiments suggested by the paper's conclusion: the best wave period is
//! tied to the system MTTF). Beyond the paper's model, a plan can also
//! schedule checkpoint-*server* node failures: every image replica stored on
//! the failed server becomes unavailable and a later restart must fall back
//! to an older committed wave (or scratch) unless `replicas > 1` kept
//! another copy alive.
//!
//! ## Kill semantics
//!
//! - Kill times in [`FailurePlan::poisson`] are **strictly increasing**:
//!   exponential inter-arrival gaps are clamped to ≥ 1 ns so two kills never
//!   share an instant (a sub-nanosecond gap would otherwise round to zero
//!   and make recovery order tiebreak-dependent).
//! - The **same victim back-to-back** is legal. If the second kill lands
//!   while the first restart is still staging, it is a *mid-recovery* kill:
//!   the restart restarts cleanly from the same committed wave. If it lands
//!   during the detection lag while the victim is already dead, it is
//!   absorbed as a no-op (one task cannot die twice).
//! - A kill after job completion is a no-op.

use ftmpi_mpi::Rank;
use ftmpi_sim::{SimDuration, SimTime};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A schedule of task kills and checkpoint-server failures.
#[derive(Debug, Clone, Default)]
pub struct FailurePlan {
    /// `(time, victim rank)` pairs, in any order.
    pub kills: Vec<(SimTime, Rank)>,
    /// `(time, server index)` pairs, in any order. The index selects a
    /// server within the deployment's server fleet (`0..servers`), not a
    /// raw node id — plans stay valid across topology changes.
    pub server_kills: Vec<(SimTime, usize)>,
}

impl FailurePlan {
    /// No failures (the paper's performance figures are failure-free).
    pub fn none() -> FailurePlan {
        FailurePlan::default()
    }

    /// A single kill of `victim` at `at`.
    pub fn kill_at(at: SimTime, victim: Rank) -> FailurePlan {
        FailurePlan {
            kills: vec![(at, victim)],
            server_kills: Vec::new(),
        }
    }

    /// A single checkpoint-server failure at `at`.
    pub fn server_kill_at(at: SimTime, server: usize) -> FailurePlan {
        FailurePlan {
            kills: Vec::new(),
            server_kills: vec![(at, server)],
        }
    }

    /// Builder: add a rank kill.
    pub fn with_kill(mut self, at: SimTime, victim: Rank) -> FailurePlan {
        self.kills.push((at, victim));
        self
    }

    /// Builder: add a checkpoint-server failure.
    pub fn with_server_kill(mut self, at: SimTime, server: usize) -> FailurePlan {
        self.server_kills.push((at, server));
        self
    }

    /// Poisson failure process: system-wide exponential inter-arrival times
    /// with the given mean (`mttf`), uniformly random victims, until
    /// `horizon`. Deterministic for a given seed. Kill times are strictly
    /// increasing (gaps clamp to ≥ 1 ns, see the module docs); the same
    /// victim may repeat back-to-back, which exercises the mid-recovery and
    /// detection-lag paths.
    pub fn poisson(mttf: SimDuration, horizon: SimTime, nranks: usize, seed: u64) -> FailurePlan {
        assert!(nranks > 0 && !mttf.is_zero());
        let mut rng = StdRng::seed_from_u64(seed);
        let mut kills = Vec::new();
        let mut t = SimTime::ZERO;
        loop {
            // Inverse-CDF exponential sampling.
            let u: f64 = rng.gen_range(f64::EPSILON..1.0);
            let gap = SimDuration::from_secs_f64(-mttf.as_secs_f64() * u.ln());
            // Tiny samples round to zero nanoseconds; clamp so no two kills
            // share an instant.
            t += gap.max(SimDuration::from_nanos(1));
            if t > horizon {
                break;
            }
            kills.push((t, rng.gen_range(0..nranks)));
        }
        FailurePlan {
            kills,
            server_kills: Vec::new(),
        }
    }

    /// Number of scheduled failures (rank kills plus server failures).
    pub fn len(&self) -> usize {
        self.kills.len() + self.server_kills.len()
    }

    /// True when no failures of any kind are scheduled.
    pub fn is_empty(&self) -> bool {
        self.kills.is_empty() && self.server_kills.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_is_deterministic_per_seed() {
        let a = FailurePlan::poisson(
            SimDuration::from_secs(100),
            SimTime::from_nanos(3_600_000_000_000),
            16,
            42,
        );
        let b = FailurePlan::poisson(
            SimDuration::from_secs(100),
            SimTime::from_nanos(3_600_000_000_000),
            16,
            42,
        );
        assert_eq!(a.kills, b.kills);
        let c = FailurePlan::poisson(
            SimDuration::from_secs(100),
            SimTime::from_nanos(3_600_000_000_000),
            16,
            43,
        );
        assert_ne!(a.kills, c.kills);
    }

    #[test]
    fn poisson_rate_is_roughly_right() {
        // 1 hour horizon, 100 s MTTF → ≈36 failures.
        let plan = FailurePlan::poisson(
            SimDuration::from_secs(100),
            SimTime::from_nanos(3_600_000_000_000),
            8,
            7,
        );
        assert!(
            (20..=60).contains(&plan.len()),
            "unexpected failure count {}",
            plan.len()
        );
        assert!(plan.kills.iter().all(|(_, v)| *v < 8));
    }

    #[test]
    fn poisson_kill_times_strictly_increase() {
        // A microscopic MTTF makes nearly every exponential sample round to
        // zero nanoseconds; the 1 ns clamp must still keep times strictly
        // increasing so same-instant kills cannot occur.
        let plan = FailurePlan::poisson(
            SimDuration::from_nanos(1),
            SimTime::from_nanos(10_000),
            4,
            9,
        );
        assert!(
            plan.len() > 100,
            "expected a dense plan, got {}",
            plan.len()
        );
        for w in plan.kills.windows(2) {
            assert!(w[0].0 < w[1].0, "kills share an instant: {:?}", w);
        }
    }

    #[test]
    fn poisson_can_repeat_a_victim_back_to_back() {
        // Documented semantics: the same rank may be the next victim again
        // before the previous recovery finishes. With one rank every kill
        // repeats the victim — the plan must not dedupe them away.
        let plan = FailurePlan::poisson(
            SimDuration::from_secs(1),
            SimTime::from_nanos(60_000_000_000),
            1,
            5,
        );
        assert!(plan.len() >= 2);
        assert!(plan.kills.iter().all(|(_, v)| *v == 0));
    }

    #[test]
    fn kill_at_builds_single_entry() {
        let p = FailurePlan::kill_at(SimTime::from_nanos(5), 3);
        assert_eq!(p.len(), 1);
        assert!(!p.is_empty());
        assert!(FailurePlan::none().is_empty());
    }

    #[test]
    fn server_kills_count_toward_len() {
        let p = FailurePlan::server_kill_at(SimTime::from_nanos(7), 1);
        assert_eq!(p.len(), 1);
        assert!(!p.is_empty());
        let p = p.with_kill(SimTime::from_nanos(9), 0);
        assert_eq!(p.len(), 2);
        let p = FailurePlan::none().with_server_kill(SimTime::from_nanos(3), 0);
        assert_eq!(p.server_kills, vec![(SimTime::from_nanos(3), 0)]);
    }
}
