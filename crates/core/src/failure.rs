//! Failure injection.
//!
//! The paper emulates failures "by killing the task, not the operating
//! system", with immediate detection through the broken TCP connection.
//! [`FailurePlan`] expresses either explicit kills (deterministic tests and
//! recovery experiments) or an MTTF-driven Poisson process (the extension
//! experiments suggested by the paper's conclusion: the best wave period is
//! tied to the system MTTF).

use ftmpi_mpi::Rank;
use ftmpi_sim::{SimDuration, SimTime};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A schedule of task kills.
#[derive(Debug, Clone, Default)]
pub struct FailurePlan {
    /// `(time, victim rank)` pairs, in any order.
    pub kills: Vec<(SimTime, Rank)>,
}

impl FailurePlan {
    /// No failures (the paper's performance figures are failure-free).
    pub fn none() -> FailurePlan {
        FailurePlan::default()
    }

    /// A single kill of `victim` at `at`.
    pub fn kill_at(at: SimTime, victim: Rank) -> FailurePlan {
        FailurePlan {
            kills: vec![(at, victim)],
        }
    }

    /// Poisson failure process: system-wide exponential inter-arrival times
    /// with the given mean (`mttf`), uniformly random victims, until
    /// `horizon`. Deterministic for a given seed.
    pub fn poisson(mttf: SimDuration, horizon: SimTime, nranks: usize, seed: u64) -> FailurePlan {
        assert!(nranks > 0 && !mttf.is_zero());
        let mut rng = StdRng::seed_from_u64(seed);
        let mut kills = Vec::new();
        let mut t = SimTime::ZERO;
        loop {
            // Inverse-CDF exponential sampling.
            let u: f64 = rng.gen_range(f64::EPSILON..1.0);
            let gap = SimDuration::from_secs_f64(-mttf.as_secs_f64() * u.ln());
            t += gap;
            if t > horizon {
                break;
            }
            kills.push((t, rng.gen_range(0..nranks)));
        }
        FailurePlan { kills }
    }

    /// Number of scheduled kills.
    pub fn len(&self) -> usize {
        self.kills.len()
    }

    /// True when no kills are scheduled.
    pub fn is_empty(&self) -> bool {
        self.kills.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_is_deterministic_per_seed() {
        let a = FailurePlan::poisson(
            SimDuration::from_secs(100),
            SimTime::from_nanos(3_600_000_000_000),
            16,
            42,
        );
        let b = FailurePlan::poisson(
            SimDuration::from_secs(100),
            SimTime::from_nanos(3_600_000_000_000),
            16,
            42,
        );
        assert_eq!(a.kills, b.kills);
        let c = FailurePlan::poisson(
            SimDuration::from_secs(100),
            SimTime::from_nanos(3_600_000_000_000),
            16,
            43,
        );
        assert_ne!(a.kills, c.kills);
    }

    #[test]
    fn poisson_rate_is_roughly_right() {
        // 1 hour horizon, 100 s MTTF → ≈36 failures.
        let plan = FailurePlan::poisson(
            SimDuration::from_secs(100),
            SimTime::from_nanos(3_600_000_000_000),
            8,
            7,
        );
        assert!(
            (20..=60).contains(&plan.len()),
            "unexpected failure count {}",
            plan.len()
        );
        assert!(plan.kills.iter().all(|(_, v)| *v < 8));
    }

    #[test]
    fn kill_at_builds_single_entry() {
        let p = FailurePlan::kill_at(SimTime::from_nanos(5), 3);
        assert_eq!(p.len(), 1);
        assert!(!p.is_empty());
        assert!(FailurePlan::none().is_empty());
    }
}
