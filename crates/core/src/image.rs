//! Checkpoint images and wave records.

use ftmpi_mpi::AppMsg;
use ftmpi_sim::{SimDuration, SimTime};

/// The restart-relevant content of one rank's checkpoint image.
///
/// Real system-level checkpointing (BLCR et al.) stores the whole address
/// space; for restart-timing purposes the simulation needs only the rank's
/// logical position: how many runtime operations it had completed, plus the
/// compute time performed since its last runtime interaction (credited back
/// on replay) — see DESIGN.md §5.1.
#[derive(Debug, Clone, Default)]
pub struct RankImage {
    /// Completed runtime operations at the checkpoint instant.
    pub ops_completed: u64,
    /// Compute performed since the last runtime interaction.
    pub time_credit: SimDuration,
    /// When the image capture happened (fork instant).
    pub taken_at: SimTime,
    /// Messages delivered to the rank's runtime but not yet consumed by the
    /// application at capture time (library/daemon memory: the unexpected
    /// queue and matched-but-unwaited requests). Re-injected at restart
    /// before any channel-state replay.
    pub pending: Vec<ftmpi_mpi::AppMsg>,
    /// Per-source duplicate-suppression watermarks at capture time, as
    /// sparse `(peer, watermark)` pairs sorted by peer (used by
    /// single-rank-restart protocols; empty for the coordinated protocols,
    /// whose global restarts reset every counter).
    pub expect_seq: Vec<(ftmpi_mpi::Rank, u64)>,
    /// Per-destination send sequence counters at capture time, sparse and
    /// sorted like `expect_seq` (restored by single-rank-restart protocols
    /// so re-executed sends keep numbering where the receivers' duplicate
    /// filters expect it).
    pub send_seq: Vec<(ftmpi_mpi::Rank, u64)>,
}

/// A committed checkpoint wave: everything needed to restart the job.
#[derive(Debug, Clone, Default)]
pub struct WaveRecord {
    /// Wave number (1-based).
    pub wave: u64,
    /// Per-rank images.
    pub images: Vec<RankImage>,
    /// Non-blocking protocol: logged in-transit messages per *destination*
    /// rank, in arrival order (the channel state of the snapshot).
    pub logs: Vec<Vec<AppMsg>>,
    /// Blocking protocol: sends that were delayed at checkpoint time, per
    /// *source* rank, in post order (re-sent after restart).
    pub delayed_sends: Vec<Vec<AppMsg>>,
    /// When the wave was committed (initiator saw every acknowledgement).
    pub committed_at: SimTime,
    /// When the wave was initiated.
    pub started_at: SimTime,
}

impl WaveRecord {
    /// An empty record for `n` ranks.
    pub fn new(wave: u64, n: usize, started_at: SimTime) -> WaveRecord {
        WaveRecord {
            wave,
            images: vec![RankImage::default(); n],
            logs: vec![Vec::new(); n],
            delayed_sends: vec![Vec::new(); n],
            committed_at: SimTime::ZERO,
            started_at,
        }
    }

    /// Work discarded by restarting from this wave at `now`: everything the
    /// job computed since the wave committed is lost. Feeds
    /// `FtStats::lost_work` — with detection lag, this span grows by the
    /// lag itself (survivors keep computing doomed work while the victim
    /// sits undetected).
    pub fn lost_work_at(&self, now: SimTime) -> SimDuration {
        now.saturating_since(self.committed_at)
    }

    /// Total bytes of logged channel state.
    pub fn logged_bytes(&self) -> u64 {
        self.logs
            .iter()
            .flat_map(|l| l.iter())
            .map(|m| m.bytes)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn msg(bytes: u64) -> AppMsg {
        AppMsg {
            src: 0,
            dst: 1,
            tag: 0,
            bytes,
            seq: 0,
            epoch: 0,
            posted_at: SimTime::ZERO,
        }
    }

    #[test]
    fn lost_work_spans_commit_to_restart() {
        let mut rec = WaveRecord::new(1, 1, SimTime::ZERO);
        rec.committed_at = SimTime::from_nanos(100);
        assert_eq!(
            rec.lost_work_at(SimTime::from_nanos(350)),
            SimDuration::from_nanos(250)
        );
        // A restart before the commit instant (cannot happen, but the API
        // must not underflow) loses nothing.
        assert_eq!(rec.lost_work_at(SimTime::from_nanos(50)), SimDuration::ZERO);
    }

    #[test]
    fn wave_record_counts_logged_bytes() {
        let mut rec = WaveRecord::new(3, 2, SimTime::ZERO);
        assert_eq!(rec.wave, 3);
        assert_eq!(rec.images.len(), 2);
        assert_eq!(rec.logged_bytes(), 0);
        rec.logs[0].push(msg(100));
        rec.logs[1].push(msg(250));
        assert_eq!(rec.logged_bytes(), 350);
    }
}
