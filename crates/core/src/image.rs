//! Checkpoint images and wave records.

use ftmpi_mpi::{AppMsg, Rank};
use ftmpi_sim::{SimDuration, SimTime};

/// One FNV-1a step over a 64-bit word (byte-at-a-time, little-endian).
fn fnv_word(mut h: u64, v: u64) -> u64 {
    for b in v.to_le_bytes() {
        h = (h ^ b as u64).wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// The restart-relevant content of one rank's checkpoint image.
///
/// Real system-level checkpointing (BLCR et al.) stores the whole address
/// space; for restart-timing purposes the simulation needs only the rank's
/// logical position: how many runtime operations it had completed, plus the
/// compute time performed since its last runtime interaction (credited back
/// on replay) — see DESIGN.md §5.1.
#[derive(Debug, Clone, Default)]
pub struct RankImage {
    /// Completed runtime operations at the checkpoint instant.
    pub ops_completed: u64,
    /// Compute performed since the last runtime interaction.
    pub time_credit: SimDuration,
    /// When the image capture happened (fork instant).
    pub taken_at: SimTime,
    /// Messages delivered to the rank's runtime but not yet consumed by the
    /// application at capture time (library/daemon memory: the unexpected
    /// queue and matched-but-unwaited requests). Re-injected at restart
    /// before any channel-state replay.
    pub pending: Vec<ftmpi_mpi::AppMsg>,
    /// Per-source duplicate-suppression watermarks at capture time, as
    /// sparse `(peer, watermark)` pairs sorted by peer (used by
    /// single-rank-restart protocols; empty for the coordinated protocols,
    /// whose global restarts reset every counter).
    pub expect_seq: Vec<(ftmpi_mpi::Rank, u64)>,
    /// Per-destination send sequence counters at capture time, sparse and
    /// sorted like `expect_seq` (restored by single-rank-restart protocols
    /// so re-executed sends keep numbering where the receivers' duplicate
    /// filters expect it).
    pub send_seq: Vec<(ftmpi_mpi::Rank, u64)>,
}

impl RankImage {
    /// Content digest of the image, keyed by the `(wave, rank)` slot it
    /// occupies so identical logical positions in different slots still
    /// hash apart. Computed once at capture and stamped on every stored
    /// replica; verify-on-fetch recomputes it from the authoritative wave
    /// record and rejects any replica whose stored digest disagrees (a
    /// bit-flip or torn write mutated the stored copy). FNV-1a over the
    /// restart-relevant fields — a pure function of the image, so the
    /// digest itself never perturbs scheduling.
    pub fn digest(&self, wave: u64, rank: Rank) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        h = fnv_word(h, wave);
        h = fnv_word(h, rank as u64);
        h = fnv_word(h, self.ops_completed);
        h = fnv_word(h, self.time_credit.as_nanos());
        h = fnv_word(h, self.taken_at.as_nanos());
        h = fnv_word(h, self.pending.len() as u64);
        for m in &self.pending {
            h = fnv_word(h, m.src as u64);
            h = fnv_word(h, m.seq);
            h = fnv_word(h, m.bytes);
        }
        for &(peer, mark) in &self.expect_seq {
            h = fnv_word(h, peer as u64);
            h = fnv_word(h, mark);
        }
        for &(peer, seq) in &self.send_seq {
            h = fnv_word(h, peer as u64);
            h = fnv_word(h, seq);
        }
        h
    }
}

/// A committed checkpoint wave: everything needed to restart the job.
#[derive(Debug, Clone, Default)]
pub struct WaveRecord {
    /// Wave number (1-based).
    pub wave: u64,
    /// Per-rank images.
    pub images: Vec<RankImage>,
    /// Non-blocking protocol: logged in-transit messages per *destination*
    /// rank, in arrival order (the channel state of the snapshot).
    pub logs: Vec<Vec<AppMsg>>,
    /// Blocking protocol: sends that were delayed at checkpoint time, per
    /// *source* rank, in post order (re-sent after restart).
    pub delayed_sends: Vec<Vec<AppMsg>>,
    /// When the wave was committed (initiator saw every acknowledgement).
    pub committed_at: SimTime,
    /// When the wave was initiated.
    pub started_at: SimTime,
}

impl WaveRecord {
    /// An empty record for `n` ranks.
    pub fn new(wave: u64, n: usize, started_at: SimTime) -> WaveRecord {
        WaveRecord {
            wave,
            images: vec![RankImage::default(); n],
            logs: vec![Vec::new(); n],
            delayed_sends: vec![Vec::new(); n],
            committed_at: SimTime::ZERO,
            started_at,
        }
    }

    /// Work discarded by restarting from this wave at `now`: everything the
    /// job computed since the wave committed is lost. Feeds
    /// `FtStats::lost_work` — with detection lag, this span grows by the
    /// lag itself (survivors keep computing doomed work while the victim
    /// sits undetected).
    pub fn lost_work_at(&self, now: SimTime) -> SimDuration {
        now.saturating_since(self.committed_at)
    }

    /// Total bytes of logged channel state.
    pub fn logged_bytes(&self) -> u64 {
        self.logs
            .iter()
            .flat_map(|l| l.iter())
            .map(|m| m.bytes)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn msg(bytes: u64) -> AppMsg {
        AppMsg {
            src: 0,
            dst: 1,
            tag: 0,
            bytes,
            seq: 0,
            epoch: 0,
            posted_at: SimTime::ZERO,
        }
    }

    #[test]
    fn lost_work_spans_commit_to_restart() {
        let mut rec = WaveRecord::new(1, 1, SimTime::ZERO);
        rec.committed_at = SimTime::from_nanos(100);
        assert_eq!(
            rec.lost_work_at(SimTime::from_nanos(350)),
            SimDuration::from_nanos(250)
        );
        // A restart before the commit instant (cannot happen, but the API
        // must not underflow) loses nothing.
        assert_eq!(rec.lost_work_at(SimTime::from_nanos(50)), SimDuration::ZERO);
    }

    #[test]
    fn digest_is_pure_and_distinguishes_content_and_slot() {
        let mut img = RankImage {
            ops_completed: 42,
            time_credit: SimDuration::from_nanos(17),
            taken_at: SimTime::from_nanos(900),
            ..RankImage::default()
        };
        let d = img.digest(3, 1);
        assert_eq!(d, img.digest(3, 1), "digest is a pure function");
        assert_ne!(d, img.digest(3, 2), "rank keys the digest");
        assert_ne!(d, img.digest(4, 1), "wave keys the digest");
        img.ops_completed = 43;
        assert_ne!(d, img.digest(3, 1), "content changes the digest");
        img.ops_completed = 42;
        img.pending.push(msg(9));
        assert_ne!(d, img.digest(3, 1), "pending messages are covered");
    }

    #[test]
    fn wave_record_counts_logged_bytes() {
        let mut rec = WaveRecord::new(3, 2, SimTime::ZERO);
        assert_eq!(rec.wave, 3);
        assert_eq!(rec.images.len(), 2);
        assert_eq!(rec.logged_bytes(), 0);
        rec.logs[0].push(msg(100));
        rec.logs[1].push(msg(250));
        assert_eq!(rec.logged_bytes(), 350);
    }
}
