//! Fault-tolerance statistics collected over a run.

use ftmpi_sim::{SimDuration, SimTime};

/// Per-wave timing record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaveTiming {
    /// Wave number (1-based).
    pub wave: u64,
    /// Initiation time (scheduler / rank-0 marker emission).
    pub started_at: SimTime,
    /// Commit time (all acknowledgements collected).
    pub committed_at: SimTime,
}

impl WaveTiming {
    /// Wall duration of the wave.
    pub fn duration(&self) -> SimDuration {
        self.committed_at.saturating_since(self.started_at)
    }
}

/// Counters kept by the protocol engines.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FtStats {
    /// Waves initiated.
    pub waves_started: u64,
    /// Waves fully committed.
    pub waves_committed: u64,
    /// Per-committed-wave timings.
    pub wave_timings: Vec<WaveTiming>,
    /// Checkpoint image bytes shipped to servers.
    pub image_bytes_sent: u64,
    /// Channel-state (log) bytes shipped to servers (non-blocking protocol).
    pub log_bytes_sent: u64,
    /// Messages logged as channel state (non-blocking protocol).
    pub msgs_logged: u64,
    /// Application sends delayed by a wave (blocking protocol).
    pub sends_delayed: u64,
    /// Arrivals parked in the delayed receive queue (blocking protocol).
    pub arrivals_delayed: u64,
    /// Failure-restarts performed.
    pub restarts: u64,
    /// Checkpoint waves aborted before commit (failure restart or server
    /// loss); their partial images were garbage-collected.
    pub waves_aborted: u64,
    /// Deepest rollback across all restarts: number of committed waves that
    /// were newer than the wave actually restored (0 = always restored the
    /// latest; a from-scratch restart counts every committed wave).
    pub rollback_depth_max: u64,
    /// Total computation discarded by restarts: for each restart, the span
    /// from the restored wave's commit (job start when restoring from
    /// scratch) to the restart instant.
    pub lost_work: SimDuration,
    /// Rank images fetched from a checkpoint server during restarts (the
    /// failed rank when `fetch_failed_from_server`, every rank when local
    /// disk is off).
    pub images_refetched: u64,
    /// Uncommitted (partial/orphaned) images still in server bookkeeping
    /// when the run ended. Any non-zero value is a garbage-collection leak.
    pub orphan_images_end: u64,
    /// Checkpoint-image pushes that exhausted their retry budget against an
    /// unreachable server and were re-aimed at the next reachable replica
    /// target.
    pub images_rerouted: u64,
    /// Partition watchdog detections suppressed because the cut healed
    /// before [`partition_rollback_after`](crate::FtConfig::partition_rollback_after)
    /// expired (false positives the detection-delay epoch guard absorbed).
    pub partitions_suppressed: u64,
    /// Partition watchdog grace windows that *expired*: the cut outlived
    /// [`partition_rollback_after`](crate::FtConfig::partition_rollback_after)
    /// and the ranks across it were declared failed.
    pub partitions_expired: u64,
    /// Retry ladders that ran out: image pushes or restore fetches that
    /// exhausted their bounded per-target retry budget and had to reroute,
    /// walk to another replica, or give up.
    pub retries_exhausted: u64,
    /// Deepest replica walked during restore fetches (0 = every image came
    /// from its primary server; 1 = some fetch fell back to the first
    /// replica copy, and so on).
    pub replica_depth_max: u64,
    /// Digest-verification failures caught by verify-on-fetch or the
    /// background scrub pass: each count is one damaged replica detected
    /// (the same replica may be detected more than once if nothing
    /// repaired or dropped it between fetches).
    pub images_corrupt_detected: u64,
    /// Damaged images the runtime recovered from anyway: a fetch that
    /// walked the replica ladder past corrupt copies to a good one, a
    /// restore that fell back to an older retained wave because every copy
    /// of the newer one was damaged, or a scrub re-replication that
    /// overwrote a corrupt replica from a good copy.
    pub images_repaired: u64,
    /// Checkpoint servers quarantined after exceeding the corruption
    /// threshold (excluded from placement and reroute from then on).
    pub servers_quarantined: u64,
}

impl FtStats {
    /// Lost work in seconds (see [`FtStats::lost_work`]).
    pub fn lost_work_secs(&self) -> f64 {
        self.lost_work.as_secs_f64()
    }

    /// Mean committed-wave duration, if any wave committed.
    pub fn mean_wave_duration(&self) -> Option<SimDuration> {
        if self.wave_timings.is_empty() {
            return None;
        }
        let total: u64 = self
            .wave_timings
            .iter()
            .map(|w| w.duration().as_nanos())
            .sum();
        Some(SimDuration::from_nanos(
            total / self.wave_timings.len() as u64,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wave_duration_is_commit_minus_start() {
        let w = WaveTiming {
            wave: 1,
            started_at: SimTime::from_nanos(100),
            committed_at: SimTime::from_nanos(350),
        };
        assert_eq!(w.duration(), SimDuration::from_nanos(250));
    }

    #[test]
    fn mean_wave_duration_over_waves() {
        let mut s = FtStats::default();
        assert!(s.mean_wave_duration().is_none());
        for (a, b) in [(0u64, 100u64), (200, 500)] {
            s.wave_timings.push(WaveTiming {
                wave: 0,
                started_at: SimTime::from_nanos(a),
                committed_at: SimTime::from_nanos(b),
            });
        }
        assert_eq!(
            s.mean_wave_duration(),
            Some(SimDuration::from_nanos(200)) // (100 + 300) / 2
        );
    }
}
