//! Fault-tolerance configuration.

use ftmpi_sim::SimDuration;

/// Parameters of the checkpointing machinery (both protocols).
#[derive(Debug, Clone)]
pub struct FtConfig {
    /// Time between checkpoint waves. Per the paper, the timer for the next
    /// wave starts once every process has transferred its image.
    pub period: SimDuration,
    /// Delay before the first wave of a run.
    pub first_wave_delay: SimDuration,
    /// Per-rank checkpoint image size (system-level image: ∝ memory
    /// footprint; set per workload/class).
    pub image_bytes: u64,
    /// Pause of the main process while `fork` duplicates the address space
    /// (copy-on-write setup).
    pub fork_cost: SimDuration,
    /// Chunk size of image/log streams: the granularity at which checkpoint
    /// traffic interleaves (fair-shares) with MPI messages on the NICs.
    pub chunk_bytes: u64,
    /// Also write the image to the local disk (the clone writes a file the
    /// daemon pipelines to the server); enables local-disk restart.
    pub write_local_disk: bool,
    /// Dispatcher respawn cost after a failure (process cleanup + parallel
    /// ssh relaunch + reconnection).
    pub restart_delay: SimDuration,
    /// Restart the *failed* rank from the checkpoint server (its local
    /// image is considered lost with the task); survivors restore from
    /// local disk when `write_local_disk` is set.
    pub fetch_failed_from_server: bool,
    /// Maximum number of processes the Vcl implementation supports — the
    /// paper's `select()`-based daemon cannot multiplex beyond ~300
    /// processes (1024 fd-set limit, ~3 sockets per process).
    pub vcl_process_limit: usize,
    /// Size of protocol control messages (markers, acks) on the wire.
    pub control_bytes: u64,
    /// Extra per-operation progress-engine delay a rank suffers while its
    /// checkpoint image is streaming to the server under the *blocking*
    /// implementation: MPICH2's single-threaded channel multiplexes image
    /// chunks with MPI requests, so MPI operations are delayed for the whole
    /// transfer window (longer with fewer servers — the bandwidth-contention
    /// effect of Fig. 5). The non-blocking implementation streams from the
    /// forked clone through the separate daemon process: "the whole
    /// computation is never interrupted during a checkpoint phase" (§4.1).
    pub blocking_stream_drag: SimDuration,
    /// Ablation: process blocking-protocol markers immediately on arrival
    /// instead of waiting for the process to enter the MPI library. Isolates
    /// how much of Pcl's overhead is progress-engine gating (the paper's
    /// explanation for the synchronization cost) versus channel flushing.
    pub pcl_async_markers: bool,
    /// Heartbeat-timeout lag between a task kill and the dispatcher
    /// noticing it (`fail_and_restart`). The paper assumes immediate
    /// detection through the broken TCP connection — `ZERO` reproduces
    /// that exactly; with a positive lag the victim sits dead while the
    /// survivors keep computing work that the restart then discards.
    pub detection_delay: SimDuration,
    /// Number of checkpoint servers each rank's image is streamed to
    /// (1 = the paper's single copy). With 2, the restore path survives a
    /// server-node failure without falling back to an older wave.
    pub replicas: usize,
    /// Committed waves retained on the servers and in dispatcher memory
    /// (1 = the paper's immediate garbage collection). Retaining more
    /// lets a restore fall back to an older wave when a server failure
    /// made the newest one unavailable.
    pub retained_waves: usize,
    /// First retry delay after a checkpoint stream or restore fetch finds
    /// its peer unreachable (link down or partition). Doubles per attempt
    /// up to [`link_retry_cap`](FtConfig::link_retry_cap). Irrelevant
    /// while no network faults are scheduled: reachability never fails.
    pub link_retry_base: SimDuration,
    /// Ceiling on the exponential retry backoff.
    pub link_retry_cap: SimDuration,
    /// Consecutive failed probes of one destination before the caller
    /// gives up on it (image pushes fall back to the next replica server;
    /// restore fetches walk to the next image source; a rank with no
    /// sources left fails the job).
    pub link_retry_limit: u32,
    /// How long the dispatcher tolerates ranks being cut off by a
    /// partition before declaring them failed and rolling the survivors
    /// back. `None` (the default) models an operator-grade detector that
    /// always waits the partition out: flows pause and retry, and a heal
    /// causes *no* rollback. `Some(grace)` arms a watchdog per partition
    /// cut: if the cut outlives `grace` the cut-off ranks are treated as
    /// dead (same path as [`detection_delay`](FtConfig::detection_delay)
    /// kills); if it heals first, the watchdog finds the epoch unchanged
    /// and suppresses the false positive.
    pub partition_rollback_after: Option<SimDuration>,
    /// Period of the background scrub pass re-verifying every retained
    /// replica's digest and re-replicating damaged copies from a good one.
    /// `None` (the default) schedules no scrub ticks, keeping failure-free
    /// runs byte-identical to the pre-integrity code. The `FTMPI_NO_SCRUB`
    /// environment toggle force-disables a configured scrubber for A/B
    /// determinism checks.
    pub scrub_interval: Option<SimDuration>,
    /// Quarantine a checkpoint server after this many digest-verification
    /// failures were attributed to it: the server stops receiving
    /// placements and reroutes (mirroring dead-server processing), though
    /// replicas already on it remain verified fetch candidates. `0` (the
    /// default) disables quarantine.
    pub quarantine_threshold: u64,
    /// Record torn (truncated) writes: when a tearing partition cuts an
    /// image push mid-stream, the target server keeps the received prefix
    /// as a replica whose digest can never verify, instead of the prefix
    /// silently vanishing. Off by default — existing fault schedules keep
    /// their exact behavior.
    pub torn_writes: bool,
}

impl Default for FtConfig {
    fn default() -> Self {
        FtConfig {
            period: SimDuration::from_secs(30),
            first_wave_delay: SimDuration::from_secs(1),
            image_bytes: 50 << 20,
            fork_cost: SimDuration::from_millis(30),
            chunk_bytes: 256 << 10,
            write_local_disk: true,
            restart_delay: SimDuration::from_secs(3),
            fetch_failed_from_server: true,
            vcl_process_limit: 300,
            control_bytes: 64,
            blocking_stream_drag: SimDuration::from_millis(1),
            pcl_async_markers: false,
            detection_delay: SimDuration::ZERO,
            replicas: 1,
            retained_waves: 1,
            link_retry_base: SimDuration::from_millis(50),
            link_retry_cap: SimDuration::from_secs(2),
            link_retry_limit: 8,
            partition_rollback_after: None,
            scrub_interval: None,
            quarantine_threshold: 0,
            torn_writes: false,
        }
    }
}

impl FtConfig {
    /// Convenience: set the wave period in seconds.
    pub fn with_period_secs(mut self, s: f64) -> Self {
        self.period = SimDuration::from_secs_f64(s);
        self
    }

    /// Convenience: set the per-rank image size.
    pub fn with_image_bytes(mut self, b: u64) -> Self {
        self.image_bytes = b;
        self
    }

    /// Convenience: set the failure-detection lag in seconds.
    pub fn with_detection_delay_secs(mut self, s: f64) -> Self {
        self.detection_delay = SimDuration::from_secs_f64(s);
        self
    }

    /// Convenience: set the image replication factor.
    pub fn with_replicas(mut self, r: usize) -> Self {
        self.replicas = r;
        self
    }

    /// Convenience: set the number of retained committed waves.
    pub fn with_retained_waves(mut self, n: usize) -> Self {
        self.retained_waves = n;
        self
    }

    /// Convenience: set the link-retry backoff schedule (first delay,
    /// cap, and per-destination attempt budget).
    pub fn with_link_retry(mut self, base: SimDuration, cap: SimDuration, limit: u32) -> Self {
        self.link_retry_base = base;
        self.link_retry_cap = cap;
        self.link_retry_limit = limit;
        self
    }

    /// Convenience: arm the partition watchdog with a grace period in
    /// seconds (cuts outliving it roll the survivors back).
    pub fn with_partition_rollback_after_secs(mut self, s: f64) -> Self {
        self.partition_rollback_after = Some(SimDuration::from_secs_f64(s));
        self
    }

    /// Convenience: arm the background scrub pass with a period in
    /// seconds.
    pub fn with_scrub_interval_secs(mut self, s: f64) -> Self {
        self.scrub_interval = Some(SimDuration::from_secs_f64(s));
        self
    }

    /// Convenience: set the per-server corruption-detection count that
    /// triggers quarantine (0 disables).
    pub fn with_quarantine_threshold(mut self, n: u64) -> Self {
        self.quarantine_threshold = n;
        self
    }

    /// Convenience: record torn writes when a tearing partition cuts an
    /// image push mid-stream.
    pub fn with_torn_writes(mut self) -> Self {
        self.torn_writes = true;
        self
    }

    /// The retry delay before attempt `attempt` (0-based): `base · 2^attempt`,
    /// capped. Saturates instead of overflowing for absurd attempt counts.
    pub fn link_retry_delay(&self, attempt: u32) -> SimDuration {
        let base = self.link_retry_base.max(SimDuration::from_nanos(1));
        let mult = 1u64 << attempt.min(32);
        (base * mult).min(self.link_retry_cap.max(base))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_override_fields() {
        let cfg = FtConfig::default()
            .with_period_secs(12.5)
            .with_image_bytes(123);
        assert_eq!(cfg.period, SimDuration::from_secs_f64(12.5));
        assert_eq!(cfg.image_bytes, 123);
        // Untouched fields keep their defaults.
        assert_eq!(cfg.control_bytes, 64);
        assert!(!cfg.pcl_async_markers);
        // The robustness knobs default to the paper's assumptions:
        // immediate detection, single copy, immediate garbage collection.
        assert!(cfg.detection_delay.is_zero());
        assert_eq!(cfg.replicas, 1);
        assert_eq!(cfg.retained_waves, 1);
    }

    #[test]
    fn robustness_builders_override_fields() {
        let cfg = FtConfig::default()
            .with_detection_delay_secs(0.5)
            .with_replicas(2)
            .with_retained_waves(3);
        assert_eq!(cfg.detection_delay, SimDuration::from_secs_f64(0.5));
        assert_eq!(cfg.replicas, 2);
        assert_eq!(cfg.retained_waves, 3);
    }

    #[test]
    fn network_fault_knobs_default_off_and_build() {
        let cfg = FtConfig::default();
        // Defaults: retries exist but never trigger without scheduled
        // faults, and the partition watchdog is disarmed.
        assert_eq!(cfg.link_retry_base, SimDuration::from_millis(50));
        assert_eq!(cfg.link_retry_cap, SimDuration::from_secs(2));
        assert_eq!(cfg.link_retry_limit, 8);
        assert!(cfg.partition_rollback_after.is_none());
        let cfg = cfg
            .with_link_retry(
                SimDuration::from_millis(10),
                SimDuration::from_millis(80),
                3,
            )
            .with_partition_rollback_after_secs(5.0);
        assert_eq!(cfg.link_retry_limit, 3);
        assert_eq!(
            cfg.partition_rollback_after,
            Some(SimDuration::from_secs(5))
        );
    }

    #[test]
    fn integrity_knobs_default_off_and_build() {
        let cfg = FtConfig::default();
        // Defaults: no scrub ticks, no quarantine, no torn-write
        // recording — the integrity layer is observation-only, so every
        // pre-existing schedule stays byte-identical.
        assert!(cfg.scrub_interval.is_none());
        assert_eq!(cfg.quarantine_threshold, 0);
        assert!(!cfg.torn_writes);
        let cfg = cfg
            .with_scrub_interval_secs(2.5)
            .with_quarantine_threshold(3)
            .with_torn_writes();
        assert_eq!(cfg.scrub_interval, Some(SimDuration::from_secs_f64(2.5)));
        assert_eq!(cfg.quarantine_threshold, 3);
        assert!(cfg.torn_writes);
    }

    #[test]
    fn link_retry_delay_doubles_and_caps() {
        let cfg = FtConfig::default().with_link_retry(
            SimDuration::from_millis(50),
            SimDuration::from_secs(2),
            8,
        );
        assert_eq!(cfg.link_retry_delay(0), SimDuration::from_millis(50));
        assert_eq!(cfg.link_retry_delay(1), SimDuration::from_millis(100));
        assert_eq!(cfg.link_retry_delay(5), SimDuration::from_millis(1600));
        // 50ms · 2^6 = 3.2s caps at 2s, and stays capped forever after.
        assert_eq!(cfg.link_retry_delay(6), SimDuration::from_secs(2));
        assert_eq!(cfg.link_retry_delay(63), SimDuration::from_secs(2));
        // Degenerate inputs stay sane: a zero base becomes 1 ns, a cap
        // below the base is lifted to the base.
        let z = FtConfig::default().with_link_retry(SimDuration::ZERO, SimDuration::ZERO, 1);
        assert_eq!(z.link_retry_delay(0), SimDuration::from_nanos(1));
        assert_eq!(z.link_retry_delay(40), SimDuration::from_nanos(1));
    }
}
