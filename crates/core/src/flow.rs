//! Chunked background flows: checkpoint images and message logs streamed to
//! the checkpoint servers.
//!
//! A flow transfers `bytes` from one node to another in chunks; each chunk
//! is a separate network reservation, so MPI messages interleave with the
//! stream on the shared NICs — the fair-sharing behaviour behind Fig. 5's
//! server-scaling result and the Pcl contention discussion. When
//! `also_disk` is set the flow simultaneously writes the local disk file
//! (clone writing + daemon pipelining read→send), and each chunk completes
//! at the slower of the two.
//!
//! All entry points take `&mut World`: the caller already holds the world
//! lock (the lock is not reentrant); only *later* chunks re-acquire it from
//! their scheduled events.

use ftmpi_mpi::World;
use ftmpi_net::NodeId;
use ftmpi_sim::{SimCtx, SimTime};

/// Parameters of one background flow.
#[derive(Debug, Clone)]
pub struct FlowSpec {
    /// Source node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Total bytes to move.
    pub bytes: u64,
    /// Chunk granularity.
    pub chunk: u64,
    /// Mirror the stream to the source node's local disk.
    pub also_disk: bool,
}

type DoneFn = Box<dyn FnOnce(&mut World, &SimCtx, SimTime) + Send>;

/// Start a flow; `on_done(world, sc, finish_time)` runs when the last chunk
/// lands. The flow aborts silently if the job epoch changes (a
/// failure-restart) — exactly like a TCP stream dying with its process.
pub fn start_flow(
    w: &mut World,
    sc: &SimCtx,
    spec: FlowSpec,
    on_done: impl FnOnce(&mut World, &SimCtx, SimTime) + Send + 'static,
) {
    let epoch = w.rt.epoch;
    advance_chunk(w, sc, spec, 0, epoch, Box::new(on_done));
}

fn advance_chunk(
    w: &mut World,
    sc: &SimCtx,
    spec: FlowSpec,
    sent: u64,
    epoch: u64,
    on_done: DoneFn,
) {
    if sent >= spec.bytes {
        let now = sc.now();
        on_done(w, sc, now);
        return;
    }
    let len = spec.chunk.max(1).min(spec.bytes - sent);
    let net_done =
        w.rt.net
            .transfer(spec.src, spec.dst, len, sc.now())
            .delivered;
    let done = if spec.also_disk {
        let disk_done = w.rt.net.disk_write(spec.src, len, sc.now());
        net_done.max(disk_done)
    } else {
        net_done
    };
    let handle = w.rt.world_handle();
    sc.schedule(done, move |sc| {
        let Some(strong) = handle.upgrade() else {
            return;
        };
        let mut w = strong.lock();
        if w.rt.epoch != epoch {
            return; // stream died with the failure
        }
        advance_chunk(&mut w, sc, spec, sent + len, epoch, on_done);
    });
}

/// One-shot control message between protocol endpoints (markers from the
/// checkpoint scheduler, acknowledgements, commit notifications). Delivered
/// through the network model with an epoch guard.
pub fn send_control(
    w: &mut World,
    sc: &SimCtx,
    src: NodeId,
    dst: NodeId,
    bytes: u64,
    on_arrival: impl FnOnce(&mut World, &SimCtx) + Send + 'static,
) {
    let epoch = w.rt.epoch;
    let at = w.rt.net.transfer(src, dst, bytes, sc.now()).delivered;
    let handle = w.rt.world_handle();
    sc.schedule(at, move |sc| {
        let Some(strong) = handle.upgrade() else {
            return;
        };
        let mut w = strong.lock();
        if w.rt.epoch != epoch {
            return;
        }
        on_arrival(&mut w, sc);
    });
}
