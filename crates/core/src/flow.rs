//! Chunked background flows: checkpoint images and message logs streamed to
//! the checkpoint servers.
//!
//! A flow transfers `bytes` from one node to another in chunks; each chunk
//! is a separate network reservation, so MPI messages interleave with the
//! stream on the shared NICs — the fair-sharing behaviour behind Fig. 5's
//! server-scaling result and the Pcl contention discussion. When
//! `also_disk` is set the flow simultaneously writes the local disk file
//! (clone writing + daemon pipelining read→send), and each chunk completes
//! at the slower of the two.
//!
//! All entry points take `&mut World`: the caller already holds the world
//! lock (the lock is not reentrant); only *later* chunks re-acquire it from
//! their scheduled events.
//!
//! ## Network faults
//!
//! Every chunk (and every control message) checks
//! [`reachable`](ftmpi_net::NetModel::reachable) before reserving the path.
//! An unreachable destination *pauses* the flow — the chunk is not dropped;
//! a backoff probe re-checks with capped exponential delays
//! ([`FlowRetry`]), counting `rt.stats.link_retries`. Plain flows and
//! control messages retry until the fault clears (a TCP stream blocked by
//! a partition just stalls); [`start_flow_guarded`] flows carry an attempt
//! budget and surrender to an `on_fail` hook when it runs out (checkpoint
//! pushes fall back to the next replica server). With no scheduled faults
//! `reachable` is always true and every code path is byte-identical to the
//! fault-free model.

use ftmpi_mpi::World;
use ftmpi_net::NodeId;
use ftmpi_sim::{batching_enabled, SimCtx, SimDuration, SimTime};

use crate::config::FtConfig;

/// Parameters of one background flow.
#[derive(Debug, Clone)]
pub struct FlowSpec {
    /// Source node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Total bytes to move.
    pub bytes: u64,
    /// Chunk granularity.
    pub chunk: u64,
    /// Mirror the stream to the source node's local disk.
    pub also_disk: bool,
}

type DoneFn = Box<dyn FnOnce(&mut World, &SimCtx, SimTime) + Send>;
type FailFn = Box<dyn FnOnce(&mut World, &SimCtx) + Send>;
type ArrivalFn = Box<dyn FnOnce(&mut World, &SimCtx) + Send>;

/// Tiebreak-lane namespace for flow-chunk events, disjoint from process
/// lanes by the high bit (a collision would only merge lanes, which is
/// always safe — it can only *preserve* more order).
const FLOW_LANE_BASE: u64 = 1 << 63;

/// Lane shared by every flow converging on `dst`: concurrent checkpoint
/// streams contend FIFO for the destination server's ingest queue, so the
/// order of their same-instant chunk reservations is arbitration state that
/// a perturbation seed must not scramble (it would swap which rank's image
/// lands last and move the wave-commit instant). Retry probes aimed at
/// `dst` share the lane, so a probe landing on the same instant as a
/// scheduled fault transition keeps a deterministic canonical order.
pub(crate) fn flow_lane(dst: NodeId) -> u64 {
    FLOW_LANE_BASE | dst.0 as u64
}

/// Backoff policy a flow applies while its destination is unreachable.
#[derive(Debug, Clone, Copy)]
pub struct FlowRetry {
    /// Delay before the first probe; doubles per consecutive failure.
    pub base: SimDuration,
    /// Ceiling on the doubled delay.
    pub cap: SimDuration,
    /// Consecutive failed probes before the flow gives up (`None`: retry
    /// until the fault clears — the pure pause semantic).
    pub limit: Option<u32>,
}

impl FlowRetry {
    /// The unbounded pause policy with the default backoff constants,
    /// used by control messages which have no per-job config in scope.
    /// Matches the `FtConfig` defaults.
    pub const PAUSE: FlowRetry = FlowRetry {
        base: SimDuration::from_millis(50),
        cap: SimDuration::from_secs(2),
        limit: None,
    };

    /// Bounded policy from the job's retry knobs: after
    /// `link_retry_limit` consecutive failures the flow's `on_fail` hook
    /// fires.
    pub fn bounded(cfg: &FtConfig) -> FlowRetry {
        FlowRetry {
            base: cfg.link_retry_base,
            cap: cfg.link_retry_cap,
            limit: Some(cfg.link_retry_limit),
        }
    }

    /// Unbounded policy with the job's backoff constants.
    pub fn unbounded(cfg: &FtConfig) -> FlowRetry {
        FlowRetry {
            limit: None,
            ..FlowRetry::bounded(cfg)
        }
    }

    /// Delay before 0-based probe `attempt`: `base · 2^attempt`, capped.
    pub fn delay(&self, attempt: u32) -> SimDuration {
        let base = self.base.max(SimDuration::from_nanos(1));
        (base * (1u64 << attempt.min(32))).min(self.cap.max(base))
    }
}

/// Start a flow; `on_done(world, sc, finish_time)` runs when the last chunk
/// lands. The flow aborts silently if the job epoch changes (a
/// failure-restart) — exactly like a TCP stream dying with its process.
///
/// The first chunk is deferred by a per-source-node nanosecond stagger
/// rather than reserved synchronously: checkpoint forks of several ranks
/// can land on the same virtual instant, and without the stagger the order
/// in which their streams hit the shared server queue would be whatever
/// order the fork events happened to execute in — an accident of
/// scheduling that a tiebreak perturbation seed would scramble, swapping
/// which rank's image lands last. The stagger (≤ a few ns against multi-ms
/// transfers) makes the arbitration a deterministic function of the
/// platform, not of the schedule.
pub fn start_flow(
    w: &mut World,
    sc: &SimCtx,
    spec: FlowSpec,
    on_done: impl FnOnce(&mut World, &SimCtx, SimTime) + Send + 'static,
) {
    start_flow_inner(w, sc, spec, FlowRetry::PAUSE, None, Box::new(on_done));
}

/// Like [`start_flow`], but with an explicit retry budget: when the
/// destination stays unreachable for `retry.limit` consecutive probes the
/// flow surrenders and `on_fail(world, sc)` runs instead of `on_done`
/// (checkpoint pushes use this to fall back to the next replica server).
pub fn start_flow_guarded(
    w: &mut World,
    sc: &SimCtx,
    spec: FlowSpec,
    retry: FlowRetry,
    on_fail: impl FnOnce(&mut World, &SimCtx) + Send + 'static,
    on_done: impl FnOnce(&mut World, &SimCtx, SimTime) + Send + 'static,
) {
    start_flow_inner(
        w,
        sc,
        spec,
        retry,
        Some(Box::new(on_fail)),
        Box::new(on_done),
    );
}

fn start_flow_inner(
    w: &mut World,
    sc: &SimCtx,
    spec: FlowSpec,
    retry: FlowRetry,
    on_fail: Option<FailFn>,
    on_done: DoneFn,
) {
    let epoch = w.rt.epoch;
    // The per-source nanosecond stagger plus the destination lane are what
    // keep same-instant flow starts on one server deterministically
    // arbitrated; the `UnstaggeredFlows` regression fixture removes both to
    // re-open the arbitration race for the schedule explorer.
    let raced = w.rt.race_fixture == Some(ftmpi_mpi::RaceFixture::UnstaggeredFlows);
    let at = if raced {
        sc.now()
    } else {
        sc.now() + SimDuration::from_nanos(spec.src.0 as u64)
    };
    let handle = w.rt.world_handle();
    let lane = if raced {
        None
    } else {
        Some(flow_lane(spec.dst))
    };
    sc.schedule_keyed(at, lane, move |sc| {
        let Some(strong) = handle.upgrade() else {
            return;
        };
        let mut w = strong.lock();
        if w.rt.epoch != epoch {
            return; // the failure beat the stream's first byte
        }
        advance_chunk(&mut w, sc, spec, 0, epoch, retry, 0, on_fail, on_done);
    });
}

#[allow(clippy::too_many_arguments)] // private recursion carrying flow state
fn advance_chunk(
    w: &mut World,
    sc: &SimCtx,
    spec: FlowSpec,
    sent: u64,
    epoch: u64,
    retry: FlowRetry,
    attempt: u32,
    on_fail: Option<FailFn>,
    on_done: DoneFn,
) {
    if sent >= spec.bytes {
        let now = sc.now();
        on_done(w, sc, now);
        return;
    }
    let handle = w.rt.world_handle();
    let lane = Some(flow_lane(spec.dst));
    // Bulk flows model a reliable stream: each chunk needs the data path
    // *and* the acknowledgement path back. Under a one-directional cut the
    // sender's window closes — data may physically arrive but nothing is
    // committed, so the stream stalls exactly like a full cut and no chunk
    // is double-sent when the cut heals.
    if !w.rt.net.reachable(spec.src, spec.dst) || !w.rt.net.reachable(spec.dst, spec.src) {
        // Paused by a link fault or partition: nothing is dropped, the
        // stream just stalls. Probe again after a capped exponential
        // backoff — or surrender to `on_fail` once the budget is spent.
        if let Some(limit) = retry.limit {
            if attempt >= limit {
                if let Some(f) = on_fail {
                    f(w, sc);
                }
                return;
            }
        }
        w.rt.stats.link_retries += 1;
        let probe_at = sc.now() + retry.delay(attempt);
        sc.schedule_keyed(probe_at, lane, move |sc| {
            let Some(strong) = handle.upgrade() else {
                return;
            };
            let mut w = strong.lock();
            if w.rt.epoch != epoch {
                return;
            }
            advance_chunk(
                &mut w,
                sc,
                spec,
                sent,
                epoch,
                retry,
                attempt + 1,
                on_fail,
                on_done,
            );
        });
        return;
    }
    // Reserve this chunk — and, with batching on, keep reserving inline for
    // as long as the unbatched kernel would have done nothing else anyway.
    // The unbatched loop schedules one completion event per chunk; when that
    // event is strictly the earliest thing in the queue, its handler runs
    // with exactly the model state visible here (nothing else executed in
    // between, so reachability, the epoch, and every queue frontier are
    // unchanged), and its reservation call `transfer(src, dst, len, done)`
    // is replicated bit-for-bit by passing the previous completion time as
    // `earliest`. Each swallowed completion is credited back to the event
    // count so run reports — which feed calibration fingerprints — stay
    // identical. The fast-forward stops at the first chunk whose completion
    // is *not* strictly earliest (ties included: tiebreak order among
    // same-time events must stay the kernel's call), at the stop horizon
    // (the unbatched kernel halts on, without consuming, the first event
    // past it), and before the final chunk (`on_done` must observe its
    // completion as a real event time).
    let batching = batching_enabled();
    let mut sent = sent;
    let mut at = sc.now();
    let mut swallowed: u64 = 0;
    #[cfg(debug_assertions)]
    let mut touch_watch: Option<(u64, Option<u64>)> = None;
    let done = loop {
        let len = spec.chunk.max(1).min(spec.bytes - sent);
        let net_done = w.rt.net.transfer(spec.src, spec.dst, len, at).delivered;
        let done = if spec.also_disk {
            let disk_done = w.rt.net.disk_write(spec.src, len, at);
            net_done.max(disk_done)
        } else {
            net_done
        };
        sent += len;
        #[cfg(debug_assertions)]
        {
            // The batching argument made manifest: within one quiescent
            // window every chunk bumps the path's contention counters by
            // exactly the same amount, because no competing reservation can
            // interleave. (Measured as consecutive per-chunk deltas so the
            // check is independent of traffic before the window.)
            let now_touches = w.rt.net.path_touches(spec.src, spec.dst);
            if let Some((prev_touches, prev_delta)) = touch_watch {
                let delta = now_touches - prev_touches;
                if let Some(expect) = prev_delta {
                    debug_assert_eq!(
                        delta, expect,
                        "competing reservation interleaved a batched flow window"
                    );
                }
                touch_watch = Some((now_touches, Some(delta)));
            } else {
                touch_watch = Some((now_touches, None));
            }
        }
        let quiescent = batching
            && sent < spec.bytes
            && sc.next_event_time().is_none_or(|t| t > done)
            && sc.horizon().is_none_or(|mt| done <= mt);
        if !quiescent {
            break done;
        }
        swallowed += 1;
        at = done;
    };
    if swallowed > 0 {
        sc.credit_virtual_events(swallowed);
    }
    sc.schedule_keyed(done, lane, move |sc| {
        let Some(strong) = handle.upgrade() else {
            return;
        };
        let mut w = strong.lock();
        if w.rt.epoch != epoch {
            return; // stream died with the failure
        }
        // A delivered chunk proves the link: the next stall starts a
        // fresh backoff ladder.
        advance_chunk(&mut w, sc, spec, sent, epoch, retry, 0, on_fail, on_done);
    });
}

/// One-shot control message between protocol endpoints (markers from the
/// checkpoint scheduler, acknowledgements, commit notifications). Delivered
/// through the network model with an epoch guard. `lane` is the tiebreak
/// lane of the arrival event — pass the destination process's lane when the
/// message races same-time traffic to one rank (scheduler markers), `None`
/// for order-insensitive sinks (ack and report counters).
pub fn send_control(
    w: &mut World,
    sc: &SimCtx,
    src: NodeId,
    dst: NodeId,
    bytes: u64,
    lane: Option<u64>,
    on_arrival: impl FnOnce(&mut World, &SimCtx) + Send + 'static,
) {
    send_control_attempt(w, sc, src, dst, bytes, lane, 0, Box::new(on_arrival));
}

/// One delivery attempt of a control message. While the destination is
/// unreachable the message waits — heartbeats and markers blocked by a
/// partition arrive late rather than never — re-probing with the default
/// unbounded backoff ([`FlowRetry::PAUSE`]).
#[allow(clippy::too_many_arguments)] // private recursion carrying retry state
fn send_control_attempt(
    w: &mut World,
    sc: &SimCtx,
    src: NodeId,
    dst: NodeId,
    bytes: u64,
    lane: Option<u64>,
    attempt: u32,
    on_arrival: ArrivalFn,
) {
    let epoch = w.rt.epoch;
    let handle = w.rt.world_handle();
    if !w.rt.net.reachable(src, dst) {
        w.rt.stats.link_retries += 1;
        let probe_at = sc.now() + FlowRetry::PAUSE.delay(attempt);
        // Probes keep the caller's lane: a retried marker still races the
        // same per-rank traffic it raced on first emission.
        sc.schedule_keyed(probe_at, lane, move |sc| {
            let Some(strong) = handle.upgrade() else {
                return;
            };
            let mut w = strong.lock();
            if w.rt.epoch != epoch {
                return;
            }
            send_control_attempt(&mut w, sc, src, dst, bytes, lane, attempt + 1, on_arrival);
        });
        return;
    }
    let at = w.rt.net.transfer(src, dst, bytes, sc.now()).delivered;
    sc.schedule_keyed(at, lane, move |sc| {
        let Some(strong) = handle.upgrade() else {
            return;
        };
        let mut w = strong.lock();
        if w.rt.epoch != epoch {
            return;
        }
        on_arrival(&mut w, sc);
    });
}
