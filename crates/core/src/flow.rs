//! Chunked background flows: checkpoint images and message logs streamed to
//! the checkpoint servers.
//!
//! A flow transfers `bytes` from one node to another in chunks; each chunk
//! is a separate network reservation, so MPI messages interleave with the
//! stream on the shared NICs — the fair-sharing behaviour behind Fig. 5's
//! server-scaling result and the Pcl contention discussion. When
//! `also_disk` is set the flow simultaneously writes the local disk file
//! (clone writing + daemon pipelining read→send), and each chunk completes
//! at the slower of the two.
//!
//! All entry points take `&mut World`: the caller already holds the world
//! lock (the lock is not reentrant); only *later* chunks re-acquire it from
//! their scheduled events.

use ftmpi_mpi::World;
use ftmpi_net::NodeId;
use ftmpi_sim::{SimCtx, SimDuration, SimTime};

/// Parameters of one background flow.
#[derive(Debug, Clone)]
pub struct FlowSpec {
    /// Source node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Total bytes to move.
    pub bytes: u64,
    /// Chunk granularity.
    pub chunk: u64,
    /// Mirror the stream to the source node's local disk.
    pub also_disk: bool,
}

type DoneFn = Box<dyn FnOnce(&mut World, &SimCtx, SimTime) + Send>;

/// Tiebreak-lane namespace for flow-chunk events, disjoint from process
/// lanes by the high bit (a collision would only merge lanes, which is
/// always safe — it can only *preserve* more order).
const FLOW_LANE_BASE: u64 = 1 << 63;

/// Lane shared by every flow converging on `dst`: concurrent checkpoint
/// streams contend FIFO for the destination server's ingest queue, so the
/// order of their same-instant chunk reservations is arbitration state that
/// a perturbation seed must not scramble (it would swap which rank's image
/// lands last and move the wave-commit instant).
fn flow_lane(dst: NodeId) -> u64 {
    FLOW_LANE_BASE | dst.0 as u64
}

/// Start a flow; `on_done(world, sc, finish_time)` runs when the last chunk
/// lands. The flow aborts silently if the job epoch changes (a
/// failure-restart) — exactly like a TCP stream dying with its process.
///
/// The first chunk is deferred by a per-source-node nanosecond stagger
/// rather than reserved synchronously: checkpoint forks of several ranks
/// can land on the same virtual instant, and without the stagger the order
/// in which their streams hit the shared server queue would be whatever
/// order the fork events happened to execute in — an accident of
/// scheduling that a tiebreak perturbation seed would scramble, swapping
/// which rank's image lands last. The stagger (≤ a few ns against multi-ms
/// transfers) makes the arbitration a deterministic function of the
/// platform, not of the schedule.
pub fn start_flow(
    w: &mut World,
    sc: &SimCtx,
    spec: FlowSpec,
    on_done: impl FnOnce(&mut World, &SimCtx, SimTime) + Send + 'static,
) {
    let epoch = w.rt.epoch;
    let at = sc.now() + SimDuration::from_nanos(spec.src.0 as u64);
    let handle = w.rt.world_handle();
    let lane = Some(flow_lane(spec.dst));
    let on_done: DoneFn = Box::new(on_done);
    sc.schedule_keyed(at, lane, move |sc| {
        let Some(strong) = handle.upgrade() else {
            return;
        };
        let mut w = strong.lock();
        if w.rt.epoch != epoch {
            return; // the failure beat the stream's first byte
        }
        advance_chunk(&mut w, sc, spec, 0, epoch, on_done);
    });
}

fn advance_chunk(
    w: &mut World,
    sc: &SimCtx,
    spec: FlowSpec,
    sent: u64,
    epoch: u64,
    on_done: DoneFn,
) {
    if sent >= spec.bytes {
        let now = sc.now();
        on_done(w, sc, now);
        return;
    }
    let len = spec.chunk.max(1).min(spec.bytes - sent);
    let net_done =
        w.rt.net
            .transfer(spec.src, spec.dst, len, sc.now())
            .delivered;
    let done = if spec.also_disk {
        let disk_done = w.rt.net.disk_write(spec.src, len, sc.now());
        net_done.max(disk_done)
    } else {
        net_done
    };
    let handle = w.rt.world_handle();
    let lane = Some(flow_lane(spec.dst));
    sc.schedule_keyed(done, lane, move |sc| {
        let Some(strong) = handle.upgrade() else {
            return;
        };
        let mut w = strong.lock();
        if w.rt.epoch != epoch {
            return; // stream died with the failure
        }
        advance_chunk(&mut w, sc, spec, sent + len, epoch, on_done);
    });
}

/// One-shot control message between protocol endpoints (markers from the
/// checkpoint scheduler, acknowledgements, commit notifications). Delivered
/// through the network model with an epoch guard. `lane` is the tiebreak
/// lane of the arrival event — pass the destination process's lane when the
/// message races same-time traffic to one rank (scheduler markers), `None`
/// for order-insensitive sinks (ack and report counters).
pub fn send_control(
    w: &mut World,
    sc: &SimCtx,
    src: NodeId,
    dst: NodeId,
    bytes: u64,
    lane: Option<u64>,
    on_arrival: impl FnOnce(&mut World, &SimCtx) + Send + 'static,
) {
    let epoch = w.rt.epoch;
    let at = w.rt.net.transfer(src, dst, bytes, sc.now()).delivered;
    let handle = w.rt.world_handle();
    sc.schedule_keyed(at, lane, move |sc| {
        let Some(strong) = handle.upgrade() else {
            return;
        };
        let mut w = strong.lock();
        if w.rt.epoch != epoch {
            return;
        }
        on_arrival(&mut w, sc);
    });
}
