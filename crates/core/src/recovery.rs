//! The dispatcher's failure handling: kill the job, restore every rank from
//! a committed wave, replay channel state, and respawn.
//!
//! Matches §4 of the paper: "the dispatcher signals all the other processes
//! to exit" (coordinated checkpointing rolls *all* ranks back), survivors
//! restore "from the local checkpoint stored on the disk if it exists;
//! otherwise they obtain it from the checkpoint server".
//!
//! Beyond the paper's model this module also covers:
//!
//! * **detection latency** ([`inject_kill`]): the paper assumes immediate
//!   detection through the broken TCP connection; with
//!   `FtConfig::detection_delay > 0` the victim sits dead (its library and
//!   daemon unresponsive — in-flight waves stall on it) until a heartbeat
//!   timeout fires `fail_and_restart`, so lost work grows with the lag;
//! * **checkpoint-server failures** ([`server_fail`]): images on the dead
//!   server vanish; the next restart falls back to the newest *retained*
//!   committed wave whose needed images survive, or to scratch;
//! * **nested restarts**: a kill landing mid-recovery restarts the restart
//!   cleanly — stale respawns and delayed-send launches die on the epoch
//!   guard, so nothing double-counts;
//! * **correlated failures** ([`inject_kill_many`]): a node death kills
//!   every colocated rank atomically — one detection event, one restart,
//!   not a cascade of nested restarts;
//! * **network partitions** ([`partition_cut`]): a partition does not kill
//!   anything by itself. Heartbeats to the cut-off side just stall, and
//!   only if the cut outlives the grace window
//!   (`FtConfig::partition_rollback_after`) does the dispatcher declare
//!   the unreachable ranks failed. A cut that heals inside the window is
//!   *suppressed* — zero rollbacks, counted in
//!   `FtStats::partitions_suppressed`. Image fetches blocked by an active
//!   fault retry with capped exponential backoff and fall back to the next
//!   replica before giving up.

use std::sync::{Arc, Mutex as StdMutex, Weak};

use ftmpi_mpi::{spawn_rank, AppFn, AppMsg, RankStatus, World, WorldRef};
use ftmpi_net::NodeId;
use ftmpi_sim::{SimCtx, SimTime};

use ftmpi_sim::SimDuration;

use crate::config::FtConfig;
use crate::flow::{flow_lane, start_flow_guarded, FlowRetry, FlowSpec};
use crate::image::WaveRecord;
use crate::pcl::Pcl;
use crate::runner::ProtocolChoice;
use crate::server::{CheckpointStore, StoreError, StoredImage};
use crate::stats::FtStats;
use crate::vcl::Vcl;

/// A failure-path operation was routed to the wrong protocol engine.
///
/// Replaces the old `expect("protocol is not ...")` downcast panics so a
/// fault-injection campaign reports which scenario broke instead of
/// aborting the whole process.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecoveryError {
    /// The world's installed protocol does not match the failure router's
    /// `ProtocolChoice`.
    ProtocolMismatch {
        /// Engine the failure path expected.
        expected: &'static str,
        /// Engine actually installed in the world.
        found: &'static str,
    },
}

impl std::fmt::Display for RecoveryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecoveryError::ProtocolMismatch { expected, found } => write!(
                f,
                "failure path routed to the wrong protocol: expected {expected}, found {found}"
            ),
        }
    }
}

impl std::error::Error for RecoveryError {}

/// Restore data pulled out of a protocol engine at failure time.
pub(crate) struct RestoreData {
    pub wave: Option<WaveRecord>,
    /// Per-rank server node an image fetch would come from (the lowest
    /// replica whose digest verifies, falling back to the rank's primary
    /// server).
    pub image_source: Vec<NodeId>,
    /// Per-rank *full* replica list, ascending by node id. A fetch blocked
    /// by a network fault walks this list — re-verifying each candidate's
    /// digest at fetch time — before giving up.
    pub image_sources: Vec<Vec<NodeId>>,
    /// Per-rank digest the chosen wave's image must hash to (0 when
    /// restoring from scratch; never consulted then).
    pub expected_digest: Vec<u64>,
    /// Damaged replicas the planner's verification walked past, as
    /// (wave, rank, node) — the caller traces them (the planner has no
    /// `SimCtx`).
    pub detections: Vec<(u64, usize, NodeId)>,
    /// Servers the planner pushed over the corruption threshold.
    pub quarantines: Vec<NodeId>,
}

/// Inspect every replica of one (wave, rank) slot against the digest its
/// wave record implies, recording each failure as a detection and
/// quarantining servers that cross the threshold (0 disables quarantine).
/// Returns how many replicas were damaged. Re-detections of a replica
/// nothing has repaired or dropped yet count again — matching the
/// [`FtStats::images_corrupt_detected`] contract.
#[allow(clippy::too_many_arguments)] // an accounting sink, not an API
fn detect_slot_damage(
    store: &mut CheckpointStore,
    wave: u64,
    rank: usize,
    expected: u64,
    threshold: u64,
    stats: &mut FtStats,
    detections: &mut Vec<(u64, usize, NodeId)>,
    quarantines: &mut Vec<NodeId>,
) -> u64 {
    let mut damaged = 0;
    for node in store.locate_all(wave, rank) {
        if store.verify_replica(wave, rank, node, expected).is_ok() {
            continue;
        }
        damaged += 1;
        stats.images_corrupt_detected += 1;
        detections.push((wave, rank, node));
        let seen = store.note_corruption(node);
        if threshold > 0 && seen >= threshold && store.quarantine_server(node) {
            stats.servers_quarantined += 1;
            quarantines.push(node);
        }
    }
    damaged
}

/// Pick the restore wave and account the rollback: the newest retained
/// committed wave whose server-fetched images all survive *with a
/// verifying digest*, else older retained waves, else scratch. Shared by
/// both coordinated engines.
///
/// Verification is part of wave choice: a slot whose every replica fails
/// its digest blocks the candidate exactly like a slot the server failure
/// erased, so an all-copies-corrupt newest wave falls back to an older
/// retained one instead of committing a doomed fetch. Damage seen along
/// the way feeds the detection/quarantine counters; slots the fallback or
/// the replica walk salvages count as repairs.
fn plan_restore(
    committed: &[WaveRecord],
    store: &mut CheckpointStore,
    server_node_of: &[NodeId],
    stats: &mut FtStats,
    now: SimTime,
    need_server: &[bool],
    quarantine_threshold: u64,
) -> RestoreData {
    let mut detections = Vec::new();
    let mut quarantines = Vec::new();
    let mut chosen: Option<WaveRecord> = None;
    let mut fallback_repairs = 0u64;
    for rec in committed.iter().rev() {
        let mut viable = true;
        let mut blocked_by_corruption = 0u64;
        for (r, need) in need_server.iter().enumerate() {
            if !need {
                continue;
            }
            let expected = rec.images[r].digest(rec.wave, r);
            if store.has_intact_image(rec.wave, r, expected) {
                continue;
            }
            viable = false;
            if store.has_image(rec.wave, r) {
                // Replicas exist but every copy fails verification:
                // corruption, not server loss, blocked this wave here.
                blocked_by_corruption += 1;
                detect_slot_damage(
                    store,
                    rec.wave,
                    r,
                    expected,
                    quarantine_threshold,
                    stats,
                    &mut detections,
                    &mut quarantines,
                );
            }
        }
        if viable {
            // Damaged copies on the chosen wave are walked past by the
            // verified fetch: each affected slot is one repair.
            for (r, need) in need_server.iter().enumerate() {
                if !need {
                    continue;
                }
                let expected = rec.images[r].digest(rec.wave, r);
                let damaged = detect_slot_damage(
                    store,
                    rec.wave,
                    r,
                    expected,
                    quarantine_threshold,
                    stats,
                    &mut detections,
                    &mut quarantines,
                );
                stats.images_repaired += u64::from(damaged > 0);
            }
            chosen = Some(rec.clone());
            break;
        }
        fallback_repairs += blocked_by_corruption;
    }
    if chosen.is_some() {
        // Slots salvaged by falling back past a corruption-blocked newer
        // wave: the older retained copy is the repair.
        stats.images_repaired += fallback_repairs;
    }
    let depth = match &chosen {
        Some(rec) => committed.iter().filter(|c| c.wave > rec.wave).count() as u64,
        None => committed.len() as u64,
    };
    stats.rollback_depth_max = stats.rollback_depth_max.max(depth);
    stats.lost_work += match &chosen {
        Some(rec) => rec.lost_work_at(now),
        None => now.saturating_since(SimTime::ZERO),
    };
    if chosen.is_some() {
        stats.images_refetched += need_server.iter().filter(|&&b| b).count() as u64;
    }
    let expected_digest: Vec<u64> = (0..server_node_of.len())
        .map(|r| {
            chosen
                .as_ref()
                .map(|rec| rec.images[r].digest(rec.wave, r))
                .unwrap_or(0)
        })
        .collect();
    let image_source = (0..server_node_of.len())
        .map(|r| {
            chosen
                .as_ref()
                .and_then(|rec| store.locate_intact(rec.wave, r, expected_digest[r]))
                .map(|img| img.server)
                .unwrap_or(server_node_of[r])
        })
        .collect();
    let image_sources = (0..server_node_of.len())
        .map(|r| {
            let all = chosen
                .as_ref()
                .map(|rec| store.locate_all(rec.wave, r))
                .unwrap_or_default();
            if all.is_empty() {
                vec![server_node_of[r]]
            } else {
                all
            }
        })
        .collect();
    RestoreData {
        wave: chosen,
        image_source,
        image_sources,
        expected_digest,
        detections,
        quarantines,
    }
}

impl Vcl {
    pub(crate) fn prepare_restart(
        w: &mut World,
        now: SimTime,
        need_server: &[bool],
    ) -> Result<RestoreData, RecoveryError> {
        let World { proto, .. } = w;
        let found = proto.name();
        let Some(vcl) = proto.as_any_mut().downcast_mut::<Vcl>() else {
            return Err(RecoveryError::ProtocolMismatch {
                expected: "vcl",
                found,
            });
        };
        vcl.stats.restarts += 1;
        let server_node_of = vcl.server_nodes_of_ranks();
        let threshold = vcl.ft_cfg().quarantine_threshold;
        Ok(plan_restore(
            &vcl.committed,
            &mut vcl.store,
            &server_node_of,
            &mut vcl.stats,
            now,
            need_server,
            threshold,
        ))
    }
}

impl Pcl {
    pub(crate) fn prepare_restart(
        w: &mut World,
        now: SimTime,
        need_server: &[bool],
    ) -> Result<RestoreData, RecoveryError> {
        let World { proto, .. } = w;
        let found = proto.name();
        let Some(pcl) = proto.as_any_mut().downcast_mut::<Pcl>() else {
            return Err(RecoveryError::ProtocolMismatch {
                expected: "pcl",
                found,
            });
        };
        pcl.stats.restarts += 1;
        let server_node_of = pcl.server_nodes_of_ranks();
        let threshold = pcl.ft_cfg().quarantine_threshold;
        Ok(plan_restore(
            &pcl.committed,
            &mut pcl.store,
            &server_node_of,
            &mut pcl.stats,
            now,
            need_server,
            threshold,
        ))
    }
}

/// Inject a task kill, honoring the detection-latency model.
///
/// With `detection_delay == 0` this *is* [`fail_and_restart`] — the paper's
/// immediate detection, bit-for-bit. With a positive lag, the victim's task
/// dies now (its process killed, its rank marked [`RankStatus::Dead`]) but
/// the dispatcher only notices — and restarts the job — one heartbeat
/// timeout later. A kill of an already-dead rank during that window is
/// absorbed (one task cannot die twice); a restart happening in between
/// revives the victim and cancels the stale detection via the epoch guard.
pub fn inject_kill(
    sc: &SimCtx,
    world: &WorldRef,
    app: &AppFn,
    kind: ProtocolChoice,
    victim: usize,
    ft: &FtConfig,
) -> Result<(), RecoveryError> {
    inject_kill_many(sc, world, app, kind, &[victim], ft)
}

/// Inject a *correlated* kill: every rank in `victims` dies at the same
/// instant (a node death takes all its colocated tasks with it). One
/// detection event covers the whole group — the dispatcher sees the node's
/// heartbeats vanish together and restarts the job exactly once, instead of
/// stacking a nested restart per rank. Already-dead victims are absorbed
/// individually; the kill is a no-op only if *every* victim was already
/// dead. An empty group is also a no-op — the death of a node hosting no
/// ranks (a dedicated server machine) is its colocated server failure
/// alone, not a job restart.
pub fn inject_kill_many(
    sc: &SimCtx,
    world: &WorldRef,
    app: &AppFn,
    kind: ProtocolChoice,
    victims: &[usize],
    ft: &FtConfig,
) -> Result<(), RecoveryError> {
    if victims.is_empty() {
        return Ok(());
    }
    if ft.detection_delay.is_zero() {
        return fail_and_restart_many(sc, world, app, kind, victims, ft);
    }
    let (handle, epoch) = {
        let mut w = world.lock();
        if w.rt.job_complete() {
            return Ok(());
        }
        let mut killed_any = false;
        for &victim in victims {
            if w.rt.ranks[victim].status == RankStatus::Dead {
                continue; // absorbed: the task is already dead
            }
            if let Some(pid) = w.rt.ranks[victim].pid.take() {
                sc.kill(pid);
            }
            w.rt.ranks[victim].status = RankStatus::Dead;
            killed_any = true;
        }
        if !killed_any {
            return Ok(());
        }
        (w.rt.world_handle(), w.rt.epoch)
    };
    let app = app.clone();
    let ft = ft.clone();
    let victims = victims.to_vec();
    sc.schedule(sc.now() + ft.detection_delay, move |sc| {
        let Some(world) = handle.upgrade() else {
            return;
        };
        {
            let w = world.lock();
            if w.rt.epoch != epoch {
                return; // a restart already revived the victims
            }
        }
        if let Err(e) = fail_and_restart_many(sc, &world, &app, kind, &victims, &ft) {
            world.lock().rt.record_fatal(&e.to_string());
        }
    });
    Ok(())
}

/// Kill a checkpoint-server node (by index into the deployment's server
/// fleet): every image replica it stored becomes unavailable, partial
/// waves streaming to it abort, and later restarts fall back to older
/// retained waves or scratch. Only the coordinated protocols model
/// checkpoint servers this way; for `Dummy`/`Mlog` the call is a no-op, as
/// is an out-of-range index or a kill after job completion.
pub fn server_fail(
    sc: &SimCtx,
    world: &WorldRef,
    kind: ProtocolChoice,
    server_index: usize,
) -> Result<(), RecoveryError> {
    let mut w = world.lock();
    if w.rt.job_complete() {
        return Ok(());
    }
    let Some(node) = fleet_node_of(&mut w, kind, server_index)? else {
        return Ok(());
    };
    sc.trace_proto(ftmpi_sim::ProtoEvent::ServerFail {
        node: node.0 as u64,
    });
    match kind {
        ProtocolChoice::Dummy | ProtocolChoice::Mlog => {}
        ProtocolChoice::Vcl => Vcl::on_server_failed(&mut w, sc, node),
        ProtocolChoice::Pcl => Pcl::on_server_failed(&mut w, sc, node),
    }
    Ok(())
}

/// Resolve a checkpoint-server fleet index to its node for the coordinated
/// engines; `Ok(None)` for `Dummy`/`Mlog` or an out-of-range index.
fn fleet_node_of(
    w: &mut World,
    kind: ProtocolChoice,
    server_index: usize,
) -> Result<Option<NodeId>, RecoveryError> {
    let World { proto, .. } = w;
    let found = proto.name();
    Ok(match kind {
        ProtocolChoice::Dummy | ProtocolChoice::Mlog => None,
        ProtocolChoice::Vcl => proto
            .as_any_mut()
            .downcast_mut::<Vcl>()
            .ok_or(RecoveryError::ProtocolMismatch {
                expected: "vcl",
                found,
            })?
            .server_fleet_node(server_index),
        ProtocolChoice::Pcl => proto
            .as_any_mut()
            .downcast_mut::<Pcl>()
            .ok_or(RecoveryError::ProtocolMismatch {
                expected: "pcl",
                found,
            })?
            .server_fleet_node(server_index),
    })
}

/// Silently damage stored image replicas on a checkpoint-server node (by
/// fleet index): `rank: Some(r)` flips the replica of `r`'s image
/// belonging to the newest wave stored there; `rank: None` flips every
/// replica the node holds (whole-disk bit rot). Nothing in the runtime
/// notices *now* — detection happens when a fetch or scrub pass verifies a
/// digest, which is the whole point of the injection. No-ops mirror
/// [`server_fail`]: `Dummy`/`Mlog`, an out-of-range index, a completed
/// job, or a server holding nothing to damage.
pub fn corrupt_images(
    sc: &SimCtx,
    world: &WorldRef,
    kind: ProtocolChoice,
    server_index: usize,
    rank: Option<usize>,
) -> Result<(), RecoveryError> {
    let mut w = world.lock();
    if w.rt.job_complete() {
        return Ok(());
    }
    let Some(node) = fleet_node_of(&mut w, kind, server_index)? else {
        return Ok(());
    };
    let damaged: Vec<(u64, usize)> = match rank {
        Some(r) => with_store(&mut w, kind, |s| s.corrupt_newest(r, node))
            .flatten()
            .map(|wave| vec![(wave, r)])
            .unwrap_or_default(),
        None => with_store(&mut w, kind, |s| s.corrupt_server(node)).unwrap_or_default(),
    };
    for (wave, r) in damaged {
        sc.trace_proto(ftmpi_sim::ProtoEvent::Corrupt {
            wave,
            rank: r,
            node: node.0 as u64,
        });
    }
    Ok(())
}

/// Fail the job (as if `victim`'s task was killed) and orchestrate the
/// restart from a committed wave (or from scratch if none survives).
///
/// No-op if the job already completed.
pub fn fail_and_restart(
    sc: &SimCtx,
    world: &WorldRef,
    app: &AppFn,
    kind: ProtocolChoice,
    victim: usize,
    ft: &FtConfig,
) -> Result<(), RecoveryError> {
    fail_and_restart_many(sc, world, app, kind, &[victim], ft)
}

/// [`fail_and_restart`] for a correlated group of victims: one restart
/// covers every rank in `victims` (coordinated checkpointing rolls all
/// ranks back anyway — the group only changes *which* ranks must re-fetch
/// their image from a server).
///
/// An image fetch whose source server is unreachable (link down or
/// partitioned) does not deadlock the restart: the rank's fetch turns into
/// a probe chain with capped exponential backoff
/// (`FtConfig::link_retry_delay`), walking the replica list when the
/// per-fetch budget (`link_retry_limit`) runs out, and declaring the job
/// fatally stuck only once every replica is exhausted. With no active
/// faults the probe path is never entered and the restart is byte-for-byte
/// the fault-free one.
pub fn fail_and_restart_many(
    sc: &SimCtx,
    world: &WorldRef,
    app: &AppFn,
    kind: ProtocolChoice,
    victims: &[usize],
    ft: &FtConfig,
) -> Result<(), RecoveryError> {
    if kind == ProtocolChoice::Mlog {
        return Err(RecoveryError::ProtocolMismatch {
            expected: "vcl, pcl or dummy",
            found: "mlog",
        });
    }
    let mut w = world.lock();
    if w.rt.job_complete() {
        return Ok(());
    }
    let n = w.rt.size();
    let handle = w.rt.world_handle();

    // 1. The dispatcher kills every process.
    for r in 0..n {
        let rs = &mut w.rt.ranks[r];
        if let Some(pid) = rs.pid.take() {
            sc.kill(pid);
        }
        rs.status = RankStatus::Dead;
    }
    w.rt.epoch += 1;
    let epoch = w.rt.epoch;
    sc.trace_proto(ftmpi_sim::ProtoEvent::Restart { epoch });
    w.rt.stats.finished_ranks = 0;
    w.rt.stats.restarts += 1;
    let now = sc.now();
    w.rt.net.reset_queues(now);

    // Which ranks must fetch their image from a server (constrains the
    // restore wave: a server failure may have lost the newest images).
    let need_server: Vec<bool> = (0..n)
        .map(|r| (victims.contains(&r) && ft.fetch_failed_from_server) || !ft.write_local_disk)
        .collect();

    // 2. Pull restore data from the protocol and abort any in-flight wave
    //    (its partial images are garbage-collected; its flows and timers
    //    die on the epoch guards).
    let restore = match kind {
        ProtocolChoice::Dummy | ProtocolChoice::Mlog => None, // Mlog rejected above
        ProtocolChoice::Vcl => {
            let data = Vcl::prepare_restart(&mut w, now, &need_server)?;
            Vcl::abort_wave(&mut w, sc);
            Some(data)
        }
        ProtocolChoice::Pcl => {
            let data = Pcl::prepare_restart(&mut w, now, &need_server)?;
            Pcl::abort_wave(&mut w, sc);
            Some(data)
        }
    };
    let wave = restore.as_ref().and_then(|d| d.wave.clone());
    if let Some(data) = &restore {
        for &(cw, cr, cnode) in &data.detections {
            sc.trace_proto(ftmpi_sim::ProtoEvent::CorruptDetected {
                wave: cw,
                rank: cr,
                node: cnode.0 as u64,
            });
        }
        for &qnode in &data.quarantines {
            sc.trace_proto(ftmpi_sim::ProtoEvent::Quarantine {
                node: qnode.0 as u64,
            });
        }
    }

    // 3. Per-rank restore: reset runtime state, compute the time at which
    //    the rank's image is back in memory, schedule replay + respawn.
    // A server fetch whose source is currently unreachable cannot reserve
    // its transfer now — the rank joins `blocked` and a probe chain takes
    // over after the loop.
    let base = now + ft.restart_delay;
    let mut latest_ready = base;
    let mut blocked: Vec<BlockedFetch> = Vec::new();
    for (r, &from_server) in need_server.iter().enumerate() {
        let (skip, credit) = match &wave {
            Some(rec) => (rec.images[r].ops_completed, rec.images[r].time_credit),
            None => (0, ftmpi_sim::SimDuration::ZERO),
        };
        w.rt.ranks[r].reset_for_restart(skip, credit);
        let node = w.rt.placement.node_of(r);
        let ready: Option<SimTime> = match (&wave, &restore) {
            (Some(rec), Some(data)) => {
                if from_server {
                    // A fetch is a round trip: the request must reach the
                    // server and the image must come back. A half-open cut
                    // in either direction blocks it — fetching across one
                    // would commit a restore whose acknowledgement path is
                    // dead.
                    if w.rt.net.reachable(data.image_source[r], node)
                        && w.rt.net.reachable(node, data.image_source[r])
                    {
                        // The planner picked this source under the same
                        // lock, digest-verified — record the consumption.
                        sc.trace_proto(ftmpi_sim::ProtoEvent::RestoreImage {
                            wave: rec.wave,
                            rank: r,
                            node: data.image_source[r].0 as u64,
                        });
                        Some(
                            w.rt.net
                                .transfer(data.image_source[r], node, ft.image_bytes, base)
                                .delivered,
                        )
                    } else {
                        None // fetch blocked by an active network fault
                    }
                } else {
                    Some(w.rt.net.disk_read(node, ft.image_bytes, base))
                }
            }
            _ => Some(base),
        };
        if let Some(ready) = ready {
            latest_ready = latest_ready.max(ready);
        }

        // Restore the rank's library memory *now*, before any restarted
        // peer's re-executed sends can arrive: first the image's pending
        // messages, then the Chandy–Lamport channel logs — the arrival
        // order of the consistent cut.
        if let Some(rec) = &wave {
            for m in rec.images[r].pending.clone() {
                w.rt.inject_restored(sc, m);
            }
            for m in rec.logs[r].clone() {
                w.rt.inject_restored(sc, m);
            }
        }
        // Blocking protocol: "every message delayed in emission will be
        // sent again after the restart" — when the process resumes.
        let delayed_sends = wave
            .as_ref()
            .map(|rec| rec.delayed_sends[r].clone())
            .unwrap_or_default();
        let Some(ready) = ready else {
            let sources = restore
                .as_ref()
                .map(|d| d.image_sources[r].clone())
                .unwrap_or_default();
            blocked.push(BlockedFetch {
                rank: r,
                node,
                sources,
                delayed_sends,
                wave: wave.as_ref().map_or(0, |rec| rec.wave),
                expected: restore.as_ref().map_or(0, |d| d.expected_digest[r]),
            });
            continue;
        };
        schedule_respawn(
            sc,
            handle.clone(),
            epoch,
            r,
            ready,
            delayed_sends,
            app.clone(),
        );
    }

    // 4. Re-arm the wave timer once the platform is back. With fetches
    //    blocked behind a fault the re-arm waits for the last probe chain
    //    to land (the join tracks the real latest-ready instant).
    if blocked.is_empty() {
        let next_wave = latest_ready + ft.period;
        match kind {
            ProtocolChoice::Dummy | ProtocolChoice::Mlog => {}
            ProtocolChoice::Vcl => {
                let gen = Vcl::bump_timer_gen(&mut w);
                Vcl::schedule_wave_at(sc, handle, next_wave, epoch, gen);
            }
            ProtocolChoice::Pcl => {
                let gen = Pcl::bump_timer_gen(&mut w);
                Pcl::schedule_wave_at(sc, handle, next_wave, epoch, gen);
            }
        }
    } else {
        let join = Arc::new(StdMutex::new(FetchJoin {
            remaining: blocked.len(),
            latest_ready,
        }));
        for bf in blocked {
            schedule_fetch_probe(
                sc,
                FetchProbe {
                    handle: handle.clone(),
                    epoch,
                    kind,
                    fetch: bf,
                    src_idx: 0,
                    attempt: 0,
                    saw_corrupt: false,
                    ft: ft.clone(),
                    app: app.clone(),
                    join: join.clone(),
                },
                base,
            );
        }
    }
    Ok(())
}

/// One rank whose restart-time image fetch could not be reserved because
/// its source server was unreachable.
struct BlockedFetch {
    rank: usize,
    node: NodeId,
    /// Replica nodes holding the image, tried in order.
    sources: Vec<NodeId>,
    delayed_sends: Vec<AppMsg>,
    /// Wave being restored (for digest verification and tracing).
    wave: u64,
    /// Digest the fetched image must hash to.
    expected: u64,
}

/// Shared completion state for the blocked fetches of one restart: the wave
/// timer re-arms when the last one reserves its transfer.
struct FetchJoin {
    remaining: usize,
    latest_ready: SimTime,
}

/// State carried by one fetch probe chain.
struct FetchProbe {
    handle: Weak<parking_lot::Mutex<World>>,
    epoch: u64,
    kind: ProtocolChoice,
    fetch: BlockedFetch,
    /// Replica currently being probed.
    src_idx: usize,
    /// Consecutive failed probes against `sources[src_idx]`.
    attempt: u32,
    /// Whether this chain walked past at least one damaged replica — the
    /// successful fetch then counts as a repair.
    saw_corrupt: bool,
    ft: FtConfig,
    app: AppFn,
    join: Arc<StdMutex<FetchJoin>>,
}

/// Schedule the respawn of rank `r` at `ready`: launch its delayed sends
/// under the new epoch and spawn the process. Exactly the tail of the
/// classic restart path, shared by the synchronous and the probe-chain
/// fetch.
fn schedule_respawn(
    sc: &SimCtx,
    handle: Weak<parking_lot::Mutex<World>>,
    epoch: u64,
    r: usize,
    ready: SimTime,
    delayed_sends: Vec<AppMsg>,
    app: AppFn,
) {
    sc.schedule(ready, move |sc| {
        let Some(world) = handle.upgrade() else {
            return;
        };
        {
            let mut w = world.lock();
            if w.rt.epoch != epoch {
                return;
            }
            for mut m in delayed_sends {
                m.epoch = epoch;
                w.rt.launch_send(sc, m);
            }
        }
        spawn_rank(sc, &world, r, app);
    });
}

/// One probe of a blocked image fetch, on the destination node's flow lane
/// (it races flow chunks and fault transitions touching the same node).
///
/// Reachable source → verify the replica's digest; intact → reserve the
/// transfer, schedule the respawn, update the join (re-arming the wave
/// timer if this was the last blocked fetch). A replica that fails
/// verification is a typed detection — counted, traced, fed to the
/// quarantine threshold — and the chain walks to the next replica
/// immediately (no point retrying damaged bits). Unreachable → back off
/// exponentially; after `link_retry_limit` failed probes move to the next
/// replica; after the last replica, record a fatal error and stop the
/// simulation — a job whose every image replica sits behind a partition
/// that never heals (or is damaged) must terminate, not hang.
fn schedule_fetch_probe(sc: &SimCtx, p: FetchProbe, at: SimTime) {
    let lane = Some(flow_lane(p.fetch.node));
    sc.schedule_keyed(at, lane, move |sc| {
        let Some(world) = p.handle.upgrade() else {
            return;
        };
        let mut w = world.lock();
        if w.rt.epoch != p.epoch || w.rt.job_complete() {
            return; // a newer restart owns recovery now
        }
        let FetchProbe {
            handle,
            epoch,
            kind,
            fetch,
            mut src_idx,
            mut attempt,
            mut saw_corrupt,
            ft,
            app,
            join,
        } = p;
        let source = fetch.sources.get(src_idx).copied();
        // Round-trip reachability: the fetch request goes rank → server,
        // the image comes back server → rank. A one-directional cut on
        // either leg keeps the fetch blocked (no double-fetch across a
        // half-open partition).
        let reachable = source.is_some_and(|s| {
            w.rt.net.reachable(s, fetch.node) && w.rt.net.reachable(fetch.node, s)
        });
        if !reachable {
            w.rt.stats.link_retries += 1;
            // The backoff ladder restarts per replica: delay(0), delay(1),
            // … delay(limit-1), then the next source gets a fresh ladder.
            let delay = ft.link_retry_delay(attempt);
            attempt += 1;
            if source.is_none() || attempt >= ft.link_retry_limit.max(1) {
                if source.is_some() {
                    with_ft_stats(&mut w, kind, |s| s.retries_exhausted += 1);
                }
                src_idx += 1;
                attempt = 0;
            }
            if src_idx >= fetch.sources.len() {
                w.rt.record_fatal(&format!(
                    "restart of rank {}: every image replica unreachable after retries",
                    fetch.rank
                ));
                sc.request_stop();
                return;
            }
            drop(w);
            schedule_fetch_probe(
                sc,
                FetchProbe {
                    handle,
                    epoch,
                    kind,
                    fetch,
                    src_idx,
                    attempt,
                    saw_corrupt,
                    ft,
                    app,
                    join,
                },
                sc.now() + delay,
            );
            return;
        }
        let Some(source) = source else {
            return; // unreachable by construction: reachable implies a source
        };
        // Verify-on-fetch: the replica must hash to the digest the wave
        // record implies before the restore commits to it.
        let verdict = with_store(&mut w, kind, |store| {
            store
                .verify_replica(fetch.wave, fetch.rank, source, fetch.expected)
                .map(|_| ())
        });
        if let Some(Err(err)) = verdict {
            if matches!(err, StoreError::CorruptImage { .. }) {
                saw_corrupt = true;
                with_ft_stats(&mut w, kind, |s| s.images_corrupt_detected += 1);
                sc.trace_proto(ftmpi_sim::ProtoEvent::CorruptDetected {
                    wave: fetch.wave,
                    rank: fetch.rank,
                    node: source.0 as u64,
                });
                let quarantined = with_store(&mut w, kind, |store| {
                    let seen = store.note_corruption(source);
                    ft.quarantine_threshold > 0
                        && seen >= ft.quarantine_threshold
                        && store.quarantine_server(source)
                })
                .unwrap_or(false);
                if quarantined {
                    with_ft_stats(&mut w, kind, |s| s.servers_quarantined += 1);
                    sc.trace_proto(ftmpi_sim::ProtoEvent::Quarantine {
                        node: source.0 as u64,
                    });
                }
            }
            // NoReplica: the holder dropped the copy after the restore was
            // planned (it died mid-walk) — walk on without blaming a disk.
            // Either way the next replica gets a fresh backoff ladder.
            src_idx += 1;
            attempt = 0;
            if src_idx >= fetch.sources.len() {
                w.rt.record_fatal(&format!(
                    "restart of rank {}: every image replica corrupt, missing, or unreachable",
                    fetch.rank
                ));
                sc.request_stop();
                return;
            }
            drop(w);
            schedule_fetch_probe(
                sc,
                FetchProbe {
                    handle,
                    epoch,
                    kind,
                    fetch,
                    src_idx,
                    attempt,
                    saw_corrupt,
                    ft,
                    app,
                    join,
                },
                sc.now(),
            );
            return;
        }
        if src_idx > 0 {
            with_ft_stats(&mut w, kind, |s| {
                s.images_rerouted += 1;
                s.replica_depth_max = s.replica_depth_max.max(src_idx as u64);
            });
        }
        if saw_corrupt {
            // The walk recovered past damaged bits to a verified copy.
            with_ft_stats(&mut w, kind, |s| s.images_repaired += 1);
        }
        if verdict.is_some() {
            sc.trace_proto(ftmpi_sim::ProtoEvent::RestoreImage {
                wave: fetch.wave,
                rank: fetch.rank,
                node: source.0 as u64,
            });
        }
        let ready =
            w.rt.net
                .transfer(source, fetch.node, ft.image_bytes, sc.now())
                .delivered;
        schedule_respawn(
            sc,
            handle.clone(),
            epoch,
            fetch.rank,
            ready,
            fetch.delayed_sends,
            app,
        );
        let rearm_at = {
            // A poisoned join only means another probe's closure panicked
            // mid-update; the counters are plain integers, safe to reuse.
            let mut j = match join.lock() {
                Ok(j) => j,
                Err(poisoned) => poisoned.into_inner(),
            };
            j.remaining -= 1;
            j.latest_ready = j.latest_ready.max(ready);
            (j.remaining == 0).then_some(j.latest_ready)
        };
        if let Some(latest) = rearm_at {
            let next_wave = latest + ft.period;
            match kind {
                ProtocolChoice::Dummy | ProtocolChoice::Mlog => {}
                ProtocolChoice::Vcl => {
                    let gen = Vcl::bump_timer_gen(&mut w);
                    Vcl::schedule_wave_at(sc, handle, next_wave, epoch, gen);
                }
                ProtocolChoice::Pcl => {
                    let gen = Pcl::bump_timer_gen(&mut w);
                    Pcl::schedule_wave_at(sc, handle, next_wave, epoch, gen);
                }
            }
        }
    });
}

/// Run `f` against the coordinated engine's checkpoint store; `None` for
/// `Dummy`/`Mlog` or on a downcast mismatch.
fn with_store<T>(
    w: &mut World,
    kind: ProtocolChoice,
    f: impl FnOnce(&mut CheckpointStore) -> T,
) -> Option<T> {
    let World { proto, .. } = w;
    match kind {
        ProtocolChoice::Dummy | ProtocolChoice::Mlog => None,
        ProtocolChoice::Vcl => proto
            .as_any_mut()
            .downcast_mut::<Vcl>()
            .map(|v| f(&mut v.store)),
        ProtocolChoice::Pcl => proto
            .as_any_mut()
            .downcast_mut::<Pcl>()
            .map(|p| f(&mut p.store)),
    }
}

/// Bump a counter in the coordinated engine's `FtStats`; no-op for
/// `Dummy`/`Mlog` or on a downcast mismatch.
fn with_ft_stats(w: &mut World, kind: ProtocolChoice, f: impl FnOnce(&mut FtStats)) {
    let World { proto, .. } = w;
    match kind {
        ProtocolChoice::Dummy | ProtocolChoice::Mlog => {}
        ProtocolChoice::Vcl => {
            if let Some(v) = proto.as_any_mut().downcast_mut::<Vcl>() {
                f(&mut v.stats);
            }
        }
        ProtocolChoice::Pcl => {
            if let Some(p) = proto.as_any_mut().downcast_mut::<Pcl>() {
                f(&mut p.stats);
            }
        }
    }
}

/// Tiebreak lane for scrub ticks. The scrubber is a fleet-wide background
/// service whose wakeups race flow chunks and fault transitions; the lane
/// (bit 62 alone) is disjoint from flow lanes (bit 63 | node), fault lanes
/// (bits 63|62 | idx), and process lanes (small integers).
const SCRUB_LANE: u64 = 1 << 62;

/// Arm the background scrub service: every `interval` the scrubber
/// re-verifies every retained replica's digest against its wave record,
/// launches a re-replication flow from a verified good copy over each
/// damaged one, and feeds the quarantine threshold. Coordinated engines
/// only. The service belongs to the checkpoint fleet, not the job epoch —
/// it survives restarts and stands down only when the job completes.
pub fn arm_scrubber(sc: &SimCtx, world: &WorldRef, kind: ProtocolChoice, interval: SimDuration) {
    if matches!(kind, ProtocolChoice::Dummy | ProtocolChoice::Mlog) {
        return;
    }
    let handle = world.lock().rt.world_handle();
    schedule_scrub_tick(sc, handle, kind, interval, sc.now() + interval);
}

fn schedule_scrub_tick(
    sc: &SimCtx,
    handle: Weak<parking_lot::Mutex<World>>,
    kind: ProtocolChoice,
    interval: SimDuration,
    at: SimTime,
) {
    sc.schedule_keyed(at, Some(SCRUB_LANE), move |sc| {
        let Some(world) = handle.upgrade() else {
            return;
        };
        {
            let mut w = world.lock();
            if w.rt.job_complete() {
                return;
            }
            scrub_pass(&mut w, sc, kind);
        }
        let handle = world.lock().rt.world_handle();
        schedule_scrub_tick(sc, handle, kind, interval, sc.now() + interval);
    });
}

/// One repair the scrub pass decided on: overwrite the damaged replica of
/// (wave, rank) on `node` by streaming `bytes` from the verified copy on
/// `src`.
struct ScrubRepair {
    wave: u64,
    rank: usize,
    node: NodeId,
    expected: u64,
    src: NodeId,
    bytes: u64,
}

/// What one scrub scan decided: damaged `(wave, rank, holder)` slots to
/// trace, servers that crossed the quarantine threshold, and the repairs
/// to launch.
type ScrubFindings = (Vec<(u64, usize, NodeId)>, Vec<NodeId>, Vec<ScrubRepair>);

/// Verify every retained (wave, rank, replica) slot of one engine in
/// deterministic store order, doing the detection/quarantine accounting
/// in place and returning what to trace and which repairs to launch. A
/// damaged copy is repaired only when its holder can still take writes
/// (not dead, not quarantined — including a quarantine this very pass
/// triggered) and some replica of the slot still verifies; otherwise the
/// next restore's replica walk or retained-wave fallback deals with it.
fn scrub_engine(
    committed: &[WaveRecord],
    store: &mut CheckpointStore,
    stats: &mut FtStats,
    threshold: u64,
) -> ScrubFindings {
    let mut detections = Vec::new();
    let mut quarantines = Vec::new();
    let mut repairs = Vec::new();
    for rec in committed {
        for r in 0..rec.images.len() {
            let expected = rec.images[r].digest(rec.wave, r);
            let before = detections.len();
            detect_slot_damage(
                store,
                rec.wave,
                r,
                expected,
                threshold,
                stats,
                &mut detections,
                &mut quarantines,
            );
            for &(wave, rank, node) in &detections[before..] {
                if store.server_unplaceable(node) {
                    continue;
                }
                let Some(good) = store.locate_intact(wave, rank, expected) else {
                    continue;
                };
                repairs.push(ScrubRepair {
                    wave,
                    rank,
                    node,
                    expected,
                    src: good.server,
                    bytes: good.bytes,
                });
            }
        }
    }
    (detections, quarantines, repairs)
}

/// One scrub pass over the engine's retained waves: account and trace the
/// damage, then launch one bounded re-replication flow per damaged copy.
/// The repair write lands only if, when the stream completes, the slot is
/// still retained, still damaged (an earlier repair may have won), and the
/// target still takes writes — checked under the lock at completion time.
fn scrub_pass(w: &mut World, sc: &SimCtx, kind: ProtocolChoice) {
    let scanned = {
        let World { proto, .. } = &mut *w;
        match kind {
            ProtocolChoice::Dummy | ProtocolChoice::Mlog => None,
            ProtocolChoice::Vcl => proto.as_any_mut().downcast_mut::<Vcl>().map(|v| {
                let cfg = v.ft_cfg();
                let (threshold, chunk, retry) = (
                    cfg.quarantine_threshold,
                    cfg.chunk_bytes,
                    FlowRetry::bounded(cfg),
                );
                let (d, q, jobs) =
                    scrub_engine(&v.committed, &mut v.store, &mut v.stats, threshold);
                (d, q, jobs, chunk, retry)
            }),
            ProtocolChoice::Pcl => proto.as_any_mut().downcast_mut::<Pcl>().map(|p| {
                let cfg = p.ft_cfg();
                let (threshold, chunk, retry) = (
                    cfg.quarantine_threshold,
                    cfg.chunk_bytes,
                    FlowRetry::bounded(cfg),
                );
                let (d, q, jobs) =
                    scrub_engine(&p.committed, &mut p.store, &mut p.stats, threshold);
                (d, q, jobs, chunk, retry)
            }),
        }
    };
    let Some((detections, quarantines, repairs, chunk, retry)) = scanned else {
        return;
    };
    for &(wave, rank, node) in &detections {
        sc.trace_proto(ftmpi_sim::ProtoEvent::CorruptDetected {
            wave,
            rank,
            node: node.0 as u64,
        });
    }
    for &node in &quarantines {
        sc.trace_proto(ftmpi_sim::ProtoEvent::Quarantine {
            node: node.0 as u64,
        });
    }
    for job in repairs {
        let ScrubRepair {
            wave,
            rank,
            node,
            expected,
            src,
            bytes,
        } = job;
        let spec = FlowSpec {
            src,
            dst: node,
            bytes,
            chunk,
            also_disk: false,
        };
        start_flow_guarded(
            w,
            sc,
            spec,
            retry,
            // Target unreachable past the retry budget: surrender — the
            // next tick re-detects and tries again.
            |_, _| {},
            move |w, sc, done| {
                let recorded = with_store(w, kind, |s| {
                    if !s.server_holds(wave, rank, node) {
                        return false; // wave GC'd or the holder died mid-repair
                    }
                    if s.verify_replica(wave, rank, node, expected).is_ok() {
                        return false; // an earlier repair already landed
                    }
                    s.record_image(
                        wave,
                        rank,
                        StoredImage {
                            server: node,
                            bytes,
                            stored_at: done,
                            digest: expected,
                        },
                    )
                })
                .unwrap_or(false);
                if recorded {
                    with_ft_stats(w, kind, |st| st.images_repaired += 1);
                    sc.trace_proto(ftmpi_sim::ProtoEvent::Repair {
                        wave,
                        rank,
                        node: node.0 as u64,
                    });
                    sc.trace_proto(ftmpi_sim::ProtoEvent::ImageStore {
                        wave,
                        rank,
                        node: node.0 as u64,
                    });
                }
            },
        );
    }
}

/// Apply a named partition cut and, if the job runs with a heartbeat grace
/// window (`FtConfig::partition_rollback_after`), arm the watchdog that
/// decides — one grace later — whether the cut was real.
///
/// The watchdog fires on the dispatcher's side of the cut:
///
/// * partition already healed → **false positive suppressed**: the stalled
///   heartbeats arrived late, nobody is declared failed, no rollback
///   (`FtStats::partitions_suppressed` counts the non-event);
/// * a restart happened in between (epoch guard) → that recovery's probe
///   chains already own the fault; the watchdog stands down;
/// * partition still active → the grace window *expired*
///   (`FtStats::partitions_expired`): every rank cut off from the service
///   node is declared failed and the job restarts once, correlated
///   ([`fail_and_restart_many`]). A cut that isolates only servers (no
///   ranks on the far side) expires without victims — the watchdog stands
///   down and the stalled pushes keep walking their retry ladders.
///
/// Without a grace window the cut is applied but never escalates: flows
/// and heartbeats stall until the partition heals. `Mlog` does not use the
/// dispatcher heartbeat model, so the watchdog is skipped.
///
/// Directed cuts arm the same watchdog: a half-open partition stalls one
/// direction of the heartbeat round-trip, which is indistinguishable from
/// a full cut at the dispatcher.
#[allow(clippy::too_many_arguments)] // a scheduling entry point, not a recursion
pub fn partition_cut(
    sc: &SimCtx,
    world: &WorldRef,
    app: &AppFn,
    kind: ProtocolChoice,
    ft: &FtConfig,
    name: &str,
    nodes: &[NodeId],
    direction: ftmpi_net::CutDirection,
    tear: bool,
    service_node: NodeId,
) {
    let (handle, epoch) = {
        let mut w = world.lock();
        w.rt.net
            .start_partition_with(name, nodes.iter().copied(), direction, tear);
        (w.rt.world_handle(), w.rt.epoch)
    };
    let Some(grace) = ft.partition_rollback_after else {
        return;
    };
    if kind == ProtocolChoice::Mlog {
        return;
    }
    let name = name.to_string();
    let nodes = nodes.to_vec();
    let app = app.clone();
    let ft = ft.clone();
    sc.schedule(sc.now() + grace, move |sc| {
        let Some(world) = handle.upgrade() else {
            return;
        };
        let victims: Vec<usize> = {
            let mut w = world.lock();
            if w.rt.job_complete() || w.rt.epoch != epoch {
                return;
            }
            if !w.rt.net.partition_active(&name) {
                // Healed inside the grace window: heartbeats were merely
                // late. Zero rollbacks — the epoch-guard analogue of the
                // detection-delay false-positive suppression.
                with_ft_stats(&mut w, kind, |s| s.partitions_suppressed += 1);
                return;
            }
            with_ft_stats(&mut w, kind, |s| s.partitions_expired += 1);
            let service_cut = nodes.contains(&service_node);
            (0..w.rt.size())
                .filter(|&r| nodes.contains(&w.rt.placement.node_of(r)) != service_cut)
                .collect()
        };
        if victims.is_empty() {
            return;
        }
        if let Err(e) = fail_and_restart_many(sc, &world, &app, kind, &victims, &ft) {
            world.lock().rt.record_fatal(&e.to_string());
        }
    });
}

/// Single-rank failure handling for the uncoordinated message-logging
/// protocol: only the victim rolls back; everyone else keeps computing.
///
/// The victim restores its own last image, replays its receiver-based log,
/// and re-executes from there; its re-sent messages are suppressed as
/// duplicates at the receivers, and messages addressed to it while it was
/// down wait in the runtime (sender-side transport retransmission).
pub fn mlog_fail_and_restart(
    sc: &SimCtx,
    world: &WorldRef,
    app: &AppFn,
    victim: usize,
    ft: &FtConfig,
) -> Result<(), RecoveryError> {
    use crate::mlog::Mlog;

    let mut w = world.lock();
    if w.rt.job_complete() || w.rt.ranks[victim].status != RankStatus::Running {
        return Ok(());
    }
    let handle = w.rt.world_handle();
    let now = sc.now();

    // Kill only the victim's task.
    if let Some(pid) = w.rt.ranks[victim].pid.take() {
        sc.kill(pid);
    }
    w.rt.stats.restarts += 1;

    // Pull the victim's restore data out of the protocol.
    let (image, log, server, in_flight) = {
        let World { proto, .. } = &mut *w;
        let found = proto.name();
        let Some(mlog) = proto.as_any_mut().downcast_mut::<Mlog>() else {
            return Err(RecoveryError::ProtocolMismatch {
                expected: "mlog",
                found,
            });
        };
        let (image, log, server) = mlog.restore_of(victim);
        let in_flight = mlog.take_in_flight(victim);
        mlog.on_rank_restarted(victim);
        (image, log, server, in_flight)
    };

    // Roll the victim back (bumps its incarnation: stale per-rank events
    // and timers die) and rebuild its pre-crash runtime memory.
    let (skip, credit) = image
        .as_ref()
        .map(|i| (i.ops_completed, i.time_credit))
        .unwrap_or((0, ftmpi_sim::SimDuration::ZERO));
    w.rt.ranks[victim].reset_for_restart(skip, credit);
    let incarnation = w.rt.ranks[victim].incarnation;
    match &image {
        Some(img) => {
            w.rt.set_expect_seq(victim, img.expect_seq.clone());
            w.rt.set_send_seq(victim, img.send_seq.clone());
        }
        // No image: the rank restarts from scratch with empty (all-zero)
        // sparse watermarks.
        None => w.rt.set_expect_seq(victim, Vec::new()),
    }
    if let Some(img) = &image {
        for m in img.pending.clone() {
            w.rt.inject_restored(sc, m);
        }
    }
    // Replay the receiver-based log, in delivery order.
    for m in log {
        w.rt.inject_restored(sc, m);
    }
    // Messages whose log writes were cut short by the failure re-enter
    // arrival handling in their original order (they re-log under the new
    // incarnation); doing this before any later traffic preserves the
    // per-channel FIFO the duplicate watermark depends on.
    for m in in_flight {
        w.handle_arrival(sc, m);
    }

    // Image fetch from the victim's server, then respawn and re-arm its
    // independent checkpoint cycle.
    let node = w.rt.placement.node_of(victim);
    let base = now + ft.restart_delay;
    let ready = if image.is_some() {
        w.rt.net
            .transfer(server, node, ft.image_bytes, base)
            .delivered
    } else {
        base
    };
    let period = ft.period;
    let app = app.clone();
    drop(w);
    sc.schedule(ready, move |sc| {
        let Some(world) = handle.upgrade() else {
            return;
        };
        {
            let w = world.lock();
            if w.rt.ranks[victim].incarnation != incarnation {
                return;
            }
        }
        spawn_rank(sc, &world, victim, app);
        let handle2 = world.lock().rt.world_handle();
        Mlog::schedule_rank_ckpt_pub(sc, handle2, victim, sc.now() + period, incarnation);
    });
    Ok(())
}
