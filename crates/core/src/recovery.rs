//! The dispatcher's failure handling: kill the job, restore every rank from
//! the last committed wave, replay channel state, and respawn.
//!
//! Matches §4 of the paper: "the dispatcher signals all the other processes
//! to exit" (coordinated checkpointing rolls *all* ranks back), failure
//! detection is immediate (tasks are killed, sockets close), survivors
//! restore "from the local checkpoint stored on the disk if it exists;
//! otherwise they obtain it from the checkpoint server".

use ftmpi_mpi::{spawn_rank, AppFn, RankStatus, World, WorldRef};
use ftmpi_net::NodeId;
use ftmpi_sim::{SimCtx, SimTime};

use crate::config::FtConfig;
use crate::image::WaveRecord;
use crate::pcl::Pcl;
use crate::runner::ProtocolChoice;
use crate::vcl::Vcl;

/// Restore data pulled out of a protocol engine at failure time.
pub(crate) struct RestoreData {
    pub wave: Option<WaveRecord>,
    pub server_node_of: Vec<NodeId>,
}

impl Vcl {
    pub(crate) fn prepare_restart(w: &mut World) -> RestoreData {
        let World { proto, .. } = w;
        let vcl = proto
            .as_any_mut()
            .downcast_mut::<Vcl>()
            .expect("protocol is not Vcl");
        vcl.stats.restarts += 1;
        RestoreData {
            wave: vcl.committed.clone(),
            server_node_of: vcl.server_nodes_of_ranks(),
        }
    }
}

impl Pcl {
    pub(crate) fn prepare_restart(w: &mut World) -> RestoreData {
        let World { proto, .. } = w;
        let pcl = proto
            .as_any_mut()
            .downcast_mut::<Pcl>()
            .expect("protocol is not Pcl");
        pcl.stats.restarts += 1;
        RestoreData {
            wave: pcl.committed.clone(),
            server_node_of: pcl.server_nodes_of_ranks(),
        }
    }
}

/// Fail the job (as if `victim`'s task was killed) and orchestrate the
/// restart from the last committed wave (or from scratch if none).
///
/// No-op if the job already completed.
pub fn fail_and_restart(
    sc: &SimCtx,
    world: &WorldRef,
    app: &AppFn,
    kind: ProtocolChoice,
    victim: usize,
    ft: &FtConfig,
) {
    let mut w = world.lock();
    if w.rt.job_complete() {
        return;
    }
    let n = w.rt.size();
    let handle = w.rt.world_handle();

    // 1. Detection is immediate; the dispatcher kills every process.
    for r in 0..n {
        let rs = &mut w.rt.ranks[r];
        if let Some(pid) = rs.pid.take() {
            sc.kill(pid);
        }
        rs.status = RankStatus::Dead;
    }
    w.rt.epoch += 1;
    let epoch = w.rt.epoch;
    sc.trace_proto(ftmpi_sim::ProtoEvent::Restart { epoch });
    w.rt.stats.finished_ranks = 0;
    w.rt.stats.restarts += 1;
    let now = sc.now();
    w.rt.net.reset_queues(now);

    // 2. Pull restore data from the protocol (aborts any in-flight wave —
    //    its flows and timers die on the epoch guards).
    let restore = match kind {
        ProtocolChoice::Dummy => None,
        ProtocolChoice::Mlog => {
            unreachable!("Mlog failures route through mlog_fail_and_restart")
        }
        ProtocolChoice::Vcl => {
            let data = Vcl::prepare_restart(&mut w);
            Vcl::abort_wave(&mut w);
            Some(data)
        }
        ProtocolChoice::Pcl => {
            let data = Pcl::prepare_restart(&mut w);
            Pcl::abort_wave(&mut w);
            Some(data)
        }
    };
    let wave = restore.as_ref().and_then(|d| d.wave.clone());

    // 3. Per-rank restore: reset runtime state, compute the time at which
    //    the rank's image is back in memory, schedule replay + respawn.
    let base = now + ft.restart_delay;
    let mut latest_ready = base;
    for r in 0..n {
        let (skip, credit) = match &wave {
            Some(rec) => (rec.images[r].ops_completed, rec.images[r].time_credit),
            None => (0, ftmpi_sim::SimDuration::ZERO),
        };
        w.rt.ranks[r].reset_for_restart(skip, credit);
        let node = w.rt.placement.node_of(r);
        let ready: SimTime = match (&wave, &restore) {
            (Some(_), Some(data)) => {
                let from_server =
                    (r == victim && ft.fetch_failed_from_server) || !ft.write_local_disk;
                if from_server {
                    w.rt.net
                        .transfer(data.server_node_of[r], node, ft.image_bytes, base)
                        .delivered
                } else {
                    w.rt.net.disk_read(node, ft.image_bytes, base)
                }
            }
            _ => base,
        };
        latest_ready = latest_ready.max(ready);

        // Restore the rank's library memory *now*, before any restarted
        // peer's re-executed sends can arrive: first the image's pending
        // messages, then the Chandy–Lamport channel logs — the arrival
        // order of the consistent cut.
        if let Some(rec) = &wave {
            for m in rec.images[r].pending.clone() {
                w.rt.inject_restored(sc, m);
            }
            for m in rec.logs[r].clone() {
                w.rt.inject_restored(sc, m);
            }
        }
        // Blocking protocol: "every message delayed in emission will be
        // sent again after the restart" — when the process resumes.
        let delayed_sends = wave
            .as_ref()
            .map(|rec| rec.delayed_sends[r].clone())
            .unwrap_or_default();
        let h = handle.clone();
        let app = app.clone();
        sc.schedule(ready, move |sc| {
            let Some(world) = h.upgrade() else { return };
            {
                let mut w = world.lock();
                if w.rt.epoch != epoch {
                    return;
                }
                for mut m in delayed_sends {
                    m.epoch = epoch;
                    w.rt.launch_send(sc, m);
                }
            }
            spawn_rank(sc, &world, r, app);
        });
    }

    // 4. Re-arm the wave timer once the platform is back.
    let next_wave = latest_ready + ft.period;
    match kind {
        ProtocolChoice::Dummy | ProtocolChoice::Mlog => {}
        ProtocolChoice::Vcl => {
            let gen = Vcl::bump_timer_gen(&mut w);
            Vcl::schedule_wave_at(sc, handle, next_wave, epoch, gen);
        }
        ProtocolChoice::Pcl => {
            let gen = Pcl::bump_timer_gen(&mut w);
            Pcl::schedule_wave_at(sc, handle, next_wave, epoch, gen);
        }
    }
}

/// Single-rank failure handling for the uncoordinated message-logging
/// protocol: only the victim rolls back; everyone else keeps computing.
///
/// The victim restores its own last image, replays its receiver-based log,
/// and re-executes from there; its re-sent messages are suppressed as
/// duplicates at the receivers, and messages addressed to it while it was
/// down wait in the runtime (sender-side transport retransmission).
pub fn mlog_fail_and_restart(
    sc: &SimCtx,
    world: &WorldRef,
    app: &AppFn,
    victim: usize,
    ft: &FtConfig,
) {
    use crate::mlog::Mlog;

    let mut w = world.lock();
    if w.rt.job_complete() || w.rt.ranks[victim].status != RankStatus::Running {
        return;
    }
    let handle = w.rt.world_handle();
    let now = sc.now();

    // Kill only the victim's task.
    if let Some(pid) = w.rt.ranks[victim].pid.take() {
        sc.kill(pid);
    }
    w.rt.stats.restarts += 1;

    // Pull the victim's restore data out of the protocol.
    let (image, log, server, in_flight) = {
        let World { proto, .. } = &mut *w;
        let mlog = proto
            .as_any_mut()
            .downcast_mut::<Mlog>()
            .expect("protocol is not Mlog");
        let (image, log, server) = mlog.restore_of(victim);
        let in_flight = mlog.take_in_flight(victim);
        mlog.on_rank_restarted(victim);
        (image, log, server, in_flight)
    };

    // Roll the victim back (bumps its incarnation: stale per-rank events
    // and timers die) and rebuild its pre-crash runtime memory.
    let (skip, credit) = image
        .as_ref()
        .map(|i| (i.ops_completed, i.time_credit))
        .unwrap_or((0, ftmpi_sim::SimDuration::ZERO));
    w.rt.ranks[victim].reset_for_restart(skip, credit);
    let incarnation = w.rt.ranks[victim].incarnation;
    let n = w.rt.size();
    match &image {
        Some(img) => {
            w.rt.set_expect_seq(victim, img.expect_seq.clone());
            w.rt.set_send_seq(victim, img.send_seq.clone());
        }
        None => w.rt.set_expect_seq(victim, vec![0; n]),
    }
    if let Some(img) = &image {
        for m in img.pending.clone() {
            w.rt.inject_restored(sc, m);
        }
    }
    // Replay the receiver-based log, in delivery order.
    for m in log {
        w.rt.inject_restored(sc, m);
    }
    // Messages whose log writes were cut short by the failure re-enter
    // arrival handling in their original order (they re-log under the new
    // incarnation); doing this before any later traffic preserves the
    // per-channel FIFO the duplicate watermark depends on.
    for m in in_flight {
        w.handle_arrival(sc, m);
    }

    // Image fetch from the victim's server, then respawn and re-arm its
    // independent checkpoint cycle.
    let node = w.rt.placement.node_of(victim);
    let base = now + ft.restart_delay;
    let ready = if image.is_some() {
        w.rt.net
            .transfer(server, node, ft.image_bytes, base)
            .delivered
    } else {
        base
    };
    let period = ft.period;
    let app = app.clone();
    drop(w);
    sc.schedule(ready, move |sc| {
        let Some(world) = handle.upgrade() else {
            return;
        };
        {
            let w = world.lock();
            if w.rt.ranks[victim].incarnation != incarnation {
                return;
            }
        }
        spawn_rank(sc, &world, victim, app);
        let handle2 = world.lock().rt.world_handle();
        Mlog::schedule_rank_ckpt_pub(sc, handle2, victim, sc.now() + period, incarnation);
    });
}
