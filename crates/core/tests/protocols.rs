//! Integration tests for the checkpointing protocols: failure-free overhead
//! behaviour, wave mechanics, and end-to-end recovery correctness.

use std::sync::Arc;

use ftmpi_core::{run_job, FailurePlan, FtConfig, JobError, JobResult, JobSpec, ProtocolChoice};
use ftmpi_mpi::{app_fn, AppFn};
use ftmpi_net::{CutDirection, LinkFlapSpec, NetFaultPlan, NodeId, SoftwareStack};
use ftmpi_sim::{SimDuration, SimTime};

/// Ring workload: each iteration sends `bytes` to the right neighbour,
/// receives from the left, then computes.
fn ring_app(iters: usize, bytes: u64, compute: SimDuration) -> AppFn {
    app_fn(move |mut mpi| async move {
        let n = mpi.size();
        let right = (mpi.rank() + 1) % n;
        let left = (mpi.rank() + n - 1) % n;
        for i in 0..iters {
            let req = mpi.irecv(Some(left), Some(i as i32)).await;
            mpi.send(right, i as i32, bytes).await;
            mpi.wait(req).await;
            mpi.compute(compute);
        }
        mpi
    })
}

/// Allreduce-heavy workload (CG-like: latency bound, frequent syncs).
fn allreduce_app(iters: usize, bytes: u64, compute: SimDuration) -> AppFn {
    app_fn(move |mut mpi| async move {
        for _ in 0..iters {
            mpi.compute(compute);
            mpi.allreduce(bytes).await;
        }
        mpi
    })
}

fn base_spec(nranks: usize, protocol: ProtocolChoice, app: AppFn) -> JobSpec {
    let mut spec = JobSpec::new(nranks, protocol, app);
    spec.servers = 2;
    spec.ft = FtConfig {
        period: SimDuration::from_secs(5),
        first_wave_delay: SimDuration::from_secs(2),
        image_bytes: 4 << 20,
        ..FtConfig::default()
    };
    spec
}

fn run(spec: JobSpec) -> JobResult {
    run_job(spec).expect("job failed")
}

fn assert_clean(res: &JobResult) {
    assert_eq!(res.leftover_unexpected, 0, "stray unconsumed messages");
    assert_eq!(res.leftover_posted, 0, "unmatched posted receives");
}

#[test]
fn dummy_baseline_runs_without_waves() {
    let res = run(base_spec(
        8,
        ProtocolChoice::Dummy,
        ring_app(20, 10_000, SimDuration::from_millis(100)),
    ));
    assert_eq!(res.waves(), 0);
    assert!(res.completion_secs() > 1.9, "{}", res.completion_secs());
    assert_clean(&res);
}

#[test]
fn vcl_checkpoints_with_modest_overhead() {
    let app = |p| base_spec(8, p, ring_app(100, 10_000, SimDuration::from_millis(200)));
    let dummy = run(app(ProtocolChoice::Dummy));
    let vcl = run(app(ProtocolChoice::Vcl));
    assert!(vcl.waves() >= 2, "expected waves, got {}", vcl.waves());
    assert!(vcl.ft.image_bytes_sent > 0);
    // Non-blocking: communication continues; overhead stays bounded.
    let ratio = vcl.completion_secs() / dummy.completion_secs();
    assert!(ratio < 1.6, "Vcl overhead too high: {ratio}");
    assert_clean(&vcl);
}

#[test]
fn pcl_checkpoints_and_synchronizes() {
    let app = |p| base_spec(8, p, ring_app(100, 10_000, SimDuration::from_millis(200)));
    let dummy = run(app(ProtocolChoice::Dummy));
    let pcl = run(app(ProtocolChoice::Pcl));
    assert!(pcl.waves() >= 2, "expected waves, got {}", pcl.waves());
    assert!(pcl.completion_secs() > dummy.completion_secs());
    assert_clean(&pcl);
}

#[test]
fn pcl_overhead_grows_with_checkpoint_frequency() {
    let mk = |period_s: f64| {
        let mut spec = base_spec(
            8,
            ProtocolChoice::Pcl,
            allreduce_app(300, 4_000, SimDuration::from_millis(100)),
        );
        spec.ft.period = SimDuration::from_secs_f64(period_s);
        run(spec)
    };
    let frequent = mk(1.0);
    let rare = mk(15.0);
    assert!(frequent.waves() > rare.waves());
    assert!(
        frequent.completion_secs() > rare.completion_secs(),
        "frequent {} vs rare {}",
        frequent.completion_secs(),
        rare.completion_secs()
    );
}

/// Producer/consumer stream: rank 0 fires `count` eager sends back-to-back
/// (building a deep NIC backlog), rank 1 consumes slowly. A checkpoint wave
/// arriving mid-stream finds messages genuinely *in the channel*.
fn stream_app(count: usize, bytes: u64, consume: SimDuration) -> AppFn {
    app_fn(move |mut mpi| async move {
        match mpi.rank() {
            0 => {
                for i in 0..count {
                    mpi.send(1, (i % 1000) as i32, bytes).await;
                }
            }
            1 => {
                for i in 0..count {
                    mpi.recv(Some(0), Some((i % 1000) as i32)).await;
                    mpi.compute(consume);
                }
            }
            _ => {}
        }
        mpi
    })
}

#[test]
fn vcl_logs_in_transit_messages() {
    let mut spec = base_spec(
        2,
        ProtocolChoice::Vcl,
        stream_app(200, 256 << 10, SimDuration::from_millis(2)),
    );
    // Strike while ~50 MB of sends are still queued on the channel.
    spec.ft.first_wave_delay = SimDuration::from_millis(200);
    spec.ft.period = SimDuration::from_secs(1);
    let res = run(spec);
    assert!(res.waves() >= 1);
    assert!(
        res.ft.msgs_logged > 0,
        "Chandy–Lamport should log channel state"
    );
    assert!(res.ft.log_bytes_sent > 0);
    assert_clean(&res);
}

#[test]
fn vcl_recovers_with_logged_channel_state() {
    // Burst (builds channel backlog caught by the wave's log), long quiet
    // phase (lets the wave commit), then more exchanges. Killing during the
    // quiet phase forces a restart whose correctness depends on replaying
    // the logged channel state.
    let app: AppFn = app_fn(|mut mpi| async move {
        let count = 100usize;
        match mpi.rank() {
            0 => {
                for i in 0..count {
                    mpi.send(1, (i % 1000) as i32, 256 << 10).await;
                }
                mpi.compute(SimDuration::from_secs(3));
                for i in 0..10 {
                    mpi.send(1, 2000 + i, 64).await;
                    mpi.recv(Some(1), Some(3000 + i)).await;
                }
            }
            _ => {
                for i in 0..count {
                    mpi.recv(Some(0), Some((i % 1000) as i32)).await;
                    mpi.compute(SimDuration::from_millis(2));
                }
                mpi.compute(SimDuration::from_secs(3));
                for i in 0..10 {
                    mpi.recv(Some(0), Some(2000 + i)).await;
                    mpi.send(0, 3000 + i, 64).await;
                }
            }
        }
        mpi
    });
    let mut spec = base_spec(2, ProtocolChoice::Vcl, app);
    spec.ft.first_wave_delay = SimDuration::from_millis(100);
    spec.ft.period = SimDuration::from_secs(60); // exactly one wave
    spec.failures = FailurePlan::kill_at(SimTime::from_nanos(1_500_000_000), 1);
    spec.max_virtual_time = Some(SimTime::from_nanos(120_000_000_000));
    let res = run(spec);
    assert_eq!(res.rt.restarts, 1);
    assert_eq!(res.waves(), 1);
    assert!(res.ft.msgs_logged > 0, "wave should have logged messages");
    assert_clean(&res);
}

#[test]
fn pcl_delays_traffic_during_waves() {
    let res = run(base_spec(
        8,
        ProtocolChoice::Pcl,
        ring_app(2_000, 50_000, SimDuration::from_millis(10)),
    ));
    assert!(res.waves() >= 1);
    assert!(
        res.ft.sends_delayed > 0,
        "blocking protocol should delay send posts"
    );
    assert_clean(&res);
}

#[test]
fn wave_timings_are_ordered_and_disjoint() {
    let res = run(base_spec(
        6,
        ProtocolChoice::Pcl,
        ring_app(150, 20_000, SimDuration::from_millis(150)),
    ));
    let w = &res.ft.wave_timings;
    assert!(w.len() >= 2);
    for t in w {
        assert!(t.committed_at > t.started_at);
    }
    for pair in w.windows(2) {
        // Next wave starts only after the previous committed (+period).
        assert!(pair[1].started_at > pair[0].committed_at);
    }
}

#[test]
fn vcl_recovers_from_a_failure() {
    let app = ring_app(120, 10_000, SimDuration::from_millis(200));
    let mut spec = base_spec(6, ProtocolChoice::Vcl, Arc::clone(&app));
    let clean = run_job(JobSpec {
        app: Arc::clone(&app),
        ..base_spec(6, ProtocolChoice::Vcl, Arc::clone(&app))
    })
    .unwrap();
    // Kill rank 3 mid-run (after at least one wave should have committed).
    spec.failures = FailurePlan::kill_at(SimTime::from_nanos(12_000_000_000), 3);
    let failed = run(spec);
    assert_eq!(failed.ft.restarts, 1);
    assert_eq!(failed.rt.restarts, 1);
    assert!(
        failed.completion_secs() > clean.completion_secs(),
        "failure must cost time: {} vs {}",
        failed.completion_secs(),
        clean.completion_secs()
    );
    // Rollback bounded: lost work ≤ period + wave + restart costs. Allow 3×.
    assert!(
        failed.completion_secs() < clean.completion_secs() * 3.0,
        "recovery too expensive: {} vs {}",
        failed.completion_secs(),
        clean.completion_secs()
    );
    assert_clean(&failed);
}

#[test]
fn pcl_recovers_from_a_failure() {
    let app = ring_app(120, 10_000, SimDuration::from_millis(200));
    let clean = run(base_spec(6, ProtocolChoice::Pcl, Arc::clone(&app)));
    let mut spec = base_spec(6, ProtocolChoice::Pcl, app);
    spec.failures = FailurePlan::kill_at(SimTime::from_nanos(12_000_000_000), 2);
    let failed = run(spec);
    assert_eq!(failed.ft.restarts, 1);
    assert!(failed.completion_secs() > clean.completion_secs());
    assert!(failed.completion_secs() < clean.completion_secs() * 3.0);
    assert_clean(&failed);
}

#[test]
fn failure_before_first_commit_restarts_from_scratch() {
    let app = ring_app(40, 10_000, SimDuration::from_millis(100));
    let mut spec = base_spec(6, ProtocolChoice::Pcl, app);
    spec.ft.first_wave_delay = SimDuration::from_secs(1_000); // never checkpoints
    spec.failures = FailurePlan::kill_at(SimTime::from_nanos(2_000_000_000), 0);
    let res = run(spec);
    assert_eq!(res.waves(), 0);
    assert_eq!(res.rt.restarts, 1);
    // Completed from scratch: roughly 2 s wasted + full rerun.
    assert!(res.completion_secs() > 4.0);
    assert_clean(&res);
}

#[test]
fn dummy_protocol_restarts_from_scratch() {
    let app = ring_app(40, 10_000, SimDuration::from_millis(100));
    let clean = run(base_spec(6, ProtocolChoice::Dummy, Arc::clone(&app)));
    let mut spec = base_spec(6, ProtocolChoice::Dummy, app);
    spec.failures = FailurePlan::kill_at(SimTime::from_nanos(3_000_000_000), 1);
    let res = run(spec);
    assert_eq!(res.rt.restarts, 1);
    assert!(res.completion_secs() > clean.completion_secs() * 1.5);
    assert_clean(&res);
}

#[test]
fn survives_multiple_failures() {
    let app = ring_app(150, 10_000, SimDuration::from_millis(150));
    let mut spec = base_spec(6, ProtocolChoice::Vcl, app);
    spec.failures = FailurePlan {
        kills: vec![
            (SimTime::from_nanos(10_000_000_000), 1),
            (SimTime::from_nanos(25_000_000_000), 4),
        ],
        ..FailurePlan::default()
    };
    let res = run(spec);
    assert_eq!(res.rt.restarts, 2);
    assert_clean(&res);
}

#[test]
fn failure_after_completion_is_ignored() {
    let app = ring_app(5, 1_000, SimDuration::from_millis(10));
    let mut spec = base_spec(4, ProtocolChoice::Pcl, app);
    spec.failures = FailurePlan::kill_at(SimTime::from_nanos(3_600_000_000_000), 0);
    let res = run(spec);
    assert_eq!(res.rt.restarts, 0);
}

#[test]
fn vcl_rejects_jobs_beyond_select_limit() {
    let app = ring_app(1, 100, SimDuration::ZERO);
    let spec = JobSpec::new(301, ProtocolChoice::Vcl, app);
    match run_job(spec) {
        Err(JobError::VclProcessLimit { requested, limit }) => {
            assert_eq!(requested, 301);
            assert_eq!(limit, 300);
        }
        other => panic!("expected VclProcessLimit, got {other:?}"),
    }
}

#[test]
fn protocol_runs_are_deterministic() {
    let mk = || {
        let res = run(base_spec(
            6,
            ProtocolChoice::Pcl,
            allreduce_app(100, 4_000, SimDuration::from_millis(50)),
        ));
        (res.completion.as_nanos(), res.waves(), res.ft.sends_delayed)
    };
    assert_eq!(mk(), mk());
}

#[test]
fn nemesis_stack_outperforms_daemon_stack_on_latency_bound_app() {
    // CG-like latency-bound workload: Pcl/Nemesis vs Vcl/daemon without
    // any checkpoints (pure stack comparison, as in the paper's no-ckpt
    // baselines of Fig. 7).
    let app = allreduce_app(400, 2_000, SimDuration::from_millis(5));
    let mut nem = base_spec(8, ProtocolChoice::Dummy, Arc::clone(&app));
    nem.stack = Some(SoftwareStack::NemesisGm);
    let mut vcl = base_spec(8, ProtocolChoice::Dummy, app);
    vcl.stack = Some(SoftwareStack::VclDaemon);
    let t_nem = run(nem).completion_secs();
    let t_vcl = run(vcl).completion_secs();
    assert!(
        t_nem < t_vcl,
        "OS-bypass should beat the daemon stack: {t_nem} vs {t_vcl}"
    );
}

#[test]
fn restore_from_a_wave_committed_after_an_earlier_restart() {
    // Regression: a checkpoint image captured *after* a restart must record
    // the rank's total logical progress, not ops-since-restart; otherwise a
    // second failure restores a corrupted cut (skip points at the start of
    // the program while the channel state belongs to a late iteration).
    for proto in [ProtocolChoice::Pcl, ProtocolChoice::Vcl] {
        let app = ring_app(200, 8_192, SimDuration::from_millis(60));
        let mut spec = base_spec(5, proto, app);
        spec.ft.period = SimDuration::from_secs(2);
        spec.ft.first_wave_delay = SimDuration::from_millis(500);
        spec.failures = FailurePlan {
            kills: vec![
                // First kill: restore from an epoch-0 wave.
                (SimTime::from_nanos(4_000_000_000), 1),
                // Second kill: restore from a wave committed after restart 1.
                (SimTime::from_nanos(14_000_000_000), 3),
            ],
            ..FailurePlan::default()
        };
        spec.max_virtual_time = Some(SimTime::from_nanos(600_000_000_000));
        let res = run(spec);
        assert_eq!(res.rt.restarts, 2, "{proto:?}");
        assert!(res.waves() >= 2, "{proto:?}");
        assert_clean(&res);
    }
}

#[test]
fn single_rank_vcl_commits_waves() {
    // Regression: a solo job has no channels, so log_done must not wait for
    // channel markers that will never arrive.
    let app: AppFn = app_fn(|mut mpi| async move {
        for _ in 0..40 {
            mpi.compute(SimDuration::from_millis(100));
        }
        mpi
    });
    let mut spec = base_spec(1, ProtocolChoice::Vcl, app);
    spec.ft.first_wave_delay = SimDuration::from_millis(200);
    spec.ft.period = SimDuration::from_millis(800);
    let res = run(spec);
    assert!(
        res.waves() >= 2,
        "solo Vcl must commit waves, got {}",
        res.waves()
    );
}

#[test]
fn kill_at_time_zero_restarts_from_scratch() {
    // Degenerate timing: the victim dies the instant it is spawned, before
    // a single message or checkpoint exists.
    for proto in [ProtocolChoice::Pcl, ProtocolChoice::Vcl] {
        let app = ring_app(20, 10_000, SimDuration::from_millis(100));
        let mut spec = base_spec(4, proto, app);
        spec.failures = FailurePlan::kill_at(SimTime::ZERO, 0);
        let res = run(spec);
        assert_eq!(res.rt.restarts, 1, "{proto:?}");
        assert_eq!(
            res.ft.rollback_depth_max, 0,
            "{proto:?}: scratch restore of zero committed waves costs no depth"
        );
        assert_clean(&res);
    }
}

#[test]
fn kill_after_completion_is_ignored_despite_detection_lag() {
    // The lagged detection event must be absorbed too, not fire a restart
    // of a job that already finished.
    let app = ring_app(5, 1_000, SimDuration::from_millis(10));
    let mut spec = base_spec(4, ProtocolChoice::Vcl, app);
    spec.ft = spec.ft.with_detection_delay_secs(1.0);
    spec.failures = FailurePlan::kill_at(SimTime::from_nanos(3_600_000_000_000), 0);
    let res = run(spec);
    assert_eq!(res.rt.restarts, 0);
    assert!(res.ft.lost_work.is_zero());
}

#[test]
fn second_kill_of_dead_rank_during_detection_lag_is_absorbed() {
    // Two kills of the same victim inside one heartbeat window: the task
    // cannot die twice, so exactly one detection → one restart.
    let app = ring_app(150, 10_000, SimDuration::from_millis(150));
    let mut spec = base_spec(6, ProtocolChoice::Vcl, app);
    spec.ft = spec.ft.with_detection_delay_secs(1.0);
    spec.failures = FailurePlan::kill_at(SimTime::from_nanos(12_000_000_000), 2)
        .with_kill(SimTime::from_nanos(12_300_000_000), 2);
    let res = run(spec);
    assert_eq!(res.rt.restarts, 1);
    assert_clean(&res);
}

#[test]
fn same_victim_back_to_back_kills_restart_twice() {
    // With zero detection lag the first kill restarts immediately; the
    // second lands mid-recovery on the revived rank and must produce a
    // clean nested restart, not a panic or a double-count.
    let app = ring_app(150, 10_000, SimDuration::from_millis(150));
    let mut spec = base_spec(6, ProtocolChoice::Pcl, app);
    spec.failures = FailurePlan::kill_at(SimTime::from_nanos(12_000_000_000), 2)
        .with_kill(SimTime::from_nanos(12_000_000_100), 2);
    let res = run(spec);
    assert_eq!(res.rt.restarts, 2);
    assert_clean(&res);
}

#[test]
fn detection_lag_grows_lost_work() {
    // Same kill, longer heartbeat timeout: everything computed between the
    // restored wave's commit and the (later) rollback is thrown away.
    let mk = |lag_s: f64| {
        let app = ring_app(150, 10_000, SimDuration::from_millis(150));
        let mut spec = base_spec(6, ProtocolChoice::Vcl, app);
        spec.ft = spec.ft.with_detection_delay_secs(lag_s);
        spec.failures = FailurePlan::kill_at(SimTime::from_nanos(12_000_000_000), 1);
        run(spec)
    };
    let instant = mk(0.0);
    let lagged = mk(2.0);
    assert_eq!(instant.rt.restarts, 1);
    assert_eq!(lagged.rt.restarts, 1);
    assert!(
        lagged.ft.lost_work_secs() > instant.ft.lost_work_secs() + 1.9,
        "lag must show up in lost work: {} vs {}",
        lagged.ft.lost_work_secs(),
        instant.ft.lost_work_secs()
    );
    assert!(
        lagged.completion_secs() > instant.completion_secs(),
        "and in completion time: {} vs {}",
        lagged.completion_secs(),
        instant.completion_secs()
    );
}

#[test]
fn midwave_kill_aborts_wave_and_leaves_no_orphan_images() {
    // A huge image makes the wave slow enough that a kill reliably lands
    // while it is streaming to the servers: the partial wave aborts, its
    // images are garbage-collected, and the restart uses the previous cut.
    for proto in [ProtocolChoice::Pcl, ProtocolChoice::Vcl] {
        let app = ring_app(200, 10_000, SimDuration::from_millis(150));
        let mut spec = base_spec(6, proto, app);
        spec.ft.image_bytes = 64 << 20;
        spec.failures = FailurePlan::kill_at(SimTime::from_nanos(2_100_000_000), 3);
        let res = run(spec);
        assert_eq!(res.rt.restarts, 1, "{proto:?}");
        assert!(
            res.ft.waves_aborted >= 1,
            "{proto:?}: kill at 2.1 s should land in the wave starting at 2 s"
        );
        assert_eq!(
            res.ft.orphan_images_end, 0,
            "{proto:?}: aborted images must be garbage-collected"
        );
        assert_clean(&res);
    }
}

#[test]
fn server_loss_falls_back_to_scratch_without_replicas() {
    // One copy per image: killing the victim's primary server destroys all
    // of its committed images, so the next restart starts from scratch.
    let app = ring_app(100, 10_000, SimDuration::from_millis(100));
    let mut spec = base_spec(6, ProtocolChoice::Vcl, app);
    spec.failures = FailurePlan::server_kill_at(SimTime::from_nanos(4_000_000_000), 1)
        .with_kill(SimTime::from_nanos(4_500_000_000), 1);
    let res = run(spec);
    assert_eq!(res.rt.restarts, 1);
    assert!(
        res.ft.rollback_depth_max >= 1,
        "rank 1's images lived on server 1; rollback must reach past the lost wave, got depth {}",
        res.ft.rollback_depth_max
    );
    assert_clean(&res);
}

#[test]
fn partition_from_time_zero_delays_the_first_wave_without_rollback() {
    // Degenerate timing: rank 0's node is unreachable from the instant the
    // job is spawned, healing shortly after the first wave starts. Without
    // a partition watchdog this is pure delay: the wave's traffic to the
    // cut-off node pauses and retries, nobody restarts, and the wave still
    // commits once the cut heals.
    for proto in [ProtocolChoice::Pcl, ProtocolChoice::Vcl] {
        let app = ring_app(100, 10_000, SimDuration::from_millis(200));
        let mut spec = base_spec(6, proto, app);
        spec.net_faults = NetFaultPlan::none().with_partition(
            "from-boot",
            vec![NodeId(0)],
            SimTime::ZERO,
            Some(SimTime::from_nanos(2_500_000_000)),
        );
        let res = run(spec);
        assert_eq!(
            res.rt.restarts, 0,
            "{proto:?}: a healed cut must not restart anyone"
        );
        assert!(
            res.waves() >= 1,
            "{proto:?}: waves must resume after the heal"
        );
        assert!(
            res.rt.link_retries >= 1,
            "{proto:?}: the wave starting at 2 s must stall on the cut"
        );
        assert_clean(&res);
    }
}

#[test]
fn partition_outliving_the_job_surrenders_waves_but_completes() {
    // Degenerate timing: the cut never heals. Every checkpoint wave needs
    // rank 0's image, every push attempt exhausts its bounded retry budget
    // and surrenders, so no wave ever commits — but application traffic is
    // out of the partition's scope (it models stalled checkpoint transport,
    // not node death), so the job itself must still finish.
    let app = ring_app(100, 10_000, SimDuration::from_millis(200));
    let mut spec = base_spec(6, ProtocolChoice::Pcl, app);
    spec.net_faults = NetFaultPlan::none().with_partition(
        "forever",
        vec![NodeId(0)],
        SimTime::from_nanos(1_500_000_000),
        None,
    );
    // Paused control traffic to the dead side keeps probing until the cap.
    spec.max_virtual_time = Some(SimTime::from_nanos(120_000_000_000));
    let res = run(spec);
    assert_eq!(res.waves(), 0, "no wave can commit without rank 0's image");
    assert!(
        res.ft.waves_aborted >= 1,
        "the push retry budget must surrender, aborting the wave"
    );
    assert_eq!(res.rt.restarts, 0);
    assert!(res.rt.link_retries >= u64::from(FtConfig::default().link_retry_limit));
    assert_clean(&res);
}

#[test]
fn heal_exactly_at_the_retry_deadline_lands_the_probe() {
    // Degenerate timing: the victim's restore fetch is blocked by a cut
    // that heals in the same nanosecond as a scheduled retry probe. Setup-
    // scheduled fault transitions win same-time ties against runtime-
    // scheduled probes, so that exact probe must see the healed link and
    // succeed: two failed probes, not three. One nanosecond later and the
    // probe loses the race, costing exactly one more rung of the ladder.
    let kill = 9_000_000_000u64; // quiet zone: two waves committed by 9 s
    let ft = FtConfig::default();
    let first_probe = kill + ft.restart_delay.as_nanos();
    // Failed probes at +0 and +base; the +3·base probe ties with the heal.
    let deadline = first_probe + 3 * ft.link_retry_base.as_nanos();
    for (heal, want_retries) in [(deadline, 2), (deadline + 1, 3)] {
        let app = ring_app(100, 10_000, SimDuration::from_millis(200));
        let mut spec = base_spec(6, ProtocolChoice::Vcl, app);
        spec.failures = FailurePlan::kill_at(SimTime::from_nanos(kill), 1);
        spec.net_faults = NetFaultPlan::none().with_partition(
            "fetch-window",
            vec![NodeId(1)],
            SimTime::from_nanos(kill - 100_000_000),
            Some(SimTime::from_nanos(heal)),
        );
        let res = run(spec);
        assert_eq!(res.rt.restarts, 1);
        assert_eq!(
            res.rt.link_retries,
            want_retries,
            "heal at first_probe+{} ns must cost exactly {want_retries} probe retries",
            heal - first_probe
        );
        assert_eq!(res.ft.images_refetched, 1, "one victim, one fetch");
        assert_clean(&res);
    }
}

#[test]
fn node_kill_of_an_already_partitioned_node_recovers_after_heal() {
    // Degenerate composition: the node dies while it is already cut off.
    // The correlated restart's image fetch cannot reach the servers until
    // the heal, so it rides the probe chain across it — one restart, one
    // fetch, bounded retries, clean completion.
    let t0 = 8_500_000_000u64;
    let app = ring_app(100, 10_000, SimDuration::from_millis(200));
    let mut spec = base_spec(6, ProtocolChoice::Vcl, app);
    spec.failures = FailurePlan::node_kill_at(SimTime::from_nanos(t0 + 500_000_000), 2);
    spec.net_faults = NetFaultPlan::none().with_partition(
        "pre-cut",
        vec![NodeId(2)],
        SimTime::from_nanos(t0),
        Some(SimTime::from_nanos(t0 + 6_500_000_000)),
    );
    let res = run(spec);
    assert_eq!(res.rt.restarts, 1, "one node death, one correlated restart");
    assert_eq!(res.ft.images_refetched, 1);
    assert!(
        res.rt.link_retries >= 1,
        "the fetch must probe the cut before the heal lets it through"
    );
    assert!(
        res.rt.link_retries <= u64::from(FtConfig::default().link_retry_limit) * 2,
        "retries must stay on the bounded ladder, got {}",
        res.rt.link_retries
    );
    assert_clean(&res);
}

#[test]
fn coincident_server_and_rank_kill_falls_back_to_scratch() {
    // Independent Poisson schedules can legally collide on the same
    // nanosecond (see `FailurePlan::merged`). The runner orders the server
    // kill first, so the rank's restore must already see its only image
    // copy gone and fall back past it — never fetch from the dying server.
    for proto in [ProtocolChoice::Pcl, ProtocolChoice::Vcl] {
        let t = SimTime::from_nanos(9_000_000_000);
        let app = ring_app(100, 10_000, SimDuration::from_millis(200));
        let mut spec = base_spec(6, proto, app);
        spec.failures = FailurePlan::server_kill_at(t, 0).with_kill(t, 0);
        let res = run(spec);
        assert_eq!(res.rt.restarts, 1, "{proto:?}");
        assert!(
            res.ft.rollback_depth_max >= 1,
            "{proto:?}: rank 0's images lived on server 0 alone; the same-instant \
             restore must roll back past the lost wave, got depth {}",
            res.ft.rollback_depth_max
        );
        assert_clean(&res);
    }
}

#[test]
fn coincident_server_and_rank_kill_restores_from_surviving_replica() {
    // Same collision with two copies per image: the restore skips the
    // just-dead primary and fetches the newest wave from the survivor.
    for proto in [ProtocolChoice::Pcl, ProtocolChoice::Vcl] {
        let t = SimTime::from_nanos(9_000_000_000);
        let app = ring_app(100, 10_000, SimDuration::from_millis(200));
        let mut spec = base_spec(6, proto, app);
        spec.ft = spec.ft.with_replicas(2);
        spec.failures = FailurePlan::server_kill_at(t, 0).with_kill(t, 0);
        let res = run(spec);
        assert_eq!(res.rt.restarts, 1, "{proto:?}");
        assert_eq!(
            res.ft.rollback_depth_max, 0,
            "{proto:?}: the surviving replica keeps the newest wave usable"
        );
        assert!(res.ft.images_refetched >= 1, "{proto:?}");
        assert_clean(&res);
    }
}

#[test]
fn server_loss_with_replicas_restores_from_survivor() {
    // Two copies per image: the same server loss costs nothing — the
    // restart fetches the victim's image from the surviving replica.
    let app = ring_app(100, 10_000, SimDuration::from_millis(100));
    let mut spec = base_spec(6, ProtocolChoice::Vcl, app);
    spec.ft = spec.ft.with_replicas(2);
    spec.failures = FailurePlan::server_kill_at(SimTime::from_nanos(4_000_000_000), 1)
        .with_kill(SimTime::from_nanos(4_500_000_000), 1);
    let res = run(spec);
    assert_eq!(res.rt.restarts, 1);
    assert_eq!(
        res.ft.rollback_depth_max, 0,
        "the surviving replica keeps the newest wave usable"
    );
    assert!(res.ft.images_refetched >= 1);
    assert_clean(&res);
}

#[test]
fn flap_period_shorter_than_the_retry_ladder_base_still_converges() {
    // Degenerate timing: the push link flaps with a full up/down period of
    // ~25 ms — half the 50 ms retry-ladder base — so a paused chunk's
    // retry probe lands a whole flap period (or more) later and samples an
    // essentially independent link state. The ladder must neither lock
    // onto the flap phase (livelock) nor surrender spuriously: nobody
    // restarts, retries stay bounded, and waves keep committing.
    for proto in [ProtocolChoice::Pcl, ProtocolChoice::Vcl] {
        let base = FtConfig::default().link_retry_base;
        let app = ring_app(100, 10_000, SimDuration::from_millis(200));
        let mut spec = base_spec(6, proto, app);
        spec.net_faults = NetFaultPlan::none().with_link_flap(LinkFlapSpec {
            from: NodeId(0),
            to: NodeId(6), // rank 0's push path to server 0
            start: SimTime::from_nanos(1_500_000_000),
            end: SimTime::from_nanos(9_000_000_000),
            mttf: SimDuration::from_nanos(base.as_nanos() / 4),
            mttr: SimDuration::from_nanos(base.as_nanos() / 4),
            seed: 23,
        });
        let res = run(spec);
        assert_eq!(
            res.rt.restarts, 0,
            "{proto:?}: a flapping push link must not kill anyone"
        );
        assert!(
            res.rt.link_retries >= 1,
            "{proto:?}: a sub-period flap across two waves must stall at least one chunk"
        );
        assert!(
            res.rt.link_retries <= 2_000,
            "{proto:?}: {} retries across a 7.5 s flap window — phase-locked livelock?",
            res.rt.link_retries
        );
        assert!(
            res.waves() >= 1,
            "{proto:?}: checkpointing must make progress through the flap"
        );
        assert_clean(&res);
    }
}

#[test]
fn directed_heal_exactly_at_the_retry_deadline_lands_the_probe() {
    // Degenerate timing, asymmetric edition: the victim's restore fetch is
    // blocked by an *outbound-only* cut (requests can't leave the node;
    // inbound delivery is fine) that heals in the same nanosecond as a
    // scheduled retry probe. Fetches need the round trip, so a half-open
    // cut must cost exactly the same probe schedule as a full cut: the
    // tie-winning heal lands the +3·base probe, one nanosecond later costs
    // one more rung.
    let kill = 9_000_000_000u64; // quiet zone: two waves committed by 9 s
    let ft = FtConfig::default();
    let first_probe = kill + ft.restart_delay.as_nanos();
    let deadline = first_probe + 3 * ft.link_retry_base.as_nanos();
    for (heal, want_retries) in [(deadline, 2), (deadline + 1, 3)] {
        let app = ring_app(100, 10_000, SimDuration::from_millis(200));
        let mut spec = base_spec(6, ProtocolChoice::Vcl, app);
        spec.failures = FailurePlan::kill_at(SimTime::from_nanos(kill), 1);
        spec.net_faults = NetFaultPlan::none().with_partition_directed(
            "fetch-window-outbound",
            vec![NodeId(1)],
            CutDirection::Outbound,
            SimTime::from_nanos(kill - 100_000_000),
            Some(SimTime::from_nanos(heal)),
        );
        let res = run(spec);
        assert_eq!(res.rt.restarts, 1);
        assert_eq!(
            res.rt.link_retries,
            want_retries,
            "outbound-only heal at first_probe+{} ns must cost exactly {want_retries} probe \
             retries, same as a symmetric cut",
            heal - first_probe
        );
        assert_eq!(res.ft.images_refetched, 1, "one victim, one fetch");
        assert_clean(&res);
    }
}

#[test]
fn server_partition_coinciding_with_midwave_kill_walks_to_the_replica() {
    // Degenerate composition: a rank dies mid-wave while a never-healing
    // partition isolates its primary checkpoint server. The tie matters:
    // at exact coincidence the restart's detection-time reachability check
    // samples the pre-cut state and the restore fetches synchronously from
    // the primary (no walk); start the cut one nanosecond earlier and the
    // fetch blocks, so the probe ladder must exhaust on the dark primary
    // and walk to the replica copy on the surviving server. Either way the
    // newest wave stays restorable and nobody waits for a heal that never
    // comes.
    for proto in [ProtocolChoice::Pcl, ProtocolChoice::Vcl] {
        let t = 7_200_000_000u64; // inside the second wave (period 5 s)
        for (cut, want_walk) in [(t, false), (t - 1, true)] {
            let app = ring_app(100, 10_000, SimDuration::from_millis(200));
            let mut spec = base_spec(6, proto, app);
            spec.ft = spec.ft.with_replicas(2);
            spec.failures = FailurePlan::kill_at(SimTime::from_nanos(t), 0);
            spec.net_faults = NetFaultPlan::none().with_server_partition(
                "primary-dark",
                vec![0],
                CutDirection::Both,
                SimTime::from_nanos(cut),
                None,
            );
            spec.max_virtual_time = Some(SimTime::from_nanos(300_000_000_000));
            let res = run(spec);
            assert_eq!(res.rt.restarts, 1, "{proto:?} cut@{cut}");
            if want_walk {
                assert!(
                    res.ft.replica_depth_max >= 1,
                    "{proto:?}: a cut 1 ns ahead of the kill must force the replica walk"
                );
                assert!(
                    res.ft.images_rerouted >= 1,
                    "{proto:?}: the walked fetch counts as a reroute"
                );
            } else {
                assert_eq!(
                    res.ft.replica_depth_max, 0,
                    "{proto:?}: at exact coincidence the pre-cut fetch wins the tie"
                );
            }
            assert!(
                res.ft.retries_exhausted >= 1,
                "{proto:?} cut@{cut}: pushes at the dark primary must exhaust a ladder"
            );
            assert!(
                res.ft.waves_aborted >= 1,
                "{proto:?} cut@{cut}: with both replicas required, waves behind the cut abort"
            );
            assert_eq!(
                res.ft.rollback_depth_max, 0,
                "{proto:?} cut@{cut}: the newest committed wave stays restorable"
            );
            assert!(res.ft.images_refetched >= 1, "{proto:?} cut@{cut}");
            assert_clean(&res);
        }
    }
}

#[test]
fn corruption_landing_at_the_exact_retry_deadline_walks_to_the_replica() {
    // Degenerate timing: the victim's restore fetch is blocked by a cut
    // that heals in the same nanosecond as a scheduled retry probe — and
    // in that same nanosecond the primary replica's stored bits flip.
    // Setup-scheduled fault transitions win same-time ties against
    // runtime-scheduled probes, so the probe that finally finds the link
    // up must also find the damage: verify-on-fetch rejects the primary
    // with a typed mismatch and the walk salvages the sibling copy, with
    // no extra rungs of the probe ladder.
    let kill = 9_000_000_000u64; // quiet zone: two waves committed by 9 s
    let ft = FtConfig::default();
    let first_probe = kill + ft.restart_delay.as_nanos();
    // Failed probes at +0 and +base; the +3·base probe ties with the heal.
    let deadline = first_probe + 3 * ft.link_retry_base.as_nanos();
    let app = ring_app(100, 10_000, SimDuration::from_millis(200));
    let mut spec = base_spec(6, ProtocolChoice::Vcl, app);
    spec.ft = spec.ft.with_replicas(2);
    spec.failures = FailurePlan::kill_at(SimTime::from_nanos(kill), 1)
        // The walk visits servers in ascending node order, so fleet
        // index 0 is the copy the planned fetch tries first.
        .with_corruption(SimTime::from_nanos(deadline), 0, 1);
    spec.net_faults = NetFaultPlan::none().with_partition(
        "fetch-window",
        vec![NodeId(1)],
        SimTime::from_nanos(kill - 100_000_000),
        Some(SimTime::from_nanos(deadline)),
    );
    let res = run(spec);
    assert_eq!(res.rt.restarts, 1);
    assert_eq!(
        res.rt.link_retries, 2,
        "the corrupt copy is rejected at verify time, not by more probes"
    );
    assert_eq!(res.ft.images_corrupt_detected, 1, "one flip, one detection");
    assert_eq!(res.ft.images_repaired, 1, "the walk salvages the sibling");
    assert_eq!(res.ft.images_rerouted, 1);
    assert_eq!(res.ft.replica_depth_max, 1);
    assert_clean(&res);
}

#[test]
fn scrub_tick_coinciding_with_the_restart_fetch_stays_clean() {
    // Degenerate timing: a 500 ms scrubber ticks exactly at 12 s — the
    // same instant the restart's image fetch goes out (kill at 9 s plus
    // the 3 s restart delay) — and both race for a replica damaged after
    // the previous tick. Whichever sees the mismatch first, the damage is
    // detected, a good copy serves the restore, and the slot ends the run
    // repaired; the coincidence must not deadlock, double-respawn, or
    // leave the restart consuming damaged bits.
    for proto in [ProtocolChoice::Pcl, ProtocolChoice::Vcl] {
        let kill = 9_000_000_000u64;
        let app = ring_app(100, 10_000, SimDuration::from_millis(200));
        let mut spec = base_spec(6, proto, app);
        spec.ft = spec.ft.with_replicas(2).with_scrub_interval_secs(0.5);
        spec.failures = FailurePlan::kill_at(SimTime::from_nanos(kill), 1)
            // After the 11.5 s tick, before the 12.0 s tick-and-fetch tie.
            .with_corruption(SimTime::from_nanos(11_750_000_000), 0, 1);
        let res = run(spec);
        assert_eq!(res.rt.restarts, 1, "{proto:?}");
        assert!(
            res.ft.images_corrupt_detected >= 1,
            "{proto:?}: the damaged replica must be noticed by scrub or fetch"
        );
        assert!(
            res.ft.images_repaired >= 1,
            "{proto:?}: the slot must end the run salvaged"
        );
        assert_eq!(res.rt.link_retries, 0, "{proto:?}: no cuts, no probes");
        assert_clean(&res);
    }
}

#[test]
fn corrupting_an_empty_store_at_time_zero_is_a_noop() {
    // Degenerate timing: corruption events for every rank on both servers
    // fire at t=0, before any wave has stored a single byte. An empty
    // slot cannot be damaged — the events must expand, schedule, and
    // apply as no-ops, and a later kill restores from the (untouched)
    // images pushed afterwards exactly like a corruption-free twin.
    let mk = |corrupt: bool| {
        let app = ring_app(100, 10_000, SimDuration::from_millis(200));
        let mut spec = base_spec(6, ProtocolChoice::Vcl, app);
        spec.failures = FailurePlan::kill_at(SimTime::from_nanos(9_000_000_000), 2);
        if corrupt {
            spec.failures = spec
                .failures
                .with_server_corruption(SimTime::ZERO, 0)
                .with_server_corruption(SimTime::ZERO, 1);
        }
        run(spec)
    };
    let twin = mk(false);
    let res = mk(true);
    assert_eq!(
        res.ft.images_corrupt_detected, 0,
        "nothing stored, nothing damaged"
    );
    assert_eq!(res.ft.images_repaired, 0);
    assert_eq!(res.rt.restarts, 1);
    assert_eq!(
        res.completion_secs(),
        twin.completion_secs(),
        "a no-op corruption schedule must not perturb the restart timing"
    );
    assert_clean(&res);
}
