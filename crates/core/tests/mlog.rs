//! Tests for the uncoordinated message-logging protocol (Mlog): failure-free
//! overhead behaviour, independent checkpoint cycles, and single-rank
//! recovery correctness.

use std::sync::Arc;

use ftmpi_core::{run_job, FailurePlan, FtConfig, JobSpec, ProtocolChoice};
use ftmpi_mpi::{app_fn, AppFn};
use ftmpi_net::SoftwareStack;
use ftmpi_sim::{SimDuration, SimTime};

fn ring_app(iters: usize, bytes: u64, compute: SimDuration) -> AppFn {
    app_fn(move |mut mpi| async move {
        let n = mpi.size();
        let right = (mpi.rank() + 1) % n;
        let left = (mpi.rank() + n - 1) % n;
        for i in 0..iters {
            mpi.shift(right, left, (i % 997) as i32, bytes).await;
            mpi.compute(compute);
        }
        mpi
    })
}

fn base_spec(nranks: usize, app: AppFn) -> JobSpec {
    let mut spec = JobSpec::new(nranks, ProtocolChoice::Mlog, app);
    spec.servers = 2;
    spec.ft = FtConfig {
        period: SimDuration::from_secs(3),
        first_wave_delay: SimDuration::from_millis(500),
        image_bytes: 2 << 20,
        ..FtConfig::default()
    };
    spec.max_virtual_time = Some(ftmpi_sim::SimTime::from_nanos(300_000_000_000));
    spec
}

#[test]
fn logs_every_message_and_checkpoints_independently() {
    let res = run_job(base_spec(
        6,
        ring_app(100, 4_096, SimDuration::from_millis(100)),
    ))
    .expect("mlog run");
    // Every application message is logged before delivery.
    assert_eq!(res.ft.msgs_logged, res.rt.msgs_sent);
    assert!(res.ft.log_bytes_sent > 0);
    // Uncoordinated: per-rank checkpoints, several cycles over ~10 s.
    assert!(
        res.ft.waves_committed >= 6,
        "waves {}",
        res.ft.waves_committed
    );
    assert_eq!(res.leftover_unexpected, 0);
    assert_eq!(res.leftover_posted, 0);
}

#[test]
fn failure_free_overhead_exceeds_coordinated_checkpointing() {
    // §2: "the overhead induced during failure-free execution decreases the
    // performance in reliable environments" — message logging pays a
    // synchronous round-trip per message; coordinated checkpointing does
    // not touch the message path.
    let app = ring_app(300, 16_384, SimDuration::from_millis(20));
    let mk = |proto| {
        let mut spec = base_spec(6, Arc::clone(&app));
        spec.protocol = proto;
        // Same stack for a fair protocol-only comparison.
        spec.stack = Some(SoftwareStack::TcpSock);
        run_job(spec).expect("run")
    };
    let mlog = mk(ProtocolChoice::Mlog);
    let vcl = mk(ProtocolChoice::Vcl);
    assert!(
        mlog.completion_secs() > vcl.completion_secs() * 1.02,
        "logging should cost more than coordinated on a reliable cluster: {} vs {}",
        mlog.completion_secs(),
        vcl.completion_secs()
    );
}

#[test]
fn single_rank_recovery_does_not_roll_back_the_others() {
    let app = ring_app(120, 4_096, SimDuration::from_millis(80));
    let clean = run_job(base_spec(5, Arc::clone(&app))).expect("clean");
    let mut spec = base_spec(5, app);
    let kill = SimTime::from_nanos((clean.completion_secs() * 0.5 * 1e9) as u64);
    spec.failures = FailurePlan::kill_at(kill, 2);
    let failed = run_job(spec).expect("failed run");
    assert_eq!(failed.rt.restarts, 1);
    assert!(failed.completion_secs() >= clean.completion_secs());
    // Single-rank rollback: the whole-job slowdown stays well under a
    // coordinated restart's (which reruns everyone from the last wave).
    assert_eq!(failed.leftover_unexpected, 0);
    assert_eq!(failed.leftover_posted, 0);
}

#[test]
fn recovery_before_any_checkpoint_replays_the_whole_log() {
    let app = ring_app(60, 2_048, SimDuration::from_millis(50));
    let mut spec = base_spec(4, app);
    spec.ft.first_wave_delay = SimDuration::from_secs(1_000); // never checkpoints
    spec.failures = FailurePlan::kill_at(SimTime::from_nanos(1_200_000_000), 1);
    let res = run_job(spec).expect("run");
    assert_eq!(res.rt.restarts, 1);
    // The restart found no image: the victim replayed its entire log from
    // the beginning. (Its post-restart checkpoint cycle re-arms with the
    // normal period, so later waves may still commit.)
    assert_eq!(res.leftover_unexpected, 0);
    assert_eq!(res.leftover_posted, 0);
}

#[test]
fn survives_repeated_failures_of_different_ranks() {
    let app = ring_app(150, 2_048, SimDuration::from_millis(60));
    let mut spec = base_spec(5, app);
    spec.failures = FailurePlan {
        kills: vec![
            (SimTime::from_nanos(2_000_000_000), 1),
            (SimTime::from_nanos(5_000_000_000), 3),
            (SimTime::from_nanos(8_000_000_000), 1),
        ],
        ..FailurePlan::default()
    };
    let res = run_job(spec).expect("run");
    assert_eq!(res.rt.restarts, 3);
    assert_eq!(res.leftover_unexpected, 0);
    assert_eq!(res.leftover_posted, 0);
}

#[test]
fn mlog_runs_are_deterministic() {
    let mk = || {
        let app = ring_app(80, 2_048, SimDuration::from_millis(40));
        let mut spec = base_spec(4, app);
        spec.failures = FailurePlan::kill_at(SimTime::from_nanos(1_500_000_000), 0);
        let res = run_job(spec).expect("run");
        (
            res.completion.as_nanos(),
            res.ft.msgs_logged,
            res.rt.restarts,
        )
    };
    assert_eq!(mk(), mk());
}
