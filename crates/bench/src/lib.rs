//! Experiment harness shared by the figure-regeneration binaries.
//!
//! Every binary in `src/bin/` reproduces one table or figure of the paper
//! (see DESIGN.md §3 for the index). This library holds what they share:
//! experiment records, an aligned-table printer, JSON persistence under
//! `results/`, spec builders for the paper's standard configurations, the
//! parallel [`sweep`] engine every harness runs on, and the [`figures`]
//! modules the thin binaries delegate to.

use std::io::Write;
use std::path::PathBuf;
use std::sync::Arc;

pub mod figures;
pub mod json;
pub mod sweep;

pub use sweep::{spec_fingerprint, JobOutcome, MemoCache, SweepRunner};

use ftmpi_core::{FtConfig, JobResult, JobSpec, Platform, ProtocolChoice};
use ftmpi_nas::{bt, cg, Machine, NasClass, Workload};
use ftmpi_net::{LinkConfig, SoftwareStack};
use ftmpi_sim::{SimDuration, SimTime};

use json::JsonValue;

/// One measured configuration, persisted as JSON for EXPERIMENTS.md.
#[derive(Debug, Clone)]
pub struct Record {
    /// Experiment id, e.g. `"fig5"`.
    pub experiment: String,
    /// Workload name, e.g. `"bt.B.64"`.
    pub workload: String,
    /// Protocol name: `dummy` / `vcl` / `pcl`.
    pub protocol: String,
    /// Software stack.
    pub stack: String,
    /// Sweep variable name.
    pub x_name: String,
    /// Sweep variable value.
    pub x: f64,
    /// Completion time in seconds.
    pub completion_secs: f64,
    /// Committed checkpoint waves.
    pub waves: u64,
    /// Mean committed-wave duration in seconds (0 if none).
    pub wave_secs_mean: f64,
    /// Checkpoint bytes shipped.
    pub ckpt_bytes: u64,
    /// Messages logged (Vcl channel state).
    pub msgs_logged: u64,
    /// Sends delayed (Pcl blocking).
    pub sends_delayed: u64,
    /// Restarts performed.
    pub restarts: u64,
}

impl Record {
    /// Build a record from a job result.
    #[allow(clippy::too_many_arguments)]
    pub fn from_result(
        experiment: &str,
        workload: &str,
        protocol: ProtocolChoice,
        stack: &str,
        x_name: &str,
        x: f64,
        res: &JobResult,
    ) -> Record {
        Record {
            experiment: experiment.to_string(),
            workload: workload.to_string(),
            protocol: proto_name(protocol).to_string(),
            stack: stack.to_string(),
            x_name: x_name.to_string(),
            x,
            completion_secs: res.completion_secs(),
            waves: res.waves(),
            wave_secs_mean: res
                .ft
                .mean_wave_duration()
                .map(|d| d.as_secs_f64())
                .unwrap_or(0.0),
            ckpt_bytes: res.ft.image_bytes_sent + res.ft.log_bytes_sent,
            msgs_logged: res.ft.msgs_logged,
            sends_delayed: res.ft.sends_delayed,
            restarts: res.rt.restarts,
        }
    }

    /// The record as an ordered JSON object (field order matches the seed
    /// repo's serde layout, keeping `results/*.json` stable).
    fn to_json(&self) -> json::JsonObject {
        vec![
            ("experiment", JsonValue::Str(self.experiment.clone())),
            ("workload", JsonValue::Str(self.workload.clone())),
            ("protocol", JsonValue::Str(self.protocol.clone())),
            ("stack", JsonValue::Str(self.stack.clone())),
            ("x_name", JsonValue::Str(self.x_name.clone())),
            ("x", JsonValue::Float(self.x)),
            ("completion_secs", JsonValue::Float(self.completion_secs)),
            ("waves", JsonValue::UInt(self.waves)),
            ("wave_secs_mean", JsonValue::Float(self.wave_secs_mean)),
            ("ckpt_bytes", JsonValue::UInt(self.ckpt_bytes)),
            ("msgs_logged", JsonValue::UInt(self.msgs_logged)),
            ("sends_delayed", JsonValue::UInt(self.sends_delayed)),
            ("restarts", JsonValue::UInt(self.restarts)),
        ]
    }
}

/// Short protocol label.
pub fn proto_name(p: ProtocolChoice) -> &'static str {
    match p {
        ProtocolChoice::Dummy => "dummy",
        ProtocolChoice::Vcl => "vcl",
        ProtocolChoice::Pcl => "pcl",
        ProtocolChoice::Mlog => "mlog",
    }
}

/// Parsed common CLI flags.
#[derive(Debug, Clone)]
pub struct HarnessArgs {
    /// Reduced sweep for quick runs (the default); `--full` restores the
    /// paper's complete parameter grid.
    pub fast: bool,
    /// Where to write the JSON records.
    pub out_dir: PathBuf,
    /// Worker threads for the sweep engine (`--jobs N`); defaults to the
    /// machine's available parallelism.
    pub jobs: usize,
}

impl Default for HarnessArgs {
    fn default() -> Self {
        HarnessArgs {
            fast: true,
            out_dir: PathBuf::from("results"),
            jobs: std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1),
        }
    }
}

const USAGE: &str = "supported flags: --fast | --full | --out DIR | --jobs N";

impl HarnessArgs {
    /// Parse `std::env::args`; prints a usage message and exits non-zero on
    /// unknown or malformed flags.
    pub fn parse() -> HarnessArgs {
        match Self::parse_from(std::env::args().skip(1)) {
            Ok(args) => args,
            Err(msg) => {
                eprintln!("error: {msg}\n{USAGE}");
                std::process::exit(2);
            }
        }
    }

    /// Flag parsing proper, separated from process exit for testing.
    pub fn parse_from(args: impl IntoIterator<Item = String>) -> Result<HarnessArgs, String> {
        let mut out = HarnessArgs::default();
        let mut args = args.into_iter();
        while let Some(a) = args.next() {
            match a.as_str() {
                "--full" => out.fast = false,
                "--fast" => out.fast = true,
                "--out" => {
                    out.out_dir =
                        PathBuf::from(args.next().ok_or("--out needs a directory argument")?);
                }
                "--jobs" => {
                    let n = args.next().ok_or("--jobs needs a worker count")?;
                    out.jobs = n
                        .parse::<usize>()
                        .ok()
                        .filter(|&n| n >= 1)
                        .ok_or_else(|| format!("--jobs needs a positive integer, got '{n}'"))?;
                }
                other => return Err(format!("unknown flag '{other}'")),
            }
        }
        Ok(out)
    }

    /// A sweep runner honouring `--jobs`, wired to `cache`.
    pub fn sweep(&self, cache: &Arc<MemoCache>) -> SweepRunner {
        SweepRunner::new(self.jobs).with_cache(Arc::clone(cache))
    }

    /// The harness's result cache: persistent under `<out_dir>/.cache/`
    /// unless `FTMPI_NO_CACHE` is set (then memory-only). A warm rerun of
    /// any figure against the same output directory performs zero
    /// simulations.
    pub fn cache(&self) -> Arc<MemoCache> {
        MemoCache::persistent(self.out_dir.join(".cache"))
    }
}

/// Write records as pretty JSON to `results/<name>.json`.
pub fn save_records(args: &HarnessArgs, name: &str, records: &[Record]) {
    std::fs::create_dir_all(&args.out_dir).expect("create results dir");
    let path = args.out_dir.join(format!("{name}.json"));
    let mut f = std::fs::File::create(&path).expect("create results file");
    let objects: Vec<json::JsonObject> = records.iter().map(|r| r.to_json()).collect();
    let json = json::to_string_pretty(&objects);
    f.write_all(json.as_bytes()).expect("write records");
    println!("\n[records written to {}]", path.display());
}

/// Print an aligned table: header row then data rows.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n=== {title} ===");
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>w$}", c, w = widths[i]))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let head: Vec<String> = header.iter().map(|s| s.to_string()).collect();
    println!("{}", fmt_row(&head));
    println!(
        "{}",
        "-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1)))
    );
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

/// The paper's BT machine calibration (memory-bound NPB on Opteron 248).
pub fn bt_machine() -> Machine {
    Machine::mflops(100.0)
}

/// The paper's CG machine calibration (CG sustains less than BT).
pub fn cg_machine() -> Machine {
    Machine::mflops(80.0)
}

/// Standard GigE-cluster spec around a workload (paper §5.2).
pub fn cluster_spec(
    wl: &Workload,
    nranks: usize,
    protocol: ProtocolChoice,
    servers: usize,
    period: SimDuration,
) -> JobSpec {
    let mut spec = JobSpec::new(nranks, protocol, Arc::clone(&wl.app));
    spec.platform = Platform::Cluster(LinkConfig::gige());
    spec.servers = servers;
    spec.ft = FtConfig {
        period,
        image_bytes: wl.image_bytes,
        ..FtConfig::default()
    };
    spec.max_virtual_time = Some(SimTime::from_nanos(4 * 3_600 * 1_000_000_000));
    spec
}

/// Myrinet-cluster spec (paper §5.3).
pub fn myrinet_spec(
    wl: &Workload,
    nranks: usize,
    protocol: ProtocolChoice,
    stack: SoftwareStack,
    servers: usize,
    period: SimDuration,
) -> JobSpec {
    let mut spec = cluster_spec(wl, nranks, protocol, servers, period);
    spec.platform = Platform::Cluster(LinkConfig::myrinet2000());
    spec.stack = Some(stack);
    spec
}

/// Grid spec (paper §5.4): local checkpoint servers per cluster.
pub fn grid_spec(
    wl: &Workload,
    nranks: usize,
    protocol: ProtocolChoice,
    period: SimDuration,
) -> JobSpec {
    let mut spec = JobSpec::new(nranks, protocol, Arc::clone(&wl.app));
    spec.platform = Platform::Grid;
    // The paper deployed several checkpoint servers local to each cluster
    // ("a local machine (among 4)"); four per cluster keeps the per-server
    // fan-in near the paper's ratio for the largest cluster.
    spec.servers = 4;
    spec.ft = FtConfig {
        period,
        image_bytes: wl.image_bytes,
        ..FtConfig::default()
    };
    spec.max_virtual_time = Some(SimTime::from_nanos(8 * 3_600 * 1_000_000_000));
    spec
}

/// BT workload at the harness calibration.
pub fn bt_workload(class: NasClass, nranks: usize) -> Workload {
    bt::workload(class, nranks, bt_machine())
}

/// CG workload at the harness calibration.
pub fn cg_workload(class: NasClass, nranks: usize) -> Workload {
    cg::workload(class, nranks, cg_machine())
}

/// Format seconds with 1 decimal.
pub fn secs(x: f64) -> String {
    format!("{x:.1}")
}

/// Checker probe configurations: one spec per figure-workload family
/// (GigE cluster, Myrinet stacks, grid) for each checkpointing protocol,
/// shrunk enough to re-run several times under perturbation seeds.
///
/// `fast` selects the tiny sample class (CI smoke); the full set runs
/// class A at the paper's smallest rank counts. Periods are compressed so
/// every probe commits multiple waves within its short runtime. Each call
/// returns fresh specs, so callers can request two copies and attach a
/// failure schedule to one.
pub fn figure_probe_specs(fast: bool) -> Vec<(String, JobSpec)> {
    let class = if fast { NasClass::S } else { NasClass::A };
    let cls = if fast { "S" } else { "A" };
    let (bt_n, cg_n) = if fast { (4, 4) } else { (9, 8) };
    let mut probes = Vec::new();
    let mut push = |name: String, mut spec: JobSpec, period_s: f64| {
        spec.ft.period = SimDuration::from_secs_f64(period_s);
        spec.ft.first_wave_delay = SimDuration::from_secs_f64(period_s / 2.0);
        probes.push((name, spec));
    };
    for proto in [ProtocolChoice::Pcl, ProtocolChoice::Vcl] {
        let p = proto_name(proto);
        let bt = bt_workload(class, bt_n);
        let cg = cg_workload(class, cg_n);
        // §5.2 GigE cluster (figures 5/6/8).
        push(
            format!("bt.{cls}.{bt_n}.gige.{p}"),
            cluster_spec(
                &bt,
                bt_n,
                proto,
                2,
                SimDuration::from_secs_f64(if fast { 0.25 } else { 30.0 }),
            ),
            if fast { 0.25 } else { 30.0 },
        );
        push(
            format!("cg.{cls}.{cg_n}.gige.{p}"),
            cluster_spec(
                &cg,
                cg_n,
                proto,
                2,
                SimDuration::from_secs_f64(if fast { 0.1 } else { 10.0 }),
            ),
            if fast { 0.1 } else { 10.0 },
        );
        // §5.3 Myrinet with the protocol's natural stack (figure 7).
        let stack = match proto {
            ProtocolChoice::Vcl | ProtocolChoice::Mlog => SoftwareStack::VclDaemon,
            _ => SoftwareStack::TcpSock,
        };
        push(
            format!("bt.{cls}.{bt_n}.myri.{p}"),
            myrinet_spec(
                &bt,
                bt_n,
                proto,
                stack,
                2,
                SimDuration::from_secs_f64(if fast { 0.25 } else { 30.0 }),
            ),
            if fast { 0.25 } else { 30.0 },
        );
        // §5.4 grid deployment (figure 9).
        push(
            format!("bt.{cls}.{bt_n}.grid.{p}"),
            grid_spec(
                &bt,
                bt_n,
                proto,
                SimDuration::from_secs_f64(if fast { 0.25 } else { 30.0 }),
            ),
            if fast { 0.25 } else { 30.0 },
        );
    }
    probes
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<HarnessArgs, String> {
        HarnessArgs::parse_from(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn default_args_are_fast_with_machine_parallelism() {
        let a = parse(&[]).unwrap();
        assert!(a.fast);
        assert_eq!(a.out_dir, PathBuf::from("results"));
        assert!(a.jobs >= 1);
    }

    #[test]
    fn all_flags_round_trip() {
        let a = parse(&["--full", "--out", "tmp", "--jobs", "3"]).unwrap();
        assert!(!a.fast);
        assert_eq!(a.out_dir, PathBuf::from("tmp"));
        assert_eq!(a.jobs, 3);
        assert!(parse(&["--fast"]).unwrap().fast);
    }

    #[test]
    fn malformed_flags_are_rejected_not_panicked() {
        assert!(parse(&["--nope"]).is_err());
        assert!(parse(&["--jobs"]).is_err());
        assert!(parse(&["--jobs", "0"]).is_err());
        assert!(parse(&["--jobs", "many"]).is_err());
        assert!(parse(&["--out"]).is_err());
    }
}
