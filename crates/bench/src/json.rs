//! Minimal JSON writer for experiment records.
//!
//! The offline build cannot use `serde_json`, so records are serialized by
//! hand in the exact layout `serde_json::to_string_pretty` produced for the
//! seed repo (2-space indent, `": "` separators, shortest-roundtrip float
//! formatting) — existing tooling parsing `results/*.json` keeps working,
//! and byte-identical output is what the `--jobs` determinism guarantee is
//! stated against.

use std::fmt::Write as _;

/// A JSON value assembled by the record writers.
#[derive(Debug, Clone)]
pub enum JsonValue {
    /// A string (escaped on output).
    Str(String),
    /// An unsigned integer.
    UInt(u64),
    /// A float, printed in shortest-roundtrip form (`1.0`, `123.456`).
    Float(f64),
}

/// An object as an ordered list of `(key, value)` pairs.
pub type JsonObject = Vec<(&'static str, JsonValue)>;

/// Serialize a list of objects as a pretty-printed JSON array.
pub fn to_string_pretty(objects: &[JsonObject]) -> String {
    let mut out = String::new();
    if objects.is_empty() {
        out.push_str("[]");
        return out;
    }
    out.push_str("[\n");
    for (i, obj) in objects.iter().enumerate() {
        out.push_str("  {\n");
        for (j, (key, value)) in obj.iter().enumerate() {
            let _ = write!(out, "    \"{key}\": ");
            write_value(&mut out, value);
            if j + 1 < obj.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("  }");
        if i + 1 < objects.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push(']');
    out
}

fn write_value(out: &mut String, value: &JsonValue) {
    match value {
        JsonValue::Str(s) => {
            out.push('"');
            for c in s.chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    '\n' => out.push_str("\\n"),
                    '\r' => out.push_str("\\r"),
                    '\t' => out.push_str("\\t"),
                    c if (c as u32) < 0x20 => {
                        let _ = write!(out, "\\u{:04x}", c as u32);
                    }
                    c => out.push(c),
                }
            }
            out.push('"');
        }
        JsonValue::UInt(n) => {
            let _ = write!(out, "{n}");
        }
        JsonValue::Float(x) => {
            if x.is_finite() {
                // `{:?}` is shortest-roundtrip, matching serde_json/ryu for
                // every value the harness emits (e.g. `0.0`, `64.0`).
                let _ = write!(out, "{x:?}");
            } else {
                out.push_str("null"); // serde_json's encoding of non-finite
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_array() {
        assert_eq!(to_string_pretty(&[]), "[]");
    }

    #[test]
    fn matches_serde_json_pretty_layout() {
        let objs = vec![vec![
            ("name", JsonValue::Str("bt.B.64".into())),
            ("x", JsonValue::Float(64.0)),
            ("waves", JsonValue::UInt(3)),
        ]];
        let expect =
            "[\n  {\n    \"name\": \"bt.B.64\",\n    \"x\": 64.0,\n    \"waves\": 3\n  }\n]";
        assert_eq!(to_string_pretty(&objs), expect);
    }

    #[test]
    fn escapes_strings() {
        let objs = vec![vec![("s", JsonValue::Str("a\"b\\c\nd".into()))]];
        assert!(to_string_pretty(&objs).contains("a\\\"b\\\\c\\nd"));
    }

    #[test]
    fn float_formats_are_shortest_roundtrip() {
        let objs = vec![vec![
            ("a", JsonValue::Float(0.0)),
            ("b", JsonValue::Float(123.456)),
            ("c", JsonValue::Float(1e-9)),
        ]];
        let s = to_string_pretty(&objs);
        assert!(s.contains("0.0"), "{s}");
        assert!(s.contains("123.456"), "{s}");
        assert!(s.contains("1e-9"), "{s}");
    }
}
