//! Extension experiment — failure storms: how detection latency amplifies
//! the cost of a failure. The paper assumes the runtime notices a dead
//! task instantly; real fault detectors are heartbeat-based, so between
//! the crash and the rollback every surviving rank keeps computing work
//! that the restart will discard. We sweep the detection lag for both
//! protocols with one mid-run kill and report the completion time and the
//! lost-work accounting (time between the restored wave's commit and the
//! rollback).

use std::sync::Arc;

use ftmpi_core::{FailurePlan, ProtocolChoice};
use ftmpi_nas::NasClass;
use ftmpi_sim::{SimDuration, SimTime};

use crate::{
    bt_workload, cluster_spec, print_table, proto_name, save_records, secs, HarnessArgs, MemoCache,
    Record,
};

/// Run the experiment (two phases: the failure-free baseline fixes the
/// kill time) and render table + records.
pub fn run(args: &HarnessArgs, cache: &Arc<MemoCache>) {
    let nranks = 16;
    let wl = bt_workload(NasClass::A, nranks);
    let period = SimDuration::from_secs(15);

    // Phase 1: failure-free baseline, so the kill lands mid-run and the
    // lost-work column has a reference completion time.
    let mut baseline = args.sweep(cache);
    baseline.add_spec(
        "storms/baseline",
        &wl.name,
        cluster_spec(&wl, nranks, ProtocolChoice::Dummy, 2, period),
    );
    let base = baseline.run().pop().unwrap().expect("baseline");
    println!(
        "bt.A.16 failure-free baseline: {:.1} s",
        base.completion_secs()
    );

    let kill_at = SimTime::from_nanos((base.completion_secs() * 0.6 * 1e9) as u64);
    let lags_s: &[f64] = if args.fast {
        &[0.0, 2.0, 5.0]
    } else {
        &[0.0, 0.5, 2.0, 5.0, 10.0]
    };

    let mut runner = args.sweep(cache);
    let mut plan = Vec::new();
    for &proto in &[ProtocolChoice::Pcl, ProtocolChoice::Vcl] {
        for &lag in lags_s {
            let mut spec = cluster_spec(&wl, nranks, proto, 2, period);
            spec.failures = FailurePlan::kill_at(kill_at, nranks / 2);
            spec.ft = spec.ft.with_detection_delay_secs(lag);
            runner.add_spec(
                format!("storms/{}/lag{lag}", proto_name(proto)),
                &wl.name,
                spec,
            );
            plan.push((proto, lag));
        }
    }

    let mut rows = Vec::new();
    let mut records = Vec::new();
    for ((proto, lag), result) in plan.into_iter().zip(runner.run()) {
        let res = result.expect("storm run");
        rows.push(vec![
            proto_name(proto).into(),
            format!("{lag:.1}"),
            res.waves().to_string(),
            res.rt.restarts.to_string(),
            secs(res.ft.lost_work_secs()),
            secs(res.completion_secs()),
            secs(res.completion_secs() - base.completion_secs()),
        ]);
        records.push(Record::from_result(
            "storms",
            &wl.name,
            proto,
            "tcp",
            "detection_lag_s",
            lag,
            &res,
        ));
    }
    print_table(
        "Failure storms — bt.A.16, one kill at 60% of the run, detection lag swept",
        &[
            "proto",
            "lag(s)",
            "waves",
            "restarts",
            "lost-work(s)",
            "time(s)",
            "cost-vs-base(s)",
        ],
        &rows,
    );
    println!("(lost-work = virtual time between the restored wave's commit and the rollback)");
    save_records(args, "storms", &records);
}
