//! Fig. 5 — Impact of the number of checkpoint servers on BT class B for 64
//! processes with a 30 s period between checkpoints.
//!
//! Paper shape: Pcl's completion time decreases as checkpoint servers are
//! added (image transfers stop contending for bandwidth and the wave cycle
//! shortens) while Vcl's stays almost constant — the time saved on
//! transfers is spent running *more* waves (bottom panel).

use std::sync::Arc;

use ftmpi_core::ProtocolChoice;
use ftmpi_nas::NasClass;
use ftmpi_sim::SimDuration;

use crate::{
    bt_workload, cluster_spec, print_table, proto_name, save_records, secs, HarnessArgs, MemoCache,
    Record,
};

/// Run the figure's sweep and render table + records.
pub fn run(args: &HarnessArgs, cache: &Arc<MemoCache>) {
    let nranks = 64;
    let wl = bt_workload(NasClass::B, nranks);
    let period = SimDuration::from_secs(30);
    let servers: &[usize] = &[1, 2, 4, 8];

    let mut runner = args.sweep(cache);
    // (protocol, servers); None = no-checkpoint reference.
    let mut plan: Vec<(ProtocolChoice, Option<usize>)> = Vec::new();
    {
        let mut spec = cluster_spec(&wl, nranks, ProtocolChoice::Dummy, 1, period);
        spec.single_threshold = 32; // 64 procs over 32 dual-processor nodes
        runner.add_spec("fig5/nockpt", &wl.name, spec);
        plan.push((ProtocolChoice::Dummy, None));
    }
    for &proto in &[ProtocolChoice::Pcl, ProtocolChoice::Vcl] {
        for &s in servers {
            let mut spec = cluster_spec(&wl, nranks, proto, s, period);
            spec.single_threshold = 32;
            runner.add_spec(format!("fig5/{}x{s}", proto_name(proto)), &wl.name, spec);
            plan.push((proto, Some(s)));
        }
    }

    let mut rows = Vec::new();
    let mut records = Vec::new();
    for ((proto, servers), result) in plan.into_iter().zip(runner.run()) {
        let res = result.expect("fig5 run");
        match servers {
            None => {
                rows.push(vec![
                    "nockpt".into(),
                    "-".into(),
                    secs(res.completion_secs()),
                    "0".into(),
                    "-".into(),
                ]);
                records.push(Record::from_result(
                    "fig5", &wl.name, proto, "tcp", "servers", 0.0, &res,
                ));
            }
            Some(s) => {
                rows.push(vec![
                    proto_name(proto).into(),
                    s.to_string(),
                    secs(res.completion_secs()),
                    res.waves().to_string(),
                    secs(
                        res.ft
                            .mean_wave_duration()
                            .map(|d| d.as_secs_f64())
                            .unwrap_or(0.0),
                    ),
                ]);
                records.push(Record::from_result(
                    "fig5",
                    &wl.name,
                    proto,
                    if proto == ProtocolChoice::Vcl {
                        "vcl-daemon"
                    } else {
                        "tcp"
                    },
                    "servers",
                    s as f64,
                    &res,
                ));
            }
        }
    }
    print_table(
        "Fig.5 — BT.B/64, 30 s period: completion time and waves vs. #checkpoint servers",
        &["proto", "servers", "time(s)", "waves", "wave(s)"],
        &rows,
    );
    save_records(args, "fig5", &records);
}
