//! Calibration probe: prints the simulated completion time, wave behaviour
//! and simulation cost of the headline configurations, so the machine rates
//! and FT parameters recorded in EXPERIMENTS.md can be sanity-checked.

use std::sync::Arc;

use ftmpi_core::ProtocolChoice;
use ftmpi_nas::NasClass;
use ftmpi_net::SoftwareStack;
use ftmpi_sim::SimDuration;

use crate::{
    bt_workload, cg_workload, cluster_spec, myrinet_spec, print_table, secs, HarnessArgs, MemoCache,
};

/// Run the probe and render the table (wall column reflects each job's
/// time on its worker; memo hits show as ~0 s with a `*`).
pub fn run(args: &HarnessArgs, cache: &Arc<MemoCache>) {
    let mut runner = args.sweep(cache);
    let bt64 = bt_workload(NasClass::B, 64);
    let cg64 = cg_workload(NasClass::C, 64);
    for (label, spec) in [
        (
            "bt.B.64 nockpt",
            cluster_spec(
                &bt64,
                64,
                ProtocolChoice::Dummy,
                4,
                SimDuration::from_secs(30),
            ),
        ),
        (
            "bt.B.64 pcl/30s/4srv",
            cluster_spec(
                &bt64,
                64,
                ProtocolChoice::Pcl,
                4,
                SimDuration::from_secs(30),
            ),
        ),
        (
            "bt.B.64 vcl/30s/4srv",
            cluster_spec(
                &bt64,
                64,
                ProtocolChoice::Vcl,
                4,
                SimDuration::from_secs(30),
            ),
        ),
        (
            "cg.C.64 nockpt/nemesis",
            myrinet_spec(
                &cg64,
                64,
                ProtocolChoice::Dummy,
                SoftwareStack::NemesisGm,
                2,
                SimDuration::from_secs(30),
            ),
        ),
        (
            "cg.C.64 pcl/nemesis/30s",
            myrinet_spec(
                &cg64,
                64,
                ProtocolChoice::Pcl,
                SoftwareStack::NemesisGm,
                2,
                SimDuration::from_secs(30),
            ),
        ),
        (
            "cg.C.64 vcl/30s",
            myrinet_spec(
                &cg64,
                64,
                ProtocolChoice::Vcl,
                SoftwareStack::VclDaemon,
                2,
                SimDuration::from_secs(30),
            ),
        ),
    ] {
        let tag = if label.starts_with("bt") {
            &bt64.name
        } else {
            &cg64.name
        };
        runner.add_spec(label, tag, spec);
    }

    let mut rows = Vec::new();
    for outcome in runner.run_detailed() {
        let res = outcome.result.expect("calibration run");
        rows.push(vec![
            outcome.label,
            secs(res.completion_secs()),
            res.waves().to_string(),
            secs(
                res.ft
                    .mean_wave_duration()
                    .map(|d| d.as_secs_f64())
                    .unwrap_or(0.0),
            ),
            res.events.to_string(),
            format!(
                "{:.1}{}",
                outcome.wall.as_secs_f64(),
                if outcome.cached { "*" } else { "" }
            ),
        ]);
    }
    print_table(
        "calibration",
        &["config", "T(s)", "waves", "wave(s)", "events", "wall(s)"],
        &rows,
    );
}
