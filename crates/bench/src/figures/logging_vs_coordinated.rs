//! §2 comparison — message logging vs. coordinated checkpointing.
//!
//! The paper motivates coordinated checkpointing by noting that message
//! logging's "overhead induced during failure-free execution decreases the
//! performance in reliable environments, such as clusters", while its
//! advantage is cheap recovery (only the failed rank rolls back). This
//! bench quantifies both sides of that trade-off in one table:
//!
//! * failure-free completion time (logging pays a synchronous log
//!   round-trip per message — worst for latency-bound CG);
//! * completion time with one mid-run failure (coordinated rolls every
//!   rank back to the last wave; logging restarts one rank).

use std::sync::Arc;

use ftmpi_core::{FailurePlan, ProtocolChoice};
use ftmpi_nas::NasClass;
use ftmpi_net::SoftwareStack;
use ftmpi_sim::{SimDuration, SimTime};

use crate::{
    bt_workload, cg_workload, cluster_spec, print_table, proto_name, save_records, secs,
    HarnessArgs, MemoCache, Record,
};

const PROTOS: [ProtocolChoice; 3] = [
    ProtocolChoice::Vcl,
    ProtocolChoice::Pcl,
    ProtocolChoice::Mlog,
];

/// Run the comparison (two phases: baselines fix the kill times) and
/// render tables + records.
pub fn run(args: &HarnessArgs, cache: &Arc<MemoCache>) {
    let cases: Vec<(&str, ftmpi_nas::Workload, usize)> = vec![
        ("bt (bandwidth/compute)", bt_workload(NasClass::A, 16), 16),
        ("cg (latency-bound)", cg_workload(NasClass::B, 16), 16),
    ];

    // Phase 1: the failure-free baselines decide when the kills land.
    let mut baselines = args.sweep(cache);
    for (_, wl, nranks) in &cases {
        let mut spec = cluster_spec(
            wl,
            *nranks,
            ProtocolChoice::Dummy,
            2,
            SimDuration::from_secs(10),
        );
        spec.stack = Some(SoftwareStack::TcpSock);
        baselines.add_spec(format!("logvs/{}/baseline", wl.name), &wl.name, spec);
    }
    let clean_bases: Vec<f64> = baselines
        .run()
        .into_iter()
        .map(|r| r.expect("baseline").completion_secs())
        .collect();

    // Phase 2: clean + one-failure runs for every protocol and case.
    let mut runner = args.sweep(cache);
    for ((_, wl, nranks), clean_base) in cases.iter().zip(&clean_bases) {
        let kill = SimTime::from_nanos((clean_base * 0.6 * 1e9) as u64);
        for proto in PROTOS {
            for (tag, failures) in [
                ("clean", FailurePlan::none()),
                ("failed", FailurePlan::kill_at(kill, nranks / 2)),
            ] {
                let mut spec = cluster_spec(wl, *nranks, proto, 2, SimDuration::from_secs(10));
                // Identical stack isolates the protocol cost itself.
                spec.stack = Some(SoftwareStack::TcpSock);
                spec.failures = failures;
                runner.add_spec(
                    format!("logvs/{}/{}/{tag}", wl.name, proto_name(proto)),
                    &wl.name,
                    spec,
                );
            }
        }
    }

    let mut results = runner.run().into_iter();
    let mut records = Vec::new();
    for ((label, wl, _), clean_base) in cases.iter().zip(&clean_bases) {
        let mut rows = Vec::new();
        for proto in PROTOS {
            let clean = results.next().unwrap().expect("run");
            let failed = results.next().unwrap().expect("run");
            rows.push(vec![
                proto_name(proto).into(),
                secs(clean.completion_secs()),
                format!(
                    "{:+.1}%",
                    (clean.completion_secs() / clean_base - 1.0) * 100.0
                ),
                secs(failed.completion_secs()),
                secs(failed.completion_secs() - clean.completion_secs()),
            ]);
            records.push(Record::from_result(
                "logging-vs-coordinated-clean",
                &wl.name,
                proto,
                "tcp",
                "case",
                0.0,
                &clean,
            ));
            records.push(Record::from_result(
                "logging-vs-coordinated-failed",
                &wl.name,
                proto,
                "tcp",
                "case",
                1.0,
                &failed,
            ));
        }
        print_table(
            &format!(
                "§2 trade-off — {} ({}), 10 s checkpoint period, baseline {:.1} s",
                wl.name, label, clean_base
            ),
            &[
                "proto",
                "clean(s)",
                "overhead",
                "1 failure(s)",
                "failure cost(s)",
            ],
            &rows,
        );
    }
    println!("\nCoordinated protocols are near-free without failures but roll everyone");
    println!("back on one; logging taxes every message but restarts a single rank.");
    save_records(args, "logging_vs_coordinated", &records);
}
