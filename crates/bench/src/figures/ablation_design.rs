//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! 1. **Marker gating** — Pcl markers handled only when the progress engine
//!    runs (faithful) vs. asynchronously on arrival: how much of the
//!    blocking protocol's cost is the wait for compute phases to end?
//! 2. **Stream chunk size** — the granularity at which checkpoint streams
//!    interleave with MPI traffic.
//! 3. **Fork cost** — the pause every checkpoint inflicts on its rank.
//! 4. **Progress-engine drag** — the blocking implementation's
//!    image-streaming interference (set to zero, Pcl transfers become as
//!    invisible as Vcl's, flattening Fig. 5's Pcl curve).

use std::sync::Arc;

use ftmpi_core::ProtocolChoice;
use ftmpi_nas::NasClass;
use ftmpi_net::SoftwareStack;
use ftmpi_sim::SimDuration;

use crate::{
    bt_workload, cg_workload, cluster_spec, myrinet_spec, print_table, save_records, secs,
    HarnessArgs, MemoCache, Record,
};

/// Run all four ablations as one sweep and render their tables + records.
pub fn run(args: &HarnessArgs, cache: &Arc<MemoCache>) {
    let mut runner = args.sweep(cache);

    // 1. Marker gating (CG is latency-bound: gating matters most there).
    let wl_markers = cg_workload(NasClass::B, 16);
    const MARKER_MODES: [(&str, bool); 2] =
        [("in-library (paper)", false), ("async (ablation)", true)];
    for (label, async_markers) in MARKER_MODES {
        let mut spec = myrinet_spec(
            &wl_markers,
            16,
            ProtocolChoice::Pcl,
            SoftwareStack::NemesisGm,
            2,
            SimDuration::from_secs(5),
        );
        spec.ft.pcl_async_markers = async_markers;
        runner.add_spec(format!("ablation/markers/{label}"), &wl_markers.name, spec);
    }

    // 2. Chunk size.
    let wl_small = bt_workload(NasClass::A, 16);
    let chunks: &[u64] = if args.fast {
        &[64 << 10, 256 << 10, 4 << 20]
    } else {
        &[16 << 10, 64 << 10, 256 << 10, 1 << 20, 4 << 20, 16 << 20]
    };
    for &chunk in chunks {
        let mut spec = cluster_spec(
            &wl_small,
            16,
            ProtocolChoice::Vcl,
            1,
            SimDuration::from_secs(5),
        );
        spec.ft.chunk_bytes = chunk;
        runner.add_spec(format!("ablation/chunk/{chunk}"), &wl_small.name, spec);
    }

    // 3. Fork cost.
    const FORK_MS: [u64; 4] = [0, 30, 200, 1000];
    for fork_ms in FORK_MS {
        let mut spec = cluster_spec(
            &wl_small,
            16,
            ProtocolChoice::Pcl,
            2,
            SimDuration::from_secs(5),
        );
        spec.ft.fork_cost = SimDuration::from_millis(fork_ms);
        runner.add_spec(format!("ablation/fork/{fork_ms}"), &wl_small.name, spec);
    }

    // 4. Progress-engine drag.
    let wl_big = bt_workload(NasClass::B, 64);
    const DRAG_MS: [u64; 4] = [0, 1, 2, 5];
    for drag_ms in DRAG_MS {
        let mut spec = cluster_spec(
            &wl_big,
            64,
            ProtocolChoice::Pcl,
            1,
            SimDuration::from_secs(30),
        );
        spec.single_threshold = 32;
        spec.ft.blocking_stream_drag = SimDuration::from_millis(drag_ms);
        runner.add_spec(format!("ablation/drag/{drag_ms}"), &wl_big.name, spec);
    }

    let mut results = runner.run().into_iter();
    let mut records = Vec::new();

    {
        let mut rows = Vec::new();
        for (label, async_markers) in MARKER_MODES {
            let res = results.next().unwrap().expect("run");
            rows.push(vec![
                label.into(),
                res.waves().to_string(),
                secs(res.completion_secs()),
            ]);
            records.push(Record::from_result(
                "ablation-markers",
                &wl_markers.name,
                ProtocolChoice::Pcl,
                "nemesis",
                "async",
                async_markers as u8 as f64,
                &res,
            ));
        }
        print_table(
            "Ablation 1 — Pcl marker handling (cg.B.16, 5 s period)",
            &["markers", "waves", "time(s)"],
            &rows,
        );
    }
    {
        let mut rows = Vec::new();
        for &chunk in chunks {
            let res = results.next().unwrap().expect("run");
            rows.push(vec![
                format!("{}K", chunk >> 10),
                res.waves().to_string(),
                secs(res.completion_secs()),
            ]);
            records.push(Record::from_result(
                "ablation-chunk",
                &wl_small.name,
                ProtocolChoice::Vcl,
                "vcl-daemon",
                "chunk_kib",
                (chunk >> 10) as f64,
                &res,
            ));
        }
        print_table(
            "Ablation 2 — checkpoint stream chunk size (bt.A.16, Vcl, 5 s period)",
            &["chunk", "waves", "time(s)"],
            &rows,
        );
    }
    {
        let mut rows = Vec::new();
        for fork_ms in FORK_MS {
            let res = results.next().unwrap().expect("run");
            rows.push(vec![
                format!("{fork_ms}ms"),
                res.waves().to_string(),
                secs(res.completion_secs()),
            ]);
            records.push(Record::from_result(
                "ablation-fork",
                &wl_small.name,
                ProtocolChoice::Pcl,
                "tcp",
                "fork_ms",
                fork_ms as f64,
                &res,
            ));
        }
        print_table(
            "Ablation 3 — fork pause (bt.A.16, Pcl, 5 s period)",
            &["fork", "waves", "time(s)"],
            &rows,
        );
    }
    {
        let mut rows = Vec::new();
        for drag_ms in DRAG_MS {
            let res = results.next().unwrap().expect("run");
            rows.push(vec![
                format!("{drag_ms}ms"),
                res.waves().to_string(),
                secs(res.completion_secs()),
            ]);
            records.push(Record::from_result(
                "ablation-drag",
                &wl_big.name,
                ProtocolChoice::Pcl,
                "tcp",
                "drag_ms",
                drag_ms as f64,
                &res,
            ));
        }
        print_table(
            "Ablation 4 — blocking-stream drag (bt.B.64, Pcl, 1 server, 30 s period)",
            &["drag/op", "waves", "time(s)"],
            &rows,
        );
    }

    save_records(args, "ablations", &records);
}
