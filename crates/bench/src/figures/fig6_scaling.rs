//! Fig. 6 — Execution time of BT class B as a function of the number of
//! processes, for four times between checkpoints (10/30/60/120 s), with 9
//! checkpoint servers; compared to checkpoint-free executions.
//!
//! Paper shapes: without checkpoints both implementations scale similarly;
//! a slowdown appears above 144 processes when two ranks share a node's NIC
//! (the dip at 169); at 10 s periods the blocking protocol degrades badly
//! (it "spends most of the time synchronizing"), while for sensible periods
//! checkpointing overhead does not grow with the number of nodes.

use std::sync::Arc;

use ftmpi_core::ProtocolChoice;
use ftmpi_nas::NasClass;
use ftmpi_net::SoftwareStack;
use ftmpi_sim::SimDuration;

use crate::{
    bt_workload, cluster_spec, print_table, save_records, secs, HarnessArgs, MemoCache, Record,
};

/// Run the figure's sweep and render tables + records.
pub fn run(args: &HarnessArgs, cache: &Arc<MemoCache>) {
    let sizes: Vec<usize> = if args.fast {
        vec![4, 16, 36, 64, 100, 144, 169, 196, 256]
    } else {
        ftmpi_nas::bt::square_sizes(4, 256)
    };
    let periods_s: &[u64] = if args.fast {
        &[10, 60]
    } else {
        &[10, 30, 60, 120]
    };

    // Baselines (the paper's two checkpoint-free implementations) carry a
    // stack override; checkpointing runs use the default stack.
    const BASELINES: [(&str, SoftwareStack); 2] = [
        ("mpich2", SoftwareStack::TcpSock),
        ("mpichv", SoftwareStack::VclDaemon),
    ];
    const PROTOS: [ProtocolChoice; 2] = [ProtocolChoice::Pcl, ProtocolChoice::Vcl];

    let mut runner = args.sweep(cache);
    for &period_s in periods_s {
        let period = SimDuration::from_secs(period_s);
        for &n in &sizes {
            let wl = bt_workload(NasClass::B, n);
            for (label, stack) in BASELINES {
                let mut spec = cluster_spec(&wl, n, ProtocolChoice::Dummy, 9, period);
                spec.stack = Some(stack);
                runner.add_spec(format!("fig6/{period_s}s/{n}/{label}"), &wl.name, spec);
            }
            for proto in PROTOS {
                let spec = cluster_spec(&wl, n, proto, 9, period);
                runner.add_spec(format!("fig6/{period_s}s/{n}/{proto:?}"), &wl.name, spec);
            }
        }
    }

    let mut results = runner.run().into_iter();
    let mut records = Vec::new();
    for &period_s in periods_s {
        let mut rows = Vec::new();
        for &n in &sizes {
            let wl = bt_workload(NasClass::B, n);
            let mut cells = vec![n.to_string()];
            for (label, _) in BASELINES {
                let res = results.next().unwrap().expect("baseline");
                cells.push(secs(res.completion_secs()));
                records.push(Record::from_result(
                    &format!("fig6-{period_s}s"),
                    &wl.name,
                    ProtocolChoice::Dummy,
                    label,
                    "nprocs",
                    n as f64,
                    &res,
                ));
            }
            for proto in PROTOS {
                match results.next().unwrap() {
                    Ok(res) => {
                        cells.push(secs(res.completion_secs()));
                        cells.push(res.waves().to_string());
                        records.push(Record::from_result(
                            &format!("fig6-{period_s}s"),
                            &wl.name,
                            proto,
                            if proto == ProtocolChoice::Vcl {
                                "vcl-daemon"
                            } else {
                                "tcp"
                            },
                            "nprocs",
                            n as f64,
                            &res,
                        ));
                    }
                    Err(e) => {
                        // Vcl's select() limit would trip above 300 procs.
                        cells.push(format!("({e:.0?})").chars().take(8).collect());
                        cells.push("-".into());
                    }
                }
            }
            rows.push(cells);
        }
        print_table(
            &format!("Fig.6 — BT.B vs. #processes, {period_s} s between checkpoints, 9 servers"),
            &[
                "procs",
                "nockpt-mpich2",
                "nockpt-mpichv",
                "pcl",
                "pcl-w",
                "vcl",
                "vcl-w",
            ],
            &rows,
        );
    }
    save_records(args, "fig6", &records);
}
