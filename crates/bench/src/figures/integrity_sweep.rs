//! Extension experiment — stored-image integrity: how a rotting
//! checkpoint-server disk stresses the verify/scrub/quarantine machinery.
//! Server 0's disk silently corrupts stored replicas as a seeded renewal
//! process over the middle 60% of the run, with the mean time between
//! corruption events swept from rare to aggressive. A 5 s background
//! scrubber re-verifies retained waves and re-replicates damaged copies
//! from the surviving good replica; a server crossing the quarantine
//! threshold is dropped from placement. A rank kill at 70% of the
//! failure-free time then forces a restore through whatever the rot left
//! behind — verify-on-fetch walks past damaged copies, so the restart
//! must stay clean at every rate. The table reports both coordinated
//! protocols across the sweep.

use std::sync::Arc;

use ftmpi_core::{FailurePlan, ProtocolChoice, SilentCorruptionSpec};
use ftmpi_nas::NasClass;
use ftmpi_sim::{SimDuration, SimTime};

use crate::{
    bt_workload, cluster_spec, print_table, proto_name, save_records, secs, HarnessArgs, MemoCache,
    Record,
};

/// Run the experiment (two phases: the failure-free baseline fixes the
/// rot window and the kill time) and render table + records.
pub fn run(args: &HarnessArgs, cache: &Arc<MemoCache>) {
    let nranks = 16;
    let wl = bt_workload(NasClass::A, nranks);
    let period = SimDuration::from_secs(15);

    // Phase 1: failure-free baseline, so the rot window covers the same
    // fraction of every run and the cost column has a reference time.
    let mut baseline = args.sweep(cache);
    baseline.add_spec(
        "integrity/baseline",
        &wl.name,
        cluster_spec(&wl, nranks, ProtocolChoice::Dummy, 2, period),
    );
    let base = baseline.run().pop().unwrap().expect("baseline");
    println!(
        "bt.A.16 failure-free baseline: {:.1} s",
        base.completion_secs()
    );

    let start = SimTime::from_nanos((base.completion_secs() * 0.2 * 1e9) as u64);
    let end = SimTime::from_nanos((base.completion_secs() * 0.8 * 1e9) as u64);
    let kill_at = SimTime::from_nanos((base.completion_secs() * 0.7 * 1e9) as u64);
    let mtbc_s: &[f64] = if args.fast {
        &[10.0, 2.0]
    } else {
        &[30.0, 10.0, 5.0, 2.0, 1.0]
    };

    let mut runner = args.sweep(cache);
    let mut plan = Vec::new();
    for &proto in &[ProtocolChoice::Pcl, ProtocolChoice::Vcl] {
        for &mtbc in mtbc_s {
            let mut spec = cluster_spec(&wl, nranks, proto, 2, period);
            // Two replicas so a damaged copy has a good sibling to repair
            // from; two retained waves so a fully-rotten newest wave still
            // has a legal fallback.
            spec.ft = spec
                .ft
                .with_replicas(2)
                .with_retained_waves(2)
                .with_scrub_interval_secs(5.0)
                .with_quarantine_threshold(8);
            spec.failures =
                FailurePlan::kill_at(kill_at, 0).with_silent_corruption(SilentCorruptionSpec {
                    server: 0,
                    mtbc: SimDuration::from_secs_f64(mtbc),
                    start,
                    end,
                    ranks: nranks,
                    seed: 29,
                });
            let events = spec.failures.expanded_corruptions().len();
            runner.add_spec(
                format!("integrity/{}/mtbc{mtbc}", proto_name(proto)),
                &wl.name,
                spec,
            );
            plan.push((proto, mtbc, events));
        }
    }

    let mut rows = Vec::new();
    let mut records = Vec::new();
    for ((proto, mtbc, events), result) in plan.into_iter().zip(runner.run()) {
        let res = result.expect("integrity run");
        rows.push(vec![
            proto_name(proto).into(),
            format!("{mtbc:.1}"),
            events.to_string(),
            res.waves().to_string(),
            res.ft.images_corrupt_detected.to_string(),
            res.ft.images_repaired.to_string(),
            res.ft.servers_quarantined.to_string(),
            res.rt.restarts.to_string(),
            res.ft.replica_depth_max.to_string(),
            secs(res.completion_secs()),
            secs(res.completion_secs() - base.completion_secs()),
        ]);
        records.push(Record::from_result(
            "integrity",
            &wl.name,
            proto,
            "tcp",
            "mtbc_secs",
            mtbc,
            &res,
        ));
    }
    print_table(
        &format!(
            "Integrity sweep — bt.A.16, server 0 rotting over the middle 60% of the run, \
             5 s scrub, quarantine after 8 hits, rank 0 killed at {:.0} s",
            kill_at.as_nanos() as f64 / 1e9
        ),
        &[
            "proto",
            "mtbc(s)",
            "events",
            "waves",
            "detected",
            "repaired",
            "quarantined",
            "restarts",
            "walk",
            "time(s)",
            "cost-vs-base(s)",
        ],
        &rows,
    );
    println!(
        "(every detected corruption is either repaired from a good sibling or walked \
         past on fetch; the restart stays clean at every rot rate)"
    );
    save_records(args, "integrity", &records);
}
