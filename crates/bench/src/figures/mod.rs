//! One module per figure/table harness; the binaries in `src/bin/` are
//! thin wrappers around these.
//!
//! Every module exposes `run(args, cache)`: it queues the figure's jobs on
//! a [`SweepRunner`](crate::SweepRunner) honouring `--jobs`, then renders
//! tables and JSON records from the in-order results. `all_figures` calls
//! them all in one process against one shared [`MemoCache`](crate::MemoCache),
//! so configurations shared across figures are simulated once.

use std::sync::Arc;

use crate::{HarnessArgs, MemoCache};

pub mod ablation_design;
pub mod calibrate;
pub mod failure_storms;
pub mod fig10_grid_scaling;
pub mod fig5_servers;
pub mod fig6_scaling;
pub mod fig7_myrinet;
pub mod fig8_myrinet_scaling;
pub mod fig9_grid400;
pub mod flap_sweep;
pub mod future_work;
pub mod integrity_sweep;
pub mod logging_vs_coordinated;
pub mod mttf_period;
pub mod netpipe;
pub mod partition_sweep;
pub mod recovery_cost;

/// Signature every figure harness implements.
pub type FigureFn = fn(&HarnessArgs, &Arc<MemoCache>);

/// Shared `main()` body for the thin per-figure binaries: parse the CLI,
/// open the persistent cache under `<out>/.cache/`, run the figure, then
/// report cache effectiveness and rank-thread pool occupancy.
pub fn run_standalone(run: FigureFn) {
    let args = HarnessArgs::parse();
    let cache = args.cache();
    run(&args, &cache);
    println!("\n{}", cache.summary());
    println!("{}", ftmpi_sim::pool_stats().summary());
}

/// Every harness, in the order `all_figures` runs them.
pub const ALL: &[(&str, FigureFn)] = &[
    ("calibrate", calibrate::run),
    ("fig5_servers", fig5_servers::run),
    ("fig6_scaling", fig6_scaling::run),
    ("fig7_myrinet", fig7_myrinet::run),
    ("fig8_myrinet_scaling", fig8_myrinet_scaling::run),
    ("fig9_grid400", fig9_grid400::run),
    ("fig10_grid_scaling", fig10_grid_scaling::run),
    ("netpipe", netpipe::run),
    ("recovery_cost", recovery_cost::run),
    ("failure_storms", failure_storms::run),
    ("partition_sweep", partition_sweep::run),
    ("flap_sweep", flap_sweep::run),
    ("integrity_sweep", integrity_sweep::run),
    ("ablation_design", ablation_design::run),
    ("mttf_period", mttf_period::run),
    ("logging_vs_coordinated", logging_vs_coordinated::run),
    ("future_work", future_work::run),
];
