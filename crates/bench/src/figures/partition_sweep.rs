//! Extension experiment — network partitions: how a temporary cut stresses
//! the fault-aware network layer. One compute node is split off from the
//! rest of the platform (servers, dispatcher, peers) mid-run, for a swept
//! duration straddling the heartbeat grace window
//! (`FtConfig::partition_rollback_after`). A cut shorter than the grace
//! heals before the watchdog fires: checkpoint pushes stall, retry with
//! capped exponential backoff (possibly rerouting to another replica
//! server), and *nobody rolls back* — the false positive is suppressed. A
//! cut that outlives the grace costs one correlated rollback of the
//! unreachable ranks. The table reports both regimes for both coordinated
//! protocols.

use std::sync::Arc;

use ftmpi_core::ProtocolChoice;
use ftmpi_nas::NasClass;
use ftmpi_net::{NetFaultPlan, NodeId};
use ftmpi_sim::{SimDuration, SimTime};

use crate::{
    bt_workload, cluster_spec, print_table, proto_name, save_records, secs, HarnessArgs, MemoCache,
    Record,
};

/// Run the experiment (two phases: the failure-free baseline fixes the cut
/// time) and render table + records.
pub fn run(args: &HarnessArgs, cache: &Arc<MemoCache>) {
    let nranks = 16;
    let wl = bt_workload(NasClass::A, nranks);
    let period = SimDuration::from_secs(15);
    let grace_s = 3.0;

    // Phase 1: failure-free baseline, so the cut lands mid-run and the
    // cost column has a reference completion time.
    let mut baseline = args.sweep(cache);
    baseline.add_spec(
        "partition/baseline",
        &wl.name,
        cluster_spec(&wl, nranks, ProtocolChoice::Dummy, 2, period),
    );
    let base = baseline.run().pop().unwrap().expect("baseline");
    println!(
        "bt.A.16 failure-free baseline: {:.1} s",
        base.completion_secs()
    );

    let cut_at = SimTime::from_nanos((base.completion_secs() * 0.4 * 1e9) as u64);
    let durations_s: &[f64] = if args.fast {
        &[1.0, 6.0]
    } else {
        &[0.5, 1.0, 2.0, 6.0, 10.0]
    };

    let mut runner = args.sweep(cache);
    let mut plan = Vec::new();
    for &proto in &[ProtocolChoice::Pcl, ProtocolChoice::Vcl] {
        for &dur in durations_s {
            let mut spec = cluster_spec(&wl, nranks, proto, 2, period);
            spec.ft = spec.ft.with_partition_rollback_after_secs(grace_s);
            let heal = cut_at + SimDuration::from_secs_f64(dur);
            // Node 0 (hosting rank 0) splits off from servers, dispatcher
            // and every peer for `dur` seconds.
            spec.net_faults = NetFaultPlan::none().with_partition(
                format!("cut-{dur}"),
                vec![NodeId(0)],
                cut_at,
                Some(heal),
            );
            runner.add_spec(
                format!("partition/{}/dur{dur}", proto_name(proto)),
                &wl.name,
                spec,
            );
            plan.push((proto, dur));
        }
    }

    let mut rows = Vec::new();
    let mut records = Vec::new();
    for ((proto, dur), result) in plan.into_iter().zip(runner.run()) {
        let res = result.expect("partition run");
        rows.push(vec![
            proto_name(proto).into(),
            format!("{dur:.1}"),
            res.waves().to_string(),
            res.ft.waves_aborted.to_string(),
            res.rt.restarts.to_string(),
            res.ft.partitions_suppressed.to_string(),
            res.rt.link_retries.to_string(),
            res.ft.images_rerouted.to_string(),
            secs(res.completion_secs()),
            secs(res.completion_secs() - base.completion_secs()),
        ]);
        records.push(Record::from_result(
            "partition",
            &wl.name,
            proto,
            "tcp",
            "partition_secs",
            dur,
            &res,
        ));
    }
    print_table(
        &format!(
            "Partition sweep — bt.A.16, node 0 cut off at 40% of the run, {grace_s:.0} s grace"
        ),
        &[
            "proto",
            "cut(s)",
            "waves",
            "aborted",
            "restarts",
            "suppressed",
            "retries",
            "rerouted",
            "time(s)",
            "cost-vs-base(s)",
        ],
        &rows,
    );
    println!(
        "(suppressed = cuts healed inside the grace window: stalled heartbeats, zero rollbacks)"
    );
    save_records(args, "partition", &records);
}
