//! The paper's stated future work, evaluated ahead of time:
//!
//! 1. **Vcl over Nemesis** — "We plan to integrate this protocol in the
//!    MPICH2-Nemesis framework in order to improve its performances and
//!    evaluate it on high speed networks." In the simulation this is just
//!    the non-blocking engine over the OS-bypass stack: it keeps Vcl's
//!    flat wave-cost curve while shedding the daemon's per-message copies.
//!
//! 2. **Failure-prediction triggers** — "Components detecting an
//!    increasing failure probability (e.g. through their CPU temperature
//!    probe) should also trigger a checkpoint wave": a proactive wave
//!    fired shortly before a (predicted) failure bounds the lost work to
//!    the prediction horizon instead of the checkpoint period.

use std::sync::Arc;

use ftmpi_core::{FailurePlan, ProtocolChoice};
use ftmpi_nas::NasClass;
use ftmpi_net::SoftwareStack;
use ftmpi_sim::{SimDuration, SimTime};

use crate::{
    bt_workload, cg_workload, cluster_spec, myrinet_spec, print_table, save_records, secs,
    HarnessArgs, MemoCache, Record,
};

/// Run both future-work studies as one sweep and render tables + records.
pub fn run(args: &HarnessArgs, cache: &Arc<MemoCache>) {
    let mut records = Vec::new();
    let mut runner = args.sweep(cache);

    // ---- Part 1: Vcl over Nemesis on the Myrinet CG benchmark (Fig. 7's
    // setting, adding the series the paper wished it had).
    let nranks = if args.fast { 16 } else { 64 };
    let class = if args.fast { NasClass::B } else { NasClass::C };
    let wl1 = cg_workload(class, nranks);
    let periods: &[f64] = if args.fast {
        &[f64::INFINITY, 15.0, 5.0]
    } else {
        &[f64::INFINITY, 30.0, 15.0, 10.0, 5.0]
    };
    let series: &[(&str, ProtocolChoice, SoftwareStack)] = &[
        ("pcl-nemesis", ProtocolChoice::Pcl, SoftwareStack::NemesisGm),
        ("vcl-daemon", ProtocolChoice::Vcl, SoftwareStack::VclDaemon),
        (
            "vcl-nemesis (future)",
            ProtocolChoice::Vcl,
            SoftwareStack::NemesisGm,
        ),
    ];
    let mut plan1 = Vec::new();
    for &(label, proto, stack) in series {
        for &p in periods {
            let (proto_eff, period) = if p.is_infinite() {
                (ProtocolChoice::Dummy, SimDuration::from_secs(3600))
            } else {
                (proto, SimDuration::from_secs_f64(p))
            };
            let mut spec = myrinet_spec(&wl1, nranks, proto_eff, stack, 2, period);
            spec.single_threshold = 32;
            runner.add_spec(format!("future/{label}/{p}"), &wl1.name, spec);
            plan1.push((label, proto_eff, p));
        }
    }

    // ---- Part 2: proactive wave triggered just before a predicted failure.
    let wl2 = bt_workload(NasClass::A, 16);
    let kill_s = 40.0;
    const CONFIGS: [(&str, ProtocolChoice, f64, Option<f64>); 4] = [
        ("pcl, 120 s period", ProtocolChoice::Pcl, 120.0, None),
        (
            "pcl, 120 s + predictor",
            ProtocolChoice::Pcl,
            120.0,
            Some(5.0),
        ),
        ("vcl, 120 s period", ProtocolChoice::Vcl, 120.0, None),
        (
            "vcl, 120 s + predictor",
            ProtocolChoice::Vcl,
            120.0,
            Some(5.0),
        ),
    ];
    for (label, proto, period_s, predict_lead) in CONFIGS {
        let mut spec = cluster_spec(&wl2, 16, proto, 2, SimDuration::from_secs_f64(period_s));
        spec.failures = FailurePlan::kill_at(SimTime::from_nanos((kill_s * 1e9) as u64), 7);
        if let Some(lead) = predict_lead {
            let at = SimTime::from_nanos(((kill_s - lead) * 1e9) as u64);
            spec.wave_triggers = vec![at];
        }
        runner.add_spec(format!("future/proactive/{label}"), &wl2.name, spec);
    }

    let mut results = runner.run().into_iter();
    {
        let mut rows = Vec::new();
        for (label, proto_eff, p) in plan1 {
            let res = results.next().unwrap().expect(label);
            rows.push(vec![
                label.into(),
                if p.is_infinite() {
                    "-".into()
                } else {
                    format!("{p:.0}")
                },
                res.waves().to_string(),
                secs(res.completion_secs()),
            ]);
            records.push(Record::from_result(
                "future-vcl-nemesis",
                &wl1.name,
                proto_eff,
                label,
                "waves",
                res.waves() as f64,
                &res,
            ));
        }
        print_table(
            &format!("Future work 1 — Vcl over Nemesis ({}, Myrinet)", wl1.name),
            &["series", "period(s)", "waves", "time(s)"],
            &rows,
        );
        println!("(non-blocking + OS-bypass: flat in waves *and* low base — best of both)");
    }
    {
        let mut rows = Vec::new();
        for (label, proto, _, lead) in CONFIGS {
            let res = results.next().unwrap().expect("run");
            rows.push(vec![
                label.into(),
                res.waves().to_string(),
                secs(res.completion_secs()),
            ]);
            records.push(Record::from_result(
                "future-proactive",
                &wl2.name,
                proto,
                "tcp",
                "predictor",
                lead.unwrap_or(0.0),
                &res,
            ));
        }
        print_table(
            "Future work 2 — failure-prediction trigger (bt.A.16, kill at 40 s)",
            &["config", "waves", "time(s)"],
            &rows,
        );
        println!("(a proactive wave 5 s before the failure bounds the rollback)");
    }

    save_records(args, "future_work", &records);
}
