//! §5.4 platform characterization — NetPIPE-style ping-pong over the grid:
//! the network is "up to 20 times faster between two nodes of the same
//! cluster than between two nodes of two distinct clusters. Moreover, the
//! latency is up to two orders of magnitude greater between clusters."

use std::sync::Arc;

use ftmpi_core::{JobSpec, Platform, ProtocolChoice};
use ftmpi_mpi::AppFn;
use ftmpi_nas::synth::{netpipe_app, PingPongResults, PingPongSample};
use ftmpi_net::NodeId;
use parking_lot::Mutex;

use crate::{print_table, spec_fingerprint, HarnessArgs, MemoCache};

/// Largest message and repetition count of the ping-pong series; folded
/// into the cache key because they calibrate the app closure.
const MAX_BYTES: u64 = 1 << 22;
const REPS: usize = 4;

/// Spec for the ping-pong pair on two explicit nodes of the grid, plus the
/// collector its app closure fills. The job must stay **unkeyed** in the
/// result memo: a hit there would skip the run that populates the
/// collector. Instead the whole sample series round-trips through the
/// cache's blob tier (`to_bits`-exact), so warm runs skip the simulation
/// without losing the side-channel data.
fn planned(nodes: [usize; 2]) -> (JobSpec, PingPongResults) {
    let results: PingPongResults = Arc::new(Mutex::new(Vec::new()));
    let app: AppFn = netpipe_app(MAX_BYTES, REPS, Arc::clone(&results));
    let mut spec = JobSpec::new(2, ProtocolChoice::Dummy, app);
    spec.platform = Platform::Grid;
    spec.servers = 1;
    // Pin the two ranks to the requested nodes through an explicit
    // placement override once the deployment is built.
    spec.placement_override = Some(vec![NodeId(nodes[0]), NodeId(nodes[1])]);
    (spec, results)
}

fn blob_key(spec: &JobSpec) -> String {
    format!(
        "np/{}",
        spec_fingerprint(&format!("netpipe-{MAX_BYTES}-{REPS}"), spec)
    )
}

/// Bit-exact sample serialization for the blob tier: floats as hex bit
/// patterns, so a disk round-trip reproduces the table byte-for-byte.
fn encode_samples(samples: &[PingPongSample]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for s in samples {
        let _ = writeln!(
            out,
            "{},{:016x},{:016x}",
            s.bytes,
            s.one_way_secs.to_bits(),
            s.bandwidth.to_bits()
        );
    }
    out
}

fn decode_samples(text: &str) -> Option<Vec<PingPongSample>> {
    let mut v = Vec::new();
    for line in text.lines() {
        let mut parts = line.split(',');
        let bytes = parts.next()?.parse().ok()?;
        let one_way = u64::from_str_radix(parts.next()?, 16).ok()?;
        let bandwidth = u64::from_str_radix(parts.next()?, 16).ok()?;
        if parts.next().is_some() {
            return None;
        }
        v.push(PingPongSample {
            bytes,
            one_way_secs: f64::from_bits(one_way),
            bandwidth: f64::from_bits(bandwidth),
        });
    }
    (!v.is_empty()).then_some(v)
}

/// Run the characterization and render the table.
pub fn run(args: &HarnessArgs, cache: &Arc<MemoCache>) {
    // Orsay is nodes 101..316 of the grid deployment; Bordeaux 0..47.
    let (intra_spec, intra_results) = planned([101, 102]); // two Orsay nodes
    let (inter_spec, inter_results) = planned([0, 101]); // Bordeaux ↔ Orsay
    let (intra_key, inter_key) = (blob_key(&intra_spec), blob_key(&inter_spec));
    let warm = (
        cache.get_blob(&intra_key).and_then(|b| decode_samples(&b)),
        cache.get_blob(&inter_key).and_then(|b| decode_samples(&b)),
    );
    let (intra, inter): (Vec<PingPongSample>, Vec<PingPongSample>) = match warm {
        (Some(a), Some(b)) => (a, b),
        _ => {
            let mut runner = args.sweep(cache);
            runner.add("netpipe/intra", move || intra_spec);
            runner.add("netpipe/inter", move || inter_spec);
            for result in runner.run() {
                result.expect("netpipe run");
            }
            let intra = intra_results.lock().clone();
            let inter = inter_results.lock().clone();
            cache.put_blob(intra_key, encode_samples(&intra));
            cache.put_blob(inter_key, encode_samples(&inter));
            (intra, inter)
        }
    };

    let mut rows = Vec::new();
    for (a, b) in intra.iter().zip(inter.iter()) {
        assert_eq!(a.bytes, b.bytes);
        rows.push(vec![
            a.bytes.to_string(),
            format!("{:.1}", a.one_way_secs * 1e6),
            format!("{:.1}", b.one_way_secs * 1e6),
            format!("{:.1}", a.bandwidth / 1e6),
            format!("{:.1}", b.bandwidth / 1e6),
            format!("{:.1}", a.bandwidth / b.bandwidth),
        ]);
    }
    print_table(
        "NetPIPE (§5.4): intra-cluster vs. inter-cluster ping-pong on the grid",
        &[
            "bytes",
            "lat-intra(µs)",
            "lat-inter(µs)",
            "bw-intra(MB/s)",
            "bw-inter(MB/s)",
            "bw-ratio",
        ],
        &rows,
    );
    let top_intra = intra.last().unwrap();
    let top_inter = inter.last().unwrap();
    let bw_ratio = top_intra.bandwidth / top_inter.bandwidth;
    let small_intra = intra.first().unwrap();
    let small_inter = inter.first().unwrap();
    let lat_ratio = small_inter.one_way_secs / small_intra.one_way_secs;
    println!("\npeak bandwidth ratio intra/inter: {bw_ratio:.1}× (paper: up to 20×)");
    println!(
        "small-message latency ratio inter/intra: {lat_ratio:.0}× (paper: up to two orders of magnitude)"
    );
}
