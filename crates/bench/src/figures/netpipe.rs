//! §5.4 platform characterization — NetPIPE-style ping-pong over the grid:
//! the network is "up to 20 times faster between two nodes of the same
//! cluster than between two nodes of two distinct clusters. Moreover, the
//! latency is up to two orders of magnitude greater between clusters."

use std::sync::Arc;

use ftmpi_core::{JobSpec, Platform, ProtocolChoice};
use ftmpi_mpi::AppFn;
use ftmpi_nas::synth::{netpipe_app, PingPongResults, PingPongSample};
use ftmpi_net::NodeId;
use parking_lot::Mutex;

use crate::{print_table, HarnessArgs, MemoCache};

/// Spec for the ping-pong pair on two explicit nodes of the grid, plus the
/// collector its app closure fills. The job must stay **unkeyed**: a memo
/// hit would skip the run that populates the collector.
fn planned(nodes: [usize; 2]) -> (JobSpec, PingPongResults) {
    let results: PingPongResults = Arc::new(Mutex::new(Vec::new()));
    let app: AppFn = netpipe_app(1 << 22, 4, Arc::clone(&results));
    let mut spec = JobSpec::new(2, ProtocolChoice::Dummy, app);
    spec.platform = Platform::Grid;
    spec.servers = 1;
    // Pin the two ranks to the requested nodes through an explicit
    // placement override once the deployment is built.
    spec.placement_override = Some(vec![NodeId(nodes[0]), NodeId(nodes[1])]);
    (spec, results)
}

/// Run the characterization and render the table.
pub fn run(args: &HarnessArgs, cache: &Arc<MemoCache>) {
    // Orsay is nodes 101..316 of the grid deployment; Bordeaux 0..47.
    let mut runner = args.sweep(cache);
    let (intra_spec, intra_results) = planned([101, 102]); // two Orsay nodes
    let (inter_spec, inter_results) = planned([0, 101]); // Bordeaux ↔ Orsay
    runner.add("netpipe/intra", move || intra_spec);
    runner.add("netpipe/inter", move || inter_spec);
    for result in runner.run() {
        result.expect("netpipe run");
    }
    let intra: Vec<PingPongSample> = intra_results.lock().clone();
    let inter: Vec<PingPongSample> = inter_results.lock().clone();

    let mut rows = Vec::new();
    for (a, b) in intra.iter().zip(inter.iter()) {
        assert_eq!(a.bytes, b.bytes);
        rows.push(vec![
            a.bytes.to_string(),
            format!("{:.1}", a.one_way_secs * 1e6),
            format!("{:.1}", b.one_way_secs * 1e6),
            format!("{:.1}", a.bandwidth / 1e6),
            format!("{:.1}", b.bandwidth / 1e6),
            format!("{:.1}", a.bandwidth / b.bandwidth),
        ]);
    }
    print_table(
        "NetPIPE (§5.4): intra-cluster vs. inter-cluster ping-pong on the grid",
        &[
            "bytes",
            "lat-intra(µs)",
            "lat-inter(µs)",
            "bw-intra(MB/s)",
            "bw-inter(MB/s)",
            "bw-ratio",
        ],
        &rows,
    );
    let top_intra = intra.last().unwrap();
    let top_inter = inter.last().unwrap();
    let bw_ratio = top_intra.bandwidth / top_inter.bandwidth;
    let small_intra = intra.first().unwrap();
    let small_inter = inter.first().unwrap();
    let lat_ratio = small_inter.one_way_secs / small_intra.one_way_secs;
    println!("\npeak bandwidth ratio intra/inter: {bw_ratio:.1}× (paper: up to 20×)");
    println!(
        "small-message latency ratio inter/intra: {lat_ratio:.0}× (paper: up to two orders of magnitude)"
    );
}
