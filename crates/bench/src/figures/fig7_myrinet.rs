//! Fig. 7 — Impact of the number of checkpoint waves over a high-speed
//! network: CG class C on 64 processes, 32-node Myrinet2000 cluster, two
//! checkpoint servers.
//!
//! Series (as in the paper): Pcl over the TCP sock channel (Ethernet
//! emulation on Myrinet), Vcl (TCP + communication daemon), and Pcl over
//! Nemesis/GM (OS-bypass). Paper shapes: both Pcl variants grow linearly
//! with the number of waves; Vcl is insensitive to wave count but starts
//! from a much higher base — CG is latency-bound and every message pays the
//! daemon's copies — so Vcl only wins at very high checkpoint frequencies
//! (≲15 s periods against Nemesis).

use std::sync::Arc;

use ftmpi_core::ProtocolChoice;
use ftmpi_nas::NasClass;
use ftmpi_net::SoftwareStack;
use ftmpi_sim::SimDuration;

use crate::{
    cg_workload, myrinet_spec, print_table, save_records, secs, HarnessArgs, MemoCache, Record,
};

/// Run the figure's sweep and render table + records.
pub fn run(args: &HarnessArgs, cache: &Arc<MemoCache>) {
    let nranks = 64;
    let wl = cg_workload(NasClass::C, nranks);
    // Sweep the timeout to obtain varying wave counts, as the paper did.
    let periods_s: Vec<f64> = if args.fast {
        vec![f64::INFINITY, 15.0, 5.0]
    } else {
        vec![f64::INFINITY, 60.0, 30.0, 15.0, 10.0, 5.0, 3.0]
    };
    let series: &[(&str, ProtocolChoice, SoftwareStack)] = &[
        ("pcl-socket", ProtocolChoice::Pcl, SoftwareStack::TcpSock),
        ("vcl", ProtocolChoice::Vcl, SoftwareStack::VclDaemon),
        ("pcl-nemesis", ProtocolChoice::Pcl, SoftwareStack::NemesisGm),
    ];

    let mut runner = args.sweep(cache);
    let mut plan = Vec::new();
    for &(label, proto, stack) in series {
        for &p in &periods_s {
            let (proto_eff, period) = if p.is_infinite() {
                (ProtocolChoice::Dummy, SimDuration::from_secs(3600))
            } else {
                (proto, SimDuration::from_secs_f64(p))
            };
            let mut spec = myrinet_spec(&wl, nranks, proto_eff, stack, 2, period);
            spec.single_threshold = 32; // 64 procs over 32 dual nodes
            runner.add_spec(format!("fig7/{label}/{p}"), &wl.name, spec);
            plan.push((label, proto_eff, p));
        }
    }

    let mut rows = Vec::new();
    let mut records = Vec::new();
    for ((label, proto_eff, p), result) in plan.into_iter().zip(runner.run()) {
        let res = result.expect(label);
        rows.push(vec![
            label.into(),
            if p.is_infinite() {
                "-".into()
            } else {
                format!("{p:.0}")
            },
            res.waves().to_string(),
            secs(res.completion_secs()),
        ]);
        records.push(Record::from_result(
            "fig7",
            &wl.name,
            proto_eff,
            label,
            "waves",
            res.waves() as f64,
            &res,
        ));
    }
    print_table(
        "Fig.7 — CG.C/64 on Myrinet: completion time vs. checkpoint waves",
        &["series", "period(s)", "waves", "time(s)"],
        &rows,
    );
    save_records(args, "fig7", &records);
}
