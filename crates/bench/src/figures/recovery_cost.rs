//! Extension experiment — recovery cost: the paper validates that both
//! protocols restart from the last committed wave; here we measure what a
//! failure costs end-to-end for each protocol, and how the cost moves with
//! the checkpoint period (the conclusion's observation that the best period
//! tracks the system MTTF).

use std::sync::Arc;

use ftmpi_core::{FailurePlan, ProtocolChoice};
use ftmpi_nas::NasClass;
use ftmpi_sim::{SimDuration, SimTime};

use crate::{
    bt_workload, cluster_spec, print_table, proto_name, save_records, secs, HarnessArgs, MemoCache,
    Record,
};

/// Run the experiment (two phases: baseline fixes the kill time) and
/// render table + records.
pub fn run(args: &HarnessArgs, cache: &Arc<MemoCache>) {
    let nranks = 16;
    let wl = bt_workload(NasClass::A, nranks);

    // Phase 1: failure-free baseline; its completion time decides when the
    // phase-2 kill lands, so it must finish first.
    let mut baseline = args.sweep(cache);
    baseline.add_spec(
        "recovery/baseline",
        &wl.name,
        cluster_spec(
            &wl,
            nranks,
            ProtocolChoice::Dummy,
            2,
            SimDuration::from_secs(30),
        ),
    );
    let base = baseline.run().pop().unwrap().expect("baseline");
    println!(
        "bt.A.16 failure-free baseline: {:.1} s",
        base.completion_secs()
    );

    let kill_at = SimTime::from_nanos((base.completion_secs() * 0.6 * 1e9) as u64);
    let periods: &[f64] = if args.fast {
        &[5.0, 15.0, 60.0]
    } else {
        &[2.0, 5.0, 10.0, 15.0, 30.0, 60.0]
    };

    let mut runner = args.sweep(cache);
    let mut plan = Vec::new();
    for &proto in &[
        ProtocolChoice::Pcl,
        ProtocolChoice::Vcl,
        ProtocolChoice::Dummy,
    ] {
        for &p in periods {
            if proto == ProtocolChoice::Dummy && p != periods[0] {
                continue; // period is meaningless without checkpoints
            }
            let mut spec = cluster_spec(&wl, nranks, proto, 2, SimDuration::from_secs_f64(p));
            spec.failures = FailurePlan::kill_at(kill_at, nranks / 2);
            runner.add_spec(
                format!("recovery/{}/{p}", proto_name(proto)),
                &wl.name,
                spec,
            );
            plan.push((proto, p));
        }
    }

    let mut rows = Vec::new();
    let mut records = Vec::new();
    for ((proto, p), result) in plan.into_iter().zip(runner.run()) {
        let res = result.expect("recovery run");
        let lost = res.completion_secs() - base.completion_secs();
        rows.push(vec![
            proto_name(proto).into(),
            if proto == ProtocolChoice::Dummy {
                "-".into()
            } else {
                format!("{p:.0}")
            },
            res.waves().to_string(),
            secs(res.completion_secs()),
            secs(lost),
        ]);
        records.push(Record::from_result(
            "recovery", &wl.name, proto, "tcp", "period_s", p, &res,
        ));
    }
    print_table(
        "Recovery cost — bt.A.16, one task killed at 60% of the run",
        &["proto", "period(s)", "waves", "time(s)", "cost-vs-base(s)"],
        &rows,
    );
    println!("(dummy = restart from scratch: the whole prefix is lost)");
    save_records(args, "recovery", &records);
}
