//! Fig. 8 — Impact of the size of the system for a varying number of
//! checkpoint waves over the high-speed network: CG class C at 4–64
//! processes, Pcl over Nemesis/GM.
//!
//! Paper shapes: every size's completion time grows linearly with the
//! number of waves with approximately the same slope (the checkpoint cost
//! is not sensitive to the process count up to these sizes), and the 32-
//! and 64-process curves nearly coincide because CG.C is I/O bound and the
//! 64-process deployment shares each node's NIC between two ranks.

use std::sync::Arc;

use ftmpi_core::ProtocolChoice;
use ftmpi_nas::NasClass;
use ftmpi_net::SoftwareStack;
use ftmpi_sim::SimDuration;

use crate::{
    cg_workload, myrinet_spec, print_table, save_records, secs, HarnessArgs, MemoCache, Record,
};

/// Run the figure's sweep and render table + records.
pub fn run(args: &HarnessArgs, cache: &Arc<MemoCache>) {
    let sizes: &[usize] = if args.fast {
        &[4, 16, 32, 64]
    } else {
        &[4, 8, 16, 32, 64]
    };
    let periods_s: Vec<f64> = if args.fast {
        vec![f64::INFINITY, 20.0, 5.0]
    } else {
        vec![f64::INFINITY, 60.0, 20.0, 10.0, 5.0]
    };

    let mut runner = args.sweep(cache);
    let mut plan = Vec::new();
    for &n in sizes {
        let wl = cg_workload(NasClass::C, n);
        for &p in &periods_s {
            let (proto, period) = if p.is_infinite() {
                (ProtocolChoice::Dummy, SimDuration::from_secs(3600))
            } else {
                (ProtocolChoice::Pcl, SimDuration::from_secs_f64(p))
            };
            let mut spec = myrinet_spec(&wl, n, proto, SoftwareStack::NemesisGm, 2, period);
            spec.single_threshold = 32; // 64 procs → two per node
            runner.add_spec(format!("fig8/{n}/{p}"), &wl.name, spec);
            plan.push((wl.name.clone(), n, proto, p));
        }
    }

    let mut rows = Vec::new();
    let mut records = Vec::new();
    for ((wl_name, n, proto, p), result) in plan.into_iter().zip(runner.run()) {
        let res = result.expect("fig8 run");
        rows.push(vec![
            n.to_string(),
            if p.is_infinite() {
                "-".into()
            } else {
                format!("{p:.0}")
            },
            res.waves().to_string(),
            secs(res.completion_secs()),
        ]);
        records.push(Record::from_result(
            "fig8",
            &wl_name,
            proto,
            "pcl-nemesis",
            "waves",
            res.waves() as f64,
            &res,
        ));
    }
    print_table(
        "Fig.8 — CG.C at 4..64 procs over Nemesis/GM: completion vs. waves",
        &["procs", "period(s)", "waves", "time(s)"],
        &rows,
    );
    save_records(args, "fig8", &records);
}
