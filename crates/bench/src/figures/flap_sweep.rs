//! Extension experiment — flapping links: how an unstable (rather than
//! cleanly cut) checkpoint path stresses the retry machinery. The link
//! from rank 0's node to its primary checkpoint server alternates seeded
//! up/down intervals for the middle 60% of the run — a renewal process
//! with a fixed 5 s mean up time and a swept mean down time. Short outages
//! ride under the retry ladder's first rungs and cost almost nothing;
//! outages approaching the ladder's span force reroutes to the other
//! server or surrender the wave. Unlike a partition the watchdog never
//! arms: a flap is transport noise, not a suspected node death, so nobody
//! ever rolls back. The table reports both coordinated protocols across
//! the sweep.

use std::sync::Arc;

use ftmpi_core::ProtocolChoice;
use ftmpi_nas::NasClass;
use ftmpi_net::{LinkFlapSpec, NetFaultPlan, NodeId};
use ftmpi_sim::{SimDuration, SimTime};

use crate::{
    bt_workload, cluster_spec, print_table, proto_name, save_records, secs, HarnessArgs, MemoCache,
    Record,
};

/// Run the experiment (two phases: the failure-free baseline fixes the
/// flap window) and render table + records.
pub fn run(args: &HarnessArgs, cache: &Arc<MemoCache>) {
    let nranks = 16;
    let wl = bt_workload(NasClass::A, nranks);
    let period = SimDuration::from_secs(15);
    let mttf_s = 5.0;

    // Phase 1: failure-free baseline, so the flap window covers the same
    // fraction of every run and the cost column has a reference time.
    let mut baseline = args.sweep(cache);
    baseline.add_spec(
        "flap/baseline",
        &wl.name,
        cluster_spec(&wl, nranks, ProtocolChoice::Dummy, 2, period),
    );
    let base = baseline.run().pop().unwrap().expect("baseline");
    println!(
        "bt.A.16 failure-free baseline: {:.1} s",
        base.completion_secs()
    );

    let start = SimTime::from_nanos((base.completion_secs() * 0.2 * 1e9) as u64);
    let end = SimTime::from_nanos((base.completion_secs() * 0.8 * 1e9) as u64);
    let mttr_s: &[f64] = if args.fast {
        &[0.5, 2.0]
    } else {
        &[0.1, 0.5, 1.0, 2.0, 5.0]
    };

    let mut runner = args.sweep(cache);
    let mut plan = Vec::new();
    for &proto in &[ProtocolChoice::Pcl, ProtocolChoice::Vcl] {
        for &mttr in mttr_s {
            let mut spec = cluster_spec(&wl, nranks, proto, 2, period);
            // Rank 0's push path to the first checkpoint server flaps;
            // ranks occupy nodes 0..nranks, servers come right after.
            spec.net_faults = NetFaultPlan::none().with_link_flap(LinkFlapSpec {
                from: NodeId(0),
                to: NodeId(nranks),
                start,
                end,
                mttf: SimDuration::from_secs_f64(mttf_s),
                mttr: SimDuration::from_secs_f64(mttr),
                seed: 17,
            });
            let transitions = spec.net_faults.transition_count();
            runner.add_spec(
                format!("flap/{}/mttr{mttr}", proto_name(proto)),
                &wl.name,
                spec,
            );
            plan.push((proto, mttr, transitions));
        }
    }

    let mut rows = Vec::new();
    let mut records = Vec::new();
    for ((proto, mttr, transitions), result) in plan.into_iter().zip(runner.run()) {
        let res = result.expect("flap run");
        rows.push(vec![
            proto_name(proto).into(),
            format!("{mttr:.1}"),
            transitions.to_string(),
            res.waves().to_string(),
            res.ft.waves_aborted.to_string(),
            res.rt.restarts.to_string(),
            res.rt.link_retries.to_string(),
            res.ft.retries_exhausted.to_string(),
            res.ft.images_rerouted.to_string(),
            secs(res.completion_secs()),
            secs(res.completion_secs() - base.completion_secs()),
        ]);
        records.push(Record::from_result(
            "flap",
            &wl.name,
            proto,
            "tcp",
            "mttr_secs",
            mttr,
            &res,
        ));
    }
    print_table(
        &format!(
            "Flap sweep — bt.A.16, rank 0's push link flapping over the middle 60% of the run, \
             {mttf_s:.0} s mean up time"
        ),
        &[
            "proto",
            "mttr(s)",
            "transitions",
            "waves",
            "aborted",
            "restarts",
            "retries",
            "exhausted",
            "rerouted",
            "time(s)",
            "cost-vs-base(s)",
        ],
        &rows,
    );
    println!(
        "(a flap never arms the partition watchdog: retries and reroutes absorb it, \
         nobody rolls back)"
    );
    save_records(args, "flap", &records);
}
