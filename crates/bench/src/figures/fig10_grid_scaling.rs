//! Fig. 10 — Impact of large scale on blocking checkpointing: BT class B at
//! a varying number of processes distributed over the grid; completion time
//! without checkpoints, with a 60 s wave period, and the number of waves.
//!
//! Paper shapes: BT.B does not scale on a grid deployment (it is a stress
//! test); the checkpoint-free execution slows at 529 processes (remote,
//! heterogeneous clusters join in), which gives the checkpointed execution
//! time for more waves — and since completion time is proportional to wave
//! count, the gap widens at the largest size. The Vcl implementation cannot
//! run at all at this scale (select() limit), as the paper reports.

use std::sync::Arc;

use ftmpi_core::{JobError, ProtocolChoice};
use ftmpi_nas::NasClass;
use ftmpi_sim::SimDuration;

use crate::{
    bt_workload, grid_spec, print_table, save_records, secs, HarnessArgs, MemoCache, Record,
};

/// Run the figure's sweep and render table + records.
pub fn run(args: &HarnessArgs, cache: &Arc<MemoCache>) {
    let sizes: &[usize] = if args.fast {
        &[100, 256, 400, 529]
    } else {
        &[100, 169, 256, 324, 400, 529]
    };
    // The paper uses 60 s between checkpoints; our grid runs are ≈10×
    // shorter (see fig9_grid400's note), so 10 s lands in the same
    // waves-per-run regime.
    let period = SimDuration::from_secs(10);

    let mut runner = args.sweep(cache);
    // The paper could not run Vcl beyond ~300 processes: demonstrate the
    // same failure mode. Unkeyed — errors are never memoized.
    {
        let wl = bt_workload(NasClass::B, 400);
        let mut spec = grid_spec(&wl, 400, ProtocolChoice::Vcl, period);
        spec.stack = None;
        runner.add("fig10/vcl-limit", move || spec);
    }
    for &n in sizes {
        let wl = bt_workload(NasClass::B, n);
        // At 529 ranks the grid only has room for 2 servers per cluster
        // (544 nodes total).
        let servers = if n > 500 { 2 } else { 4 };
        let mut base_spec = grid_spec(&wl, n, ProtocolChoice::Dummy, period);
        base_spec.servers = servers;
        runner.add_spec(format!("fig10/{n}/nockpt"), &wl.name, base_spec);
        let mut ckpt_spec = grid_spec(&wl, n, ProtocolChoice::Pcl, period);
        ckpt_spec.servers = servers;
        runner.add_spec(format!("fig10/{n}/pcl"), &wl.name, ckpt_spec);
    }

    let mut results = runner.run().into_iter();
    match results.next().unwrap() {
        Err(JobError::VclProcessLimit { requested, limit }) => println!(
            "vcl at {requested} processes: refused (select() multiplexing limit {limit}) — as in §5.4"
        ),
        other => panic!("expected Vcl scale failure, got {other:?}"),
    }

    let mut rows = Vec::new();
    let mut records = Vec::new();
    for &n in sizes {
        let wl = bt_workload(NasClass::B, n);
        let base = results.next().unwrap().expect("baseline");
        let ckpt = results.next().unwrap().expect("pcl");
        rows.push(vec![
            n.to_string(),
            secs(base.completion_secs()),
            secs(ckpt.completion_secs()),
            ckpt.waves().to_string(),
        ]);
        records.push(Record::from_result(
            "fig10",
            &wl.name,
            ProtocolChoice::Dummy,
            "tcp-grid",
            "nprocs",
            n as f64,
            &base,
        ));
        records.push(Record::from_result(
            "fig10",
            &wl.name,
            ProtocolChoice::Pcl,
            "tcp-grid",
            "nprocs",
            n as f64,
            &ckpt,
        ));
    }
    print_table(
        "Fig.10 — BT.B on the grid vs. #processes (Pcl, 10 s period)",
        &["procs", "nockpt(s)", "ckpt10s(s)", "waves"],
        &rows,
    );
    save_records(args, "fig10", &records);
}
