//! Extension experiment from the paper's conclusion: "Evaluating the MTTF
//! of the system can significantly improve performances, since the best
//! value for the checkpoint wave frequency is close to the MTTF."
//!
//! Runs BT under a Poisson failure process at a fixed MTTF and sweeps the
//! checkpoint period: too-frequent waves waste time checkpointing,
//! too-rare waves lose too much work per failure. The sweet spot sits near
//! the MTTF.

use std::sync::Arc;

use ftmpi_core::{FailurePlan, ProtocolChoice};
use ftmpi_nas::NasClass;
use ftmpi_sim::{SimDuration, SimTime};

use crate::{
    bt_workload, cluster_spec, print_table, save_records, secs, HarnessArgs, MemoCache, Record,
};

/// Run the sweep and render table + records.
pub fn run(args: &HarnessArgs, cache: &Arc<MemoCache>) {
    let nranks = 16;
    let wl = bt_workload(NasClass::A, nranks);
    let mttf = SimDuration::from_secs(40);
    let horizon = SimTime::from_nanos(3_600_000_000_000); // plan failures for 1 h
    let seeds: &[u64] = if args.fast {
        &[11, 23]
    } else {
        &[11, 23, 37, 41, 53]
    };
    let periods: &[f64] = if args.fast {
        &[5.0, 20.0, 40.0, 160.0]
    } else {
        &[2.0, 5.0, 10.0, 20.0, 40.0, 80.0, 160.0, 320.0]
    };

    // The fingerprint covers the materialized kill schedule, so distinct
    // seeds memoize as distinct configurations.
    let mut runner = args.sweep(cache);
    for &p in periods {
        for &seed in seeds {
            let mut spec = cluster_spec(
                &wl,
                nranks,
                ProtocolChoice::Pcl,
                2,
                SimDuration::from_secs_f64(p),
            );
            spec.failures = FailurePlan::poisson(mttf, horizon, nranks, seed);
            runner.add_spec(format!("mttf/{p}/{seed}"), &wl.name, spec);
        }
    }

    let mut results = runner.run().into_iter();
    let mut rows = Vec::new();
    let mut records = Vec::new();
    for &p in periods {
        let mut total = 0.0;
        let mut restarts = 0;
        for _ in seeds {
            let res = results.next().unwrap().expect("run");
            total += res.completion_secs();
            restarts += res.rt.restarts;
            records.push(Record::from_result(
                "mttf-period",
                &wl.name,
                ProtocolChoice::Pcl,
                "tcp",
                "period_s",
                p,
                &res,
            ));
        }
        rows.push(vec![
            format!("{p:.0}"),
            secs(total / seeds.len() as f64),
            format!("{:.1}", restarts as f64 / seeds.len() as f64),
        ]);
    }
    print_table(
        &format!(
            "MTTF-matched period — bt.A.16, Pcl, Poisson failures (MTTF {} s, {} seeds)",
            mttf.as_secs_f64(),
            seeds.len()
        ),
        &["period(s)", "mean time(s)", "mean restarts"],
        &rows,
    );
    save_records(args, "mttf_period", &records);
}
