//! Fig. 9 — Impact of checkpoint frequency on blocking checkpointing at
//! large scale: BT class B with 400 processes distributed over the grid,
//! each node using a checkpoint server local to its cluster.
//!
//! Paper shapes (left panel): as the time between checkpoints shrinks, the
//! number of completed waves grows and the completion time grows with it;
//! (right panel, same data re-keyed): even on a grid deployment, execution
//! time is linear in the number of checkpoint waves.
//!
//! Period scaling: the simulated BT.B/400 grid run is ≈10× shorter than
//! the paper's (the WAN pipeline is simulated with batched sweep stages —
//! see `ftmpi_nas::bt::MAX_SIM_STAGES`), so the sweep uses periods ≈10×
//! shorter than the paper's 30–480 s to land in the same waves-per-run
//! regime. The claims under test (waves ∝ frequency, time linear in
//! waves) are scale-free.

use std::sync::Arc;

use ftmpi_core::ProtocolChoice;
use ftmpi_nas::NasClass;
use ftmpi_sim::SimDuration;

use crate::{
    bt_workload, grid_spec, print_table, save_records, secs, HarnessArgs, MemoCache, Record,
};

/// Run the figure's sweep and render table + records.
pub fn run(args: &HarnessArgs, cache: &Arc<MemoCache>) {
    let nranks = 400;
    let wl = bt_workload(NasClass::B, nranks);
    let periods_s: Vec<f64> = if args.fast {
        vec![f64::INFINITY, 15.0, 5.0, 1.0]
    } else {
        vec![f64::INFINITY, 30.0, 15.0, 10.0, 5.0, 3.0, 1.0]
    };

    let mut runner = args.sweep(cache);
    let mut plan = Vec::new();
    for &p in &periods_s {
        let (proto, period) = if p.is_infinite() {
            (ProtocolChoice::Dummy, SimDuration::from_secs(3600))
        } else {
            (ProtocolChoice::Pcl, SimDuration::from_secs_f64(p))
        };
        runner.add_spec(
            format!("fig9/{p}"),
            &wl.name,
            grid_spec(&wl, nranks, proto, period),
        );
        plan.push((proto, p));
    }

    let mut rows = Vec::new();
    let mut records = Vec::new();
    for ((proto, p), result) in plan.into_iter().zip(runner.run()) {
        let res = result.expect("fig9 run");
        rows.push(vec![
            if p.is_infinite() {
                "nockpt".into()
            } else {
                format!("{p:.0}")
            },
            res.waves().to_string(),
            secs(res.completion_secs()),
        ]);
        records.push(Record::from_result(
            "fig9",
            &wl.name,
            proto,
            "tcp-grid",
            "period_s",
            if p.is_infinite() { 0.0 } else { p },
            &res,
        ));
    }
    print_table(
        "Fig.9 — BT.B/400 on the grid (Pcl): period → waves → completion",
        &["period(s)", "waves", "time(s)"],
        &rows,
    );
    println!("(right panel = the same rows keyed by the waves column)");
    save_records(args, "fig9", &records);
}
