//! Thin wrapper over [`ftmpi_bench::figures::fig5_servers`] — see that module for
//! the experiment's documentation.
//!
//! ```sh
//! cargo run --release -p ftmpi-bench --bin fig5_servers [-- --full] [-- --jobs N]
//! ```

use ftmpi_bench::figures;

fn main() {
    figures::run_standalone(figures::fig5_servers::run);
}
