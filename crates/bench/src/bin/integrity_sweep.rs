//! Thin wrapper over [`ftmpi_bench::figures::integrity_sweep`] — see that
//! module for the experiment's documentation.
//!
//! ```sh
//! cargo run --release -p ftmpi-bench --bin integrity_sweep [-- --full] [-- --jobs N]
//! ```

use ftmpi_bench::figures;

fn main() {
    figures::run_standalone(figures::integrity_sweep::run);
}
