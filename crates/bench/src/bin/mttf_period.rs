//! Thin wrapper over [`ftmpi_bench::figures::mttf_period`] — see that module for
//! the experiment's documentation.
//!
//! ```sh
//! cargo run --release -p ftmpi-bench --bin mttf_period [-- --full] [-- --jobs N]
//! ```

use ftmpi_bench::figures;

fn main() {
    figures::run_standalone(figures::mttf_period::run);
}
