//! Thin wrapper over [`ftmpi_bench::figures::fig8_myrinet_scaling`] — see that module for
//! the experiment's documentation.
//!
//! ```sh
//! cargo run --release -p ftmpi-bench --bin fig8_myrinet_scaling [-- --full] [-- --jobs N]
//! ```

use ftmpi_bench::figures;

fn main() {
    figures::run_standalone(figures::fig8_myrinet_scaling::run);
}
