//! Fig. 6 — Execution time of BT class B as a function of the number of
//! processes, for four times between checkpoints (10/30/60/120 s), with 9
//! checkpoint servers; compared to checkpoint-free executions.
//!
//! Paper shapes: without checkpoints both implementations scale similarly;
//! a slowdown appears above 144 processes when two ranks share a node's NIC
//! (the dip at 169); at 10 s periods the blocking protocol degrades badly
//! (it "spends most of the time synchronizing"), while for sensible periods
//! checkpointing overhead does not grow with the number of nodes.
//!
//! ```sh
//! cargo run --release -p ftmpi-bench --bin fig6_scaling [-- --full]
//! ```

use ftmpi_bench::{bt_workload, cluster_spec, print_table, save_records, secs, HarnessArgs, Record};
use ftmpi_core::{run_job, ProtocolChoice};
use ftmpi_nas::NasClass;
use ftmpi_net::SoftwareStack;
use ftmpi_sim::SimDuration;

fn main() {
    let args = HarnessArgs::parse();
    let sizes: Vec<usize> = if args.fast {
        vec![4, 16, 36, 64, 100, 144, 169, 196, 256]
    } else {
        ftmpi_nas::bt::square_sizes(4, 256)
    };
    let periods_s: &[u64] = if args.fast { &[10, 60] } else { &[10, 30, 60, 120] };

    let mut records = Vec::new();
    for &period_s in periods_s {
        let period = SimDuration::from_secs(period_s);
        let mut rows = Vec::new();
        for &n in &sizes {
            let wl = bt_workload(NasClass::B, n);
            let mut cells = vec![n.to_string()];
            // Checkpoint-free baselines of both implementations.
            for (label, proto, stack) in [
                ("mpich2", ProtocolChoice::Dummy, SoftwareStack::TcpSock),
                ("mpichv", ProtocolChoice::Dummy, SoftwareStack::VclDaemon),
            ] {
                let mut spec = cluster_spec(&wl, n, ProtocolChoice::Dummy, 9, period);
                spec.stack = Some(stack);
                let res = run_job(spec).expect("baseline");
                cells.push(secs(res.completion_secs()));
                records.push(Record::from_result(
                    &format!("fig6-{period_s}s"),
                    &wl.name,
                    proto,
                    label,
                    "nprocs",
                    n as f64,
                    &res,
                ));
            }
            // Checkpointing runs.
            for proto in [ProtocolChoice::Pcl, ProtocolChoice::Vcl] {
                let spec = cluster_spec(&wl, n, proto, 9, period);
                match run_job(spec) {
                    Ok(res) => {
                        cells.push(secs(res.completion_secs()));
                        cells.push(res.waves().to_string());
                        records.push(Record::from_result(
                            &format!("fig6-{period_s}s"),
                            &wl.name,
                            proto,
                            if proto == ProtocolChoice::Vcl { "vcl-daemon" } else { "tcp" },
                            "nprocs",
                            n as f64,
                            &res,
                        ));
                    }
                    Err(e) => {
                        // Vcl's select() limit would trip above 300 procs.
                        cells.push(format!("({e:.0?})").chars().take(8).collect());
                        cells.push("-".into());
                    }
                }
            }
            rows.push(cells);
        }
        print_table(
            &format!("Fig.6 — BT.B vs. #processes, {period_s} s between checkpoints, 9 servers"),
            &["procs", "nockpt-mpich2", "nockpt-mpichv", "pcl", "pcl-w", "vcl", "vcl-w"],
            &rows,
        );
    }
    save_records(&args, "fig6", &records);
}
