//! Thin wrapper over [`ftmpi_bench::figures::fig6_scaling`] — see that module for
//! the experiment's documentation.
//!
//! ```sh
//! cargo run --release -p ftmpi-bench --bin fig6_scaling [-- --full] [-- --jobs N]
//! ```

use ftmpi_bench::figures;

fn main() {
    figures::run_standalone(figures::fig6_scaling::run);
}
