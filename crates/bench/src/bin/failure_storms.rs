//! Thin wrapper over [`ftmpi_bench::figures::failure_storms`] — see that module
//! for the experiment's documentation.
//!
//! ```sh
//! cargo run --release -p ftmpi-bench --bin failure_storms [-- --full] [-- --jobs N]
//! ```

use ftmpi_bench::figures;

fn main() {
    figures::run_standalone(figures::failure_storms::run);
}
