//! Thin wrapper over [`ftmpi_bench::figures::fig10_grid_scaling`] — see that module for
//! the experiment's documentation.
//!
//! ```sh
//! cargo run --release -p ftmpi-bench --bin fig10_grid_scaling [-- --full] [-- --jobs N]
//! ```

use ftmpi_bench::figures;

fn main() {
    figures::run_standalone(figures::fig10_grid_scaling::run);
}
