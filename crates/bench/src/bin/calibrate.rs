//! Calibration probe: prints the simulated completion time, wave behaviour
//! and simulation cost of the headline configurations, so the machine rates
//! and FT parameters recorded in EXPERIMENTS.md can be sanity-checked.

use std::time::Instant;

use ftmpi_bench::{bt_workload, cg_workload, cluster_spec, myrinet_spec, print_table, secs};
use ftmpi_core::{run_job, ProtocolChoice};
use ftmpi_nas::NasClass;
use ftmpi_net::SoftwareStack;
use ftmpi_sim::SimDuration;

fn main() {
    let mut rows = Vec::new();
    for (label, spec) in [
        (
            "bt.B.64 nockpt",
            cluster_spec(
                &bt_workload(NasClass::B, 64),
                64,
                ProtocolChoice::Dummy,
                4,
                SimDuration::from_secs(30),
            ),
        ),
        (
            "bt.B.64 pcl/30s/4srv",
            cluster_spec(
                &bt_workload(NasClass::B, 64),
                64,
                ProtocolChoice::Pcl,
                4,
                SimDuration::from_secs(30),
            ),
        ),
        (
            "bt.B.64 vcl/30s/4srv",
            cluster_spec(
                &bt_workload(NasClass::B, 64),
                64,
                ProtocolChoice::Vcl,
                4,
                SimDuration::from_secs(30),
            ),
        ),
        (
            "cg.C.64 nockpt/nemesis",
            myrinet_spec(
                &cg_workload(NasClass::C, 64),
                64,
                ProtocolChoice::Dummy,
                SoftwareStack::NemesisGm,
                2,
                SimDuration::from_secs(30),
            ),
        ),
        (
            "cg.C.64 pcl/nemesis/30s",
            myrinet_spec(
                &cg_workload(NasClass::C, 64),
                64,
                ProtocolChoice::Pcl,
                SoftwareStack::NemesisGm,
                2,
                SimDuration::from_secs(30),
            ),
        ),
        (
            "cg.C.64 vcl/30s",
            myrinet_spec(
                &cg_workload(NasClass::C, 64),
                64,
                ProtocolChoice::Vcl,
                SoftwareStack::VclDaemon,
                2,
                SimDuration::from_secs(30),
            ),
        ),
    ] {
        let wall = Instant::now();
        let res = run_job(spec).expect(label);
        rows.push(vec![
            label.to_string(),
            secs(res.completion_secs()),
            res.waves().to_string(),
            secs(res.ft.mean_wave_duration().map(|d| d.as_secs_f64()).unwrap_or(0.0)),
            res.events.to_string(),
            format!("{:.1}", wall.elapsed().as_secs_f64()),
        ]);
    }
    print_table(
        "calibration",
        &["config", "T(s)", "waves", "wave(s)", "events", "wall(s)"],
        &rows,
    );
}
