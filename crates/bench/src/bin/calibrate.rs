//! Thin wrapper over [`ftmpi_bench::figures::calibrate`] — see that module for
//! the experiment's documentation.
//!
//! ```sh
//! cargo run --release -p ftmpi-bench --bin calibrate [-- --full] [-- --jobs N]
//! ```

use ftmpi_bench::figures;

fn main() {
    figures::run_standalone(figures::calibrate::run);
}
