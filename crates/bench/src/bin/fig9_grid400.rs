//! Thin wrapper over [`ftmpi_bench::figures::fig9_grid400`] — see that module for
//! the experiment's documentation.
//!
//! ```sh
//! cargo run --release -p ftmpi-bench --bin fig9_grid400 [-- --full] [-- --jobs N]
//! ```

use ftmpi_bench::figures;

fn main() {
    figures::run_standalone(figures::fig9_grid400::run);
}
