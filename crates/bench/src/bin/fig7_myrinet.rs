//! Thin wrapper over [`ftmpi_bench::figures::fig7_myrinet`] — see that module for
//! the experiment's documentation.
//!
//! ```sh
//! cargo run --release -p ftmpi-bench --bin fig7_myrinet [-- --full] [-- --jobs N]
//! ```

use ftmpi_bench::figures;

fn main() {
    figures::run_standalone(figures::fig7_myrinet::run);
}
