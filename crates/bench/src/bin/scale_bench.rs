//! Rank-execution scale benchmark: stackless coroutines vs. the legacy
//! threaded backend, and the head-room the coroutine kernel buys.
//!
//! Two campaigns, both under the uncoordinated message-logging protocol
//! (per-rank staggered checkpoints keep the wave machinery O(n)):
//!
//! 1. **Differential ladder** — the same ring job at moderate rank counts
//!    under both backends. Asserts the results are identical (events,
//!    virtual completion, committed waves) and records wall time, OS
//!    threads created, and peak RSS for each backend.
//! 2. **Scale runs** — ring and 2-D halo topologies at ≥10⁵ ranks, which
//!    no thread-per-rank pool can host (10⁵ OS threads). Only the
//!    coroutine backend runs these; the bench asserts the rank-thread
//!    pool granted **zero** leases and that every rank committed at least
//!    two checkpoint cycles.
//!
//! Writes `BENCH_scale.json` at the repository root.
//!
//! ```sh
//! cargo run --release -p ftmpi-bench --bin scale_bench [-- --quick]
//! ```

use std::path::PathBuf;
use std::time::Instant;

use ftmpi_bench::json::{to_string_pretty, JsonObject, JsonValue};
use ftmpi_core::{run_job_with, FtConfig, JobSpec, ProtocolChoice, RunOptions};
use ftmpi_mpi::{app_fn, AppFn};
use ftmpi_sim::{pool_stats, SimDuration};

/// Ring: every iteration each rank shifts `bytes` to its right neighbour.
fn ring_app(iters: usize, bytes: u64, compute: SimDuration) -> AppFn {
    app_fn(move |mut mpi| async move {
        let n = mpi.size();
        let right = (mpi.rank() + 1) % n;
        let left = (mpi.rank() + n - 1) % n;
        for i in 0..iters {
            mpi.shift(right, left, (i % 997) as i32, bytes).await;
            mpi.compute(compute);
        }
        mpi
    })
}

/// 2-D periodic halo exchange on a `side × side` grid: every iteration each
/// rank shifts east then south (each shift also receives from the opposite
/// neighbour, covering all four halo edges).
fn halo_app(side: usize, iters: usize, bytes: u64, compute: SimDuration) -> AppFn {
    app_fn(move |mut mpi| async move {
        let (r, c) = (mpi.rank() / side, mpi.rank() % side);
        let east = r * side + (c + 1) % side;
        let west = r * side + (c + side - 1) % side;
        let south = ((r + 1) % side) * side + c;
        let north = ((r + side - 1) % side) * side + c;
        for i in 0..iters {
            let tag = (i % 499) as i32;
            mpi.shift(east, west, tag, bytes).await;
            mpi.shift(south, north, tag, bytes).await;
            mpi.compute(compute);
        }
        mpi
    })
}

/// Mlog spec sized so the run spans at least two per-rank checkpoint
/// cycles: small images (one chunk each) keep the server traffic linear in
/// the rank count rather than in image bytes.
fn scale_spec(nranks: usize, app: AppFn) -> JobSpec {
    let mut spec = JobSpec::new(nranks, ProtocolChoice::Mlog, app);
    spec.servers = 4;
    spec.ft = FtConfig {
        period: SimDuration::from_secs(2),
        first_wave_delay: SimDuration::from_millis(500),
        image_bytes: 256 << 10,
        ..FtConfig::default()
    };
    spec
}

/// Peak-RSS high-water mark from `/proc/self/status` (kB), if available.
fn peak_rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

/// Reset the RSS high-water mark so each campaign phase reports its own
/// peak. Best-effort: a read-only `/proc` just leaves `VmHWM` cumulative.
fn reset_peak_rss() {
    let _ = std::fs::write("/proc/self/clear_refs", "5");
}

struct Measured {
    wall_s: f64,
    events: u64,
    completion_ns: u64,
    waves: u64,
    threads_created: u64,
    checkouts: u64,
    peak_rss_kb: Option<u64>,
}

/// Run one job under the given backend and collect the scale counters.
fn measure(spec: JobSpec, threaded: bool) -> Measured {
    reset_peak_rss();
    let before = pool_stats();
    let opts = RunOptions {
        threaded: Some(threaded),
        ..RunOptions::default()
    };
    let start = Instant::now();
    let (res, _) = run_job_with(spec, opts).expect("scale run");
    let wall_s = start.elapsed().as_secs_f64();
    let after = pool_stats();
    assert_eq!(res.leftover_unexpected, 0);
    assert_eq!(res.leftover_posted, 0);
    Measured {
        wall_s,
        events: res.events,
        completion_ns: res.completion.as_nanos(),
        waves: res.ft.waves_committed,
        threads_created: after.threads_created - before.threads_created,
        checkouts: after.checkouts - before.checkouts,
        peak_rss_kb: peak_rss_kb(),
    }
}

fn record(topology: &str, backend: &str, nranks: usize, m: &Measured) -> JsonObject {
    let mut rec: JsonObject = vec![
        ("bench", JsonValue::Str("rank_scale".into())),
        ("topology", JsonValue::Str(topology.into())),
        ("backend", JsonValue::Str(backend.into())),
        ("nranks", JsonValue::UInt(nranks as u64)),
        ("events", JsonValue::UInt(m.events)),
        (
            "events_per_sec",
            JsonValue::Float(m.events as f64 / m.wall_s),
        ),
        ("wall_s", JsonValue::Float(m.wall_s)),
        ("completion_ns", JsonValue::UInt(m.completion_ns)),
        ("waves_committed", JsonValue::UInt(m.waves)),
        ("threads_created", JsonValue::UInt(m.threads_created)),
        ("pool_checkouts", JsonValue::UInt(m.checkouts)),
    ];
    if let Some(kb) = m.peak_rss_kb {
        rec.push(("peak_rss_kb", JsonValue::UInt(kb)));
    }
    rec
}

fn print_row(label: &str, m: &Measured) {
    println!(
        "  {label:26} {:9.2}s wall  {:>11} events ({:6.2} M/s)  {:>4} waves  \
         {:>6} threads  peak {} MiB",
        m.wall_s,
        m.events,
        m.events as f64 / m.wall_s / 1e6,
        m.waves,
        m.threads_created,
        m.peak_rss_kb
            .map_or_else(|| "?".into(), |kb| (kb / 1024).to_string()),
    );
}

fn main() {
    let quick = std::env::args().skip(1).any(|a| a == "--quick");
    let mut records: Vec<JsonObject> = Vec::new();

    // Campaign 1: both backends on the same moderate-scale ring jobs.
    let ladder: &[usize] = if quick { &[512] } else { &[512, 2_048] };
    let iters = if quick { 8 } else { 16 };
    println!("differential ladder (ring, Mlog, both backends):");
    for &n in ladder {
        let spec = scale_spec(n, ring_app(iters, 1_024, SimDuration::from_millis(400)));
        let coro = measure(spec.clone(), false);
        let thr = measure(spec, true);
        assert_eq!(coro.events, thr.events, "backends diverged at n={n}");
        assert_eq!(
            coro.completion_ns, thr.completion_ns,
            "time diverged at n={n}"
        );
        assert_eq!(coro.waves, thr.waves, "waves diverged at n={n}");
        println!("n = {n}:");
        print_row("coroutines", &coro);
        print_row("threads (FTMPI_THREADED)", &thr);
        records.push(record("ring", "coroutine", n, &coro));
        records.push(record("ring", "threaded", n, &thr));
    }

    // Campaign 2: coroutine-only scale runs a thread pool cannot host.
    let scale_iters = if quick { 4 } else { 8 };
    let compute = SimDuration::from_millis(1_500);
    println!("\nscale runs (coroutine backend only):");
    let ring_n = 100_000;
    let ring = measure(
        scale_spec(ring_n, ring_app(scale_iters, 1_024, compute)),
        false,
    );
    print_row(&format!("ring n={ring_n}"), &ring);
    assert_eq!(ring.checkouts, 0, "coroutine backend leased pool threads");
    assert!(
        ring.waves >= 2 * ring_n as u64,
        "expected two checkpoint cycles per rank, saw {} waves",
        ring.waves
    );
    records.push(record("ring", "coroutine", ring_n, &ring));

    let side = 320; // 320 × 320 = 102 400 ranks
    let halo = measure(
        scale_spec(
            side * side,
            halo_app(side, scale_iters.min(4), 1_024, compute),
        ),
        false,
    );
    print_row(&format!("halo {side}x{side}"), &halo);
    assert_eq!(halo.checkouts, 0, "coroutine backend leased pool threads");
    records.push(record("halo2d", "coroutine", side * side, &halo));

    let path = PathBuf::from(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_scale.json"
    ));
    std::fs::write(&path, to_string_pretty(&records) + "\n").expect("write BENCH_scale.json");
    println!("[records written to {}]", path.display());
}
