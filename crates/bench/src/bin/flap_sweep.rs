//! Thin wrapper over [`ftmpi_bench::figures::flap_sweep`] — see that
//! module for the experiment's documentation.
//!
//! ```sh
//! cargo run --release -p ftmpi-bench --bin flap_sweep [-- --full] [-- --jobs N]
//! ```

use ftmpi_bench::figures;

fn main() {
    figures::run_standalone(figures::flap_sweep::run);
}
