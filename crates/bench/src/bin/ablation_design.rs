//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! 1. **Marker gating** — Pcl markers handled only when the progress engine
//!    runs (faithful) vs. asynchronously on arrival: how much of the
//!    blocking protocol's cost is the wait for compute phases to end?
//! 2. **Stream chunk size** — the granularity at which checkpoint streams
//!    interleave with MPI traffic.
//! 3. **Fork cost** — the pause every checkpoint inflicts on its rank.
//! 4. **Progress-engine drag** — the blocking implementation's
//!    image-streaming interference (set to zero, Pcl transfers become as
//!    invisible as Vcl's, flattening Fig. 5's Pcl curve).
//!
//! ```sh
//! cargo run --release -p ftmpi-bench --bin ablation_design [-- --full]
//! ```

use ftmpi_bench::{bt_workload, cg_workload, cluster_spec, myrinet_spec, print_table, save_records, secs, HarnessArgs, Record};
use ftmpi_core::{run_job, ProtocolChoice};
use ftmpi_nas::NasClass;
use ftmpi_net::SoftwareStack;
use ftmpi_sim::SimDuration;

fn main() {
    let args = HarnessArgs::parse();
    let mut records = Vec::new();

    // 1. Marker gating (CG is latency-bound: gating matters most there).
    {
        let wl = cg_workload(NasClass::B, 16);
        let mut rows = Vec::new();
        for (label, async_markers) in [("in-library (paper)", false), ("async (ablation)", true)] {
            let mut spec = myrinet_spec(&wl, 16, ProtocolChoice::Pcl, SoftwareStack::NemesisGm, 2, SimDuration::from_secs(5));
            spec.ft.pcl_async_markers = async_markers;
            let res = run_job(spec).expect("run");
            rows.push(vec![label.into(), res.waves().to_string(), secs(res.completion_secs())]);
            records.push(Record::from_result(
                "ablation-markers", &wl.name, ProtocolChoice::Pcl, "nemesis",
                "async", async_markers as u8 as f64, &res,
            ));
        }
        print_table("Ablation 1 — Pcl marker handling (cg.B.16, 5 s period)", &["markers", "waves", "time(s)"], &rows);
    }

    // 2. Chunk size.
    {
        let wl = bt_workload(NasClass::A, 16);
        let mut rows = Vec::new();
        let chunks: &[u64] = if args.fast { &[64 << 10, 256 << 10, 4 << 20] } else { &[16 << 10, 64 << 10, 256 << 10, 1 << 20, 4 << 20, 16 << 20] };
        for &chunk in chunks {
            let mut spec = cluster_spec(&wl, 16, ProtocolChoice::Vcl, 1, SimDuration::from_secs(5));
            spec.ft.chunk_bytes = chunk;
            let res = run_job(spec).expect("run");
            rows.push(vec![format!("{}K", chunk >> 10), res.waves().to_string(), secs(res.completion_secs())]);
            records.push(Record::from_result(
                "ablation-chunk", &wl.name, ProtocolChoice::Vcl, "vcl-daemon",
                "chunk_kib", (chunk >> 10) as f64, &res,
            ));
        }
        print_table("Ablation 2 — checkpoint stream chunk size (bt.A.16, Vcl, 5 s period)", &["chunk", "waves", "time(s)"], &rows);
    }

    // 3. Fork cost.
    {
        let wl = bt_workload(NasClass::A, 16);
        let mut rows = Vec::new();
        for fork_ms in [0u64, 30, 200, 1000] {
            let mut spec = cluster_spec(&wl, 16, ProtocolChoice::Pcl, 2, SimDuration::from_secs(5));
            spec.ft.fork_cost = SimDuration::from_millis(fork_ms);
            let res = run_job(spec).expect("run");
            rows.push(vec![format!("{fork_ms}ms"), res.waves().to_string(), secs(res.completion_secs())]);
            records.push(Record::from_result(
                "ablation-fork", &wl.name, ProtocolChoice::Pcl, "tcp",
                "fork_ms", fork_ms as f64, &res,
            ));
        }
        print_table("Ablation 3 — fork pause (bt.A.16, Pcl, 5 s period)", &["fork", "waves", "time(s)"], &rows);
    }

    // 4. Progress-engine drag.
    {
        let wl = bt_workload(NasClass::B, 64);
        let mut rows = Vec::new();
        for drag_ms in [0u64, 1, 2, 5] {
            let mut spec = cluster_spec(&wl, 64, ProtocolChoice::Pcl, 1, SimDuration::from_secs(30));
            spec.single_threshold = 32;
            spec.ft.blocking_stream_drag = SimDuration::from_millis(drag_ms);
            let res = run_job(spec).expect("run");
            rows.push(vec![format!("{drag_ms}ms"), res.waves().to_string(), secs(res.completion_secs())]);
            records.push(Record::from_result(
                "ablation-drag", &wl.name, ProtocolChoice::Pcl, "tcp",
                "drag_ms", drag_ms as f64, &res,
            ));
        }
        print_table("Ablation 4 — blocking-stream drag (bt.B.64, Pcl, 1 server, 30 s period)", &["drag/op", "waves", "time(s)"], &rows);
    }

    save_records(&args, "ablations", &records);
}
