//! Thin wrapper over [`ftmpi_bench::figures::ablation_design`] — see that module for
//! the experiment's documentation.
//!
//! ```sh
//! cargo run --release -p ftmpi-bench --bin ablation_design [-- --full] [-- --jobs N]
//! ```

use ftmpi_bench::figures;

fn main() {
    figures::run_standalone(figures::ablation_design::run);
}
