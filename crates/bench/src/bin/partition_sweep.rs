//! Thin wrapper over [`ftmpi_bench::figures::partition_sweep`] — see that
//! module for the experiment's documentation.
//!
//! ```sh
//! cargo run --release -p ftmpi-bench --bin partition_sweep [-- --full] [-- --jobs N]
//! ```

use ftmpi_bench::figures;

fn main() {
    figures::run_standalone(figures::partition_sweep::run);
}
