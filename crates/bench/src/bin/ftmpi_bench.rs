//! Harness maintenance CLI (`ftmpi-bench`): operations on the shared
//! experiment state that no single figure binary owns. Today that is the
//! persistent memo cache under `<out>/.cache/`:
//!
//! ```sh
//! # Show what the cache holds.
//! cargo run --release -p ftmpi-bench --bin ftmpi-bench -- cache
//!
//! # Drop invalid/stale entries and orphaned temp files.
//! cargo run --release -p ftmpi-bench --bin ftmpi-bench -- cache --prune
//!
//! # Additionally evict oldest entries until the directory fits a budget.
//! cargo run --release -p ftmpi-bench --bin ftmpi-bench -- cache --prune --max-bytes 10000000
//! ```
//!
//! `--out DIR` relocates the results directory (default `results/`), like
//! the figure binaries.

use std::path::PathBuf;

use ftmpi_bench::sweep::prune_cache;

const USAGE: &str = "usage: ftmpi-bench cache [--prune] [--max-bytes N] [--out DIR]";

struct CacheCmd {
    prune: bool,
    max_bytes: Option<u64>,
    out_dir: PathBuf,
}

fn parse_cache(args: impl IntoIterator<Item = String>) -> Result<CacheCmd, String> {
    let mut cmd = CacheCmd {
        prune: false,
        max_bytes: None,
        out_dir: PathBuf::from("results"),
    };
    let mut args = args.into_iter();
    while let Some(a) = args.next() {
        match a.as_str() {
            "--prune" => cmd.prune = true,
            "--max-bytes" => {
                let n = args.next().ok_or("--max-bytes needs a byte count")?;
                cmd.max_bytes = Some(
                    n.parse::<u64>()
                        .map_err(|_| format!("--max-bytes: not a byte count: {n}"))?,
                );
            }
            "--out" => {
                cmd.out_dir = PathBuf::from(args.next().ok_or("--out needs a directory")?);
            }
            other => return Err(format!("unknown flag: {other}")),
        }
    }
    if cmd.max_bytes.is_some() && !cmd.prune {
        return Err("--max-bytes only makes sense with --prune".into());
    }
    Ok(cmd)
}

/// Directory size and file count, ignoring subdirectories (the cache is
/// flat).
fn dir_stats(dir: &std::path::Path) -> (usize, u64) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return (0, 0);
    };
    entries
        .filter_map(|e| e.ok())
        .filter_map(|e| e.metadata().ok())
        .filter(|m| m.is_file())
        .fold((0, 0), |(n, b), m| (n + 1, b + m.len()))
}

fn main() {
    let mut args = std::env::args().skip(1);
    let sub = args.next();
    match sub.as_deref() {
        Some("cache") => {}
        _ => {
            eprintln!("{USAGE}");
            std::process::exit(2);
        }
    }
    let cmd = match parse_cache(args) {
        Ok(cmd) => cmd,
        Err(msg) => {
            eprintln!("error: {msg}\n{USAGE}");
            std::process::exit(2);
        }
    };
    let dir = cmd.out_dir.join(".cache");
    if !cmd.prune {
        let (files, bytes) = dir_stats(&dir);
        println!("cache {}: {files} files, {bytes} bytes", dir.display());
        return;
    }
    match prune_cache(&dir, cmd.max_bytes) {
        Ok(r) => {
            println!(
                "pruned {}: scanned {} files ({} bytes), removed {}, kept {} ({} bytes)",
                dir.display(),
                r.scanned,
                r.bytes_before,
                r.removed,
                r.kept,
                r.bytes_after
            );
        }
        Err(e) => {
            eprintln!("error: prune {}: {e}", dir.display());
            std::process::exit(1);
        }
    }
}
