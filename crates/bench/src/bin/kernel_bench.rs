//! Kernel event-queue microbenchmark: ladder vs. binary-heap backend across
//! the three event-time densities the kernel actually sees (same-instant
//! marker storms, near-time chunked flows, wide-spread timers), plus one
//! end-to-end anchor: a cold `fig5_servers --fast` wall measurement proving
//! the O(1) queue shows up in figure time, not just in queue ops.
//!
//! The deterministic op driver lives in [`ftmpi_sim::microbench`] (the sim
//! crates forbid wall-clock reads, so the timing lives here); both backends
//! run the identical op sequence and must produce the identical pop-order
//! checksum, so the speedup is measured on provably equivalent work.
//!
//! Writes `BENCH_kernel.json` at the repository root.
//!
//! ```sh
//! cargo run --release -p ftmpi-bench --bin kernel_bench [-- --quick]
//! ```

use std::path::PathBuf;
use std::time::Instant;

use ftmpi_bench::json::{to_string_pretty, JsonObject, JsonValue};
use ftmpi_bench::{figures, HarnessArgs, MemoCache};
use ftmpi_sim::microbench::{drive, Density};

/// Pending-event population held by the driver — the order of magnitude a
/// paper-sized figure run keeps in flight.
const STEADY: usize = 16_384;

/// Tombstone compaction threshold: the queue's default.
const COMPACT: usize = 64;

/// Best-of-`reps` wall seconds for one backend/density, plus the pop-order
/// checksum (cross-checked between backends).
fn time_backend(ladder: bool, density: Density, ops: u64, reps: usize) -> (f64, u64) {
    let mut best = f64::INFINITY;
    let mut checksum = 0u64;
    for _ in 0..reps {
        let start = Instant::now();
        checksum = drive(ladder, density, STEADY, ops, COMPACT);
        best = best.min(start.elapsed().as_secs_f64());
    }
    (best, checksum)
}

/// Cold `fig5_servers --fast` wall seconds: fresh memory-only cache, so
/// every job simulates — the end-to-end number the queue work must not
/// regress.
fn fig5_cold_wall() -> f64 {
    let out = std::env::temp_dir().join(format!("ftmpi-kernel-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&out);
    let args = HarnessArgs {
        fast: true,
        out_dir: out.clone(),
        ..HarnessArgs::default()
    };
    let cache = MemoCache::new();
    let start = Instant::now();
    figures::fig5_servers::run(&args, &cache);
    let wall = start.elapsed().as_secs_f64();
    let _ = std::fs::remove_dir_all(&out);
    wall
}

fn main() {
    let quick = std::env::args().skip(1).any(|a| a == "--quick");
    let (ops, reps) = if quick {
        (200_000u64, 3)
    } else {
        (2_000_000u64, 5)
    };

    println!(
        "kernel queue microbench: {ops} ops/run, steady {STEADY}, best of {reps}{}",
        if quick { " (--quick)" } else { "" }
    );
    let mut records: Vec<JsonObject> = Vec::new();
    for density in Density::ALL {
        let (heap_s, heap_sum) = time_backend(false, density, ops, reps);
        let (ladder_s, ladder_sum) = time_backend(true, density, ops, reps);
        assert_eq!(
            heap_sum,
            ladder_sum,
            "backends diverged on {} — benchmark invalid",
            density.name()
        );
        let heap_mops = ops as f64 / heap_s / 1e6;
        let ladder_mops = ops as f64 / ladder_s / 1e6;
        let speedup = heap_s / ladder_s;
        println!(
            "  {:11}  heap {heap_mops:7.2} Mops/s   ladder {ladder_mops:7.2} Mops/s   speedup {speedup:.2}x",
            density.name()
        );
        records.push(vec![
            ("bench", JsonValue::Str("event_queue".into())),
            ("density", JsonValue::Str(density.name().into())),
            ("ops", JsonValue::UInt(ops)),
            ("steady_events", JsonValue::UInt(STEADY as u64)),
            ("heap_mops_per_s", JsonValue::Float(heap_mops)),
            ("ladder_mops_per_s", JsonValue::Float(ladder_mops)),
            ("speedup", JsonValue::Float(speedup)),
        ]);
    }

    println!("\ncold fig5_servers --fast (fresh cache, ladder backend):");
    let wall = fig5_cold_wall();
    println!("\n  fig5 cold wall: {wall:.2} s");
    records.push(vec![
        ("bench", JsonValue::Str("fig5_cold_fast".into())),
        ("wall_s", JsonValue::Float(wall)),
    ]);

    let path = PathBuf::from(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_kernel.json"
    ));
    std::fs::write(&path, to_string_pretty(&records) + "\n").expect("write BENCH_kernel.json");
    println!("[records written to {}]", path.display());
}
