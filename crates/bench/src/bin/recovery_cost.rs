//! Thin wrapper over [`ftmpi_bench::figures::recovery_cost`] — see that module for
//! the experiment's documentation.
//!
//! ```sh
//! cargo run --release -p ftmpi-bench --bin recovery_cost [-- --full] [-- --jobs N]
//! ```

use ftmpi_bench::{figures, HarnessArgs, MemoCache};

fn main() {
    let args = HarnessArgs::parse();
    figures::recovery_cost::run(&args, &MemoCache::new());
}
