//! Thin wrapper over [`ftmpi_bench::figures::recovery_cost`] — see that module for
//! the experiment's documentation.
//!
//! ```sh
//! cargo run --release -p ftmpi-bench --bin recovery_cost [-- --full] [-- --jobs N]
//! ```

use ftmpi_bench::figures;

fn main() {
    figures::run_standalone(figures::recovery_cost::run);
}
