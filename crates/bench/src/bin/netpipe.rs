//! §5.4 platform characterization — NetPIPE-style ping-pong over the grid:
//! the network is "up to 20 times faster between two nodes of the same
//! cluster than between two nodes of two distinct clusters. Moreover, the
//! latency is up to two orders of magnitude greater between clusters."
//!
//! ```sh
//! cargo run --release -p ftmpi-bench --bin netpipe
//! ```

use std::sync::Arc;

use ftmpi_bench::{print_table, HarnessArgs};
use ftmpi_core::{run_job, JobSpec, Platform, ProtocolChoice};
use ftmpi_mpi::AppFn;
use ftmpi_nas::synth::{netpipe_app, PingPongResults};
use ftmpi_net::NodeId;
use parking_lot::Mutex;

/// Run the ping-pong pair on two explicit nodes of the grid.
fn measure(nodes: [usize; 2]) -> Vec<ftmpi_nas::synth::PingPongSample> {
    let results: PingPongResults = Arc::new(Mutex::new(Vec::new()));
    let app: AppFn = netpipe_app(1 << 22, 4, Arc::clone(&results));
    let mut spec = JobSpec::new(2, ProtocolChoice::Dummy, app);
    spec.platform = Platform::Grid;
    spec.servers = 1;
    // Pin the two ranks to the requested nodes through an explicit
    // placement override once the deployment is built.
    spec.placement_override = Some(vec![NodeId(nodes[0]), NodeId(nodes[1])]);
    run_job(spec).expect("netpipe run");
    let out = results.lock().clone();
    out
}

fn main() {
    let _args = HarnessArgs::parse();
    // Orsay is nodes 101..316 of the grid deployment; Bordeaux 0..47.
    let intra = measure([101, 102]); // two Orsay nodes
    let inter = measure([0, 101]); // Bordeaux ↔ Orsay

    let mut rows = Vec::new();
    for (a, b) in intra.iter().zip(inter.iter()) {
        assert_eq!(a.bytes, b.bytes);
        rows.push(vec![
            a.bytes.to_string(),
            format!("{:.1}", a.one_way_secs * 1e6),
            format!("{:.1}", b.one_way_secs * 1e6),
            format!("{:.1}", a.bandwidth / 1e6),
            format!("{:.1}", b.bandwidth / 1e6),
            format!("{:.1}", a.bandwidth / b.bandwidth),
        ]);
    }
    print_table(
        "NetPIPE (§5.4): intra-cluster vs. inter-cluster ping-pong on the grid",
        &["bytes", "lat-intra(µs)", "lat-inter(µs)", "bw-intra(MB/s)", "bw-inter(MB/s)", "bw-ratio"],
        &rows,
    );
    let top_intra = intra.last().unwrap();
    let top_inter = inter.last().unwrap();
    let bw_ratio = top_intra.bandwidth / top_inter.bandwidth;
    let small_intra = intra.first().unwrap();
    let small_inter = inter.first().unwrap();
    let lat_ratio = small_inter.one_way_secs / small_intra.one_way_secs;
    println!("\npeak bandwidth ratio intra/inter: {bw_ratio:.1}× (paper: up to 20×)");
    println!("small-message latency ratio inter/intra: {lat_ratio:.0}× (paper: up to two orders of magnitude)");
}
