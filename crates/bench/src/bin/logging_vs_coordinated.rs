//! Thin wrapper over [`ftmpi_bench::figures::logging_vs_coordinated`] — see that module for
//! the experiment's documentation.
//!
//! ```sh
//! cargo run --release -p ftmpi-bench --bin logging_vs_coordinated [-- --full] [-- --jobs N]
//! ```

use ftmpi_bench::{figures, HarnessArgs, MemoCache};

fn main() {
    let args = HarnessArgs::parse();
    figures::logging_vs_coordinated::run(&args, &MemoCache::new());
}
