//! Thin wrapper over [`ftmpi_bench::figures::logging_vs_coordinated`] — see that module for
//! the experiment's documentation.
//!
//! ```sh
//! cargo run --release -p ftmpi-bench --bin logging_vs_coordinated [-- --full] [-- --jobs N]
//! ```

use ftmpi_bench::figures;

fn main() {
    figures::run_standalone(figures::logging_vs_coordinated::run);
}
