//! Run every figure/table harness in sequence (fast mode by default).
//!
//! ```sh
//! cargo run --release -p ftmpi-bench --bin all_figures [-- --full]
//! ```

use std::process::Command;

fn main() {
    let pass_full = std::env::args().any(|a| a == "--full");
    let bins = [
        "calibrate",
        "fig5_servers",
        "fig6_scaling",
        "fig7_myrinet",
        "fig8_myrinet_scaling",
        "fig9_grid400",
        "fig10_grid_scaling",
        "netpipe",
        "recovery_cost",
        "ablation_design",
        "mttf_period",
        "logging_vs_coordinated",
        "future_work",
    ];
    let exe = std::env::current_exe().expect("current exe");
    let dir = exe.parent().expect("bin dir");
    for bin in bins {
        println!("\n################ {bin} ################");
        let mut cmd = Command::new(dir.join(bin));
        if pass_full && bin != "calibrate" && bin != "netpipe" {
            cmd.arg("--full");
        }
        let status = cmd.status().unwrap_or_else(|e| panic!("failed to run {bin}: {e}"));
        assert!(status.success(), "{bin} failed with {status}");
    }
    println!("\nAll experiments done; records in results/*.json");
}
