//! Run every figure/table harness in one process (fast mode by default),
//! sharing one `MemoCache` so configurations that recur across figures
//! (e.g. Fig. 7's and Fig. 8's common baselines) are simulated once. The
//! cache is backed by `<out>/.cache/` on disk, so a second run replays
//! every figure without simulating anything (disable with `FTMPI_NO_CACHE`).
//!
//! ```sh
//! cargo run --release -p ftmpi-bench --bin all_figures [-- --full] [-- --jobs N]
//! ```

use ftmpi_bench::{figures, HarnessArgs};

fn main() {
    let args = HarnessArgs::parse();
    let cache = args.cache();
    for (name, run) in figures::ALL {
        println!("\n################ {name} ################");
        run(&args, &cache);
    }
    println!("\nAll experiments done; records in results/*.json");
    println!("{}", cache.summary());
    println!("{}", ftmpi_sim::pool_stats().summary());
}
