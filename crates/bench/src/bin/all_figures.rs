//! Run every figure/table harness in one process (fast mode by default),
//! sharing one `MemoCache` so configurations that recur across figures
//! (e.g. Fig. 7's and Fig. 8's common baselines) are simulated once.
//!
//! ```sh
//! cargo run --release -p ftmpi-bench --bin all_figures [-- --full] [-- --jobs N]
//! ```

use ftmpi_bench::{figures, HarnessArgs, MemoCache};

fn main() {
    let args = HarnessArgs::parse();
    let cache = MemoCache::new();
    for (name, run) in figures::ALL {
        println!("\n################ {name} ################");
        run(&args, &cache);
    }
    let (hits, misses) = cache.stats();
    println!("\nAll experiments done; records in results/*.json");
    println!(
        "memo cache: {} configurations, {hits} hits / {misses} misses",
        cache.len()
    );
}
