//! Thin wrapper over [`ftmpi_bench::figures::future_work`] — see that module for
//! the experiment's documentation.
//!
//! ```sh
//! cargo run --release -p ftmpi-bench --bin future_work [-- --full] [-- --jobs N]
//! ```

use ftmpi_bench::figures;

fn main() {
    figures::run_standalone(figures::future_work::run);
}
