//! Parallel experiment engine.
//!
//! Every figure/table binary reproduces a paper sweep by running dozens of
//! independent jobs — each with its own [`Sim`](ftmpi_sim::Sim), `World`
//! and network model. [`SweepRunner`] executes them on a bounded worker
//! pool and returns results **in input order**, so tables and JSON records
//! are byte-identical to a sequential run regardless of `--jobs`.
//!
//! Because each simulated rank is an OS thread (parked almost always, but
//! holding a stack), admission is weighted by `JobSpec::nranks`: the pool
//! never lets the total number of simulated-process threads exceed
//! [`ThreadBudget::max`] (≈4× the machine's cores), so a sweep of 400-rank
//! grid jobs cannot exhaust memory or the OS thread limit.
//!
//! A [`MemoCache`] keyed by a deterministic spec fingerprint lets callers
//! skip re-simulating configurations shared across figures (`all_figures`
//! runs every harness in one process against one cache).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use ftmpi_core::{run_job, JobError, JobResult, JobSpec, Platform};

/// Deterministic fingerprint of everything that decides a job's result.
///
/// `workload_tag` must uniquely identify the application closure *and its
/// calibration* — the figure harness passes `Workload::name` because its
/// machine rates are fixed per benchmark ([`crate::bt_machine`] /
/// [`crate::cg_machine`]); callers with varying calibrations must fold the
/// machine rate into the tag. Jobs whose app closures have side effects
/// (e.g. NetPIPE sample collectors) must not be memoized at all: a cache
/// hit skips the run that would fill the side channel.
pub fn spec_fingerprint(workload_tag: &str, spec: &JobSpec) -> String {
    use std::fmt::Write as _;
    let mut key = String::with_capacity(256);
    let _ = write!(
        key,
        "wl={workload_tag};n={};proto={:?};stack={:?};servers={};single={};",
        spec.nranks, spec.protocol, spec.stack, spec.servers, spec.single_threshold
    );
    match &spec.platform {
        Platform::Cluster(link) => {
            let _ = write!(
                key,
                "plat=cluster(bw={:?},lat={},disk={:?},lo={:?},lolat={});",
                link.nic_bw,
                link.latency.as_nanos(),
                link.disk_bw,
                link.loopback_bw,
                link.loopback_latency.as_nanos()
            );
        }
        Platform::Grid => key.push_str("plat=grid;"),
    }
    let ft = &spec.ft;
    let _ = write!(
        key,
        "ft=({},{},{},{},{},{},{},{},{},{},{},{});",
        ft.period.as_nanos(),
        ft.first_wave_delay.as_nanos(),
        ft.image_bytes,
        ft.fork_cost.as_nanos(),
        ft.chunk_bytes,
        ft.write_local_disk,
        ft.restart_delay.as_nanos(),
        ft.fetch_failed_from_server,
        ft.vcl_process_limit,
        ft.control_bytes,
        ft.blocking_stream_drag.as_nanos(),
        ft.pcl_async_markers
    );
    let _ = write!(
        key,
        "maxt={:?};",
        spec.max_virtual_time.map(|t| t.as_nanos())
    );
    if let Some(nodes) = &spec.placement_override {
        let _ = write!(
            key,
            "place={:?};",
            nodes.iter().map(|n| n.0).collect::<Vec<_>>()
        );
    }
    if !spec.wave_triggers.is_empty() {
        let _ = write!(
            key,
            "trig={:?};",
            spec.wave_triggers
                .iter()
                .map(|t| t.as_nanos())
                .collect::<Vec<_>>()
        );
    }
    if !spec.failures.is_empty() {
        let _ = write!(
            key,
            "kills={:?};",
            spec.failures
                .kills
                .iter()
                .map(|(t, v)| (t.as_nanos(), *v))
                .collect::<Vec<_>>()
        );
    }
    key
}

/// Cross-sweep memoization of successful job results.
///
/// Only `Ok` results are cached: errors are either instant to recompute
/// (the Vcl process-limit refusal) or indicate model bugs worth re-hitting.
#[derive(Default)]
pub struct MemoCache {
    map: Mutex<HashMap<String, JobResult>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl MemoCache {
    /// A fresh, shareable cache.
    pub fn new() -> Arc<MemoCache> {
        Arc::new(MemoCache::default())
    }

    /// Look up a fingerprint, counting the hit/miss.
    pub fn get(&self, key: &str) -> Option<JobResult> {
        let found = self.map.lock().unwrap().get(key).cloned();
        match found {
            Some(r) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(r)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Store a successful result under its fingerprint.
    pub fn put(&self, key: String, result: JobResult) {
        self.map.lock().unwrap().insert(key, result);
    }

    /// `(hits, misses)` counters since creation.
    pub fn stats(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }

    /// Number of cached configurations.
    pub fn len(&self) -> usize {
        self.map.lock().unwrap().len()
    }

    /// True when nothing has been cached yet.
    pub fn is_empty(&self) -> bool {
        self.map.lock().unwrap().is_empty()
    }
}

/// Weighted admission: bounds the total simulated-process thread count.
struct ThreadBudget {
    max: usize,
    used: Mutex<usize>,
    freed: Condvar,
}

impl ThreadBudget {
    fn new(max: usize) -> ThreadBudget {
        ThreadBudget {
            max: max.max(1),
            used: Mutex::new(0),
            freed: Condvar::new(),
        }
    }

    /// Acquire `weight` permits (clamped to the budget so one oversized job
    /// can still run alone). Blocks until enough simulated threads retired.
    fn acquire(&self, weight: usize) -> usize {
        let weight = weight.clamp(1, self.max);
        let mut used = self.used.lock().unwrap();
        while *used + weight > self.max {
            used = self.freed.wait(used).unwrap();
        }
        *used += weight;
        weight
    }

    fn release(&self, weight: usize) {
        let mut used = self.used.lock().unwrap();
        *used -= weight;
        drop(used);
        self.freed.notify_all();
    }
}

/// One planned job: a display label, an optional memoization key, and the
/// spec-producing closure (built lazily, on the worker that runs it).
struct PlannedJob {
    label: String,
    key: Option<String>,
    build: Box<dyn FnOnce() -> JobSpec + Send>,
}

/// Everything the runner knows about one finished job.
pub struct JobOutcome {
    /// The label given at [`SweepRunner::add`] time.
    pub label: String,
    /// The job's result (or why it could not run).
    pub result: Result<JobResult, JobError>,
    /// Wall-clock the job took on its worker (≈0 for cache hits).
    pub wall: Duration,
    /// Whether the result came from the [`MemoCache`].
    pub cached: bool,
}

/// Parallel sweep executor. See the module docs for the guarantees.
pub struct SweepRunner {
    workers: usize,
    cache: Option<Arc<MemoCache>>,
    jobs: Vec<PlannedJob>,
}

impl SweepRunner {
    /// A runner executing on `workers` worker threads (1 = sequential).
    pub fn new(workers: usize) -> SweepRunner {
        SweepRunner {
            workers: workers.max(1),
            cache: None,
            jobs: Vec::new(),
        }
    }

    /// Attach a memo cache consulted for every keyed job.
    pub fn with_cache(mut self, cache: Arc<MemoCache>) -> SweepRunner {
        self.cache = Some(cache);
        self
    }

    /// Queue a job. Returns its index into the results of [`run`].
    ///
    /// [`run`]: SweepRunner::run
    pub fn add(
        &mut self,
        label: impl Into<String>,
        build: impl FnOnce() -> JobSpec + Send + 'static,
    ) -> usize {
        self.jobs.push(PlannedJob {
            label: label.into(),
            key: None,
            build: Box::new(build),
        });
        self.jobs.len() - 1
    }

    /// Queue an already-built spec under its [`spec_fingerprint`] — the
    /// common case for the figure harnesses, whose specs are cheap to
    /// construct up front (the app closure is shared via `Arc`).
    pub fn add_spec(
        &mut self,
        label: impl Into<String>,
        workload_tag: &str,
        spec: JobSpec,
    ) -> usize {
        let key = spec_fingerprint(workload_tag, &spec);
        self.add_keyed(label, key, move || spec)
    }

    /// Queue a memoizable job: `workload_tag` + the built spec fingerprint
    /// identify the configuration across sweeps (see [`spec_fingerprint`]
    /// for the caller's obligations).
    pub fn add_keyed(
        &mut self,
        label: impl Into<String>,
        key: String,
        build: impl FnOnce() -> JobSpec + Send + 'static,
    ) -> usize {
        self.jobs.push(PlannedJob {
            label: label.into(),
            key: Some(key),
            build: Box::new(build),
        });
        self.jobs.len() - 1
    }

    /// Number of queued jobs.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// True when no jobs are queued.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Execute every queued job; results in input order.
    pub fn run(self) -> Vec<Result<JobResult, JobError>> {
        self.run_detailed().into_iter().map(|o| o.result).collect()
    }

    /// Execute every queued job; outcomes (result + wall + cache flag) in
    /// input order.
    pub fn run_detailed(self) -> Vec<JobOutcome> {
        let n = self.jobs.len();
        if n == 0 {
            return Vec::new();
        }
        let workers = self.workers.min(n);
        let cache = self.cache;
        if workers <= 1 {
            return self
                .jobs
                .into_iter()
                .map(|j| execute(j, cache.as_deref(), None))
                .collect();
        }
        let cores = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(4);
        let budget = ThreadBudget::new(4 * cores);
        let slots: Vec<Mutex<Option<PlannedJob>>> =
            self.jobs.into_iter().map(|j| Mutex::new(Some(j))).collect();
        let outcomes: Vec<Mutex<Option<JobOutcome>>> = (0..n).map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..workers {
                s.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::SeqCst);
                    if i >= n {
                        break;
                    }
                    let job = slots[i].lock().unwrap().take().expect("job claimed twice");
                    let outcome = execute(job, cache.as_deref(), Some(&budget));
                    *outcomes[i].lock().unwrap() = Some(outcome);
                });
            }
        });
        outcomes
            .into_iter()
            .map(|m| {
                m.into_inner()
                    .unwrap()
                    .expect("worker pool exited with a job unfinished")
            })
            .collect()
    }
}

fn execute(
    job: PlannedJob,
    cache: Option<&MemoCache>,
    budget: Option<&ThreadBudget>,
) -> JobOutcome {
    let start = Instant::now();
    let spec = (job.build)();
    if let (Some(cache), Some(key)) = (cache, job.key.as_deref()) {
        if let Some(hit) = cache.get(key) {
            return JobOutcome {
                label: job.label,
                result: Ok(hit),
                wall: start.elapsed(),
                cached: true,
            };
        }
    }
    let permits = budget.map(|b| (b, b.acquire(spec.nranks.max(1))));
    let result = run_job(spec);
    if let Some((b, w)) = permits {
        b.release(w);
    }
    if let (Some(cache), Some(key), Ok(res)) = (cache, job.key, result.as_ref()) {
        cache.put(key, res.clone());
    }
    JobOutcome {
        label: job.label,
        result,
        wall: start.elapsed(),
        cached: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftmpi_core::ProtocolChoice;
    use ftmpi_nas::synth;
    use ftmpi_sim::SimDuration;

    /// Tiny deterministic job: a 4-rank token ring, `laps * 4` messages.
    fn ring_spec(laps: usize) -> JobSpec {
        JobSpec::new(4, ProtocolChoice::Dummy, synth::token_ring(laps, 256))
    }

    /// Everything that must be bit-identical between runs of the same spec.
    fn digest(r: &JobResult) -> (u64, u64, u64, u64) {
        (r.completion.as_nanos(), r.events, r.rt.msgs_sent, r.waves())
    }

    #[test]
    fn results_are_returned_in_input_order() {
        // Mixed-duration jobs on several workers: completion order differs
        // from input order, result order must not.
        let laps = [40usize, 1, 25, 3, 10, 2];
        let mut runner = SweepRunner::new(4);
        for l in laps {
            runner.add(format!("laps{l}"), move || ring_spec(l));
        }
        let outcomes = runner.run_detailed();
        let labels: Vec<&str> = outcomes.iter().map(|o| o.label.as_str()).collect();
        assert_eq!(
            labels,
            ["laps40", "laps1", "laps25", "laps3", "laps10", "laps2"]
        );
        for (o, l) in outcomes.iter().zip(laps) {
            assert_eq!(o.result.as_ref().unwrap().rt.msgs_sent, (l * 4) as u64);
            assert!(!o.cached);
        }
    }

    #[test]
    fn parallel_run_matches_sequential_bit_for_bit() {
        let run_with = |workers: usize| {
            let mut runner = SweepRunner::new(workers);
            for laps in 1..=8usize {
                runner.add(format!("j{laps}"), move || ring_spec(laps * 5));
            }
            runner
                .run()
                .into_iter()
                .map(|r| digest(&r.unwrap()))
                .collect::<Vec<_>>()
        };
        assert_eq!(run_with(1), run_with(8));
    }

    #[test]
    fn memo_cache_returns_identical_metrics_without_resimulating() {
        let cache = MemoCache::new();
        let run = || {
            let mut r = SweepRunner::new(2).with_cache(Arc::clone(&cache));
            r.add_spec("job", "ring12", ring_spec(12));
            r.run_detailed().pop().unwrap()
        };
        let first = run();
        assert!(!first.cached);
        let second = run();
        assert!(second.cached, "identical spec should hit the cache");
        assert_eq!(
            digest(first.result.as_ref().unwrap()),
            digest(second.result.as_ref().unwrap())
        );
        assert_eq!(cache.stats(), (1, 1));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn fingerprint_distinguishes_every_varied_dimension() {
        let base = ring_spec(12);
        let key = |s: &JobSpec| spec_fingerprint("ring12", s);
        assert_eq!(key(&base), key(&ring_spec(12)), "fingerprint is stable");
        assert_ne!(key(&base), spec_fingerprint("ring13", &base));

        let mut other = ring_spec(12);
        other.ft.period = SimDuration::from_millis(123);
        assert_ne!(key(&base), key(&other));

        let mut other = ring_spec(12);
        other.servers = 7;
        assert_ne!(key(&base), key(&other));

        let mut other = ring_spec(12);
        other.platform = Platform::Grid;
        assert_ne!(key(&base), key(&other));

        let mut other = ring_spec(12);
        other.failures = ftmpi_core::FailurePlan::kill_at(ftmpi_sim::SimTime::from_nanos(5), 1);
        assert_ne!(key(&base), key(&other));
    }

    #[test]
    fn thread_budget_clamps_oversized_jobs() {
        let b = ThreadBudget::new(4);
        // A 100-rank job still gets admitted (alone) instead of deadlocking.
        let got = b.acquire(100);
        assert_eq!(got, 4);
        b.release(got);
        assert_eq!(b.acquire(2), 2);
    }
}
