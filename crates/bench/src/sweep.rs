//! Parallel experiment engine.
//!
//! Every figure/table binary reproduces a paper sweep by running dozens of
//! independent jobs — each with its own [`Sim`](ftmpi_sim::Sim), `World`
//! and network model. [`SweepRunner`] executes them on a bounded worker
//! pool and returns results **in input order**, so tables and JSON records
//! are byte-identical to a sequential run regardless of `--jobs`.
//!
//! Because each simulated rank is an OS thread (parked almost always, but
//! holding a stack), admission is gated on the rank-thread pool's *live
//! thread* gauge ([`ftmpi_sim::wait_live_below`]): a job is admitted as
//! soon as the process-wide count of leased simulated-process threads dips
//! below the watermark (default 1024, `FTMPI_THREAD_CAP` to override).
//! Unlike the earlier per-job `nranks` reservation, the gauge counts
//! threads that actually exist, so two large jobs overlap freely — their
//! ranks are mostly parked, not competing for CPU — while a runaway sweep
//! still cannot exhaust memory or the OS thread limit.
//!
//! A [`MemoCache`] keyed by a deterministic spec fingerprint lets callers
//! skip re-simulating configurations shared across figures (`all_figures`
//! runs every harness in one process against one cache). With
//! [`MemoCache::persistent`] the cache gains a disk tier (one file per
//! fingerprint, written atomically) shared across processes: a warm rerun
//! of a figure performs zero simulations.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use ftmpi_core::{run_job, JobError, JobResult, JobSpec, Platform};

/// Deterministic fingerprint of everything that decides a job's result.
///
/// `workload_tag` must uniquely identify the application closure *and its
/// calibration* — the figure harness passes `Workload::name` because its
/// machine rates are fixed per benchmark ([`crate::bt_machine`] /
/// [`crate::cg_machine`]); callers with varying calibrations must fold the
/// machine rate into the tag. Jobs whose app closures have side effects
/// (e.g. NetPIPE sample collectors) must not be memoized at all: a cache
/// hit skips the run that would fill the side channel.
pub fn spec_fingerprint(workload_tag: &str, spec: &JobSpec) -> String {
    use std::fmt::Write as _;
    let mut key = String::with_capacity(256);
    let _ = write!(
        key,
        "wl={workload_tag};n={};proto={:?};stack={:?};servers={};single={};",
        spec.nranks, spec.protocol, spec.stack, spec.servers, spec.single_threshold
    );
    match &spec.platform {
        Platform::Cluster(link) => {
            let _ = write!(
                key,
                "plat=cluster(bw={:?},lat={},disk={:?},lo={:?},lolat={});",
                link.nic_bw,
                link.latency.as_nanos(),
                link.disk_bw,
                link.loopback_bw,
                link.loopback_latency.as_nanos()
            );
        }
        Platform::Grid => key.push_str("plat=grid;"),
    }
    let ft = &spec.ft;
    let _ = write!(
        key,
        "ft=({},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{:?},{:?},{},{});",
        ft.period.as_nanos(),
        ft.first_wave_delay.as_nanos(),
        ft.image_bytes,
        ft.fork_cost.as_nanos(),
        ft.chunk_bytes,
        ft.write_local_disk,
        ft.restart_delay.as_nanos(),
        ft.fetch_failed_from_server,
        ft.vcl_process_limit,
        ft.control_bytes,
        ft.blocking_stream_drag.as_nanos(),
        ft.pcl_async_markers,
        ft.detection_delay.as_nanos(),
        ft.replicas,
        ft.retained_waves,
        ft.link_retry_base.as_nanos(),
        ft.link_retry_cap.as_nanos(),
        ft.link_retry_limit,
        ft.partition_rollback_after.map(|d| d.as_nanos()),
        ft.scrub_interval.map(|d| d.as_nanos()),
        ft.quarantine_threshold,
        ft.torn_writes
    );
    let _ = write!(
        key,
        "maxt={:?};",
        spec.max_virtual_time.map(|t| t.as_nanos())
    );
    if let Some(nodes) = &spec.placement_override {
        let _ = write!(
            key,
            "place={:?};",
            nodes.iter().map(|n| n.0).collect::<Vec<_>>()
        );
    }
    if !spec.wave_triggers.is_empty() {
        let _ = write!(
            key,
            "trig={:?};",
            spec.wave_triggers
                .iter()
                .map(|t| t.as_nanos())
                .collect::<Vec<_>>()
        );
    }
    if !spec.failures.kills.is_empty() {
        let _ = write!(
            key,
            "kills={:?};",
            spec.failures
                .kills
                .iter()
                .map(|(t, v)| (t.as_nanos(), *v))
                .collect::<Vec<_>>()
        );
    }
    if !spec.failures.server_kills.is_empty() {
        let _ = write!(
            key,
            "skills={:?};",
            spec.failures
                .server_kills
                .iter()
                .map(|(t, s)| (t.as_nanos(), *s))
                .collect::<Vec<_>>()
        );
    }
    if !spec.failures.node_kills.is_empty() {
        let _ = write!(
            key,
            "nkills={:?};",
            spec.failures
                .node_kills
                .iter()
                .map(|(t, node)| (t.as_nanos(), *node))
                .collect::<Vec<_>>()
        );
    }
    if !spec.failures.corruptions.is_empty() {
        let _ = write!(
            key,
            "corrupt={:?};",
            spec.failures
                .corruptions
                .iter()
                .map(|e| (e.at.as_nanos(), e.server, e.rank))
                .collect::<Vec<_>>()
        );
    }
    if !spec.failures.silent_corruption.is_empty() {
        let _ = write!(
            key,
            "rot={:?};",
            spec.failures
                .silent_corruption
                .iter()
                .map(|s| {
                    (
                        s.server,
                        s.mtbc.as_nanos(),
                        s.start.as_nanos(),
                        s.end.as_nanos(),
                        s.ranks,
                        s.seed,
                    )
                })
                .collect::<Vec<_>>()
        );
    }
    if !spec.net_faults.is_empty() {
        // Degrade factors are folded in via their exact bit pattern: two
        // schedules differing only in a factor's last mantissa bit must not
        // share a cache entry.
        let _ = write!(
            key,
            "netf=(ev={:?},parts={:?});",
            spec.net_faults
                .link_events
                .iter()
                .map(|e| {
                    let kind = match e.kind {
                        ftmpi_net::LinkFaultKind::Down => (0u8, 0u64),
                        ftmpi_net::LinkFaultKind::Degrade(f) => (1, f.to_bits()),
                        ftmpi_net::LinkFaultKind::Restore => (2, 0),
                    };
                    (e.at.as_nanos(), e.from.0, e.to.0, kind)
                })
                .collect::<Vec<_>>(),
            spec.net_faults
                .partitions
                .iter()
                .map(|p| {
                    (
                        p.name.as_str(),
                        p.nodes.iter().map(|n| n.0).collect::<Vec<_>>(),
                        format!("{}", p.direction),
                        p.start.as_nanos(),
                        p.heal.map(|t| t.as_nanos()),
                        p.tear,
                    )
                })
                .collect::<Vec<_>>()
        );
        // Flaps and server-group partitions fold in separately; both lists
        // are empty for every pre-existing plan, so the extra terms leave
        // old fingerprints untouched.
        if !spec.net_faults.flaps.is_empty() {
            let _ = write!(
                key,
                "flaps={:?};",
                spec.net_faults
                    .flaps
                    .iter()
                    .map(|fl| {
                        (
                            fl.from.0,
                            fl.to.0,
                            fl.start.as_nanos(),
                            fl.end.as_nanos(),
                            fl.mttf.as_nanos(),
                            fl.mttr.as_nanos(),
                            fl.seed,
                        )
                    })
                    .collect::<Vec<_>>()
            );
        }
        if !spec.net_faults.server_partitions.is_empty() {
            let _ = write!(
                key,
                "sparts={:?};",
                spec.net_faults
                    .server_partitions
                    .iter()
                    .map(|p| {
                        (
                            p.name.as_str(),
                            p.servers.clone(),
                            format!("{}", p.direction),
                            p.start.as_nanos(),
                            p.heal.map(|t| t.as_nanos()),
                            p.tear,
                        )
                    })
                    .collect::<Vec<_>>()
            );
        }
    }
    key
}

/// On-disk entry header; bumped whenever [`JobResult::encode`] or the entry
/// layout changes, so stale caches self-invalidate instead of decoding
/// garbage.
const CACHE_VERSION: &str = "ftmpi-cache v5";

/// FNV-1a over `s` starting from `h` (two different bases give the two
/// halves of the 128-bit cache filename, making accidental collisions
/// between distinct fingerprints implausible).
fn fnv1a(s: &str, mut h: u64) -> u64 {
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn key_hash(key: &str) -> String {
    format!(
        "{:016x}{:016x}",
        fnv1a(key, 0xcbf2_9ce4_8422_2325),
        fnv1a(key, 0x8422_2325_cbf2_9ce4)
    )
}

/// Validate one cache-entry file body: version header, namespace kind, full
/// fingerprint (hash collisions are detected, not trusted), and payload
/// length must all match. Shared by the writable disk tier and the
/// read-only seed tier; the caller decides what a failure means (delete
/// vs. ignore).
fn validate_entry(text: &str, kind: &str, key: &str) -> Option<String> {
    let rest = text.strip_prefix(CACHE_VERSION)?.strip_prefix('\n')?;
    let rest = rest.strip_prefix("kind=")?.strip_prefix(kind)?;
    let rest = rest.strip_prefix("\nkey=")?.strip_prefix(key)?;
    let rest = rest.strip_prefix("\nlen=")?;
    let (len_line, payload) = rest.split_once('\n')?;
    let len: usize = len_line.parse().ok()?;
    (payload.len() == len).then(|| payload.to_string())
}

/// Cross-sweep memoization of successful job results.
///
/// Only `Ok` results are cached: errors are either instant to recompute
/// (the Vcl process-limit refusal) or indicate model bugs worth re-hitting.
///
/// Created with [`MemoCache::persistent`], the cache also maintains a disk
/// tier: one file per fingerprint under the given directory, containing a
/// version header, the full fingerprint (hash collisions are detected, not
/// trusted), a payload length, and the integer-encoded result. Files are
/// written atomically (unique temp file + rename) so concurrent processes
/// sharing the directory can only ever observe complete entries; anything
/// that fails validation — truncated, bit-flipped, version-mismatched —
/// is deleted and recomputed, never an error.
///
/// A second namespace of free-form *blobs* ([`MemoCache::get_blob`] /
/// [`MemoCache::put_blob`]) serves sweeps whose product is not a
/// [`JobResult`] — e.g. the NetPIPE harness caches its sample series, which
/// a plain result memo could not capture (the samples live in a side
/// channel filled during the run).
#[derive(Default)]
pub struct MemoCache {
    map: Mutex<HashMap<String, JobResult>>,
    blobs: Mutex<HashMap<String, String>>,
    disk: Option<PathBuf>,
    /// Read-only fallback tier: entries committed to the repository (the
    /// calibration tables), consulted after a disk miss. Never written,
    /// never invalidated on corruption — a stale or damaged seed entry
    /// simply fails validation and the result is recomputed.
    seed: Option<PathBuf>,
    hits: AtomicU64,
    disk_hits: AtomicU64,
    misses: AtomicU64,
}

/// Repository-committed seed entries (see [`MemoCache::persistent`]): the
/// calibration-table results, so a cold checkout prices its first
/// `calibrate` run at decode cost instead of minutes of simulation.
const SEED_CACHE_DIR: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/data/calibration-cache");

impl MemoCache {
    /// A fresh, shareable, memory-only cache.
    pub fn new() -> Arc<MemoCache> {
        Arc::new(MemoCache::default())
    }

    /// A cache backed by `dir` (created on first write), falling back to
    /// the repository's committed calibration seeds on disk misses. Setting
    /// `FTMPI_NO_CACHE` disables both disk tiers, yielding a memory-only
    /// cache — the escape hatch for timing measurements and CI baselines.
    pub fn persistent(dir: impl Into<PathBuf>) -> Arc<MemoCache> {
        MemoCache::persistent_with_seed(dir, PathBuf::from(SEED_CACHE_DIR))
    }

    /// [`MemoCache::persistent`] with an explicit seed directory (tests).
    pub fn persistent_with_seed(
        dir: impl Into<PathBuf>,
        seed: impl Into<PathBuf>,
    ) -> Arc<MemoCache> {
        if std::env::var_os("FTMPI_NO_CACHE").is_some() {
            return MemoCache::new();
        }
        Arc::new(MemoCache {
            disk: Some(dir.into()),
            seed: Some(seed.into()),
            ..MemoCache::default()
        })
    }

    /// The disk tier's directory, if this cache has one.
    pub fn disk_dir(&self) -> Option<&std::path::Path> {
        self.disk.as_deref()
    }

    /// Look up a fingerprint, counting the hit/miss. Memory first, then the
    /// disk tier (a disk hit is promoted into memory).
    pub fn get(&self, key: &str) -> Option<JobResult> {
        if let Some(r) = self.map.lock().unwrap().get(key).cloned() {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Some(r);
        }
        if let Some(payload) = self.load_disk("r", key) {
            match JobResult::decode(&payload) {
                Some(result) => {
                    self.map
                        .lock()
                        .unwrap()
                        .insert(key.to_string(), result.clone());
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    self.disk_hits.fetch_add(1, Ordering::Relaxed);
                    return Some(result);
                }
                None => self.discard_disk("r", key),
            }
        }
        if let Some(payload) = self.load_seed("r", key) {
            if let Some(result) = JobResult::decode(&payload) {
                // Promote into memory and write through to the local disk
                // tier so later processes against the same out dir hit it
                // without touching the seeds.
                self.store_disk("r", key, &payload);
                self.map
                    .lock()
                    .unwrap()
                    .insert(key.to_string(), result.clone());
                self.hits.fetch_add(1, Ordering::Relaxed);
                self.disk_hits.fetch_add(1, Ordering::Relaxed);
                return Some(result);
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        None
    }

    /// Store a successful result under its fingerprint (and on disk, for
    /// persistent caches).
    pub fn put(&self, key: String, result: JobResult) {
        self.store_disk("r", &key, &result.encode());
        self.map.lock().unwrap().insert(key, result);
    }

    /// Look up a free-form blob (see the type docs), counting the hit/miss.
    pub fn get_blob(&self, key: &str) -> Option<String> {
        if let Some(b) = self.blobs.lock().unwrap().get(key).cloned() {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Some(b);
        }
        if let Some(payload) = self
            .load_disk("b", key)
            .or_else(|| self.load_seed("b", key))
        {
            self.blobs
                .lock()
                .unwrap()
                .insert(key.to_string(), payload.clone());
            self.hits.fetch_add(1, Ordering::Relaxed);
            self.disk_hits.fetch_add(1, Ordering::Relaxed);
            return Some(payload);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        None
    }

    /// Store a free-form blob under a fingerprint-style key.
    pub fn put_blob(&self, key: String, payload: String) {
        self.store_disk("b", &key, &payload);
        self.blobs.lock().unwrap().insert(key, payload);
    }

    fn cache_path(&self, kind: &str, key: &str) -> Option<PathBuf> {
        self.disk
            .as_ref()
            .map(|dir| dir.join(format!("{kind}-{}", key_hash(key))))
    }

    /// Read and validate one disk entry; corrupt entries are deleted.
    fn load_disk(&self, kind: &str, key: &str) -> Option<String> {
        let path = self.cache_path(kind, key)?;
        let text = std::fs::read_to_string(&path).ok()?;
        let parsed = validate_entry(&text, kind, key);
        if parsed.is_none() {
            let _ = std::fs::remove_file(&path);
        }
        parsed
    }

    /// Read and validate one committed seed entry. Strictly read-only: a
    /// corrupt, truncated, or version-mismatched seed (e.g. one committed
    /// before an encoding bump) fails validation and is *ignored* — the
    /// result is recomputed — never deleted.
    fn load_seed(&self, kind: &str, key: &str) -> Option<String> {
        let dir = self.seed.as_ref()?;
        let text = std::fs::read_to_string(dir.join(format!("{kind}-{}", key_hash(key)))).ok()?;
        validate_entry(&text, kind, key)
    }

    fn discard_disk(&self, kind: &str, key: &str) {
        if let Some(path) = self.cache_path(kind, key) {
            let _ = std::fs::remove_file(path);
        }
    }

    /// Best-effort atomic write: failures (full disk, bad permissions) just
    /// mean the entry stays memory-only.
    fn store_disk(&self, kind: &str, key: &str, payload: &str) {
        let Some(dir) = self.disk.as_ref() else {
            return;
        };
        let Some(path) = self.cache_path(kind, key) else {
            return;
        };
        if std::fs::create_dir_all(dir).is_err() {
            return;
        }
        static TMP_SEQ: AtomicU64 = AtomicU64::new(0);
        let tmp = dir.join(format!(
            ".tmp-{}-{}",
            std::process::id(),
            TMP_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let entry = format!(
            "{CACHE_VERSION}\nkind={kind}\nkey={key}\nlen={}\n{payload}",
            payload.len()
        );
        if std::fs::write(&tmp, entry).is_ok() {
            let _ = std::fs::rename(&tmp, &path);
        } else {
            let _ = std::fs::remove_file(&tmp);
        }
    }

    /// `(hits, misses)` counters since creation (blob lookups included;
    /// disk hits count as hits).
    pub fn stats(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }

    /// Hits served from the disk tier.
    pub fn disk_hits(&self) -> u64 {
        self.disk_hits.load(Ordering::Relaxed)
    }

    /// Number of cached configurations in memory (blobs not counted).
    pub fn len(&self) -> usize {
        self.map.lock().unwrap().len()
    }

    /// True when nothing has been cached yet.
    pub fn is_empty(&self) -> bool {
        self.map.lock().unwrap().is_empty()
    }

    /// One-line human summary, printed by the bench binaries (and grepped
    /// by the CI cache round-trip check).
    pub fn summary(&self) -> String {
        let (hits, misses) = self.stats();
        format!(
            "memo cache: {} configurations, {hits} hits ({} from disk) / {misses} misses",
            self.len(),
            self.disk_hits()
        )
    }
}

/// What one [`prune_cache`] pass did.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct PruneReport {
    /// Files examined (cache entries, temp leftovers, strangers).
    pub scanned: usize,
    /// Valid entries still present afterwards.
    pub kept: usize,
    /// Files deleted (invalid, stale-versioned, orphaned temps, or evicted
    /// for the byte budget).
    pub removed: usize,
    /// Total size of the scanned files.
    pub bytes_before: u64,
    /// Total size of the kept entries.
    pub bytes_after: u64,
}

/// Prune a persistent cache directory: delete leftover temp files and every
/// entry that fails validation (wrong version header, filename not matching
/// its own `key=` hash, truncated payload), then — if `max_bytes` is given —
/// evict oldest-modified valid entries until the directory fits the budget.
///
/// Files not recognizably ours (no `r-`/`b-`/` .tmp-` prefix) are counted
/// in `scanned` but never touched. A missing directory is an empty, already
/// pruned cache, not an error.
pub fn prune_cache(dir: &std::path::Path, max_bytes: Option<u64>) -> std::io::Result<PruneReport> {
    let mut report = PruneReport::default();
    let entries = match std::fs::read_dir(dir) {
        Ok(it) => it,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(report),
        Err(e) => return Err(e),
    };
    // (mtime, path, size) of valid entries, for oldest-first eviction.
    let mut valid: Vec<(std::time::SystemTime, PathBuf, u64)> = Vec::new();
    for entry in entries.filter_map(|e| e.ok()) {
        let path = entry.path();
        let Ok(meta) = entry.metadata() else { continue };
        if !meta.is_file() {
            continue;
        }
        report.scanned += 1;
        report.bytes_before += meta.len();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if name.starts_with(".tmp-") {
            // A crashed writer's leftover: atomic renames never leave these.
            if std::fs::remove_file(&path).is_ok() {
                report.removed += 1;
            }
            continue;
        }
        let Some(kind) = name
            .starts_with("r-")
            .then_some("r")
            .or_else(|| name.starts_with("b-").then_some("b"))
        else {
            continue; // not ours; leave it alone (but it was scanned)
        };
        let ok = std::fs::read_to_string(&path).ok().is_some_and(|text| {
            (|| {
                let rest = text.strip_prefix(CACHE_VERSION)?.strip_prefix('\n')?;
                let rest = rest.strip_prefix("kind=")?.strip_prefix(kind)?;
                let rest = rest.strip_prefix("\nkey=")?;
                let (key, rest) = rest.split_once("\nlen=")?;
                let (len_line, payload) = rest.split_once('\n')?;
                let len: usize = len_line.parse().ok()?;
                (payload.len() == len && name == format!("{kind}-{}", key_hash(key))).then_some(())
            })()
            .is_some()
        });
        if ok {
            let mtime = meta.modified().unwrap_or(std::time::SystemTime::UNIX_EPOCH);
            valid.push((mtime, path, meta.len()));
        } else if std::fs::remove_file(&path).is_ok() {
            report.removed += 1;
        }
    }
    // Budget eviction: oldest first; ties broken by path for determinism.
    valid.sort_by(|a, b| a.0.cmp(&b.0).then_with(|| a.1.cmp(&b.1)));
    let mut total: u64 = valid.iter().map(|(_, _, s)| s).sum();
    if let Some(budget) = max_bytes {
        while total > budget {
            let Some((_, path, size)) = valid.first().cloned() else {
                break;
            };
            valid.remove(0);
            if std::fs::remove_file(&path).is_ok() {
                report.removed += 1;
            }
            total -= size;
        }
    }
    report.kept = valid.len();
    report.bytes_after = total;
    Ok(report)
}

/// Default watermark for [`ftmpi_sim::wait_live_below`] admission, or the
/// `FTMPI_THREAD_CAP` override. 1024 parked rank threads at 256 KiB of
/// stack is a modest footprint; the cap exists to stop a runaway sweep, not
/// to serialize normal ones.
fn default_thread_cap() -> usize {
    std::env::var("FTMPI_THREAD_CAP")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1024)
}

/// One planned job: a display label, an optional memoization key, and the
/// spec-producing closure (built lazily, on the worker that runs it).
struct PlannedJob {
    label: String,
    key: Option<String>,
    build: Box<dyn FnOnce() -> JobSpec + Send>,
}

/// Everything the runner knows about one finished job.
pub struct JobOutcome {
    /// The label given at [`SweepRunner::add`] time.
    pub label: String,
    /// The job's result (or why it could not run).
    pub result: Result<JobResult, JobError>,
    /// Wall-clock the job took on its worker (≈0 for cache hits).
    pub wall: Duration,
    /// Whether the result came from the [`MemoCache`].
    pub cached: bool,
}

/// Parallel sweep executor. See the module docs for the guarantees.
pub struct SweepRunner {
    workers: usize,
    cache: Option<Arc<MemoCache>>,
    thread_cap: usize,
    jobs: Vec<PlannedJob>,
}

impl SweepRunner {
    /// A runner executing on `workers` worker threads (1 = sequential).
    pub fn new(workers: usize) -> SweepRunner {
        SweepRunner {
            workers: workers.max(1),
            cache: None,
            thread_cap: default_thread_cap(),
            jobs: Vec::new(),
        }
    }

    /// Attach a memo cache consulted for every keyed job.
    pub fn with_cache(mut self, cache: Arc<MemoCache>) -> SweepRunner {
        self.cache = Some(cache);
        self
    }

    /// Override the live-thread admission watermark (tests, tuning).
    pub fn with_thread_cap(mut self, cap: usize) -> SweepRunner {
        self.thread_cap = cap.max(1);
        self
    }

    /// Queue a job. Returns its index into the results of [`run`].
    ///
    /// [`run`]: SweepRunner::run
    pub fn add(
        &mut self,
        label: impl Into<String>,
        build: impl FnOnce() -> JobSpec + Send + 'static,
    ) -> usize {
        self.jobs.push(PlannedJob {
            label: label.into(),
            key: None,
            build: Box::new(build),
        });
        self.jobs.len() - 1
    }

    /// Queue an already-built spec under its [`spec_fingerprint`] — the
    /// common case for the figure harnesses, whose specs are cheap to
    /// construct up front (the app closure is shared via `Arc`).
    pub fn add_spec(
        &mut self,
        label: impl Into<String>,
        workload_tag: &str,
        spec: JobSpec,
    ) -> usize {
        let key = spec_fingerprint(workload_tag, &spec);
        self.add_keyed(label, key, move || spec)
    }

    /// Queue a memoizable job: `workload_tag` + the built spec fingerprint
    /// identify the configuration across sweeps (see [`spec_fingerprint`]
    /// for the caller's obligations).
    pub fn add_keyed(
        &mut self,
        label: impl Into<String>,
        key: String,
        build: impl FnOnce() -> JobSpec + Send + 'static,
    ) -> usize {
        self.jobs.push(PlannedJob {
            label: label.into(),
            key: Some(key),
            build: Box::new(build),
        });
        self.jobs.len() - 1
    }

    /// Number of queued jobs.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// True when no jobs are queued.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Execute every queued job; results in input order.
    pub fn run(self) -> Vec<Result<JobResult, JobError>> {
        self.run_detailed().into_iter().map(|o| o.result).collect()
    }

    /// Execute every queued job; outcomes (result + wall + cache flag) in
    /// input order.
    pub fn run_detailed(self) -> Vec<JobOutcome> {
        let n = self.jobs.len();
        if n == 0 {
            return Vec::new();
        }
        let workers = self.workers.min(n);
        let cache = self.cache;
        if workers <= 1 {
            return self
                .jobs
                .into_iter()
                .map(|j| execute(j, cache.as_deref(), None))
                .collect();
        }
        let cap = self.thread_cap;
        let slots: Vec<Mutex<Option<PlannedJob>>> =
            self.jobs.into_iter().map(|j| Mutex::new(Some(j))).collect();
        let outcomes: Vec<Mutex<Option<JobOutcome>>> = (0..n).map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..workers {
                s.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::SeqCst);
                    if i >= n {
                        break;
                    }
                    let job = slots[i].lock().unwrap().take().expect("job claimed twice");
                    let outcome = execute(job, cache.as_deref(), Some(cap));
                    *outcomes[i].lock().unwrap() = Some(outcome);
                });
            }
        });
        outcomes
            .into_iter()
            .map(|m| {
                m.into_inner()
                    .unwrap()
                    .expect("worker pool exited with a job unfinished")
            })
            .collect()
    }
}

fn execute(job: PlannedJob, cache: Option<&MemoCache>, thread_cap: Option<usize>) -> JobOutcome {
    let start = Instant::now();
    let spec = (job.build)();
    if let (Some(cache), Some(key)) = (cache, job.key.as_deref()) {
        if let Some(hit) = cache.get(key) {
            return JobOutcome {
                label: job.label,
                result: Ok(hit),
                wall: start.elapsed(),
                cached: true,
            };
        }
    }
    // Live-thread admission: wait for the pool's gauge to dip below the
    // watermark before the run spawns its ranks. No release step — leased
    // threads retire themselves as the job's processes exit.
    if let Some(cap) = thread_cap {
        ftmpi_sim::wait_live_below(cap);
    }
    let result = run_job(spec);
    if let (Some(cache), Some(key), Ok(res)) = (cache, job.key, result.as_ref()) {
        cache.put(key, res.clone());
    }
    JobOutcome {
        label: job.label,
        result,
        wall: start.elapsed(),
        cached: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftmpi_core::ProtocolChoice;
    use ftmpi_nas::synth;
    use ftmpi_sim::SimDuration;

    /// Tiny deterministic job: a 4-rank token ring, `laps * 4` messages.
    fn ring_spec(laps: usize) -> JobSpec {
        JobSpec::new(4, ProtocolChoice::Dummy, synth::token_ring(laps, 256))
    }

    /// Everything that must be bit-identical between runs of the same spec.
    fn digest(r: &JobResult) -> (u64, u64, u64, u64) {
        (r.completion.as_nanos(), r.events, r.rt.msgs_sent, r.waves())
    }

    #[test]
    fn results_are_returned_in_input_order() {
        // Mixed-duration jobs on several workers: completion order differs
        // from input order, result order must not.
        let laps = [40usize, 1, 25, 3, 10, 2];
        let mut runner = SweepRunner::new(4);
        for l in laps {
            runner.add(format!("laps{l}"), move || ring_spec(l));
        }
        let outcomes = runner.run_detailed();
        let labels: Vec<&str> = outcomes.iter().map(|o| o.label.as_str()).collect();
        assert_eq!(
            labels,
            ["laps40", "laps1", "laps25", "laps3", "laps10", "laps2"]
        );
        for (o, l) in outcomes.iter().zip(laps) {
            assert_eq!(o.result.as_ref().unwrap().rt.msgs_sent, (l * 4) as u64);
            assert!(!o.cached);
        }
    }

    #[test]
    fn parallel_run_matches_sequential_bit_for_bit() {
        let run_with = |workers: usize| {
            let mut runner = SweepRunner::new(workers);
            for laps in 1..=8usize {
                runner.add(format!("j{laps}"), move || ring_spec(laps * 5));
            }
            runner
                .run()
                .into_iter()
                .map(|r| digest(&r.unwrap()))
                .collect::<Vec<_>>()
        };
        assert_eq!(run_with(1), run_with(8));
    }

    #[test]
    fn memo_cache_returns_identical_metrics_without_resimulating() {
        let cache = MemoCache::new();
        let run = || {
            let mut r = SweepRunner::new(2).with_cache(Arc::clone(&cache));
            r.add_spec("job", "ring12", ring_spec(12));
            r.run_detailed().pop().unwrap()
        };
        let first = run();
        assert!(!first.cached);
        let second = run();
        assert!(second.cached, "identical spec should hit the cache");
        assert_eq!(
            digest(first.result.as_ref().unwrap()),
            digest(second.result.as_ref().unwrap())
        );
        assert_eq!(cache.stats(), (1, 1));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn fingerprint_distinguishes_every_varied_dimension() {
        let base = ring_spec(12);
        let key = |s: &JobSpec| spec_fingerprint("ring12", s);
        assert_eq!(key(&base), key(&ring_spec(12)), "fingerprint is stable");
        assert_ne!(key(&base), spec_fingerprint("ring13", &base));

        let mut other = ring_spec(12);
        other.ft.period = SimDuration::from_millis(123);
        assert_ne!(key(&base), key(&other));

        let mut other = ring_spec(12);
        other.servers = 7;
        assert_ne!(key(&base), key(&other));

        let mut other = ring_spec(12);
        other.platform = Platform::Grid;
        assert_ne!(key(&base), key(&other));

        let mut other = ring_spec(12);
        other.failures = ftmpi_core::FailurePlan::kill_at(ftmpi_sim::SimTime::from_nanos(5), 1);
        assert_ne!(key(&base), key(&other));

        let mut other = ring_spec(12);
        other.failures =
            ftmpi_core::FailurePlan::server_kill_at(ftmpi_sim::SimTime::from_nanos(5), 0);
        assert_ne!(key(&base), key(&other));

        let mut other = ring_spec(12);
        other.ft.detection_delay = SimDuration::from_millis(200);
        assert_ne!(key(&base), key(&other));

        let mut other = ring_spec(12);
        other.ft.replicas = 2;
        assert_ne!(key(&base), key(&other));

        let mut other = ring_spec(12);
        other.ft.retained_waves = 3;
        assert_ne!(key(&base), key(&other));

        let mut other = ring_spec(12);
        other.ft.link_retry_limit = 3;
        assert_ne!(key(&base), key(&other));

        let mut other = ring_spec(12);
        other.ft = other.ft.with_partition_rollback_after_secs(4.0);
        assert_ne!(key(&base), key(&other));

        let mut other = ring_spec(12);
        other.failures =
            ftmpi_core::FailurePlan::node_kill_at(ftmpi_sim::SimTime::from_nanos(5), 2);
        assert_ne!(key(&base), key(&other));

        use ftmpi_net::{NetFaultPlan, NodeId};
        use ftmpi_sim::SimTime;
        let mut other = ring_spec(12);
        other.net_faults =
            NetFaultPlan::none().with_link_down(SimTime::from_nanos(5), NodeId(0), NodeId(1));
        assert_ne!(key(&base), key(&other));

        let mut degraded = ring_spec(12);
        degraded.net_faults = NetFaultPlan::none().with_link_degrade(
            SimTime::from_nanos(5),
            NodeId(0),
            NodeId(1),
            2.0,
        );
        assert_ne!(key(&base), key(&degraded));
        let mut degraded_other = ring_spec(12);
        degraded_other.net_faults = NetFaultPlan::none().with_link_degrade(
            SimTime::from_nanos(5),
            NodeId(0),
            NodeId(1),
            f64::from_bits(2.0f64.to_bits() + 1),
        );
        // A one-ulp factor difference is a different configuration.
        assert_ne!(key(&degraded), key(&degraded_other));

        let mut other = ring_spec(12);
        other.net_faults =
            NetFaultPlan::none().with_partition("p", vec![NodeId(0)], SimTime::from_nanos(5), None);
        assert_ne!(key(&base), key(&other));
        let mut healed = ring_spec(12);
        healed.net_faults = NetFaultPlan::none().with_partition(
            "p",
            vec![NodeId(0)],
            SimTime::from_nanos(5),
            Some(SimTime::from_nanos(9)),
        );
        assert_ne!(key(&other), key(&healed));
    }

    #[test]
    fn live_thread_admission_never_blocks_oversized_jobs() {
        // The watermark is far below one job's rank count: the gauge-based
        // gate admits each job as soon as occupancy dips below the cap
        // instead of deadlocking on an unsatisfiable reservation.
        let results = {
            let mut runner = SweepRunner::new(2).with_thread_cap(1);
            for laps in [3usize, 5, 7, 9] {
                runner.add(format!("laps{laps}"), move || ring_spec(laps));
            }
            runner.run()
        };
        for (r, laps) in results.iter().zip([3u64, 5, 7, 9]) {
            assert_eq!(r.as_ref().unwrap().rt.msgs_sent, laps * 4);
        }
    }

    /// A unique scratch dir for one test (no wallclock involved).
    struct ScratchDir(PathBuf);

    impl ScratchDir {
        fn new(tag: &str) -> ScratchDir {
            let dir =
                std::env::temp_dir().join(format!("ftmpi-sweep-test-{}-{tag}", std::process::id()));
            let _ = std::fs::remove_dir_all(&dir);
            ScratchDir(dir)
        }
    }

    impl Drop for ScratchDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    #[test]
    fn persistent_cache_survives_process_boundaries() {
        let scratch = ScratchDir::new("persist");
        let key = spec_fingerprint("ring12", &ring_spec(12));
        // "Process one": simulate and store.
        let first = {
            let cache = MemoCache::persistent(&scratch.0);
            let mut r = SweepRunner::new(1).with_cache(Arc::clone(&cache));
            r.add_spec("job", "ring12", ring_spec(12));
            let out = r.run_detailed().pop().unwrap();
            assert!(!out.cached);
            assert_eq!(cache.disk_hits(), 0);
            out.result.unwrap()
        };
        // "Process two": a fresh cache instance over the same directory must
        // serve the result from disk, bit-for-bit, without simulating.
        let cache = MemoCache::persistent(&scratch.0);
        assert!(cache.is_empty(), "fresh instance starts with empty memory");
        let warm = cache.get(&key).expect("disk tier should hit");
        assert_eq!(cache.disk_hits(), 1);
        assert_eq!(digest(&warm), digest(&first));
        assert_eq!(warm.encode(), first.encode());
    }

    #[test]
    fn blob_tier_roundtrips_across_instances() {
        let scratch = ScratchDir::new("blob");
        let payload = "1,2,3\n4,5,6\n".to_string();
        MemoCache::persistent(&scratch.0).put_blob("np/k".into(), payload.clone());
        let cache = MemoCache::persistent(&scratch.0);
        assert_eq!(cache.get_blob("np/k").as_deref(), Some(payload.as_str()));
        assert_eq!(cache.disk_hits(), 1);
    }

    #[test]
    fn prune_removes_garbage_and_keeps_valid_entries() {
        let scratch = ScratchDir::new("prune");
        // Two valid entries: one result, one blob.
        {
            let cache = MemoCache::persistent(&scratch.0);
            let mut r = SweepRunner::new(1).with_cache(Arc::clone(&cache));
            r.add_spec("job", "ring12", ring_spec(12));
            r.run_detailed().pop().unwrap().result.unwrap();
            cache.put_blob("np/k".into(), "1,2,3\n".into());
        }
        // Garbage: an orphaned temp file, a corrupt entry, a stranger file.
        std::fs::write(scratch.0.join(".tmp-999-0"), "half-written").unwrap();
        std::fs::write(
            scratch.0.join(format!("r-{}", key_hash("bogus"))),
            "not a cache entry",
        )
        .unwrap();
        std::fs::write(scratch.0.join("README"), "hands off").unwrap();

        let report = prune_cache(&scratch.0, None).unwrap();
        assert_eq!(report.scanned, 5);
        assert_eq!(report.removed, 2, "temp + corrupt go, stranger stays");
        assert_eq!(report.kept, 2);
        assert!(scratch.0.join("README").exists());
        // The surviving entries still decode.
        let cache = MemoCache::persistent(&scratch.0);
        let key = spec_fingerprint("ring12", &ring_spec(12));
        assert!(cache.get(&key).is_some());
        assert_eq!(cache.get_blob("np/k").as_deref(), Some("1,2,3\n"));
    }

    #[test]
    fn prune_budget_evicts_down_to_max_bytes() {
        let scratch = ScratchDir::new("prune-budget");
        let cache = MemoCache::persistent(&scratch.0);
        for i in 0..4u64 {
            cache.put_blob(format!("blob/{i}"), "x".repeat(64));
        }
        let full = prune_cache(&scratch.0, None).unwrap();
        assert_eq!(full.kept, 4);
        let budget = full.bytes_after / 2;
        let report = prune_cache(&scratch.0, Some(budget)).unwrap();
        assert!(report.bytes_after <= budget);
        assert!(report.kept < 4 && report.removed > 0);
        // A zero budget empties the cache; a missing dir is fine.
        let report = prune_cache(&scratch.0, Some(0)).unwrap();
        assert_eq!(report.kept, 0);
        assert_eq!(report.bytes_after, 0);
        let report = prune_cache(&scratch.0.join("nonexistent"), Some(0)).unwrap();
        assert_eq!(report, PruneReport::default());
    }

    #[test]
    fn corrupt_cache_entries_are_discarded_and_recomputed() {
        let scratch = ScratchDir::new("corrupt");
        let key = spec_fingerprint("ring12", &ring_spec(12));
        {
            let cache = MemoCache::persistent(&scratch.0);
            let mut r = SweepRunner::new(1).with_cache(Arc::clone(&cache));
            r.add_spec("job", "ring12", ring_spec(12));
            r.run_detailed().pop().unwrap().result.unwrap();
        }
        let entry = std::fs::read_dir(&scratch.0)
            .unwrap()
            .filter_map(|e| e.ok())
            .find(|e| e.file_name().to_string_lossy().starts_with("r-"))
            .expect("cache entry written")
            .path();
        let pristine = std::fs::read(&entry).unwrap();
        // Every single-byte bit-flip (and a truncation, and a version swap)
        // must read as a miss — recomputed, never a panic or a wrong result.
        let corruptions: Vec<Vec<u8>> = (0..pristine.len().min(64))
            .map(|i| {
                let mut c = pristine.clone();
                c[i] ^= 0x10;
                c
            })
            .chain([
                pristine[..pristine.len() / 2].to_vec(),
                [b"ftmpi-cache v0\n".to_vec(), pristine.clone()].concat(),
            ])
            .collect();
        for corrupt in corruptions {
            std::fs::write(&entry, &corrupt).unwrap();
            let cache = MemoCache::persistent(&scratch.0);
            assert!(
                cache.get(&key).is_none(),
                "corrupt entry must miss, not decode"
            );
            assert!(!entry.exists(), "corrupt entry must be deleted");
            // And the sweep transparently recomputes + rewrites it.
            let mut r = SweepRunner::new(1).with_cache(Arc::clone(&cache));
            r.add_spec("job", "ring12", ring_spec(12));
            let out = r.run_detailed().pop().unwrap();
            assert!(!out.cached);
            out.result.unwrap();
            assert!(entry.exists(), "entry rewritten after recompute");
        }
    }

    #[test]
    fn seed_tier_serves_committed_entries_and_promotes_them() {
        let seed = ScratchDir::new("seed-src");
        let local = ScratchDir::new("seed-local");
        let key = spec_fingerprint("ring12", &ring_spec(12));
        // Author a seed entry the way the repo does: run once with the
        // seed directory as the writable tier, then treat it read-only.
        let baseline = {
            let cache = MemoCache::persistent_with_seed(&seed.0, seed.0.join("unused"));
            let mut r = SweepRunner::new(1).with_cache(Arc::clone(&cache));
            r.add_spec("job", "ring12", ring_spec(12));
            r.run_detailed().pop().unwrap().result.unwrap()
        };
        // A cold cache over an empty local dir must fall back to the seed…
        let cache = MemoCache::persistent_with_seed(local.0.join("cache"), &seed.0);
        let got = cache.get(&key).expect("seed tier should hit");
        assert_eq!(digest(&got), digest(&baseline));
        assert_eq!(cache.stats(), (1, 0), "a seed hit is a hit, not a miss");
        assert_eq!(cache.disk_hits(), 1, "a seed hit counts as a disk hit");
        // …and write the entry through to the local tier, so the next
        // fresh instance hits it even with the seed dir gone.
        let cache = MemoCache::persistent_with_seed(local.0.join("cache"), seed.0.join("gone"));
        let promoted = cache.get(&key).expect("promoted entry should hit");
        assert_eq!(promoted.encode(), baseline.encode());
    }

    #[test]
    fn corrupt_seed_entries_are_ignored_never_deleted() {
        let seed = ScratchDir::new("seed-corrupt");
        let local = ScratchDir::new("seed-corrupt-local");
        let key = spec_fingerprint("ring12", &ring_spec(12));
        std::fs::create_dir_all(&seed.0).unwrap();
        let path = seed.0.join(format!("r-{}", key_hash(&key)));
        std::fs::write(&path, "not a cache entry").unwrap();
        let cache = MemoCache::persistent_with_seed(local.0.join("cache"), &seed.0);
        assert!(
            cache.get(&key).is_none(),
            "corrupt seed must read as a miss"
        );
        assert!(path.exists(), "seed entries are read-only, never deleted");
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "not a cache entry");
    }
}
