//! Criterion benches of end-to-end protocol simulation cost: how long it
//! takes (wall-clock) to simulate one small job under each protocol, and
//! the incremental cost of a checkpoint wave. These guard against
//! performance regressions in the protocol engines themselves.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use ftmpi_core::{run_job, FtConfig, JobSpec, ProtocolChoice};
use ftmpi_mpi::{app_fn, AppFn};
use ftmpi_sim::SimDuration;

fn ring(iters: usize) -> AppFn {
    app_fn(move |mut mpi| async move {
        let n = mpi.size();
        let right = (mpi.rank() + 1) % n;
        let left = (mpi.rank() + n - 1) % n;
        for i in 0..iters {
            let req = mpi.irecv(Some(left), Some((i % 1000) as i32)).await;
            mpi.send(right, (i % 1000) as i32, 4096).await;
            mpi.wait(req).await;
            mpi.compute(SimDuration::from_millis(10));
        }
        mpi
    })
}

fn bench_protocols(c: &mut Criterion) {
    let mut g = c.benchmark_group("protocol/ring8x200");
    g.sample_size(10);
    for proto in [
        ProtocolChoice::Dummy,
        ProtocolChoice::Vcl,
        ProtocolChoice::Pcl,
    ] {
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("{proto:?}")),
            &proto,
            |b, &proto| {
                b.iter(|| {
                    let mut spec = JobSpec::new(8, proto, ring(200));
                    spec.servers = 2;
                    spec.ft = FtConfig {
                        period: SimDuration::from_millis(500),
                        image_bytes: 4 << 20,
                        ..FtConfig::default()
                    };
                    run_job(spec).unwrap()
                });
            },
        );
    }
    g.finish();
}

fn bench_collectives_sim_cost(c: &mut Criterion) {
    let mut g = c.benchmark_group("protocol/allreduce_sweep");
    g.sample_size(10);
    for n in [8usize, 32, 64] {
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let app: AppFn = app_fn(|mut mpi| async move {
                for _ in 0..50 {
                    mpi.allreduce(8 * 1024).await;
                    mpi.compute(SimDuration::from_millis(5));
                }
                mpi
            });
            b.iter(|| run_job(JobSpec::new(n, ProtocolChoice::Dummy, Arc::clone(&app))).unwrap());
        });
    }
    g.finish();
}

criterion_group!(benches, bench_protocols, bench_collectives_sim_cost);
criterion_main!(benches);
