//! Criterion microbenches for the simulation kernel: raw event throughput
//! and process handoff cost — the quantities that bound how large an
//! experiment the harness can run.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use ftmpi_sim::{Sim, SimDuration, SimTime};

/// Schedule-and-drain N pure events.
fn bench_event_throughput(c: &mut Criterion) {
    let mut g = c.benchmark_group("kernel/events");
    for n in [1_000u64, 10_000, 100_000] {
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let mut sim = Sim::new();
                for i in 0..n {
                    sim.schedule(SimTime::from_nanos(i), |_sc| {});
                }
                sim.run().unwrap()
            });
        });
    }
    g.finish();
}

/// Ping-pong token handoff between the kernel and parked processes.
fn bench_process_handoff(c: &mut Criterion) {
    let mut g = c.benchmark_group("kernel/handoff");
    g.sample_size(10);
    for (procs, steps) in [(2usize, 1_000u64), (16, 200), (64, 50)] {
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("{procs}p_x{steps}")),
            &(procs, steps),
            |b, &(procs, steps)| {
                b.iter(|| {
                    let mut sim = Sim::new();
                    for p in 0..procs {
                        sim.spawn(format!("p{p}"), move |mut ctx| async move {
                            for _ in 0..steps {
                                ctx.sleep(SimDuration::from_nanos(10)).await;
                            }
                        });
                    }
                    sim.run().unwrap()
                });
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_event_throughput, bench_process_handoff);
criterion_main!(benches);
