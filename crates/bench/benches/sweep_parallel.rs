//! Sequential vs. parallel sweep execution on a mid-size multi-point
//! sweep — the evidence behind the `--jobs` speedup claim in
//! EXPERIMENTS.md. Each point is an independent bt.S job, so the sweep
//! should scale with the worker count until admission control (4× cores of
//! simulated ranks) kicks in.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use ftmpi_bench::SweepRunner;
use ftmpi_core::{FtConfig, JobSpec, ProtocolChoice};
use ftmpi_nas::{bt, Machine, NasClass};
use ftmpi_sim::SimDuration;

/// The sweep under test: 12 bt.S.9 points at varying checkpoint periods.
fn queue_sweep(runner: &mut SweepRunner) {
    let wl = bt::workload(NasClass::S, 9, Machine::mflops(50.0));
    for i in 0..12u64 {
        let mut spec = JobSpec::new(9, ProtocolChoice::Pcl, Arc::clone(&wl.app));
        spec.servers = 2;
        spec.ft = FtConfig {
            period: SimDuration::from_millis(400 + 100 * i),
            image_bytes: 4 << 20,
            ..FtConfig::default()
        };
        runner.add(format!("point{i}"), move || spec);
    }
}

fn bench_sweep(c: &mut Criterion) {
    let mut g = c.benchmark_group("sweep/bt_s_9x12");
    g.sample_size(10);
    let cores = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(4);
    for jobs in [1usize, 2, 4, cores] {
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("jobs{jobs}")),
            &jobs,
            |b, &jobs| {
                b.iter(move || {
                    let mut runner = SweepRunner::new(jobs);
                    queue_sweep(&mut runner);
                    for r in runner.run() {
                        r.expect("sweep point");
                    }
                });
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_sweep);
criterion_main!(benches);
