//! End-to-end checker tests: clean and churn runs must satisfy every
//! invariant, hand-corrupted traces must be rejected with the specific
//! violation the corruption plants, and perturbed schedules must reproduce
//! the baseline fingerprint.

use std::collections::{BTreeMap, BTreeSet};

use ftmpi_check::{
    check_trace, perturbation_check, run_checked_with_churn, smoke_probes, Violation,
};
use ftmpi_core::{run_job_with, JobSpec, ProtocolChoice, RunOptions};
use ftmpi_sim::{ProtoEvent, TraceEvent, TraceKind};

fn spec_named(name: &str) -> JobSpec {
    smoke_probes()
        .into_iter()
        .find(|(n, _)| n == name)
        .unwrap_or_else(|| panic!("no smoke probe named {name}"))
        .1
}

/// Run a smoke probe with tracing and return what the checker needs.
fn traced(name: &str) -> (ProtocolChoice, usize, Vec<TraceEvent>) {
    let spec = spec_named(name);
    let (protocol, nranks) = (spec.protocol, spec.nranks);
    let (_, trace) = run_job_with(
        spec,
        RunOptions {
            trace: true,
            tiebreak_seed: None,
            ..RunOptions::default()
        },
    )
    .expect("smoke probe runs clean");
    (protocol, nranks, trace)
}

#[test]
fn clean_and_churn_probes_satisfy_all_invariants() {
    for (name, _) in smoke_probes() {
        let mk = {
            let name = name.clone();
            move || spec_named(&name)
        };
        let outcomes = run_checked_with_churn(&name, mk).expect("probe runs");
        assert!(!outcomes.is_empty());
        for o in &outcomes {
            assert!(o.ok(), "{}: {:?}", o.name, o.report.violations);
            assert!(o.report.waves_checked > 0, "{} verified no waves", o.name);
        }
        if name.contains("ring8") {
            // The ring probes run long enough for a derived mid-wave kill;
            // the churn variant must actually exercise a restart.
            assert_eq!(outcomes.len(), 2, "{name} produced no churn variant");
            assert!(
                outcomes[1].restarts >= 1,
                "{}.kill performed no restart",
                name
            );
        }
    }
}

#[test]
fn dropped_marker_is_rejected() {
    let (protocol, nranks, mut trace) = traced("smoke.ring8.pcl");
    assert!(check_trace(protocol, nranks, &trace).ok());
    let pos = trace
        .iter()
        .position(|te| matches!(te.kind, TraceKind::Proto(ProtoEvent::MarkerRecv { .. })))
        .expect("trace records marker receptions");
    trace.remove(pos);
    let report = check_trace(protocol, nranks, &trace);
    assert!(
        report
            .violations
            .iter()
            .any(|v| matches!(v, Violation::MarkerMismatch { recvs: 0, .. })),
        "dropped marker not detected: {:?}",
        report.violations
    );
}

#[test]
fn duplicated_delivery_is_rejected() {
    let (protocol, nranks, mut trace) = traced("smoke.ring8.pcl");
    let pos = trace
        .iter()
        .position(|te| matches!(te.kind, TraceKind::Proto(ProtoEvent::Deliver { .. })))
        .expect("trace records deliveries");
    let dup = trace[pos].clone();
    trace.insert(pos + 1, dup);
    let report = check_trace(protocol, nranks, &trace);
    assert!(
        report.violations.iter().any(|v| matches!(
            v,
            Violation::DuplicatedDelivery { .. } | Violation::FifoMismatch { .. }
        )),
        "duplicated seqno not detected: {:?}",
        report.violations
    );
}

#[test]
fn dropped_vcl_log_entry_is_rejected() {
    let (protocol, nranks, mut trace) = traced("smoke.stream2.vcl");
    assert!(check_trace(protocol, nranks, &trace).ok());
    let committed: BTreeSet<u64> = trace
        .iter()
        .filter_map(|te| match te.kind {
            TraceKind::Proto(ProtoEvent::WaveCommit { wave }) => Some(wave),
            _ => None,
        })
        .collect();
    let pos = trace
        .iter()
        .position(|te| {
            matches!(te.kind,
                TraceKind::Proto(ProtoEvent::LogMsg { wave, .. }) if committed.contains(&wave))
        })
        .expect("stream probe logs in-transit messages for a committed wave");
    trace.remove(pos);
    let report = check_trace(protocol, nranks, &trace);
    assert!(
        report
            .violations
            .iter()
            .any(|v| matches!(v, Violation::LogMismatch { .. })),
        "dropped log entry not detected: {:?}",
        report.violations
    );
}

#[test]
fn orphan_message_is_rejected() {
    // Pcl drains channels before forking, so every post-fork delivery pairs
    // with a post-fork send — moving one back across the destination's fork
    // plants a textbook orphan without disturbing any other invariant.
    let (protocol, nranks, mut trace) = traced("smoke.ring8.pcl");
    assert!(check_trace(protocol, nranks, &trace).ok());

    type Chan = (usize, usize);
    let mut forks: Vec<Option<(usize, usize)>> = vec![None; nranks]; // (proto idx, vec pos)
    let mut sends: BTreeMap<Chan, Vec<u64>> = BTreeMap::new(); // proto idx per position
    let mut send_idx: BTreeMap<Chan, Vec<usize>> = BTreeMap::new();
    let mut delivers: BTreeMap<Chan, Vec<(usize, usize)>> = BTreeMap::new(); // (proto idx, vec pos)
    let mut pidx = 0usize;
    for (vp, te) in trace.iter().enumerate() {
        if let TraceKind::Proto(ev) = te.kind {
            let i = pidx;
            pidx += 1;
            match ev {
                ProtoEvent::Fork { wave: 1, rank, .. } => {
                    forks[rank].get_or_insert((i, vp));
                }
                ProtoEvent::Send { src, dst, seq, .. } => {
                    sends.entry((src, dst)).or_default().push(seq);
                    send_idx.entry((src, dst)).or_default().push(i);
                }
                ProtoEvent::Deliver { src, dst, .. } => {
                    delivers.entry((src, dst)).or_default().push((i, vp));
                }
                _ => {}
            }
        }
    }

    // Find a channel's first post-fork delivery whose paired send is also
    // post-fork, and move it to just before the destination's fork.
    let mut moved = false;
    'outer: for (&(src, dst), dvec) in &delivers {
        let (Some((fs, _)), Some((fd, fork_vp))) = (forks[src], forks[dst]) else {
            continue;
        };
        let sidx = &send_idx[&(src, dst)];
        for (k, &(didx, dvp)) in dvec.iter().enumerate() {
            if didx > fd {
                if sidx.get(k).is_some_and(|&s| s > fs) {
                    let ev = trace.remove(dvp);
                    trace.insert(fork_vp, ev);
                    moved = true;
                }
                continue 'outer; // only the first post-fork delivery is safe
            }
        }
    }
    assert!(moved, "no post-fork send/deliver pair found for wave 1");

    let report = check_trace(protocol, nranks, &trace);
    assert!(
        report
            .violations
            .iter()
            .any(|v| matches!(v, Violation::OrphanMessage { .. })),
        "planted orphan not detected: {:?}",
        report.violations
    );
}

#[test]
fn perturbed_schedules_reproduce_the_baseline_fingerprint() {
    for probe in ["smoke.ring8.pcl", "smoke.ring8.vcl"] {
        let report = perturbation_check(|| spec_named(probe), &[11, 12345]).expect("probe runs");
        assert!(
            report.ok(),
            "{probe}: divergent seeds {:?}",
            report.divergent()
        );
    }
}
