//! Schedule-exploration regression tests.
//!
//! The two races PR 2's perturbation detector originally caught (and the
//! protocol fixes closed) are resurrected here behind [`RaceFixture`]s,
//! and the DPOR explorer must rediscover both from scratch — minimized to
//! a short reproducer — while clean configs exhaust their schedule space
//! with a single terminal fingerprint, identically under the heap and
//! ladder queue backends.

use ftmpi_check::{differential, explore, explore_configs, parse_artifact, replay, ExploreOptions};

fn config(name: &str) -> ftmpi_check::ExploreConfig {
    explore_configs()
        .into_iter()
        .find(|c| c.name == name)
        .unwrap_or_else(|| panic!("no explore config named {name}"))
}

#[test]
fn clean_pcl_ring_exhausts_with_one_outcome() {
    let cfg = config("pcl3.ring");
    assert!(cfg.fixture.is_none() && !cfg.expect_violation);
    let out = explore(&cfg, &ExploreOptions::default()).expect("exploration runs");
    assert!(out.exhausted, "schedule space not exhausted: {out:?}");
    assert!(out.violation.is_none(), "clean config violated: {out:?}");
    assert_eq!(
        out.distinct_outcomes, 1,
        "a race-free config must reach one terminal state: {out:?}"
    );
    assert!(out.runs > 1, "exploration never branched: {out:?}");
    assert!(
        out.pruned > 0,
        "commutation oracle never pruned a branch: {out:?}"
    );
}

#[test]
fn laneless_marker_race_rediscovered_and_minimized() {
    let cfg = config("vcl2.laneless-markers");
    assert!(cfg.fixture.is_some() && cfg.expect_violation);
    let out = explore(&cfg, &ExploreOptions::default()).expect("exploration runs");
    let v = out.violation.expect("seeded marker race must be found");
    assert!(
        v.kind.starts_with("invariant:"),
        "marker/data reorder must surface as an invariant break, got `{}`",
        v.kind
    );
    assert!(!v.minimized.is_empty());
    assert!(v.minimized.len() <= v.schedule.len());
    // Greedy shrinking leaves exactly one non-canonical choice: the single
    // marker-vs-delivery flip that loses a message from the channel log.
    assert_eq!(
        v.minimized.iter().filter(|&&c| c != 0).count(),
        1,
        "minimized reproducer should be a single flip: {:?}",
        v.minimized
    );
    assert_ne!(
        *v.minimized.last().expect("non-empty"),
        0,
        "trailing canonical choices must be trimmed: {:?}",
        v.minimized
    );
}

#[test]
fn unstaggered_flow_race_rediscovered_and_minimized() {
    let cfg = config("pcl3.unstaggered-flows");
    assert!(cfg.fixture.is_some() && cfg.expect_violation);
    let out = explore(&cfg, &ExploreOptions::default()).expect("exploration runs");
    let v = out.violation.expect("seeded flow race must be found");
    assert!(!v.minimized.is_empty());
    assert_eq!(
        v.minimized.iter().filter(|&&c| c != 0).count(),
        1,
        "minimized reproducer should be a single flip: {:?}",
        v.minimized
    );
}

#[test]
fn heap_and_ladder_explorations_agree_state_for_state() {
    let cfg = config("vcl3.ring");
    let (heap, ladder) = differential(&cfg, &ExploreOptions::default()).expect("both backends run");
    assert!(heap.exhausted && ladder.exhausted);
    assert!(heap.violation.is_none() && ladder.violation.is_none());
    assert_eq!(heap.runs, ladder.runs, "backends explored different spaces");
    assert_eq!(heap.canonical_fp, ladder.canonical_fp);
    assert_eq!(heap.distinct_outcomes, ladder.distinct_outcomes);
    assert_eq!(heap.pruned, ladder.pruned, "commutation pruning diverged");
    assert_eq!(heap.deduped, ladder.deduped, "state memoization diverged");
    assert_eq!(heap.max_decisions, ladder.max_decisions);
}

#[test]
fn reproducer_artifact_survives_a_dump_parse_replay_cycle() {
    let cfg = config("vcl2.laneless-markers");
    let dir = std::env::temp_dir().join(format!("ftmpi-explore-test-{}", std::process::id()));
    let opts = ExploreOptions {
        artifact_dir: Some(dir.clone()),
        ..ExploreOptions::default()
    };
    let out = explore(&cfg, &opts).expect("exploration runs");
    let v = out.violation.expect("seeded race must be found");
    let path = v.artifact.expect("artifact dir was configured");
    let text = std::fs::read_to_string(&path).expect("artifact readable");
    let repro = parse_artifact(&text).expect("artifact parses");
    assert_eq!(repro.config, cfg.name);
    assert_eq!(repro.schedule, v.minimized);
    let verdict = replay(&repro).expect("replay runs");
    assert_eq!(
        verdict.as_deref(),
        Some(v.kind.as_str()),
        "replay must reproduce the dumped violation"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
