//! Differential process-backend tests: every probe must be state-for-state
//! identical whether ranks run as stackless coroutines (the default) or on
//! legacy pooled OS threads (`FTMPI_THREADED=1`). Equality is asserted on
//! the full encoded [`ftmpi_core::JobResult`] (the byte representation the
//! persistent memo cache stores) and on the order-canonical fingerprint of
//! the structured protocol trace — the same evidence the figure JSONs and
//! the invariant checker consume.

use ftmpi_check::{
    check_trace, explore, explore_configs, smoke_probes, trace_fingerprint, ExploreOptions,
};
use ftmpi_core::{
    run_job_with, FailurePlan, FtConfig, JobResult, JobSpec, ProtocolChoice, RunOptions,
};
use ftmpi_mpi::{app_fn, AppFn};
use ftmpi_sim::{SimDuration, SimTime, TraceEvent};

/// Run `spec` under one forced process backend, with tracing.
fn run_backend(spec: JobSpec, threaded: bool) -> (JobResult, Vec<TraceEvent>) {
    run_job_with(
        spec,
        RunOptions {
            trace: true,
            threaded: Some(threaded),
            ..RunOptions::default()
        },
    )
    .expect("differential run")
}

/// Run `spec` under both backends and assert full state equality; returns
/// the coroutine run for further scenario assertions.
fn assert_backends_agree(name: &str, spec: JobSpec) -> (JobResult, Vec<TraceEvent>) {
    let (coro_res, coro_trace) = run_backend(spec.clone(), false);
    let (thr_res, thr_trace) = run_backend(spec, true);
    assert_eq!(
        coro_res.encode(),
        thr_res.encode(),
        "{name}: encoded results diverged between backends"
    );
    assert_eq!(
        coro_trace.len(),
        thr_trace.len(),
        "{name}: trace lengths diverged between backends"
    );
    assert_eq!(
        trace_fingerprint(&coro_trace),
        trace_fingerprint(&thr_trace),
        "{name}: trace fingerprints diverged between backends"
    );
    (coro_res, coro_trace)
}

#[test]
fn smoke_probe_set_identical_across_backends() {
    for (name, spec) in smoke_probes() {
        let (protocol, nranks) = (spec.protocol, spec.nranks);
        let (_, trace) = assert_backends_agree(&name, spec);
        let report = check_trace(protocol, nranks, &trace);
        assert!(report.ok(), "{name}: {:?}", report.violations);
    }
}

#[test]
fn explorations_agree_across_process_backends() {
    let cfg = explore_configs()
        .into_iter()
        .find(|c| c.name == "vcl3.ring")
        .expect("vcl3.ring explore config");
    let run = |threaded| {
        explore(
            &cfg,
            &ExploreOptions {
                threaded: Some(threaded),
                ..ExploreOptions::default()
            },
        )
        .expect("exploration runs")
    };
    let (coro, thr) = (run(false), run(true));
    assert!(coro.exhausted && thr.exhausted);
    assert!(coro.violation.is_none() && thr.violation.is_none());
    assert_eq!(coro.runs, thr.runs, "backends explored different spaces");
    assert_eq!(coro.canonical_fp, thr.canonical_fp);
    assert_eq!(coro.distinct_outcomes, thr.distinct_outcomes);
    assert_eq!(coro.pruned, thr.pruned, "commutation pruning diverged");
    assert_eq!(coro.deduped, thr.deduped, "state memoization diverged");
    assert_eq!(coro.max_decisions, thr.max_decisions);
}

fn ring_app(iters: usize, bytes: u64, compute: SimDuration) -> AppFn {
    app_fn(move |mut mpi| async move {
        let n = mpi.size();
        let right = (mpi.rank() + 1) % n;
        let left = (mpi.rank() + n - 1) % n;
        for i in 0..iters {
            let req = mpi.irecv(Some(left), Some((i % 997) as i32)).await;
            mpi.send(right, (i % 997) as i32, bytes).await;
            mpi.wait(req).await;
            mpi.compute(compute);
        }
        mpi
    })
}

fn killable_spec(proto: ProtocolChoice) -> JobSpec {
    let mut spec = JobSpec::new(8, proto, ring_app(80, 8_192, SimDuration::from_millis(200)));
    spec.servers = 2;
    spec.ft = FtConfig {
        period: SimDuration::from_secs(3),
        first_wave_delay: SimDuration::from_secs(1),
        image_bytes: 4 << 20,
        ..FtConfig::default()
    };
    spec.max_virtual_time = Some(SimTime::from_nanos(900_000_000_000));
    spec
}

/// A kill landing while the victim is parked in a blocked receive: under
/// the threaded backend this unwinds the rank's stack; under coroutines it
/// drops the rank's suspended future. Both must recover identically.
#[test]
fn kill_while_suspended_identical_across_backends() {
    for proto in [ProtocolChoice::Pcl, ProtocolChoice::Vcl] {
        let mut spec = killable_spec(proto);
        // Mid-compute/wait, well inside the run and clear of wave windows.
        spec.failures = FailurePlan::kill_at(SimTime::from_nanos(5_700_000_000), 3);
        let (protocol, nranks) = (spec.protocol, spec.nranks);
        let (res, trace) = assert_backends_agree("kill-suspended", spec);
        assert_eq!(res.rt.restarts, 1);
        assert_eq!(res.leftover_unexpected, 0);
        let report = check_trace(protocol, nranks, &trace);
        assert!(report.ok(), "{proto:?}: {:?}", report.violations);
    }
}

/// A second rank dies while the first failure's recovery is still in
/// flight (inside the dispatcher's `restart_delay` window): the restart
/// state machine must take the same transitions under both backends.
#[test]
fn kill_during_recovery_identical_across_backends() {
    for proto in [ProtocolChoice::Pcl, ProtocolChoice::Vcl] {
        let mut spec = killable_spec(proto);
        let first = SimTime::from_nanos(5_700_000_000);
        // Default restart_delay is 3 s: the second kill lands 800 ms into
        // the first recovery.
        let second = SimTime::from_nanos(6_500_000_000);
        spec.failures = FailurePlan::kill_at(first, 3).with_kill(second, 6);
        let (protocol, nranks) = (spec.protocol, spec.nranks);
        let (res, trace) = assert_backends_agree("kill-mid-recovery", spec);
        assert_eq!(res.rt.restarts, 2);
        assert_eq!(res.leftover_unexpected, 0);
        let report = check_trace(protocol, nranks, &trace);
        assert!(report.ok(), "{proto:?}: {:?}", report.violations);
    }
}

/// The uncoordinated logging protocol's per-rank checkpoint cycles and
/// synchronous log writes must also be backend-independent.
#[test]
fn mlog_restart_identical_across_backends() {
    let mut spec = killable_spec(ProtocolChoice::Mlog);
    spec.failures = FailurePlan::kill_at(SimTime::from_nanos(5_700_000_000), 3);
    let (res, _) = assert_backends_agree("mlog-kill", spec);
    assert_eq!(res.rt.restarts, 1);
    assert_eq!(res.leftover_unexpected, 0);
}
