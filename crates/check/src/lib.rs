//! `ftmpi-check`: machine verification of the checkpointing protocols.
//!
//! Three layers, each consuming the structured protocol traces recorded by
//! [`ftmpi_sim::SimCtx::trace_proto`]:
//!
//! * [`invariants`] — proves, for every committed checkpoint wave in a
//!   trace, that the recorded global state is a *consistent cut*: no orphan
//!   messages, the Vcl channel logs hold exactly the in-transit messages,
//!   Pcl channels are empty at fork, and every channel stays FIFO with no
//!   loss or duplication across failures and restarts.
//! * [`perturb`] — a determinism/race detector: re-runs a configuration
//!   under seeded perturbations of same-time event tiebreaks and compares
//!   order-canonical trace [`fingerprint`]s. Divergence means some model
//!   state depends on the accidental order of independent events.
//! * [`lint`] — a hand-rolled source lint enforcing the workspace's
//!   determinism rules (no wall-clock reads in simulation crates, no
//!   iteration over `HashMap` feeding ordered output, no `unwrap()` in
//!   `crates/core`).
//! * [`storm`] — seeded fault-injection campaigns: kills and checkpoint-
//!   server failures aimed at mid-wave, mid-recovery, and detection-lag
//!   windows, each run re-checked by the invariant layer.
//! * [`miner`] — a coverage-guided failure-storm miner: a seeded mutation
//!   loop over fault schedules (kills, directed partitions, server-group
//!   cuts, link flaps), driven by a coverage map of invariant-checker and
//!   `FtStats` observables, keeping a corpus of schedules that light new
//!   coverage states and shrinking violations to minimal reproducers.
//! * [`explore`] + [`hb`] — exhaustive schedule exploration: a DPOR loop
//!   over the kernel's schedule-policy hook enumerates every inequivalent
//!   order of same-instant events in small configs, pruning with a
//!   happens-before/resource-footprint commutation oracle, and shrinks any
//!   violating schedule to a minimal replayable reproducer.
//!
//! The `ftmpi-check` binary exposes them as `lint`, `smoke`, `storm`
//! (with `--mine` for the miner), `figures`, and `explore` subcommands;
//! `scripts/ci.sh` runs `lint`, `smoke`, `storm --smoke`,
//! `storm --mine --smoke`, and `explore --smoke` on every change.

#![warn(missing_docs)]

pub mod explore;
pub mod fingerprint;
pub mod hb;
pub mod invariants;
pub mod lint;
pub mod miner;
pub mod perturb;
pub mod proto;
pub mod storm;
pub mod suite;

pub use explore::{
    differential, explore, explore_configs, parse_artifact, replay, ExploreConfig, ExploreOptions,
    ExploreOutcome, Repro, ViolationReport,
};
pub use fingerprint::trace_fingerprint;
pub use hb::{
    clock_trace, commutes, concurrent, happens_before, resources, ClockedEvent, Resource,
};
pub use invariants::{check_trace, CheckReport, Violation};
pub use lint::{lane_audit_sources, lint_source, run_lint, LintHit};
pub use miner::{
    classify, coverage_key, encode_artifact, mine, parse_mined_artifact, CoverageKey, Gene, Genome,
    MineOptions, MineReport, MinedViolation, OutcomeClass,
};
pub use perturb::{perturbation_check, PerturbReport};
pub use storm::{run_storm, run_storm_traced, storm_campaign, StormOutcome};
pub use suite::{
    figure_smoke_probes, figures_suite, run_checked, run_checked_with_churn, smoke_probes,
    ProbeOutcome,
};
