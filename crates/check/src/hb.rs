//! Happens-before oracle over protocol traces.
//!
//! The schedule explorer needs to know which pairs of same-instant events
//! *commute* — produce the same final state in either order — so it can
//! prune redundant interleavings. Two complementary views are provided:
//!
//! * **Vector clocks** ([`clock_trace`]): every typed [`ProtoEvent`] in a
//!   trace is stamped with a vector clock over logical threads (one per
//!   rank plus one control thread for wave/scheduler activity). Clock
//!   edges are the protocol's real causality: program order per thread,
//!   `Send → Deliver` matched on `(src, dst, seq, epoch)`, `MarkerSend →
//!   MarkerRecv` matched on `(wave, from, to)`, `WaveStart → MarkerSend`
//!   of the same wave (the wave's initiation causally precedes every
//!   marker it spawns), and `Fork`/`LogMsg` → `WaveCommit`/`WaveAbort`
//!   (a wave's outcome joins every contribution). Two events are
//!   [`concurrent`] exactly when neither clock dominates.
//!
//! * **Resource footprints** ([`resources`], [`commutes`]): a syntactic
//!   over-approximation of what state an event touches — the acting
//!   rank, the channel, the wave-control state. Two *effect windows*
//!   (the proto events one kernel step emitted) commute when their
//!   footprints are disjoint. This is the fast path the DPOR loop uses
//!   at branch points; the vector clocks are the ground truth it is
//!   validated against: among *simultaneously enabled* events (the only
//!   pairs the explorer ever compares — same-instant queue candidates),
//!   a pair the footprints call commuting must be concurrent under the
//!   clocks (see the `footprint_respects_clocks` test). Causally chained
//!   events at different instants may well have disjoint footprints;
//!   they are never candidates together, so the oracle never sees them.
//!
//! Both views are deliberately conservative: an empty effect window (a
//! step that emitted no protocol events — pure compute, flow chunks,
//! timer pops) has an *unknown* footprint and conflicts with everything;
//! `Restart` and `ServerFail` touch global recovery state and conflict
//! with everything. Conservatism costs exploration time, never
//! soundness: the explorer's state-fingerprint memo recovers most of the
//! pruning that footprints refuse.

use std::collections::HashMap;

use ftmpi_sim::{ProtoEvent, TraceEvent, TraceKind};

/// A vector clock over `width` logical threads.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VClock(Vec<u64>);

impl VClock {
    fn new(width: usize) -> VClock {
        VClock(vec![0; width])
    }

    fn tick(&mut self, thread: usize) {
        self.0[thread] += 1;
    }

    fn join(&mut self, other: &VClock) {
        for (a, b) in self.0.iter_mut().zip(&other.0) {
            *a = (*a).max(*b);
        }
    }

    /// Component-wise `self ≤ other`.
    pub fn le(&self, other: &VClock) -> bool {
        self.0.iter().zip(&other.0).all(|(a, b)| a <= b)
    }
}

/// One protocol event with its causal stamp.
#[derive(Debug, Clone)]
pub struct ClockedEvent {
    /// Index of the event in the (proto-filtered) trace.
    pub index: usize,
    /// The event itself.
    pub event: ProtoEvent,
    /// Logical thread the event executed on (rank, or `nranks` for the
    /// control thread).
    pub thread: usize,
    /// The event's vector clock (after its own tick).
    pub clock: VClock,
}

/// `true` when `a` causally precedes `b`.
pub fn happens_before(a: &ClockedEvent, b: &ClockedEvent) -> bool {
    a.index != b.index && a.clock.le(&b.clock)
}

/// `true` when neither event causally precedes the other.
pub fn concurrent(a: &ClockedEvent, b: &ClockedEvent) -> bool {
    !happens_before(a, b) && !happens_before(b, a)
}

/// The logical thread a proto event executes on: the acting rank, or the
/// control thread (`nranks`) for wave lifecycle and recovery events.
fn thread_of(nranks: usize, ev: &ProtoEvent) -> usize {
    match *ev {
        ProtoEvent::Send { src, .. } => src,
        ProtoEvent::Deliver { dst, .. } | ProtoEvent::Replay { dst, .. } => dst,
        ProtoEvent::MarkerSend { from, .. } => from,
        ProtoEvent::MarkerRecv { to, .. } => to,
        ProtoEvent::Fork { rank, .. } => rank,
        ProtoEvent::LogMsg { dst, .. } => dst,
        ProtoEvent::WaveStart { .. }
        | ProtoEvent::WaveCommit { .. }
        | ProtoEvent::WaveAbort { .. }
        | ProtoEvent::ServerFail { .. }
        | ProtoEvent::Restart { .. } => nranks,
        // Store-side integrity events (replica landings, damage, scrub
        // repairs, quarantines) execute on the checkpoint fleet, which the
        // trace models as control-thread activity.
        ProtoEvent::ImageStore { .. }
        | ProtoEvent::Corrupt { .. }
        | ProtoEvent::CorruptDetected { .. }
        | ProtoEvent::Repair { .. }
        | ProtoEvent::RestoreImage { .. }
        | ProtoEvent::Quarantine { .. } => nranks,
    }
    .min(nranks)
}

/// Stamp every proto event in `trace` with a vector clock (threads =
/// ranks `0..nranks` plus control thread `nranks`). Non-proto trace
/// entries are skipped; `index` counts proto events only.
pub fn clock_trace(nranks: usize, trace: &[TraceEvent]) -> Vec<ClockedEvent> {
    let width = nranks + 1;
    let mut threads: Vec<VClock> = vec![VClock::new(width); width];
    // Pending cross-thread edges, keyed by the match the receiver makes.
    let mut sends: HashMap<(usize, usize, u64, u64), VClock> = HashMap::new();
    let mut markers: HashMap<(u64, usize, usize), VClock> = HashMap::new();
    let mut wave_start: HashMap<u64, VClock> = HashMap::new();
    // Accumulated join of every Fork/LogMsg contribution per wave.
    let mut wave_parts: HashMap<u64, VClock> = HashMap::new();
    let mut out = Vec::new();
    for te in trace {
        let TraceKind::Proto(ev) = te.kind else {
            continue;
        };
        let t = thread_of(nranks, &ev);
        let mut clock = threads[t].clone();
        match ev {
            ProtoEvent::Deliver {
                src,
                dst,
                seq,
                epoch,
            } => {
                if let Some(c) = sends.remove(&(src, dst, seq, epoch)) {
                    clock.join(&c);
                }
            }
            ProtoEvent::Replay {
                src,
                dst,
                seq,
                epoch,
            } => {
                // The original send may predate the restored era and be
                // absent from this trace; join only if it is present.
                if let Some(c) = sends.remove(&(src, dst, seq, epoch)) {
                    clock.join(&c);
                }
            }
            ProtoEvent::MarkerRecv { wave, from, to } => {
                if let Some(c) = markers.remove(&(wave, from, to)) {
                    clock.join(&c);
                }
            }
            ProtoEvent::MarkerSend { wave, .. } => {
                if let Some(c) = wave_start.get(&wave) {
                    clock.join(c);
                }
            }
            ProtoEvent::WaveCommit { wave } | ProtoEvent::WaveAbort { wave } => {
                if let Some(c) = wave_parts.remove(&wave) {
                    clock.join(&c);
                }
            }
            _ => {}
        }
        clock.tick(t);
        match ev {
            ProtoEvent::Send {
                src,
                dst,
                seq,
                epoch,
                ..
            } => {
                sends.insert((src, dst, seq, epoch), clock.clone());
            }
            ProtoEvent::MarkerSend { wave, from, to } => {
                markers.insert((wave, from, to), clock.clone());
            }
            ProtoEvent::WaveStart { wave } => {
                wave_start.insert(wave, clock.clone());
            }
            ProtoEvent::Fork { wave, .. } | ProtoEvent::LogMsg { wave, .. } => {
                wave_parts
                    .entry(wave)
                    .or_insert_with(|| VClock::new(width))
                    .join(&clock);
            }
            _ => {}
        }
        threads[t] = clock.clone();
        out.push(ClockedEvent {
            index: out.len(),
            event: ev,
            thread: t,
            clock,
        });
    }
    out
}

/// A unit of protocol state an event reads or writes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Resource {
    /// One rank's runtime state (matching engine, protocol flags).
    Rank(usize),
    /// One directed channel's in-flight state.
    Channel(usize, usize),
    /// The wave lifecycle state (scheduler / initiator bookkeeping).
    WaveControl,
    /// Recovery-wide state; conflicts with everything.
    Global,
}

impl Resource {
    fn conflicts(self, other: Resource) -> bool {
        self == other || self == Resource::Global || other == Resource::Global
    }
}

/// The (over-approximate) resource footprint of one proto event.
pub fn resources(ev: &ProtoEvent) -> Vec<Resource> {
    match *ev {
        ProtoEvent::Send { src, dst, .. } => {
            vec![Resource::Rank(src), Resource::Channel(src, dst)]
        }
        ProtoEvent::Deliver { src, dst, .. } | ProtoEvent::Replay { src, dst, .. } => {
            vec![Resource::Rank(dst), Resource::Channel(src, dst)]
        }
        ProtoEvent::MarkerSend { from, to, .. } => vec![
            Resource::Rank(from),
            Resource::Channel(from, to),
            Resource::WaveControl,
        ],
        ProtoEvent::MarkerRecv { from, to, .. } => vec![
            Resource::Rank(to),
            Resource::Channel(from, to),
            Resource::WaveControl,
        ],
        ProtoEvent::Fork { rank, .. } => vec![Resource::Rank(rank), Resource::WaveControl],
        ProtoEvent::LogMsg { src, dst, .. } => vec![
            Resource::Rank(dst),
            Resource::Channel(src, dst),
            Resource::WaveControl,
        ],
        ProtoEvent::WaveStart { .. }
        | ProtoEvent::WaveCommit { .. }
        | ProtoEvent::WaveAbort { .. } => vec![Resource::WaveControl],
        ProtoEvent::ServerFail { .. } | ProtoEvent::Restart { .. } => vec![Resource::Global],
        // Integrity events mutate shared store bookkeeping (replica maps,
        // corruption tallies, quarantine sets): conservatively global.
        ProtoEvent::ImageStore { .. }
        | ProtoEvent::Corrupt { .. }
        | ProtoEvent::CorruptDetected { .. }
        | ProtoEvent::Repair { .. }
        | ProtoEvent::RestoreImage { .. }
        | ProtoEvent::Quarantine { .. } => vec![Resource::Global],
    }
}

/// Decide whether two kernel-step effect windows commute.
///
/// `a` and `b` are the proto events each step emitted. An **empty**
/// window means the step's footprint is unknown (it touched simulator
/// state the trace cannot see) and is conservatively declared
/// conflicting. Otherwise the windows commute iff no resource of one
/// conflicts with a resource of the other.
pub fn commutes(a: &[ProtoEvent], b: &[ProtoEvent]) -> bool {
    if a.is_empty() || b.is_empty() {
        return false;
    }
    let ra: Vec<Resource> = a.iter().flat_map(resources).collect();
    for eb in b {
        for rb in resources(eb) {
            if ra.iter().any(|&r| r.conflicts(rb)) {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftmpi_sim::SimTime;

    fn te(ns: u64, ev: ProtoEvent) -> TraceEvent {
        TraceEvent {
            time: SimTime::from_nanos(ns),
            kind: TraceKind::Proto(ev),
            pid: None,
            detail: String::new(),
        }
    }

    fn send(src: usize, dst: usize, seq: u64) -> ProtoEvent {
        ProtoEvent::Send {
            src,
            dst,
            seq,
            bytes: 1,
            epoch: 0,
        }
    }

    fn deliver(src: usize, dst: usize, seq: u64) -> ProtoEvent {
        ProtoEvent::Deliver {
            src,
            dst,
            seq,
            epoch: 0,
        }
    }

    #[test]
    fn send_happens_before_its_delivery() {
        let trace = vec![
            te(0, send(0, 1, 0)),
            te(5, send(2, 1, 0)),
            te(10, deliver(0, 1, 0)),
        ];
        let clocked = clock_trace(3, &trace);
        assert_eq!(clocked.len(), 3);
        assert!(happens_before(&clocked[0], &clocked[2]));
        assert!(!happens_before(&clocked[2], &clocked[0]));
        // The unrelated send from rank 2 is concurrent with both.
        assert!(concurrent(&clocked[0], &clocked[1]));
        assert!(concurrent(&clocked[1], &clocked[2]));
    }

    #[test]
    fn program_order_chains_through_a_rank() {
        // Deliver at rank 1, then a send from rank 1: the deliver precedes
        // the send (program order), so the original sender precedes the
        // second delivery transitively.
        let trace = vec![
            te(0, send(0, 1, 0)),
            te(10, deliver(0, 1, 0)),
            te(11, send(1, 2, 0)),
            te(20, deliver(1, 2, 0)),
        ];
        let clocked = clock_trace(3, &trace);
        assert!(happens_before(&clocked[0], &clocked[3]));
    }

    #[test]
    fn marker_and_wave_edges() {
        let trace = vec![
            te(0, ProtoEvent::WaveStart { wave: 1 }),
            te(
                1,
                ProtoEvent::MarkerSend {
                    wave: 1,
                    from: 0,
                    to: 1,
                },
            ),
            te(
                9,
                ProtoEvent::MarkerRecv {
                    wave: 1,
                    from: 0,
                    to: 1,
                },
            ),
            te(
                10,
                ProtoEvent::Fork {
                    wave: 1,
                    rank: 1,
                    ops: 3,
                },
            ),
            te(20, ProtoEvent::WaveCommit { wave: 1 }),
        ];
        let clocked = clock_trace(2, &trace);
        // start → marker send → marker recv → fork → commit, transitively.
        for i in 0..clocked.len() {
            for j in i + 1..clocked.len() {
                assert!(
                    happens_before(&clocked[i], &clocked[j]),
                    "expected {i} ≺ {j}"
                );
            }
        }
    }

    #[test]
    fn footprints_decide_commutation() {
        // Disjoint channels and ranks: commute.
        assert!(commutes(&[send(0, 1, 0)], &[send(2, 3, 0)]));
        // Same channel: conflict.
        assert!(!commutes(&[send(0, 1, 0)], &[deliver(0, 1, 0)]));
        // Same destination rank, different channels: conflict (ordering at
        // the matching engine is observable).
        assert!(!commutes(&[deliver(0, 2, 0)], &[deliver(1, 2, 0)]));
        // Marker vs. data delivery at the same rank: conflict — this is
        // exactly the pre/post-cut classification race.
        assert!(!commutes(
            &[ProtoEvent::MarkerRecv {
                wave: 1,
                from: 0,
                to: 1
            }],
            &[deliver(0, 1, 7)]
        ));
        // Empty windows are unknown: never commute.
        assert!(!commutes(&[], &[send(0, 1, 0)]));
        assert!(!commutes(&[], &[]));
        // Restart is global.
        assert!(!commutes(
            &[ProtoEvent::Restart { epoch: 1 }],
            &[send(0, 1, 0)]
        ));
    }

    #[test]
    fn footprint_respects_clocks() {
        // Validation: on a real-shaped trace, any two *same-instant*
        // events (the simultaneously-enabled pairs the explorer compares)
        // whose footprints commute must be concurrent under the vector
        // clocks — commuting refines concurrency, never the reverse.
        let trace = vec![
            te(0, ProtoEvent::WaveStart { wave: 1 }),
            te(0, send(0, 1, 0)),
            te(1, send(2, 0, 0)),
            te(
                2,
                ProtoEvent::MarkerSend {
                    wave: 1,
                    from: 0,
                    to: 1,
                },
            ),
            te(5, deliver(0, 1, 0)),
            te(
                5,
                ProtoEvent::MarkerRecv {
                    wave: 1,
                    from: 0,
                    to: 1,
                },
            ),
            te(6, deliver(2, 0, 0)),
            te(
                7,
                ProtoEvent::Fork {
                    wave: 1,
                    rank: 1,
                    ops: 1,
                },
            ),
            te(9, ProtoEvent::WaveCommit { wave: 1 }),
        ];
        let clocked = clock_trace(3, &trace);
        for (a, ta) in clocked.iter().zip(&trace) {
            for (b, tb) in clocked.iter().zip(&trace) {
                if a.index == b.index || ta.time != tb.time {
                    continue;
                }
                if commutes(&[a.event], &[b.event]) {
                    assert!(
                        concurrent(a, b),
                        "footprints commute but clocks order {:?} vs {:?}",
                        a.event,
                        b.event
                    );
                }
            }
        }
    }
}
