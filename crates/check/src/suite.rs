//! Checker-enabled probe suites.
//!
//! [`smoke_probes`] is the CI set: synthetic workloads with known timing
//! (ring, allreduce, producer/consumer stream) at 8 ranks under both
//! protocols, each with one mid-run failure, plus a logging-heavy Vcl
//! stream. [`figures_suite`] drives every figure-workload family from the
//! bench crate through the checker, adding a churn variant that kills a
//! rank shortly after the first committed wave.

use ftmpi_core::{
    run_job_with, FailurePlan, FtConfig, JobError, JobSpec, ProtocolChoice, RunOptions,
};
use ftmpi_mpi::{app_fn, AppFn};
use ftmpi_sim::{ProtoEvent, SimDuration, SimTime, TraceKind};

use crate::invariants::{check_trace, CheckReport};

/// Outcome of one checked probe run.
#[derive(Debug)]
pub struct ProbeOutcome {
    /// Probe label.
    pub name: String,
    /// Committed checkpoint waves.
    pub waves: u64,
    /// Failure-restarts performed.
    pub restarts: u64,
    /// The invariant-checker verdict.
    pub report: CheckReport,
}

impl ProbeOutcome {
    /// `true` when no invariant was violated.
    pub fn ok(&self) -> bool {
        self.report.ok()
    }
}

/// Ring workload: each iteration sends to the right neighbour, receives
/// from the left, then computes (the BT-like probe app).
pub fn ring_app(iters: usize, bytes: u64, compute: SimDuration) -> AppFn {
    app_fn(move |mut mpi| async move {
        let n = mpi.size();
        let right = (mpi.rank() + 1) % n;
        let left = (mpi.rank() + n - 1) % n;
        for i in 0..iters {
            let req = mpi.irecv(Some(left), Some(i as i32)).await;
            mpi.send(right, i as i32, bytes).await;
            mpi.wait(req).await;
            mpi.compute(compute);
        }
        mpi
    })
}

/// Producer/consumer stream: rank 0 fires eager sends back-to-back, rank 1
/// consumes slowly — a wave arriving mid-stream finds messages genuinely
/// in the channel (the Vcl logging probe).
pub fn stream_app(count: usize, bytes: u64, consume: SimDuration) -> AppFn {
    app_fn(move |mut mpi| async move {
        match mpi.rank() {
            0 => {
                for i in 0..count {
                    mpi.send(1, (i % 1000) as i32, bytes).await;
                }
            }
            1 => {
                for i in 0..count {
                    mpi.recv(Some(0), Some((i % 1000) as i32)).await;
                    mpi.compute(consume);
                }
            }
            _ => {}
        }
        mpi
    })
}

fn smoke_spec(nranks: usize, protocol: ProtocolChoice, app: AppFn) -> JobSpec {
    let mut spec = JobSpec::new(nranks, protocol, app);
    spec.servers = 2;
    spec.ft = FtConfig {
        period: SimDuration::from_secs(5),
        first_wave_delay: SimDuration::from_secs(2),
        image_bytes: 4 << 20,
        ..FtConfig::default()
    };
    spec.max_virtual_time = Some(SimTime::from_nanos(600_000_000_000));
    spec
}

/// The CI smoke probes: both protocols at 8 ranks, plus a logging-heavy
/// Vcl stream. Churn (mid-run kill) variants are derived per probe by
/// [`run_checked_with_churn`].
pub fn smoke_probes() -> Vec<(String, JobSpec)> {
    let mut probes = Vec::new();
    for proto in [ProtocolChoice::Pcl, ProtocolChoice::Vcl] {
        let name = match proto {
            ProtocolChoice::Pcl => "pcl",
            _ => "vcl",
        };
        let mut clean = smoke_spec(
            8,
            proto,
            ring_app(100, 10_000, SimDuration::from_millis(200)),
        );
        clean.ft.period = SimDuration::from_secs(4);
        probes.push((format!("smoke.ring8.{name}"), clean));
    }
    let mut stream = smoke_spec(
        2,
        ProtocolChoice::Vcl,
        stream_app(200, 256 << 10, SimDuration::from_millis(2)),
    );
    stream.ft.first_wave_delay = SimDuration::from_millis(200);
    stream.ft.period = SimDuration::from_secs(1);
    probes.push(("smoke.stream2.vcl".to_string(), stream));
    probes
}

/// The class-S figure workloads the smoke perturbation pass covers: the
/// first entry of the bench crate's fast probe set (4-rank BT.S on the
/// gigabit cluster under Pcl), every protocol's first Myrinet-stack
/// entry (Pcl rides raw TCP sockets, Vcl the logging daemon — different
/// contention shapes: software overheads dominate the wire), plus the
/// first grid-deployment entry, so the shared-NIC cluster, both
/// daemon-stack Myrinet variants, and the multi-cluster WAN topology all
/// face the perturbation seeds. Kept out of [`smoke_probes`] so the
/// invariant+churn pass stays quick; the perturbation pass runs them with
/// the same seeds as the synthetic probes so real figure schedules —
/// skeleton replay, placement, server traffic — are exercised too.
pub fn figure_smoke_probes() -> Vec<(String, JobSpec)> {
    let mut out: Vec<(String, JobSpec)> = Vec::new();
    for (name, spec) in ftmpi_bench::figure_probe_specs(true) {
        let myri_proto = name
            .contains(".myri.")
            .then(|| name.rsplit('.').next().unwrap_or("").to_string());
        let want = out.is_empty()
            || myri_proto.is_some_and(|p| {
                !out.iter()
                    .any(|(n, _)| n.contains(".myri.") && n.ends_with(&format!(".{p}")))
            })
            || (name.contains(".grid.") && !out.iter().any(|(n, _)| n.contains(".grid.")));
        if want {
            out.push((name, spec));
        }
    }
    assert!(
        out.iter().filter(|(n, _)| n.contains(".myri.")).count() >= 2,
        "bench fast probe set lost a protocol's Myrinet family"
    );
    assert!(
        out.iter().any(|(n, _)| n.contains(".grid.")),
        "bench fast probe set lost the grid family"
    );
    out
}

/// Run one spec with tracing enabled and check every invariant.
pub fn run_checked(name: &str, spec: JobSpec) -> Result<ProbeOutcome, JobError> {
    let nranks = spec.nranks;
    let protocol = spec.protocol;
    let (res, trace) = run_job_with(
        spec,
        RunOptions {
            trace: true,
            tiebreak_seed: None,
            ..RunOptions::default()
        },
    )?;
    Ok(ProbeOutcome {
        name: name.to_string(),
        waves: res.waves(),
        restarts: res.rt.restarts,
        report: check_trace(protocol, nranks, &trace),
    })
}

/// Run a probe, then — if it committed a wave — re-run it with a failure
/// injected between the first commit and completion, checking both traces.
/// The kill time is derived from the clean run, so the churn variant works
/// for workloads whose duration is not known a priori.
pub fn run_checked_with_churn(
    name: &str,
    mk_spec: impl Fn() -> JobSpec,
) -> Result<Vec<ProbeOutcome>, JobError> {
    let spec = mk_spec();
    let nranks = spec.nranks;
    let protocol = spec.protocol;
    let (res, trace) = run_job_with(
        spec,
        RunOptions {
            trace: true,
            tiebreak_seed: None,
            ..RunOptions::default()
        },
    )?;
    let first_commit = trace.iter().find_map(|te| match te.kind {
        TraceKind::Proto(ProtoEvent::WaveCommit { .. }) => Some(te.time.as_nanos()),
        _ => None,
    });
    let mut out = vec![ProbeOutcome {
        name: name.to_string(),
        waves: res.waves(),
        restarts: res.rt.restarts,
        report: check_trace(protocol, nranks, &trace),
    }];
    if let Some(commit_ns) = first_commit {
        let end_ns = res.completion.as_nanos();
        if commit_ns < end_ns {
            // Strike a quarter of the way from the commit to the end:
            // comfortably after the checkpoint, comfortably before the
            // finish line.
            let kill_ns = commit_ns + (end_ns - commit_ns) / 4;
            let mut churn = mk_spec();
            churn.failures = FailurePlan::kill_at(SimTime::from_nanos(kill_ns), nranks - 1);
            out.push(run_checked(&format!("{name}.kill"), churn)?);
        }
    }
    Ok(out)
}

/// Drive every figure-workload probe (both protocols, all platform
/// families) through the checker, with churn variants.
pub fn figures_suite(fast: bool) -> Result<Vec<ProbeOutcome>, JobError> {
    let names: Vec<String> = ftmpi_bench::figure_probe_specs(fast)
        .into_iter()
        .map(|(n, _)| n)
        .collect();
    let mut out = Vec::new();
    for (i, name) in names.iter().enumerate() {
        let mk = || {
            ftmpi_bench::figure_probe_specs(fast)
                .into_iter()
                .nth(i)
                .expect("probe index in range")
                .1
        };
        out.extend(run_checked_with_churn(name, mk)?);
    }
    Ok(out)
}
