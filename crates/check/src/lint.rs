//! Hand-rolled workspace lint (no external dependencies, no syn).
//!
//! Three rules guard the determinism contract of the simulation:
//!
//! * `wallclock-in-sim` — no `std::time::Instant` / `SystemTime` in the
//!   simulation and protocol crates (`sim`, `net`, `mpi`, `core`, `nas`).
//!   Wall-clock reads there would leak host timing into virtual-time
//!   decisions. The bench harness measures real elapsed time and is
//!   exempt.
//! * `hashmap-order` — no iteration over a `HashMap` feeding ordered
//!   output. `HashMap` iteration order is randomized per process; it may
//!   only be iterated into an order-insensitive sink (`sum`, `count`,
//!   `any`, `all`, …) or followed by an explicit sort within a few lines.
//! * `core-unwrap` — no `.unwrap()` in `crates/core/src`: protocol code
//!   must carry an explanation (`expect`) or handle the `None`/`Err`.
//!
//! Escape hatch: a `lint:allow(<rule>)` comment on the offending line or
//! the line above suppresses the finding.
//!
//! The scanner strips line comments and string literals before matching,
//! so rule needles inside doc comments or message strings don't trip it.

use std::path::Path;

/// Rule id: wall-clock reads in simulation crates.
pub const RULE_WALLCLOCK: &str = "wallclock-in-sim";
/// Rule id: HashMap iteration feeding ordered output.
pub const RULE_HASHMAP_ORDER: &str = "hashmap-order";
/// Rule id: `.unwrap()` in `crates/core`.
pub const RULE_CORE_UNWRAP: &str = "core-unwrap";

/// Crates whose `src/` must not read the wall clock.
const WALLCLOCK_CRATES: &[&str] = &["sim", "net", "mpi", "core", "nas"];

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LintHit {
    /// Path relative to the workspace root.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Rule identifier.
    pub rule: &'static str,
    /// Human-readable description.
    pub msg: String,
}

impl std::fmt::Display for LintHit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.msg
        )
    }
}

/// Strip string literals and `//` comments from one source line, keeping
/// byte positions stable where possible (stripped spans become spaces).
fn scrub(line: &str) -> String {
    let mut out = String::with_capacity(line.len());
    let mut chars = line.chars().peekable();
    let mut in_str = false;
    let mut in_char_escape = false;
    while let Some(c) = chars.next() {
        if in_str {
            if in_char_escape {
                in_char_escape = false;
            } else if c == '\\' {
                in_char_escape = true;
            } else if c == '"' {
                in_str = false;
            }
            out.push(' ');
            continue;
        }
        match c {
            '"' => {
                in_str = true;
                out.push(' ');
            }
            '/' if chars.peek() == Some(&'/') => break,
            _ => out.push(c),
        }
    }
    out
}

fn is_ident_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

/// The identifier a `HashMap` declaration binds, if recognizable:
/// `name: HashMap<...>` (field or typed let) or `name = HashMap::new()`.
fn hashmap_binding(scrubbed: &str) -> Option<String> {
    let at = scrubbed.find("HashMap")?;
    let before = scrubbed[..at].trim_end();
    let before = before
        .strip_suffix(':')
        .or_else(|| before.strip_suffix('='))
        .map(str::trim_end)?;
    let name: String = before
        .chars()
        .rev()
        .take_while(|&c| is_ident_char(c))
        .collect::<String>()
        .chars()
        .rev()
        .collect();
    if name.is_empty() || name.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        None
    } else {
        Some(name)
    }
}

/// Iteration methods whose order reaches the caller.
const ITER_METHODS: &[&str] = &[
    ".iter()",
    ".keys()",
    ".values()",
    ".values_mut()",
    ".into_iter()",
    ".drain()",
];

/// Sinks that collapse iteration order on the same line.
const ORDER_FREE_SINKS: &[&str] = &[
    ".sum()", ".sum::", ".count()", ".any(", ".all(", ".min()", ".max()", ".len()", ".fold(0",
];

/// How far (in lines) a sort may follow an iteration to sanction it.
const SORT_WINDOW: usize = 8;

fn allowed(lines: &[&str], i: usize, rule: &str) -> bool {
    let marker = format!("lint:allow({rule})");
    lines[i].contains(&marker) || (i > 0 && lines[i - 1].contains(&marker))
}

/// Lint one file's text. `relpath` is the workspace-relative path (it
/// selects which rules apply).
pub fn lint_source(relpath: &str, text: &str) -> Vec<LintHit> {
    let mut hits = Vec::new();
    let lines: Vec<&str> = text.lines().collect();
    let scrubbed: Vec<String> = lines.iter().map(|l| scrub(l)).collect();
    let norm = relpath.replace('\\', "/");

    let in_wallclock_scope = WALLCLOCK_CRATES
        .iter()
        .any(|c| norm.starts_with(&format!("crates/{c}/src/")));
    let in_core_src = norm.starts_with("crates/core/src/");

    // Pass 1: collect HashMap-typed bindings declared in this file.
    let mut map_names: Vec<String> = Vec::new();
    for s in &scrubbed {
        if let Some(name) = hashmap_binding(s) {
            if !map_names.contains(&name) {
                map_names.push(name);
            }
        }
    }

    for (i, s) in scrubbed.iter().enumerate() {
        let lineno = i + 1;
        if in_wallclock_scope {
            for needle in [
                "std::time::Instant",
                "std::time::SystemTime",
                "Instant::now",
                "SystemTime::now",
            ] {
                if s.contains(needle) && !allowed(&lines, i, RULE_WALLCLOCK) {
                    hits.push(LintHit {
                        file: norm.clone(),
                        line: lineno,
                        rule: RULE_WALLCLOCK,
                        msg: format!(
                            "wall-clock read `{needle}` in a simulation crate \
                             (virtual time only)"
                        ),
                    });
                    break;
                }
            }
        }
        if in_core_src && s.contains(".unwrap()") && !allowed(&lines, i, RULE_CORE_UNWRAP) {
            hits.push(LintHit {
                file: norm.clone(),
                line: lineno,
                rule: RULE_CORE_UNWRAP,
                msg: "`.unwrap()` in protocol code: use `expect` with an \
                      invariant message or handle the case"
                    .to_string(),
            });
        }
        for name in &map_names {
            let Some(call) = ITER_METHODS
                .iter()
                .find(|m| contains_member_call(s, name, m))
            else {
                continue;
            };
            let order_free = ORDER_FREE_SINKS.iter().any(|sink| s.contains(sink));
            let sorted_soon = scrubbed[i..scrubbed.len().min(i + SORT_WINDOW)]
                .iter()
                .any(|l| l.contains("sort"));
            if !order_free && !sorted_soon && !allowed(&lines, i, RULE_HASHMAP_ORDER) {
                hits.push(LintHit {
                    file: norm.clone(),
                    line: lineno,
                    rule: RULE_HASHMAP_ORDER,
                    msg: format!(
                        "`{name}{call}` iterates a HashMap in arbitrary order; \
                         sort the result, use an order-free sink, or switch to BTreeMap"
                    ),
                });
            }
        }
    }
    hits
}

/// `true` if `line` contains `name<method>` with `name` not preceded by an
/// identifier character (so `pair_last.iter()` doesn't match `last`).
fn contains_member_call(line: &str, name: &str, method: &str) -> bool {
    let needle = format!("{name}{method}");
    let mut from = 0;
    while let Some(at) = line[from..].find(&needle) {
        let abs = from + at;
        let preceded = line[..abs].chars().next_back().is_some_and(is_ident_char);
        if !preceded {
            return true;
        }
        from = abs + 1;
    }
    false
}

/// Recursively collect `.rs` files under `dir`, sorted for determinism.
fn rust_files(dir: &Path, out: &mut Vec<std::path::PathBuf>) {
    let Ok(rd) = std::fs::read_dir(dir) else {
        return;
    };
    let mut entries: Vec<_> = rd.flatten().map(|e| e.path()).collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            if path.file_name().is_some_and(|n| n == "target") {
                continue;
            }
            rust_files(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// Lint every `.rs` file under `<root>/crates`, returning all findings.
pub fn run_lint(root: &Path) -> Vec<LintHit> {
    let mut files = Vec::new();
    rust_files(&root.join("crates"), &mut files);
    let mut hits = Vec::new();
    for path in files {
        let Ok(text) = std::fs::read_to_string(&path) else {
            continue;
        };
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .into_owned();
        hits.extend(lint_source(&rel, &text));
    }
    hits
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wallclock_flagged_only_in_sim_crates() {
        let src = "use std::time::Instant;\n";
        assert_eq!(lint_source("crates/sim/src/kernel.rs", src).len(), 1);
        assert_eq!(lint_source("crates/core/src/vcl.rs", src).len(), 1);
        assert!(lint_source("crates/bench/src/sweep.rs", src).is_empty());
        assert!(lint_source("crates/sim/tests/e2e.rs", src).is_empty());
    }

    #[test]
    fn wallclock_in_comments_and_strings_is_ignored() {
        let src = "// std::time::Instant is banned here\nlet s = \"Instant::now\";\n";
        assert!(lint_source("crates/sim/src/kernel.rs", src).is_empty());
    }

    #[test]
    fn core_unwrap_flagged_with_allow_escape() {
        let src = "let x = y.unwrap();\n";
        let hits = lint_source("crates/core/src/pcl.rs", src);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].rule, RULE_CORE_UNWRAP);
        assert!(lint_source("crates/mpi/src/runtime.rs", src).is_empty());
        let allowed = "// lint:allow(core-unwrap)\nlet x = y.unwrap();\n";
        assert!(lint_source("crates/core/src/pcl.rs", allowed).is_empty());
        // `unwrap_or` is not `unwrap`.
        assert!(lint_source("crates/core/src/pcl.rs", "y.unwrap_or(0);\n").is_empty());
    }

    #[test]
    fn hashmap_iteration_rules() {
        let decl = "    requests: HashMap<u64, Req>,\n";
        let bad = format!("{decl}    for r in requests.values() {{ out.push(r); }}\n");
        let hits = lint_source("crates/mpi/src/runtime.rs", &bad);
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert_eq!(hits[0].rule, RULE_HASHMAP_ORDER);

        let summed = format!("{decl}    let n: u64 = requests.values().map(|r| r.n).sum();\n");
        assert!(lint_source("crates/mpi/src/runtime.rs", &summed).is_empty());

        let sorted =
            format!("{decl}    let mut v: Vec<_> = requests.values().collect();\n    v.sort();\n");
        assert!(lint_source("crates/mpi/src/runtime.rs", &sorted).is_empty());

        // An unrelated identifier sharing a suffix does not match.
        let other = format!("{decl}    best_requests.iter();\n");
        assert!(lint_source("crates/mpi/src/runtime.rs", &other).is_empty());
    }

    #[test]
    fn hashmap_binding_extraction() {
        assert_eq!(
            hashmap_binding("    pair_last: HashMap<(NodeId, NodeId), SimTime>,"),
            Some("pair_last".to_string())
        );
        assert_eq!(
            hashmap_binding("let mut m = HashMap::new();"),
            Some("m".to_string())
        );
        assert_eq!(hashmap_binding("use std::collections::HashMap;"), None);
    }
}
