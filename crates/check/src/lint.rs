//! Hand-rolled workspace lint (no external dependencies, no syn).
//!
//! Six rules guard the determinism contract of the simulation:
//!
//! * `wallclock-in-sim` — no `std::time::Instant` / `SystemTime` in the
//!   simulation and protocol crates (`sim`, `net`, `mpi`, `core`, `nas`).
//!   Wall-clock reads there would leak host timing into virtual-time
//!   decisions. The bench harness measures real elapsed time and is
//!   exempt.
//! * `hashmap-order` — no iteration over a `HashMap` feeding ordered
//!   output. `HashMap` iteration order is randomized per process; it may
//!   only be iterated into an order-insensitive sink (`sum`, `count`,
//!   `any`, `all`, …) or followed by an explicit sort within a few lines.
//! * `core-unwrap` — no `.unwrap()` in `crates/core/src`: protocol code
//!   must carry an explanation (`expect`) or handle the `None`/`Err`.
//! * `lane-audit` — cross-file: every `EventKind` variant in
//!   `crates/sim/src/event.rs` must appear at a schedule site that
//!   assigns an explicit tiebreak lane (a 3-argument `EventQueue::push`
//!   whose lane argument is not `None`), so no event class can silently
//!   reorder under the race detector's perturbation seeds. The same rule
//!   pins tiekey *derivation* to `event.rs`: no other sim-crate source may
//!   mention `splitmix64`, so the queue backends (ladder rungs, heap) can
//!   only order keys they were handed, never re-derive lane→tiekey
//!   mappings of their own. A second cross-file half confines the event
//!   *push path*: `Key { .. }` construction, `arena.insert(`, and
//!   `backend.push(` may appear only in `event.rs` (plus the defining
//!   modules' own files), so neither the ladder nor any caller can mint
//!   keys or slots that bypass the lane bookkeeping the schedule
//!   explorer replays against.
//! * `env-registry` — every `std::env::var`/`var_os` read in the
//!   workspace must name a toggle from the declared [`ENV_TOGGLES`]
//!   registry, and every registered toggle must be documented in the
//!   README's environment-toggle table. Ad-hoc env reads are invisible
//!   determinism knobs; the registry makes the full set auditable.
//! * `sim-audit` — the event-kernel memory machinery
//!   (`crates/sim/src/arena.rs`, `ladder.rs`) must contain no `unsafe`
//!   and no `.unwrap()` outside its test module: the slab recycles slots
//!   and the ladder re-buckets keys, and both must fail loudly with
//!   `expect` invariant messages, never via unchecked access.
//!
//! Escape hatch: a `lint:allow(<rule>)` comment on the offending line or
//! the line above suppresses the finding.
//!
//! The scanner strips line comments and string literals before matching,
//! so rule needles inside doc comments or message strings don't trip it.

use std::path::Path;

/// Rule id: wall-clock reads in simulation crates.
pub const RULE_WALLCLOCK: &str = "wallclock-in-sim";
/// Rule id: HashMap iteration feeding ordered output.
pub const RULE_HASHMAP_ORDER: &str = "hashmap-order";
/// Rule id: `.unwrap()` in `crates/core`.
pub const RULE_CORE_UNWRAP: &str = "core-unwrap";
/// Rule id: `EventKind` variant never scheduled on a tiebreak lane.
pub const RULE_LANE_AUDIT: &str = "lane-audit";
/// Rule id: unregistered or undocumented environment toggle.
pub const RULE_ENV_REGISTRY: &str = "env-registry";
/// Rule id: `unsafe` / bare `unwrap` in the kernel memory machinery.
pub const RULE_SIM_AUDIT: &str = "sim-audit";

/// Crates whose `src/` must not read the wall clock.
const WALLCLOCK_CRATES: &[&str] = &["sim", "net", "mpi", "core", "nas"];

/// The declared environment-toggle registry: the complete set of `FTMPI_*`
/// variables the workspace may read. Every entry must also appear in the
/// README's toggle table (checked by [`env_registry_hits`]).
pub const ENV_TOGGLES: &[&str] = &[
    "FTMPI_NO_LADDER",
    "FTMPI_THREADED",
    "FTMPI_NO_POOL",
    "FTMPI_NO_BATCH",
    "FTMPI_NO_CACHE",
    "FTMPI_THREAD_CAP",
    "FTMPI_DEBUG",
    "FTMPI_MINE_BUDGET",
    "FTMPI_NO_MINE",
    "FTMPI_NO_SCRUB",
];

/// Files audited by the `sim-audit` rule. The checkpoint store rides
/// along with the kernel memory files: replica lookups must surface
/// typed `StoreError`s, never panic on a missing or damaged slot.
const SIM_AUDIT_FILES: &[&str] = &[
    "crates/sim/src/arena.rs",
    "crates/sim/src/ladder.rs",
    "crates/sim/src/process.rs",
    "crates/core/src/server.rs",
];

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LintHit {
    /// Path relative to the workspace root.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Rule identifier.
    pub rule: &'static str,
    /// Human-readable description.
    pub msg: String,
}

impl std::fmt::Display for LintHit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.msg
        )
    }
}

/// Strip string literals and `//` comments from one source line, keeping
/// byte positions stable where possible (stripped spans become spaces).
fn scrub(line: &str) -> String {
    let mut out = String::with_capacity(line.len());
    let mut chars = line.chars().peekable();
    let mut in_str = false;
    let mut in_char_escape = false;
    while let Some(c) = chars.next() {
        if in_str {
            if in_char_escape {
                in_char_escape = false;
            } else if c == '\\' {
                in_char_escape = true;
            } else if c == '"' {
                in_str = false;
            }
            out.push(' ');
            continue;
        }
        match c {
            '"' => {
                in_str = true;
                out.push(' ');
            }
            '/' if chars.peek() == Some(&'/') => break,
            _ => out.push(c),
        }
    }
    out
}

fn is_ident_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

/// The identifier a `HashMap` declaration binds, if recognizable:
/// `name: HashMap<...>` (field or typed let) or `name = HashMap::new()`.
fn hashmap_binding(scrubbed: &str) -> Option<String> {
    let at = scrubbed.find("HashMap")?;
    let before = scrubbed[..at].trim_end();
    let before = before
        .strip_suffix(':')
        .or_else(|| before.strip_suffix('='))
        .map(str::trim_end)?;
    let name: String = before
        .chars()
        .rev()
        .take_while(|&c| is_ident_char(c))
        .collect::<String>()
        .chars()
        .rev()
        .collect();
    if name.is_empty() || name.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        None
    } else {
        Some(name)
    }
}

/// Iteration methods whose order reaches the caller.
const ITER_METHODS: &[&str] = &[
    ".iter()",
    ".keys()",
    ".values()",
    ".values_mut()",
    ".into_iter()",
    ".drain()",
];

/// Sinks that collapse iteration order on the same line.
const ORDER_FREE_SINKS: &[&str] = &[
    ".sum()", ".sum::", ".count()", ".any(", ".all(", ".min()", ".max()", ".len()", ".fold(0",
];

/// How far (in lines) a sort may follow an iteration to sanction it.
const SORT_WINDOW: usize = 8;

fn allowed(lines: &[&str], i: usize, rule: &str) -> bool {
    let marker = format!("lint:allow({rule})");
    lines[i].contains(&marker) || (i > 0 && lines[i - 1].contains(&marker))
}

/// Lint one file's text. `relpath` is the workspace-relative path (it
/// selects which rules apply).
pub fn lint_source(relpath: &str, text: &str) -> Vec<LintHit> {
    let mut hits = Vec::new();
    let lines: Vec<&str> = text.lines().collect();
    let scrubbed: Vec<String> = lines.iter().map(|l| scrub(l)).collect();
    let norm = relpath.replace('\\', "/");

    let in_wallclock_scope = WALLCLOCK_CRATES
        .iter()
        .any(|c| norm.starts_with(&format!("crates/{c}/src/")));
    let in_core_src = norm.starts_with("crates/core/src/");
    let in_sim_audit = SIM_AUDIT_FILES.contains(&norm.as_str());
    // The sim-audit unwrap ban covers production code only; `#[cfg(test)]`
    // starts the file's test module and ends the audited region.
    let test_start = scrubbed
        .iter()
        .position(|s| s.contains("#[cfg(test)]"))
        .unwrap_or(scrubbed.len());

    // Pass 1: collect HashMap-typed bindings declared in this file.
    let mut map_names: Vec<String> = Vec::new();
    for s in &scrubbed {
        if let Some(name) = hashmap_binding(s) {
            if !map_names.contains(&name) {
                map_names.push(name);
            }
        }
    }

    for (i, s) in scrubbed.iter().enumerate() {
        let lineno = i + 1;
        if in_wallclock_scope {
            for needle in [
                "std::time::Instant",
                "std::time::SystemTime",
                "Instant::now",
                "SystemTime::now",
            ] {
                if s.contains(needle) && !allowed(&lines, i, RULE_WALLCLOCK) {
                    hits.push(LintHit {
                        file: norm.clone(),
                        line: lineno,
                        rule: RULE_WALLCLOCK,
                        msg: format!(
                            "wall-clock read `{needle}` in a simulation crate \
                             (virtual time only)"
                        ),
                    });
                    break;
                }
            }
        }
        if in_core_src && s.contains(".unwrap()") && !allowed(&lines, i, RULE_CORE_UNWRAP) {
            hits.push(LintHit {
                file: norm.clone(),
                line: lineno,
                rule: RULE_CORE_UNWRAP,
                msg: "`.unwrap()` in protocol code: use `expect` with an \
                      invariant message or handle the case"
                    .to_string(),
            });
        }
        if in_sim_audit && !allowed(&lines, i, RULE_SIM_AUDIT) {
            if contains_word(s, "unsafe") {
                hits.push(LintHit {
                    file: norm.clone(),
                    line: lineno,
                    rule: RULE_SIM_AUDIT,
                    msg: "`unsafe` in the kernel memory machinery: the slab and \
                          ladder stay entirely in safe Rust"
                        .to_string(),
                });
            }
            if i < test_start && s.contains(".unwrap()") {
                hits.push(LintHit {
                    file: norm.clone(),
                    line: lineno,
                    rule: RULE_SIM_AUDIT,
                    msg: "`.unwrap()` in slot/key bookkeeping: recycled slots \
                          and re-bucketed keys must fail with an `expect` \
                          invariant message"
                        .to_string(),
                });
            }
        }
        for name in &map_names {
            let Some(call) = ITER_METHODS
                .iter()
                .find(|m| contains_member_call(s, name, m))
            else {
                continue;
            };
            let order_free = ORDER_FREE_SINKS.iter().any(|sink| s.contains(sink));
            let sorted_soon = scrubbed[i..scrubbed.len().min(i + SORT_WINDOW)]
                .iter()
                .any(|l| l.contains("sort"));
            if !order_free && !sorted_soon && !allowed(&lines, i, RULE_HASHMAP_ORDER) {
                hits.push(LintHit {
                    file: norm.clone(),
                    line: lineno,
                    rule: RULE_HASHMAP_ORDER,
                    msg: format!(
                        "`{name}{call}` iterates a HashMap in arbitrary order; \
                         sort the result, use an order-free sink, or switch to BTreeMap"
                    ),
                });
            }
        }
    }
    hits
}

/// `true` if `line` contains `word` delimited by non-identifier characters.
fn contains_word(line: &str, word: &str) -> bool {
    let mut from = 0;
    while let Some(at) = line[from..].find(word) {
        let abs = from + at;
        let pre = line[..abs].chars().next_back().is_some_and(is_ident_char);
        let post = line[abs + word.len()..]
            .chars()
            .next()
            .is_some_and(is_ident_char);
        if !pre && !post {
            return true;
        }
        from = abs + word.len();
    }
    false
}

/// The `FTMPI_*` identifiers mentioned on a (raw, unscrubbed) line — env
/// variable names live inside string literals, which `scrub` blanks.
fn ftmpi_names(raw: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(at) = raw[from..].find("FTMPI_") {
        let abs = from + at;
        let name: String = raw[abs..]
            .chars()
            .take_while(|&c| is_ident_char(c))
            .collect();
        from = abs + name.len();
        if !out.contains(&name) {
            out.push(name);
        }
    }
    out
}

/// Cross-file `env-registry` rule over every workspace source plus the
/// README text: each `env::var`/`env::var_os` read must name a registered
/// [`ENV_TOGGLES`] entry on the same line, and each registered toggle must
/// be documented in the README.
pub fn env_registry_hits(sources: &[(String, String)], readme: &str) -> Vec<LintHit> {
    let mut hits = Vec::new();
    for (path, text) in sources {
        let norm = path.replace('\\', "/");
        let lines: Vec<&str> = text.lines().collect();
        for (i, raw) in lines.iter().enumerate() {
            let s = scrub(raw);
            if !(s.contains("env::var") || s.contains("env::var_os")) {
                continue;
            }
            if allowed(&lines, i, RULE_ENV_REGISTRY) {
                continue;
            }
            let names = ftmpi_names(raw);
            if names.is_empty() {
                hits.push(LintHit {
                    file: norm.clone(),
                    line: i + 1,
                    rule: RULE_ENV_REGISTRY,
                    msg: "environment read without a registered `FTMPI_*` toggle \
                          name on the line: every env knob must come from the \
                          declared registry"
                        .to_string(),
                });
                continue;
            }
            for name in names {
                if !ENV_TOGGLES.contains(&name.as_str()) {
                    hits.push(LintHit {
                        file: norm.clone(),
                        line: i + 1,
                        rule: RULE_ENV_REGISTRY,
                        msg: format!(
                            "`{name}` is read but not in the declared toggle \
                             registry (lint::ENV_TOGGLES)"
                        ),
                    });
                }
            }
        }
    }
    for toggle in ENV_TOGGLES {
        if !readme.contains(toggle) {
            hits.push(LintHit {
                file: "README.md".to_string(),
                line: 1,
                rule: RULE_ENV_REGISTRY,
                msg: format!(
                    "registered toggle `{toggle}` is missing from the README's \
                     environment-toggle table"
                ),
            });
        }
    }
    hits
}

/// `true` if `line` contains `name<method>` with `name` not preceded by an
/// identifier character (so `pair_last.iter()` doesn't match `last`).
fn contains_member_call(line: &str, name: &str, method: &str) -> bool {
    let needle = format!("{name}{method}");
    let mut from = 0;
    while let Some(at) = line[from..].find(&needle) {
        let abs = from + at;
        let preceded = line[..abs].chars().next_back().is_some_and(is_ident_char);
        if !preceded {
            return true;
        }
        from = abs + 1;
    }
    false
}

/// `EventKind` variant names and their 1-based line numbers, parsed from
/// the text of `event.rs`.
fn event_kind_variants(text: &str) -> Vec<(String, usize)> {
    let mut variants = Vec::new();
    let mut depth = 0usize;
    let mut in_enum = false;
    for (i, line) in text.lines().enumerate() {
        let s = scrub(line);
        let t = s.trim();
        if !in_enum {
            if t.contains("enum EventKind") {
                in_enum = true;
                depth = t.matches('{').count();
            }
            continue;
        }
        if depth == 1 && t.chars().next().is_some_and(|c| c.is_ascii_uppercase()) {
            let name: String = t.chars().take_while(|&c| is_ident_char(c)).collect();
            if !name.is_empty() {
                variants.push((name, i + 1));
            }
        }
        depth += t.matches('{').count();
        let closes = t.matches('}').count();
        if closes >= depth {
            break;
        }
        depth -= closes;
    }
    variants
}

/// Three-argument `.push(` call sites in comment/string-scrubbed source
/// joined with newlines: `(line, [time, lane, kind])`. Arguments are
/// split at top-level commas with paren/bracket/brace balancing, so
/// multi-line sites and nested closures parse correctly.
fn push_sites(joined: &str) -> Vec<(usize, Vec<String>)> {
    const NEEDLE: &str = ".push(";
    let mut sites = Vec::new();
    let mut search = 0;
    while let Some(found) = joined[search..].find(NEEDLE) {
        let abs = search + found;
        let lineno = joined[..abs].matches('\n').count() + 1;
        let body = &joined[abs + NEEDLE.len()..];
        let mut depth = 1usize;
        let mut args = vec![String::new()];
        let mut consumed = body.len();
        for (off, c) in body.char_indices() {
            match c {
                '(' | '[' | '{' => depth += 1,
                ')' | ']' | '}' => {
                    depth -= 1;
                    if depth == 0 {
                        consumed = off;
                        break;
                    }
                }
                ',' if depth == 1 => {
                    args.push(String::new());
                    continue;
                }
                _ => {}
            }
            args.last_mut().expect("args never empty").push(c);
        }
        if args.last().is_some_and(|a| a.trim().is_empty()) && args.len() > 1 {
            args.pop(); // trailing comma in a multi-line call
        }
        if args.len() == 3 {
            sites.push((lineno, args));
        }
        search = abs + NEEDLE.len() + consumed;
    }
    sites
}

/// Cross-file lane audit (rule `lane-audit`) over `(relpath, text)`
/// sources from the sim crate. Every `EventKind` variant must be reachable
/// from a lane-assigning schedule site — a 3-argument `EventQueue::push`
/// whose lane argument is not the literal `None` and whose kind argument
/// constructs that variant. A variant only ever pushed laneless would get
/// a fresh perturbation tiekey per event, so its same-time ordering would
/// drift under the race detector's seeds instead of staying pinned to its
/// process lane.
pub fn lane_audit_sources(sources: &[(String, String)]) -> Vec<LintHit> {
    let Some((event_path, event_text)) = sources
        .iter()
        .find(|(p, _)| p.replace('\\', "/").ends_with("src/event.rs"))
    else {
        return Vec::new();
    };
    let variants = event_kind_variants(event_text);
    let mut covered: Vec<bool> = vec![false; variants.len()];
    for (_, text) in sources {
        let joined: Vec<String> = text.lines().map(scrub).collect();
        for (_, args) in push_sites(&joined.join("\n")) {
            let lane = args[1].trim();
            if lane.is_empty() || lane == "None" {
                continue;
            }
            let kind = args[2].trim_start();
            for (i, (v, _)) in variants.iter().enumerate() {
                let ctor = format!("EventKind::{v}");
                if kind.starts_with(&ctor)
                    && !kind[ctor.len()..].chars().next().is_some_and(is_ident_char)
                {
                    covered[i] = true;
                }
            }
        }
    }
    let event_lines: Vec<&str> = event_text.lines().collect();
    let mut hits: Vec<LintHit> = variants
        .iter()
        .zip(&covered)
        .filter(|&((_, line), &cov)| !cov && !allowed(&event_lines, line - 1, RULE_LANE_AUDIT))
        .map(|((v, line), _)| LintHit {
            file: event_path.replace('\\', "/"),
            line: *line,
            rule: RULE_LANE_AUDIT,
            msg: format!(
                "`EventKind::{v}` is never pushed with an explicit tiebreak \
                 lane; laneless events reorder under perturbation seeds"
            ),
        })
        .collect();
    hits.extend(tiekey_confinement(sources));
    hits.extend(push_confinement(sources));
    hits
}

/// Third half of the lane audit: the event *push path* is confined.
/// `Key { .. }` construction, `arena.insert(` (slot allocation), and
/// `backend.push(` (queue entry) may appear only in `event.rs` — plus the
/// defining module's own file (`ladder.rs` owns `Key`, `arena.rs` owns the
/// slab), whose internals and tests legitimately touch their own type.
/// Everything else must go through `EventQueue::push`, which records the
/// lane the schedule explorer replays against; a rogue push site would
/// create events invisible to the exploration candidate sets.
fn push_confinement(sources: &[(String, String)]) -> Vec<LintHit> {
    const CONFINED: &[(&str, &[&str], &str)] = &[
        (
            "Key {",
            &["src/event.rs", "src/ladder.rs"],
            "`Key` construction outside the queue: events must enter through \
             `EventQueue::push` so their lane is recorded",
        ),
        (
            "arena.insert(",
            &["src/event.rs", "src/arena.rs"],
            "arena slot allocation outside the queue: a slot without a key \
             leaks and is invisible to exploration",
        ),
        (
            "backend.push(",
            &["src/event.rs"],
            "raw backend push outside the queue: bypasses lane bookkeeping \
             (use `EventQueue::push` / `unpop`)",
        ),
        (
            ".as_mut().poll(",
            &["src/kernel.rs"],
            "coroutine stepping outside the kernel drive loop: a process \
             state machine may only be polled by `drive_coro`, where the \
             dispatched wake and its lane are recorded",
        ),
        (
            "resume_batch(",
            &["src/kernel.rs", "src/process.rs"],
            "threaded wake delivery outside the kernel drive loop: handoff \
             resumes must come from the dispatcher so both process backends \
             see the same wake order",
        ),
    ];
    let mut hits = Vec::new();
    for (path, text) in sources {
        let norm = path.replace('\\', "/");
        let lines: Vec<&str> = text.lines().collect();
        for (i, raw) in lines.iter().enumerate() {
            let s = scrub(raw);
            for (needle, allowed_in, msg) in CONFINED {
                if allowed_in.iter().any(|suffix| norm.ends_with(suffix)) {
                    continue;
                }
                let found = if let Some(rest) = needle.strip_suffix(" {") {
                    // Brace construction: match the bare type name too
                    // (`Key{`), but not longer identifiers (`WakeKey {`).
                    [format!("{rest} {{"), format!("{rest}{{")]
                        .iter()
                        .any(|n| contains_word_prefix(&s, rest, n))
                } else {
                    s.contains(needle)
                };
                if found && !allowed(&lines, i, RULE_LANE_AUDIT) {
                    hits.push(LintHit {
                        file: norm.clone(),
                        line: i + 1,
                        rule: RULE_LANE_AUDIT,
                        msg: (*msg).to_string(),
                    });
                }
            }
        }
    }
    hits
}

/// `true` if `line` contains `needle` where the leading `word` part is not
/// preceded by an identifier character.
fn contains_word_prefix(line: &str, word: &str, needle: &str) -> bool {
    let mut from = 0;
    while let Some(at) = line[from..].find(needle) {
        let abs = from + at;
        let pre = line[..abs].chars().next_back().is_some_and(is_ident_char);
        if !pre {
            return true;
        }
        from = abs + word.len();
    }
    false
}

/// Second half of the lane audit: the lane→tiekey derivation (the
/// `splitmix64` mixer) must live in `event.rs` and nowhere else in the sim
/// crate. The queue backends order the keys they are handed; a backend (or
/// any other module) deriving its own tiekey would silently fork the
/// ordering contract between the ladder and heap push paths.
fn tiekey_confinement(sources: &[(String, String)]) -> Vec<LintHit> {
    let mut hits = Vec::new();
    for (path, text) in sources {
        let norm = path.replace('\\', "/");
        if norm.ends_with("src/event.rs") {
            continue;
        }
        let lines: Vec<&str> = text.lines().collect();
        for (i, line) in lines.iter().enumerate() {
            let s = scrub(line);
            let Some(at) = s.find("splitmix64") else {
                continue;
            };
            let pre = s[..at].chars().next_back().is_some_and(is_ident_char);
            let post = s[at + "splitmix64".len()..]
                .chars()
                .next()
                .is_some_and(is_ident_char);
            if !pre && !post && !allowed(&lines, i, RULE_LANE_AUDIT) {
                hits.push(LintHit {
                    file: norm.clone(),
                    line: i + 1,
                    rule: RULE_LANE_AUDIT,
                    msg: "tiekey derivation (`splitmix64`) outside event.rs: \
                          queue backends must order keys, not derive them"
                        .to_string(),
                });
            }
        }
    }
    hits
}

/// Recursively collect `.rs` files under `dir`, sorted for determinism.
fn rust_files(dir: &Path, out: &mut Vec<std::path::PathBuf>) {
    let Ok(rd) = std::fs::read_dir(dir) else {
        return;
    };
    let mut entries: Vec<_> = rd.flatten().map(|e| e.path()).collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            if path.file_name().is_some_and(|n| n == "target") {
                continue;
            }
            rust_files(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// Lint every `.rs` file under `<root>/crates`, returning all findings.
/// Includes the cross-file [`lane_audit_sources`] pass over the sim crate.
pub fn run_lint(root: &Path) -> Vec<LintHit> {
    let mut files = Vec::new();
    rust_files(&root.join("crates"), &mut files);
    let mut hits = Vec::new();
    let mut sim_sources: Vec<(String, String)> = Vec::new();
    let mut all_sources: Vec<(String, String)> = Vec::new();
    for path in files {
        let Ok(text) = std::fs::read_to_string(&path) else {
            continue;
        };
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .into_owned();
        hits.extend(lint_source(&rel, &text));
        if rel.replace('\\', "/").starts_with("crates/sim/src/") {
            sim_sources.push((rel.clone(), text.clone()));
        }
        all_sources.push((rel, text));
    }
    hits.extend(lane_audit_sources(&sim_sources));
    let readme = std::fs::read_to_string(root.join("README.md")).unwrap_or_default();
    hits.extend(env_registry_hits(&all_sources, &readme));
    hits
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wallclock_flagged_only_in_sim_crates() {
        let src = "use std::time::Instant;\n";
        assert_eq!(lint_source("crates/sim/src/kernel.rs", src).len(), 1);
        assert_eq!(lint_source("crates/core/src/vcl.rs", src).len(), 1);
        assert!(lint_source("crates/bench/src/sweep.rs", src).is_empty());
        assert!(lint_source("crates/sim/tests/e2e.rs", src).is_empty());
    }

    #[test]
    fn wallclock_in_comments_and_strings_is_ignored() {
        let src = "// std::time::Instant is banned here\nlet s = \"Instant::now\";\n";
        assert!(lint_source("crates/sim/src/kernel.rs", src).is_empty());
    }

    #[test]
    fn core_unwrap_flagged_with_allow_escape() {
        let src = "let x = y.unwrap();\n";
        let hits = lint_source("crates/core/src/pcl.rs", src);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].rule, RULE_CORE_UNWRAP);
        assert!(lint_source("crates/mpi/src/runtime.rs", src).is_empty());
        let allowed = "// lint:allow(core-unwrap)\nlet x = y.unwrap();\n";
        assert!(lint_source("crates/core/src/pcl.rs", allowed).is_empty());
        // `unwrap_or` is not `unwrap`.
        assert!(lint_source("crates/core/src/pcl.rs", "y.unwrap_or(0);\n").is_empty());
    }

    #[test]
    fn hashmap_iteration_rules() {
        let decl = "    requests: HashMap<u64, Req>,\n";
        let bad = format!("{decl}    for r in requests.values() {{ out.push(r); }}\n");
        let hits = lint_source("crates/mpi/src/runtime.rs", &bad);
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert_eq!(hits[0].rule, RULE_HASHMAP_ORDER);

        let summed = format!("{decl}    let n: u64 = requests.values().map(|r| r.n).sum();\n");
        assert!(lint_source("crates/mpi/src/runtime.rs", &summed).is_empty());

        let sorted =
            format!("{decl}    let mut v: Vec<_> = requests.values().collect();\n    v.sort();\n");
        assert!(lint_source("crates/mpi/src/runtime.rs", &sorted).is_empty());

        // An unrelated identifier sharing a suffix does not match.
        let other = format!("{decl}    best_requests.iter();\n");
        assert!(lint_source("crates/mpi/src/runtime.rs", &other).is_empty());
    }

    const FAKE_EVENT_RS: &str = "\
pub(crate) enum EventKind {
    /// Run a closure.
    Call(Box<dyn FnOnce() + Send>),
    /// Wake a process.
    Resume(Pid, WakeKind),
}
";

    fn sources(kernel: &str) -> Vec<(String, String)> {
        vec![
            ("crates/sim/src/event.rs".into(), FAKE_EVENT_RS.into()),
            ("crates/sim/src/kernel.rs".into(), kernel.into()),
        ]
    }

    #[test]
    fn lane_audit_passes_when_every_variant_has_a_laned_push() {
        let kernel = "
    queue.push(at, Some(pid.lane()), EventKind::Resume(pid, kind));
    queue.push(
        at,
        Some(pid.lane()),
        EventKind::Call(Box::new(move || { nested(parens, here); })),
    );
";
        assert!(lane_audit_sources(&sources(kernel)).is_empty());
    }

    #[test]
    fn lane_audit_flags_variant_only_pushed_laneless() {
        let kernel = "
    queue.push(at, Some(pid.lane()), EventKind::Resume(pid, kind));
    queue.push(at, None, EventKind::Call(Box::new(f)));
";
        let hits = lane_audit_sources(&sources(kernel));
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert_eq!(hits[0].rule, RULE_LANE_AUDIT);
        assert_eq!(hits[0].file, "crates/sim/src/event.rs");
        assert!(hits[0].msg.contains("EventKind::Call"));
        // A named lane variable (not the literal `None`) counts as laned.
        let named = "
    queue.push(at, Some(pid.lane()), EventKind::Resume(pid, kind));
    queue.push(at.max(now), lane, EventKind::Call(Box::new(f)));
";
        assert!(lane_audit_sources(&sources(named)).is_empty());
    }

    #[test]
    fn lane_audit_ignores_vec_pushes_and_comments() {
        let kernel = "
    queue.push(at, Some(pid.lane()), EventKind::Resume(pid, kind));
    queue.push(at, Some(0), EventKind::Call(Box::new(f)));
    out.push(x); // one-arg Vec push is not a schedule site
    // queue.push(at, None, EventKind::Call(..)) — commented out
";
        assert!(lane_audit_sources(&sources(kernel)).is_empty());
    }

    #[test]
    fn lane_audit_variant_parse_and_allow_escape() {
        let vs = event_kind_variants(FAKE_EVENT_RS);
        assert_eq!(vs, vec![("Call".to_string(), 3), ("Resume".to_string(), 5)]);
        let allowed_src =
            FAKE_EVENT_RS.replace("    /// Run a closure.", "    // lint:allow(lane-audit)");
        let srcs = vec![
            ("crates/sim/src/event.rs".to_string(), allowed_src),
            (
                "crates/sim/src/kernel.rs".to_string(),
                "queue.push(at, Some(1), EventKind::Resume(pid, kind));".to_string(),
            ),
        ];
        assert!(lane_audit_sources(&srcs).is_empty());
    }

    #[test]
    fn tiekey_derivation_confined_to_event_rs() {
        let mut srcs = sources(
            "queue.push(at, Some(1), EventKind::Resume(pid, kind));\n\
             queue.push(at, Some(2), EventKind::Call(Box::new(f)));\n",
        );
        assert!(lane_audit_sources(&srcs).is_empty());
        // event.rs itself may (must) derive tiekeys.
        srcs[0].1.push_str("fn splitmix64(x: u64) -> u64 { x }\n");
        assert!(lane_audit_sources(&srcs).is_empty());
        // Any other sim source deriving one is flagged...
        srcs.push((
            "crates/sim/src/ladder.rs".into(),
            "let t = splitmix64(seed ^ lane);\n".into(),
        ));
        let hits = lane_audit_sources(&srcs);
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert_eq!(hits[0].rule, RULE_LANE_AUDIT);
        assert_eq!(hits[0].file, "crates/sim/src/ladder.rs");
        // ...unless escaped, mentioned in a comment, or a longer identifier.
        srcs.last_mut().unwrap().1 =
            "// splitmix64 is documented here only\nlet x = splitmix64_variant(y);\n".into();
        assert!(lane_audit_sources(&srcs).is_empty());
        srcs.last_mut().unwrap().1 =
            "// lint:allow(lane-audit)\nlet t = splitmix64(seed);\n".into();
        assert!(lane_audit_sources(&srcs).is_empty());
    }

    #[test]
    fn push_path_confined_to_event_rs() {
        let mut srcs = sources(
            "queue.push(at, Some(1), EventKind::Resume(pid, kind));\n\
             queue.push(at, Some(2), EventKind::Call(Box::new(f)));\n",
        );
        // The owning files may construct keys, insert slots, and push raw.
        srcs[0].1.push_str(
            "let k = Key { time, tiekey, slot };\nself.arena.insert(ev);\nself.backend.push(k);\n",
        );
        srcs.push((
            "crates/sim/src/ladder.rs".into(),
            "let probe = Key { time: t, tiekey: 0, slot };\n".into(),
        ));
        srcs.push((
            "crates/sim/src/arena.rs".into(),
            "let slot = self.arena.insert(ev);\n".into(),
        ));
        assert!(lane_audit_sources(&srcs).is_empty());
        // Any other sim source minting a Key is flagged...
        srcs.push((
            "crates/sim/src/kernel2.rs".into(),
            "let k = Key{ time, tiekey: 7, slot };\n".into(),
        ));
        let hits = lane_audit_sources(&srcs);
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert_eq!(hits[0].rule, RULE_LANE_AUDIT);
        assert_eq!(hits[0].file, "crates/sim/src/kernel2.rs");
        // ...as are raw arena inserts and backend pushes elsewhere.
        srcs.last_mut().unwrap().1 = "self.arena.insert(ev);\nbackend.push(k);\n".into();
        let hits = lane_audit_sources(&srcs);
        assert_eq!(hits.len(), 2, "{hits:?}");
        // Longer identifiers, comments, and the escape hatch don't trip it.
        srcs.last_mut().unwrap().1 = "let w = WakeKey { pid };\n\
             // a Key { .. } mentioned in a comment\n\
             // lint:allow(lane-audit)\nlet k = Key { time, tiekey, slot };\n"
            .into();
        assert!(lane_audit_sources(&srcs).is_empty());
    }

    #[test]
    fn env_registry_rules() {
        let ok = vec![(
            "crates/sim/src/pool.rs".to_string(),
            "let off = std::env::var(\"FTMPI_NO_POOL\").is_ok();\n".to_string(),
        )];
        let readme: String = ENV_TOGGLES
            .iter()
            .map(|t| format!("| `{t}` | doc |\n"))
            .collect();
        assert!(env_registry_hits(&ok, &readme).is_empty());

        // Unregistered name on an env read.
        let rogue = vec![(
            "crates/sim/src/pool.rs".to_string(),
            "let x = std::env::var(\"FTMPI_SECRET\");\n".to_string(),
        )];
        let hits = env_registry_hits(&rogue, &readme);
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert_eq!(hits[0].rule, RULE_ENV_REGISTRY);
        assert!(hits[0].msg.contains("FTMPI_SECRET"));

        // Env read with no FTMPI_* name at all.
        let anon = vec![(
            "crates/bench/src/sweep.rs".to_string(),
            "let home = std::env::var_os(\"HOME\");\n".to_string(),
        )];
        let hits = env_registry_hits(&anon, &readme);
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert!(hits[0].msg.contains("without a registered"));
        // ...unless escaped.
        let escaped = vec![(
            "crates/bench/src/sweep.rs".to_string(),
            "// lint:allow(env-registry)\nlet home = std::env::var_os(\"HOME\");\n".to_string(),
        )];
        assert!(env_registry_hits(&escaped, &readme).is_empty());

        // A registered toggle missing from the README is flagged there.
        let partial: String = ENV_TOGGLES[1..]
            .iter()
            .map(|t| format!("| `{t}` | doc |\n"))
            .collect();
        let hits = env_registry_hits(&ok, &partial);
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert_eq!(hits[0].file, "README.md");
        assert!(hits[0].msg.contains(ENV_TOGGLES[0]));
    }

    #[test]
    fn sim_audit_unsafe_and_unwrap() {
        let src = "let x = slots.get(i).unwrap();\n";
        // Only the audited files are in scope.
        assert!(lint_source("crates/sim/src/kernel.rs", src).is_empty());
        let hits = lint_source("crates/sim/src/arena.rs", src);
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert_eq!(hits[0].rule, RULE_SIM_AUDIT);

        // Unwraps inside the test module are fine; `unsafe` never is.
        let tested = "fn get(&self) {}\n#[cfg(test)]\nmod tests {\n    \
             fn t() { x.unwrap(); }\n}\n";
        assert!(lint_source("crates/sim/src/ladder.rs", tested).is_empty());
        let unsafe_in_tests =
            "#[cfg(test)]\nmod tests {\n    fn t() { unsafe { ptr.read() } }\n}\n";
        let hits = lint_source("crates/sim/src/ladder.rs", unsafe_in_tests);
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert!(hits[0].msg.contains("unsafe"));

        // Comments, longer identifiers, and the escape hatch are ignored.
        let benign = "// unsafe is banned here\n#![forbid(unsafe_code)]\n\
             let y = x.unwrap_or(0);\n";
        assert!(lint_source("crates/sim/src/arena.rs", benign).is_empty());
        let escaped = "// lint:allow(sim-audit)\nlet x = y.unwrap();\n";
        assert!(lint_source("crates/sim/src/arena.rs", escaped).is_empty());
    }

    #[test]
    fn hashmap_binding_extraction() {
        assert_eq!(
            hashmap_binding("    pair_last: HashMap<(NodeId, NodeId), SimTime>,"),
            Some("pair_last".to_string())
        );
        assert_eq!(
            hashmap_binding("let mut m = HashMap::new();"),
            Some("m".to_string())
        );
        assert_eq!(hashmap_binding("use std::collections::HashMap;"), None);
    }
}
