//! `ftmpi-check` — protocol invariant checker, schedule-perturbation race
//! detector, and workspace lint.
//!
//! Subcommands:
//!
//! * `lint` — scan the workspace sources for determinism hazards
//!   (wall-clock reads in sim crates, HashMap iteration order, `unwrap`
//!   in protocol code). Exits non-zero on any finding.
//! * `smoke` — run the CI probe set (both protocols, 8 ranks, one
//!   failure each) through the invariant checker, plus a perturbation
//!   pass over seeded tiebreak schedules. Exits non-zero on violations.
//! * `storm [--smoke]` — seeded fault-injection campaigns: rank kills,
//!   checkpoint-server failures, correlated node deaths, and network
//!   partitions aimed at mid-wave, mid-recovery, and detection-lag
//!   windows, every run re-checked against the trace invariants. `--smoke`
//!   runs the reduced CI seed set (the deterministic partition and
//!   node-kill families run in both modes).
//! * `storm --mine [--smoke]` — the coverage-guided failure-storm miner:
//!   seeded mutation over fault schedules (kills, directed partitions,
//!   server-group cuts, link flaps), keeping a corpus of schedules that
//!   light new coverage states under `results/storm/` and shrinking any
//!   violation to a minimal reproducer. Emits `BENCH_storm.json`.
//!   `FTMPI_MINE_BUDGET` overrides the mutation budget; `FTMPI_NO_MINE`
//!   skips the pass. `storm --replay FILE` re-runs a mined reproducer.
//! * `figures [--full]` — drive every figure workload family through the
//!   checker with churn variants. `--full` uses the paper-sized classes.
//! * `explore [--smoke] [--replay FILE]` — exhaustively enumerate the
//!   schedule space of the small explore configs (DPOR over the kernel's
//!   schedule-policy hook). Clean configs must exhaust without violations
//!   under **both** queue backends with identical state counts; the two
//!   historical-race fixtures must be rediscovered with minimized
//!   reproducers (dumped under `results/explore/`). Emits
//!   `BENCH_explore.json`. `--replay FILE` re-runs one reproducer.

use std::path::PathBuf;
use std::process::ExitCode;

use ftmpi_bench::json::{to_string_pretty, JsonObject, JsonValue};
use ftmpi_check::{
    differential, encode_artifact, explore, explore_configs, figure_smoke_probes, figures_suite,
    mine, parse_artifact, perturbation_check, replay, run_checked_with_churn, run_lint,
    smoke_probes, storm_campaign, ExploreOptions, ExploreOutcome, MineOptions, ProbeOutcome,
};

fn workspace_root() -> PathBuf {
    // The binary runs from the workspace (CI, `cargo run`); fall back to
    // the manifest's parent-of-parent for out-of-tree invocations.
    let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    if cwd.join("crates").is_dir() {
        cwd
    } else {
        PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .ancestors()
            .nth(2)
            .map(PathBuf::from)
            .unwrap_or(cwd)
    }
}

fn cmd_lint() -> ExitCode {
    let root = workspace_root();
    let hits = run_lint(&root);
    if hits.is_empty() {
        println!("lint: ok ({})", root.display());
        ExitCode::SUCCESS
    } else {
        for h in &hits {
            println!("{h}");
        }
        eprintln!("lint: {} finding(s)", hits.len());
        ExitCode::FAILURE
    }
}

fn print_outcome(o: &ProbeOutcome) {
    println!(
        "{:32} waves={:<3} restarts={:<2} proto-events={:<7} {}",
        o.name,
        o.waves,
        o.restarts,
        o.report.proto_events,
        if o.ok() { "ok" } else { "FAIL" }
    );
    for v in &o.report.violations {
        println!("    violation: {v}");
    }
}

fn cmd_smoke() -> ExitCode {
    let mut failed = false;
    for (name, _) in smoke_probes() {
        let mk = {
            let name = name.clone();
            move || {
                smoke_probes()
                    .into_iter()
                    .find(|(n, _)| *n == name)
                    .expect("probe name stable")
                    .1
            }
        };
        match run_checked_with_churn(&name, mk) {
            Ok(outcomes) => {
                for o in &outcomes {
                    print_outcome(o);
                    if !o.ok() || o.report.waves_checked == 0 {
                        failed = true;
                        if o.report.waves_checked == 0 {
                            println!("    violation: no wave committed — probe too short");
                        }
                    }
                }
            }
            Err(e) => {
                println!("{name:32} error: {e:?}");
                failed = true;
            }
        }
    }

    // Perturbation pass: every clean probe plus one class-S figure
    // workload per covered family (GigE cluster, Myrinet stack), three
    // seeded tiebreak schedules each.
    type SpecMk = Box<dyn Fn() -> ftmpi_core::JobSpec>;
    let mut perturb_targets: Vec<(String, SpecMk)> = smoke_probes()
        .into_iter()
        .map(|(name, _)| {
            let wanted = name.clone();
            let mk: SpecMk = Box::new(move || {
                smoke_probes()
                    .into_iter()
                    .find(|(n, _)| *n == wanted)
                    .expect("probe name stable")
                    .1
            });
            (name, mk)
        })
        .collect();
    for (fig_name, _) in figure_smoke_probes() {
        let wanted = fig_name.clone();
        perturb_targets.push((
            fig_name,
            Box::new(move || {
                figure_smoke_probes()
                    .into_iter()
                    .find(|(n, _)| *n == wanted)
                    .expect("figure probe name stable")
                    .1
            }),
        ));
    }
    for (label, mk) in perturb_targets {
        match perturbation_check(mk, &[1, 2, 3]) {
            Ok(rep) => {
                let div = rep.divergent();
                println!(
                    "{:32} fingerprint={:016x} seeds=3 {}",
                    format!("perturb.{label}"),
                    rep.baseline,
                    if div.is_empty() {
                        "ok".to_string()
                    } else {
                        failed = true;
                        format!("DIVERGENT under seeds {div:?}")
                    }
                );
            }
            Err(e) => {
                println!("perturb.{label:24} error: {e:?}");
                failed = true;
            }
        }
    }

    if failed {
        eprintln!("smoke: FAILED");
        ExitCode::FAILURE
    } else {
        println!("smoke: ok");
        ExitCode::SUCCESS
    }
}

fn cmd_storm(smoke: bool) -> ExitCode {
    let outcomes = storm_campaign(smoke);
    let mut failed = false;
    for o in &outcomes {
        println!(
            "{:40} waves={:<3} restarts={:<2} aborted={:<2} depth={:<2} retries={:<3} \
             suppr={:<2} lost={:<9.3} {}",
            o.name,
            o.waves,
            o.restarts,
            o.waves_aborted,
            o.rollback_depth_max,
            o.link_retries,
            o.partitions_suppressed,
            o.lost_work_secs,
            if o.ok() { "ok" } else { "FAIL" }
        );
        if let Some(rep) = &o.report {
            for v in &rep.violations {
                println!("    violation: {v}");
            }
        }
        for f in &o.failures {
            println!("    failure: {f}");
        }
        if !o.ok() {
            failed = true;
        }
    }
    let ran = outcomes.len();
    if failed {
        eprintln!("storm: FAILED ({ran} runs)");
        ExitCode::FAILURE
    } else {
        println!("storm: ok ({ran} runs)");
        ExitCode::SUCCESS
    }
}

fn mine_record(report: &ftmpi_check::MineReport) -> Vec<JsonObject> {
    // No wall-clock fields: two invocations with the same seed and budget
    // must produce a byte-identical file (CI diffs it across backends).
    vec![vec![
        ("runs", JsonValue::UInt(report.runs)),
        ("discarded", JsonValue::UInt(report.discarded)),
        (
            "coverage_states",
            JsonValue::UInt(report.coverage.len() as u64),
        ),
        ("corpus", JsonValue::UInt(report.corpus.len() as u64)),
        (
            "violations",
            JsonValue::UInt(report.violations.len() as u64),
        ),
    ]]
}

fn cmd_mine(smoke: bool) -> ExitCode {
    // CI off-switch: skip the mining pass entirely under FTMPI_NO_MINE.
    if std::env::var_os("FTMPI_NO_MINE").is_some() {
        println!("mine: skipped (FTMPI_NO_MINE)");
        return ExitCode::SUCCESS;
    }
    // Mutation budget per protocol; FTMPI_MINE_BUDGET overrides.
    let rounds = std::env::var("FTMPI_MINE_BUDGET")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(if smoke { 12 } else { 96 });
    let report = mine(MineOptions {
        rounds,
        seed: 0xf17a,
    });
    let root = workspace_root();
    let dir = root.join("results").join("storm");
    let mut failed = false;
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("mine: could not create {}: {e}", dir.display());
        failed = true;
    }
    let mut corpus_text = String::from("# ftmpi-check storm miner corpus\n");
    for (g, class) in &report.corpus {
        println!("mine.corpus {:16} {}", class.as_str(), g.encode());
        corpus_text.push_str(&g.encode());
        corpus_text.push_str(&format!(" kind={}\n", class.as_str()));
    }
    let corpus_path = dir.join("corpus.txt");
    if let Err(e) = std::fs::write(&corpus_path, corpus_text) {
        eprintln!("mine: could not write {}: {e}", corpus_path.display());
        failed = true;
    }
    for (i, v) in report.violations.iter().enumerate() {
        let path = dir.join(format!("mine-{}-{i}.repro", v.class.as_str()));
        println!(
            "mine.violation {}: {} ({})",
            v.class.as_str(),
            v.genome.encode(),
            v.detail
        );
        if let Err(e) = std::fs::write(&path, encode_artifact(v)) {
            eprintln!("mine: could not write {}: {e}", path.display());
        } else {
            println!("    reproducer: {}", path.display());
        }
        failed = true;
    }
    let bench_path = root.join("BENCH_storm.json");
    let json = to_string_pretty(&mine_record(&report)) + "\n";
    if let Err(e) = std::fs::write(&bench_path, json) {
        eprintln!("mine: could not write {}: {e}", bench_path.display());
        failed = true;
    } else {
        println!("wrote {}", bench_path.display());
    }
    println!(
        "mine: {} runs ({} mutants discarded), {} coverage states, corpus {}, {} violation(s)",
        report.runs,
        report.discarded,
        report.coverage.len(),
        report.corpus.len(),
        report.violations.len()
    );
    if failed {
        eprintln!("mine: FAILED");
        ExitCode::FAILURE
    } else {
        println!("mine: ok");
        ExitCode::SUCCESS
    }
}

fn cmd_mine_replay(path: &str) -> ExitCode {
    match ftmpi_check::miner::replay(std::path::Path::new(path)) {
        Ok((class, reproduces)) => {
            if reproduces {
                println!("replay {path}: still reproduces ({})", class.as_str());
                ExitCode::SUCCESS
            } else {
                eprintln!("replay {path}: outcome changed (now {})", class.as_str());
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("replay: {e}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_figures(full: bool) -> ExitCode {
    match figures_suite(!full) {
        Ok(outcomes) => {
            let mut failed = false;
            for o in &outcomes {
                print_outcome(o);
                if !o.ok() || o.report.waves_checked == 0 {
                    failed = true;
                    if o.report.waves_checked == 0 {
                        println!("    violation: no wave committed — probe too short");
                    }
                }
            }
            let checked = outcomes.len();
            if failed {
                eprintln!("figures: FAILED ({checked} probes)");
                ExitCode::FAILURE
            } else {
                println!("figures: ok ({checked} probes)");
                ExitCode::SUCCESS
            }
        }
        Err(e) => {
            eprintln!("figures: error: {e:?}");
            ExitCode::FAILURE
        }
    }
}

fn explore_record(o: &ExploreOutcome, backend: &str) -> JsonObject {
    let (kind, minimized) = match &o.violation {
        Some(v) => (
            v.kind.clone(),
            v.minimized
                .iter()
                .map(|c| c.to_string())
                .collect::<Vec<_>>()
                .join(","),
        ),
        None => ("none".to_string(), String::new()),
    };
    vec![
        ("config", JsonValue::Str(o.name.clone())),
        ("backend", JsonValue::Str(backend.to_string())),
        ("runs", JsonValue::UInt(o.runs)),
        (
            "distinct_outcomes",
            JsonValue::UInt(o.distinct_outcomes as u64),
        ),
        ("max_decisions", JsonValue::UInt(o.max_decisions as u64)),
        ("pruned", JsonValue::UInt(o.pruned)),
        ("deduped", JsonValue::UInt(o.deduped)),
        ("exhausted", JsonValue::UInt(o.exhausted as u64)),
        ("violation", JsonValue::Str(kind)),
        ("minimized_schedule", JsonValue::Str(minimized)),
        (
            "canonical_fp",
            JsonValue::Str(format!("{:016x}", o.canonical_fp)),
        ),
        ("wall_ms", JsonValue::UInt(o.wall_ms)),
    ]
}

fn print_explore(o: &ExploreOutcome, backend: &str) {
    println!(
        "{:36} runs={:<5} outcomes={:<2} decisions<={:<3} pruned={:<5} memo={:<5} {}",
        format!("explore.{}.{backend}", o.name),
        o.runs,
        o.distinct_outcomes,
        o.max_decisions,
        o.pruned,
        o.deduped,
        match (&o.violation, o.exhausted) {
            (Some(v), _) => format!("VIOLATION {} (minimized: [{}])", v.kind, {
                v.minimized
                    .iter()
                    .map(|c| c.to_string())
                    .collect::<Vec<_>>()
                    .join(",")
            }),
            (None, true) => "exhausted".to_string(),
            (None, false) => "BUDGET EXCEEDED".to_string(),
        }
    );
}

fn cmd_explore(smoke: bool) -> ExitCode {
    let root = workspace_root();
    let artifact_dir = root.join("results").join("explore");
    let max_runs = if smoke { 1500 } else { 6000 };
    let mut failed = false;
    let mut records: Vec<JsonObject> = Vec::new();
    for cfg in explore_configs() {
        let opts = ExploreOptions {
            max_runs,
            artifact_dir: Some(artifact_dir.clone()),
            ..ExploreOptions::default()
        };
        if cfg.expect_violation {
            // Fixture configs: the historical race must be rediscovered,
            // minimized, under the default backend.
            match explore(&cfg, &opts) {
                Ok(o) => {
                    print_explore(&o, "default");
                    match &o.violation {
                        Some(v) => {
                            if let Some(p) = &v.artifact {
                                println!("    reproducer: {}", p.display());
                            }
                        }
                        None => {
                            println!("    FAIL: fixture race not rediscovered");
                            failed = true;
                        }
                    }
                    records.push(explore_record(&o, "default"));
                }
                Err(e) => {
                    println!("explore.{:26} error: {e}", cfg.name);
                    failed = true;
                }
            }
        } else {
            // Clean configs: exhaust without violation, and the two queue
            // backends must agree state-for-state.
            match differential(&cfg, &opts) {
                Ok((heap, ladder)) => {
                    print_explore(&heap, "heap");
                    print_explore(&ladder, "ladder");
                    if heap.violation.is_some() || ladder.violation.is_some() {
                        println!("    FAIL: clean config violated");
                        failed = true;
                    }
                    if !heap.exhausted || !ladder.exhausted {
                        println!("    FAIL: clean config not exhausted within {max_runs} runs");
                        failed = true;
                    }
                    if heap.runs != ladder.runs
                        || heap.canonical_fp != ladder.canonical_fp
                        || heap.distinct_outcomes != ladder.distinct_outcomes
                        || heap.pruned != ladder.pruned
                        || heap.deduped != ladder.deduped
                    {
                        println!("    FAIL: backends disagree (heap vs ladder)");
                        failed = true;
                    }
                    records.push(explore_record(&heap, "heap"));
                    records.push(explore_record(&ladder, "ladder"));
                }
                Err(e) => {
                    println!("explore.{:26} error: {e}", cfg.name);
                    failed = true;
                }
            }
        }
    }
    let bench_path = root.join("BENCH_explore.json");
    let json = to_string_pretty(&records) + "\n";
    if let Err(e) = std::fs::write(&bench_path, json) {
        eprintln!("explore: could not write {}: {e}", bench_path.display());
        failed = true;
    } else {
        println!("wrote {}", bench_path.display());
    }
    if failed {
        eprintln!("explore: FAILED");
        ExitCode::FAILURE
    } else {
        println!("explore: ok");
        ExitCode::SUCCESS
    }
}

fn cmd_replay(path: &str) -> ExitCode {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("replay: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let repro = match parse_artifact(&text) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("replay: {e}");
            return ExitCode::FAILURE;
        }
    };
    match replay(&repro) {
        Ok(Some(kind)) => {
            println!(
                "replay {path}: schedule [{}] still violates: {kind}",
                repro
                    .schedule
                    .iter()
                    .map(|c| c.to_string())
                    .collect::<Vec<_>>()
                    .join(",")
            );
            ExitCode::SUCCESS
        }
        Ok(None) => {
            eprintln!("replay {path}: violation no longer reproduces");
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("replay: {e}");
            ExitCode::FAILURE
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => cmd_lint(),
        Some("smoke") => cmd_smoke(),
        Some("storm") => {
            if let Some(at) = args.iter().position(|a| a == "--replay") {
                match args.get(at + 1) {
                    Some(path) => cmd_mine_replay(path),
                    None => {
                        eprintln!("usage: ftmpi-check storm --replay FILE");
                        ExitCode::FAILURE
                    }
                }
            } else if args.iter().any(|a| a == "--mine") {
                cmd_mine(args.iter().any(|a| a == "--smoke"))
            } else {
                cmd_storm(args.iter().any(|a| a == "--smoke"))
            }
        }
        Some("figures") => cmd_figures(args.iter().any(|a| a == "--full")),
        Some("explore") => {
            if let Some(at) = args.iter().position(|a| a == "--replay") {
                match args.get(at + 1) {
                    Some(path) => cmd_replay(path),
                    None => {
                        eprintln!("usage: ftmpi-check explore --replay FILE");
                        ExitCode::FAILURE
                    }
                }
            } else {
                cmd_explore(args.iter().any(|a| a == "--smoke"))
            }
        }
        _ => {
            eprintln!(
                "usage: ftmpi-check <lint|smoke|storm [--mine] [--smoke] [--replay FILE]|\
                 figures [--full]|explore [--smoke] [--replay FILE]>"
            );
            ExitCode::FAILURE
        }
    }
}
