//! Coverage-guided failure-storm miner.
//!
//! The deterministic storm families in [`crate::storm`] pin known fragile
//! windows; the miner searches *between* them. A fault schedule is a
//! [`Genome`] — a protocol choice, a replication factor, and a list of
//! [`Gene`]s (rank kills, server kills, directed partitions, server-group
//! partitions, link flaps, stored-image corruption). A seeded mutation
//! loop (shift, widen, flip-direction, retarget, add-flap, add-corrupt,
//! drop) evolves genomes starting from
//! hand-seeded schedules aimed at the measured wave windows; every mutant
//! that passes [`ftmpi_net::NetFaultPlan::validate`] is run through
//! [`crate::storm::run_storm`] and the full invariant checker.
//!
//! Search is driven by a *coverage map*: each run is collapsed into a
//! [`CoverageKey`] — the outcome class plus capped/bucketed robustness
//! observables (restarts, aborted waves, rollback depth, exhausted retry
//! ladders, replica-walk depth, watchdog verdicts, a log₂ bucket of link
//! retries). A mutant lighting up a key never seen before joins the
//! corpus and becomes mutation fodder; everything else is discarded. The
//! corpus and every violation reproducer are dumped under
//! `results/storm/` in the same `key=value` artifact format the schedule
//! explorer uses, and [`replay`] re-runs a reproducer from disk.
//!
//! Determinism: the mutation stream is a seeded `StdRng`, the coverage map
//! is a `BTreeSet`, gene timestamps are virtual nanoseconds, and the
//! report carries no wall-clock fields — two invocations with the same
//! seed and budget produce byte-identical corpora and reports, under
//! either queue backend.

use std::collections::BTreeSet;
use std::path::Path;

use ftmpi_core::{FailurePlan, JobSpec, ProtocolChoice, SilentCorruptionSpec};
use ftmpi_net::{CutDirection, LinkFlapSpec, NetFaultPlan, NodeId};
use ftmpi_sim::{SimDuration, SimTime};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::storm::{profile, ring_spec, run_storm, StormOutcome};

/// Ranks in the mined workload (the storm ring).
const NRANKS: usize = 8;
/// Checkpoint servers in the mined workload.
const NSERVERS: usize = 2;
/// Node index of the first server (ranks occupy nodes `0..NRANKS`).
const SERVER_NODE_BASE: usize = NRANKS;
/// Latest virtual time a gene may fire, ns (the ring finishes well before).
const HORIZON_NS: u64 = 60_000_000_000;

/// One inheritable fault in a mined schedule. Times are virtual ns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Gene {
    /// Kill one rank.
    Kill {
        /// Kill time, ns.
        at_ns: u64,
        /// Victim rank.
        victim: usize,
    },
    /// Kill one checkpoint server.
    ServerKill {
        /// Kill time, ns.
        at_ns: u64,
        /// Server fleet index.
        server: usize,
    },
    /// Partition one rank node off for a window.
    Partition {
        /// Node cut off.
        node: usize,
        /// Which directions the cut blocks.
        direction: CutDirection,
        /// Window start, ns.
        start_ns: u64,
        /// Window length, ns.
        dur_ns: u64,
    },
    /// Partition one checkpoint server off for a window.
    ServerPartition {
        /// Server fleet index cut off.
        server: usize,
        /// Which directions the cut blocks.
        direction: CutDirection,
        /// Window start, ns.
        start_ns: u64,
        /// Window length, ns.
        dur_ns: u64,
    },
    /// A flapping directed link.
    Flap {
        /// Transmitting node.
        from: usize,
        /// Receiving node.
        to: usize,
        /// Window start, ns.
        start_ns: u64,
        /// Window length, ns.
        dur_ns: u64,
        /// Mean up time, ns.
        mttf_ns: u64,
        /// Mean down time, ns.
        mttr_ns: u64,
        /// Renewal-stream seed.
        seed: u64,
    },
    /// Flip stored bits of one replica (or every replica) on a server.
    Corrupt {
        /// Flip time, ns.
        at_ns: u64,
        /// Server fleet index whose disk is damaged.
        server: usize,
        /// Rank whose image is hit, or `None` for every replica held.
        rank: Option<usize>,
    },
    /// A seeded silent-corruption renewal process on one server.
    Rot {
        /// Server fleet index the bad disk lives on.
        server: usize,
        /// Window start, ns.
        start_ns: u64,
        /// Window length, ns.
        dur_ns: u64,
        /// Mean time between corruption events, ns.
        mtbc_ns: u64,
        /// Renewal-stream seed.
        seed: u64,
    },
}

/// A complete mined fault schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Genome {
    /// Protocol under test.
    pub proto: ProtocolChoice,
    /// Image replication factor (1 or 2).
    pub replicas: usize,
    /// The faults, in schedule order.
    pub genes: Vec<Gene>,
}

fn dir_str(d: CutDirection) -> &'static str {
    match d {
        CutDirection::Both => "both",
        CutDirection::Outbound => "outbound",
        CutDirection::Inbound => "inbound",
    }
}

fn parse_dir(s: &str) -> Result<CutDirection, String> {
    match s {
        "both" => Ok(CutDirection::Both),
        "outbound" => Ok(CutDirection::Outbound),
        "inbound" => Ok(CutDirection::Inbound),
        other => Err(format!("unknown cut direction: {other}")),
    }
}

impl Gene {
    /// Compact text form used in corpus lines and reproducer artifacts.
    pub fn encode(&self) -> String {
        match *self {
            Gene::Kill { at_ns, victim } => format!("kill@{at_ns}:r{victim}"),
            Gene::ServerKill { at_ns, server } => format!("skill@{at_ns}:s{server}"),
            Gene::Partition {
                node,
                direction,
                start_ns,
                dur_ns,
            } => format!("part@{start_ns}+{dur_ns}:n{node}:{}", dir_str(direction)),
            Gene::ServerPartition {
                server,
                direction,
                start_ns,
                dur_ns,
            } => format!("spart@{start_ns}+{dur_ns}:s{server}:{}", dir_str(direction)),
            Gene::Flap {
                from,
                to,
                start_ns,
                dur_ns,
                mttf_ns,
                mttr_ns,
                seed,
            } => format!("flap@{start_ns}+{dur_ns}:n{from}-n{to}:f{mttf_ns}:r{mttr_ns}:x{seed}"),
            Gene::Corrupt {
                at_ns,
                server,
                rank,
            } => match rank {
                Some(r) => format!("corrupt@{at_ns}:s{server}:r{r}"),
                None => format!("corrupt@{at_ns}:s{server}:all"),
            },
            Gene::Rot {
                server,
                start_ns,
                dur_ns,
                mtbc_ns,
                seed,
            } => format!("rot@{start_ns}+{dur_ns}:s{server}:m{mtbc_ns}:x{seed}"),
        }
    }

    /// Inverse of [`Gene::encode`].
    pub fn parse(s: &str) -> Result<Gene, String> {
        let (tag, rest) = s
            .split_once('@')
            .ok_or_else(|| format!("malformed gene: {s}"))?;
        let num = |t: &str, prefix: &str| -> Result<u64, String> {
            t.strip_prefix(prefix)
                .unwrap_or(t)
                .parse()
                .map_err(|_| format!("malformed gene field {t:?} in {s}"))
        };
        let window = |t: &str| -> Result<(u64, u64), String> {
            let (a, b) = t
                .split_once('+')
                .ok_or_else(|| format!("malformed gene window in {s}"))?;
            Ok((num(a, "")?, num(b, "")?))
        };
        let parts: Vec<&str> = rest.split(':').collect();
        match (tag, parts.as_slice()) {
            ("kill", [at, victim]) => Ok(Gene::Kill {
                at_ns: num(at, "")?,
                victim: num(victim, "r")? as usize,
            }),
            ("skill", [at, server]) => Ok(Gene::ServerKill {
                at_ns: num(at, "")?,
                server: num(server, "s")? as usize,
            }),
            ("part", [win, node, dir]) => {
                let (start_ns, dur_ns) = window(win)?;
                Ok(Gene::Partition {
                    node: num(node, "n")? as usize,
                    direction: parse_dir(dir)?,
                    start_ns,
                    dur_ns,
                })
            }
            ("spart", [win, server, dir]) => {
                let (start_ns, dur_ns) = window(win)?;
                Ok(Gene::ServerPartition {
                    server: num(server, "s")? as usize,
                    direction: parse_dir(dir)?,
                    start_ns,
                    dur_ns,
                })
            }
            ("flap", [win, link, mttf, mttr, seed]) => {
                let (start_ns, dur_ns) = window(win)?;
                let (from, to) = link
                    .split_once('-')
                    .ok_or_else(|| format!("malformed flap link in {s}"))?;
                Ok(Gene::Flap {
                    from: num(from, "n")? as usize,
                    to: num(to, "n")? as usize,
                    start_ns,
                    dur_ns,
                    mttf_ns: num(mttf, "f")?,
                    mttr_ns: num(mttr, "r")?,
                    seed: num(seed, "x")?,
                })
            }
            ("corrupt", [at, server, target]) => Ok(Gene::Corrupt {
                at_ns: num(at, "")?,
                server: num(server, "s")? as usize,
                rank: if *target == "all" {
                    None
                } else {
                    Some(num(target, "r")? as usize)
                },
            }),
            ("rot", [win, server, mtbc, seed]) => {
                let (start_ns, dur_ns) = window(win)?;
                Ok(Gene::Rot {
                    server: num(server, "s")? as usize,
                    start_ns,
                    dur_ns,
                    mtbc_ns: num(mtbc, "m")?,
                    seed: num(seed, "x")?,
                })
            }
            _ => Err(format!("unknown gene: {s}")),
        }
    }
}

impl Genome {
    /// One-line corpus form: `proto=… replicas=… genes=a;b;c`.
    pub fn encode(&self) -> String {
        let proto = match self.proto {
            ProtocolChoice::Pcl => "pcl",
            _ => "vcl",
        };
        let genes: Vec<String> = self.genes.iter().map(Gene::encode).collect();
        format!(
            "proto={proto} replicas={} genes={}",
            self.replicas,
            genes.join(";")
        )
    }

    /// Parse the `proto=`/`replicas=`/`genes=` triple from key=value
    /// tokens (one line or one token per line both work).
    pub fn parse(tokens: impl Iterator<Item = (String, String)>) -> Result<Genome, String> {
        let (mut proto, mut replicas, mut genes) = (None, None, None);
        for (k, v) in tokens {
            match k.as_str() {
                "proto" => {
                    proto = Some(match v.as_str() {
                        "pcl" => ProtocolChoice::Pcl,
                        "vcl" => ProtocolChoice::Vcl,
                        other => return Err(format!("unknown protocol: {other}")),
                    })
                }
                "replicas" => {
                    replicas = Some(v.parse().map_err(|_| format!("malformed replicas: {v}"))?)
                }
                "genes" => {
                    genes = Some(
                        v.split(';')
                            .filter(|t| !t.is_empty())
                            .map(Gene::parse)
                            .collect::<Result<Vec<_>, _>>()?,
                    )
                }
                _ => {}
            }
        }
        Ok(Genome {
            proto: proto.ok_or("missing proto=")?,
            replicas: replicas.ok_or("missing replicas=")?,
            genes: genes.ok_or("missing genes=")?,
        })
    }

    /// Build the runnable job: the storm ring plus this genome's faults.
    /// Grace and retention are fixed (1.5 s, 2 waves) so coverage keys
    /// compare like with like across the whole search.
    pub fn build_spec(&self) -> JobSpec {
        let mut spec = ring_spec(self.proto);
        spec.ft = spec
            .ft
            .with_replicas(self.replicas)
            .with_retained_waves(2)
            .with_partition_rollback_after_secs(1.5);
        // Genomes that damage stored images also get the integrity
        // machinery armed (scrub + quarantine), so the search can reach
        // repair and quarantine interleavings. Keying the knobs off the
        // genome keeps corruption-free schedules byte-identical to the
        // pre-integrity corpus.
        if self
            .genes
            .iter()
            .any(|g| matches!(g, Gene::Corrupt { .. } | Gene::Rot { .. }))
        {
            spec.ft = spec
                .ft
                .with_scrub_interval_secs(0.5)
                .with_quarantine_threshold(3);
        }
        let mut failures = FailurePlan::none();
        let mut faults = NetFaultPlan::none();
        for (i, g) in self.genes.iter().enumerate() {
            match *g {
                Gene::Kill { at_ns, victim } => {
                    failures = failures.with_kill(SimTime::from_nanos(at_ns), victim);
                }
                Gene::ServerKill { at_ns, server } => {
                    failures = failures.with_server_kill(SimTime::from_nanos(at_ns), server);
                }
                Gene::Partition {
                    node,
                    direction,
                    start_ns,
                    dur_ns,
                } => {
                    faults = faults.with_partition_directed(
                        format!("mine-p{i}"),
                        vec![NodeId(node)],
                        direction,
                        SimTime::from_nanos(start_ns),
                        Some(SimTime::from_nanos(start_ns + dur_ns)),
                    );
                }
                Gene::ServerPartition {
                    server,
                    direction,
                    start_ns,
                    dur_ns,
                } => {
                    faults = faults.with_server_partition(
                        format!("mine-p{i}"),
                        vec![server],
                        direction,
                        SimTime::from_nanos(start_ns),
                        Some(SimTime::from_nanos(start_ns + dur_ns)),
                    );
                }
                Gene::Flap {
                    from,
                    to,
                    start_ns,
                    dur_ns,
                    mttf_ns,
                    mttr_ns,
                    seed,
                } => {
                    faults = faults.with_link_flap(LinkFlapSpec {
                        from: NodeId(from),
                        to: NodeId(to),
                        start: SimTime::from_nanos(start_ns),
                        end: SimTime::from_nanos(start_ns + dur_ns),
                        mttf: SimDuration::from_nanos(mttf_ns),
                        mttr: SimDuration::from_nanos(mttr_ns),
                        seed,
                    });
                }
                Gene::Corrupt {
                    at_ns,
                    server,
                    rank,
                } => {
                    failures = match rank {
                        Some(r) => failures.with_corruption(SimTime::from_nanos(at_ns), server, r),
                        None => failures.with_server_corruption(SimTime::from_nanos(at_ns), server),
                    };
                }
                Gene::Rot {
                    server,
                    start_ns,
                    dur_ns,
                    mtbc_ns,
                    seed,
                } => {
                    failures = failures.with_silent_corruption(SilentCorruptionSpec {
                        server,
                        mtbc: SimDuration::from_nanos(mtbc_ns),
                        start: SimTime::from_nanos(start_ns),
                        end: SimTime::from_nanos(start_ns + dur_ns),
                        ranks: NRANKS,
                        seed,
                    });
                }
            }
        }
        spec.failures = failures;
        spec.net_faults = faults;
        spec
    }

    /// Cheap structural sanity on top of [`NetFaultPlan::validate`]:
    /// victims in range, windows inside the horizon. Mutants failing
    /// either check are discarded without a run.
    fn well_formed(&self) -> bool {
        if self.genes.is_empty() || self.genes.len() > 6 {
            return false;
        }
        for g in &self.genes {
            let ok = match *g {
                Gene::Kill { at_ns, victim } => victim < NRANKS && at_ns < HORIZON_NS,
                Gene::ServerKill { at_ns, server } => server < NSERVERS && at_ns < HORIZON_NS,
                Gene::Partition { node, dur_ns, .. } => node < NRANKS && dur_ns > 0,
                Gene::ServerPartition { server, dur_ns, .. } => server < NSERVERS && dur_ns > 0,
                Gene::Flap {
                    from,
                    to,
                    dur_ns,
                    mttf_ns,
                    mttr_ns,
                    ..
                } => {
                    from != to
                        && from < NRANKS + NSERVERS
                        && to < NRANKS + NSERVERS
                        && dur_ns > 0
                        && mttf_ns > 0
                        && mttr_ns > 0
                }
                Gene::Corrupt {
                    at_ns,
                    server,
                    rank,
                } => server < NSERVERS && at_ns < HORIZON_NS && rank.is_none_or(|r| r < NRANKS),
                Gene::Rot {
                    server,
                    dur_ns,
                    mtbc_ns,
                    ..
                } => server < NSERVERS && dur_ns > 0 && mtbc_ns > 0,
            };
            if !ok {
                return false;
            }
        }
        self.build_spec().net_faults.validate().is_ok()
    }
}

/// How a mined run ended, coarsest coverage axis first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum OutcomeClass {
    /// Completed with every invariant and robustness assertion holding.
    Ok,
    /// Completed, but legal terminal state: a restart found every image
    /// replica unreachable (or corrupt with no older retained wave to
    /// fall back to). Coverage, not a violation.
    ReplicaExhausted,
    /// The run itself errored (deadlock guard, fatal recovery error).
    RunError,
    /// A campaign-level robustness assertion failed (rollback depth,
    /// orphaned images).
    AssertViolation,
    /// The trace invariant checker found an inconsistent cut.
    InvariantViolation,
}

impl OutcomeClass {
    /// Stable artifact/corpus tag.
    pub fn as_str(self) -> &'static str {
        match self {
            OutcomeClass::Ok => "ok",
            OutcomeClass::ReplicaExhausted => "replica-exhausted",
            OutcomeClass::RunError => "run-error",
            OutcomeClass::AssertViolation => "assert",
            OutcomeClass::InvariantViolation => "invariant",
        }
    }

    /// Classes that fail the mining run (real findings).
    pub fn is_violation(self) -> bool {
        matches!(
            self,
            OutcomeClass::RunError
                | OutcomeClass::AssertViolation
                | OutcomeClass::InvariantViolation
        )
    }
}

/// Classify one storm outcome into its coverage class.
pub fn classify(o: &StormOutcome) -> OutcomeClass {
    match &o.report {
        None => {
            if o.failures.iter().any(|f| {
                f.contains("every image replica unreachable")
                    || f.contains("every image replica corrupt")
            }) {
                OutcomeClass::ReplicaExhausted
            } else {
                OutcomeClass::RunError
            }
        }
        Some(r) if !r.ok() => OutcomeClass::InvariantViolation,
        Some(_) if !o.failures.is_empty() => OutcomeClass::AssertViolation,
        Some(_) => OutcomeClass::Ok,
    }
}

/// The coverage map entry one run collapses into: outcome class plus the
/// robustness observables, capped/bucketed so the map saturates instead of
/// growing with every distinct count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct CoverageKey {
    /// Protocol under test.
    pub proto: u8,
    /// Outcome class.
    pub class: OutcomeClass,
    /// Restarts, capped at 4.
    pub restarts: u8,
    /// Aborted waves, capped at 4.
    pub aborted: u8,
    /// Max rollback depth, capped at 4.
    pub depth: u8,
    /// Exhausted retry ladders, capped at 4.
    pub exhausted: u8,
    /// Max replica-walk depth, capped at 4.
    pub replica_depth: u8,
    /// Watchdog suppressed a healed cut.
    pub suppressed: bool,
    /// Watchdog grace expired with a cut active.
    pub expired: bool,
    /// At least one push rerouted to another server.
    pub rerouted: bool,
    /// A digest mismatch was caught on fetch or scrub.
    pub corrupt_detected: bool,
    /// A damaged replica was re-replicated from a good copy.
    pub repaired: bool,
    /// A server crossed the corruption quarantine threshold.
    pub quarantined: bool,
    /// log₂ bucket of link retries (0 for none), capped at 15.
    pub retries_log2: u8,
}

fn cap4(x: u64) -> u8 {
    x.min(4) as u8
}

/// Collapse one outcome into its [`CoverageKey`].
pub fn coverage_key(proto: ProtocolChoice, class: OutcomeClass, o: &StormOutcome) -> CoverageKey {
    CoverageKey {
        proto: matches!(proto, ProtocolChoice::Pcl) as u8,
        class,
        restarts: cap4(o.restarts),
        aborted: cap4(o.waves_aborted),
        depth: cap4(o.rollback_depth_max),
        exhausted: cap4(o.retries_exhausted),
        replica_depth: cap4(o.replica_depth_max),
        suppressed: o.partitions_suppressed > 0,
        expired: o.partitions_expired > 0,
        rerouted: o.images_rerouted > 0,
        corrupt_detected: o.images_corrupt_detected > 0,
        repaired: o.images_repaired > 0,
        quarantined: o.servers_quarantined > 0,
        retries_log2: if o.link_retries == 0 {
            0
        } else {
            (64 - o.link_retries.leading_zeros() as u8).min(15)
        },
    }
}

/// Mining knobs. `rounds` is the mutation budget per protocol; the seed
/// genomes run on top of it.
#[derive(Debug, Clone, Copy)]
pub struct MineOptions {
    /// Mutation rounds per protocol.
    pub rounds: usize,
    /// Mutation-stream seed.
    pub seed: u64,
}

/// A violation finding: the shrunk genome and what it broke.
#[derive(Debug)]
pub struct MinedViolation {
    /// Minimal reproducer.
    pub genome: Genome,
    /// Outcome class of the reproducer.
    pub class: OutcomeClass,
    /// First failure/violation message.
    pub detail: String,
}

/// What a mining run produced. Carries no wall-clock state: identical
/// options produce an identical report.
#[derive(Debug)]
pub struct MineReport {
    /// Schedules actually run (seeds + surviving mutants + shrink runs).
    pub runs: u64,
    /// Mutants discarded by plan validation before running.
    pub discarded: u64,
    /// Distinct coverage states lit up.
    pub coverage: BTreeSet<CoverageKey>,
    /// Corpus: every genome that lit a new coverage state, with its class.
    pub corpus: Vec<(Genome, OutcomeClass)>,
    /// Violations found, each shrunk to a minimal reproducer.
    pub violations: Vec<MinedViolation>,
}

/// Hand-seeded starting corpus for one protocol, aimed at the measured
/// wave windows: a mid-wave kill, a half-open cut healing inside the
/// grace, a dark server group behind a restore fetch, a flapping push
/// link, a bit-flip raced against a restore fetch, and a rotting server
/// disk under a later restart.
fn seed_genomes(proto: ProtocolChoice, w0s: u64, w0c: u64, w1c: u64) -> Vec<Genome> {
    vec![
        Genome {
            proto,
            replicas: 1,
            genes: vec![Gene::Kill {
                at_ns: w0s + (w0c - w0s) / 2,
                victim: NRANKS - 1,
            }],
        },
        Genome {
            proto,
            replicas: 1,
            genes: vec![Gene::Partition {
                node: 0,
                direction: CutDirection::Outbound,
                start_ns: w0s.saturating_sub(1_000_000),
                dur_ns: 1_200_000_000,
            }],
        },
        Genome {
            proto,
            replicas: 2,
            genes: vec![
                Gene::ServerPartition {
                    server: 0,
                    direction: CutDirection::Both,
                    start_ns: w1c + 100_000_000,
                    dur_ns: 20_000_000_000,
                },
                Gene::Kill {
                    at_ns: w1c + 300_000_000,
                    victim: 0,
                },
            ],
        },
        Genome {
            proto,
            replicas: 1,
            genes: vec![Gene::Flap {
                from: 0,
                to: SERVER_NODE_BASE,
                start_ns: w0s.saturating_sub(500_000_000),
                dur_ns: (w1c + 2_000_000_000).saturating_sub(w0s),
                mttf_ns: 2_000_000_000,
                mttr_ns: 300_000_000,
                seed: 11,
            }],
        },
        Genome {
            proto,
            replicas: 2,
            genes: vec![
                Gene::Corrupt {
                    at_ns: w1c + 100_000_000,
                    server: 1,
                    rank: Some(1),
                },
                Gene::Kill {
                    at_ns: w1c + 300_000_000,
                    victim: 1,
                },
            ],
        },
        Genome {
            proto,
            replicas: 2,
            genes: vec![
                Gene::Rot {
                    server: 0,
                    start_ns: w0s,
                    dur_ns: (w1c + 10_000_000_000).saturating_sub(w0s),
                    mtbc_ns: 900_000_000,
                    seed: 23,
                },
                Gene::Kill {
                    at_ns: w1c + 500_000_000,
                    victim: 0,
                },
            ],
        },
    ]
}

fn shift_ns(rng: &mut StdRng, t: u64) -> u64 {
    let delta = rng.gen_range(-1_000_000_000i64..1_000_000_001i64);
    (t as i64 + delta).clamp(1, HORIZON_NS as i64 - 1) as u64
}

/// Apply one seeded mutation. The operator set is the tentpole's:
/// shift, widen, flip-direction, add-flap, add-corrupt, retarget, plus
/// gene drop so schedules can shrink during search too.
fn mutate(rng: &mut StdRng, parent: &Genome) -> Genome {
    let mut g = parent.clone();
    let op = rng.gen_range(0u32..7);
    let idx = rng.gen_range(0..g.genes.len());
    match op {
        // Shift a gene in time.
        0 => match &mut g.genes[idx] {
            Gene::Kill { at_ns, .. }
            | Gene::ServerKill { at_ns, .. }
            | Gene::Corrupt { at_ns, .. } => *at_ns = shift_ns(rng, *at_ns),
            Gene::Partition { start_ns, .. }
            | Gene::ServerPartition { start_ns, .. }
            | Gene::Flap { start_ns, .. }
            | Gene::Rot { start_ns, .. } => *start_ns = shift_ns(rng, *start_ns),
        },
        // Widen (or shrink) a window.
        1 => match &mut g.genes[idx] {
            Gene::Partition { dur_ns, .. }
            | Gene::ServerPartition { dur_ns, .. }
            | Gene::Flap { dur_ns, .. }
            | Gene::Rot { dur_ns, .. } => {
                let delta = rng.gen_range(-1_500_000_000i64..3_000_000_001i64);
                *dur_ns = (*dur_ns as i64 + delta).clamp(100_000_000, 30_000_000_000) as u64;
            }
            Gene::Kill { at_ns, .. }
            | Gene::ServerKill { at_ns, .. }
            | Gene::Corrupt { at_ns, .. } => *at_ns = shift_ns(rng, *at_ns),
        },
        // Flip a cut direction.
        2 => {
            let next = |d: CutDirection| match d {
                CutDirection::Both => CutDirection::Outbound,
                CutDirection::Outbound => CutDirection::Inbound,
                CutDirection::Inbound => CutDirection::Both,
            };
            match &mut g.genes[idx] {
                Gene::Partition { direction, .. } | Gene::ServerPartition { direction, .. } => {
                    *direction = next(*direction)
                }
                _ => {}
            }
        }
        // Add a flap on a random rank→server push path.
        3 => {
            let start = rng.gen_range(1_000_000_000..20_000_000_000u64);
            g.genes.push(Gene::Flap {
                from: rng.gen_range(0..NRANKS),
                to: SERVER_NODE_BASE + rng.gen_range(0..NSERVERS),
                start_ns: start,
                dur_ns: rng.gen_range(2_000_000_000..10_000_000_000u64),
                mttf_ns: rng.gen_range(500_000_000..4_000_000_000u64),
                mttr_ns: rng.gen_range(100_000_000..1_000_000_000u64),
                seed: rng.gen_range(0..u64::MAX),
            });
        }
        // Retarget a victim/node/server.
        4 => match &mut g.genes[idx] {
            Gene::Kill { victim, .. } => *victim = rng.gen_range(0..NRANKS),
            Gene::ServerKill { server, .. }
            | Gene::ServerPartition { server, .. }
            | Gene::Corrupt { server, .. }
            | Gene::Rot { server, .. } => *server = rng.gen_range(0..NSERVERS),
            Gene::Partition { node, .. } => *node = rng.gen_range(0..NRANKS),
            Gene::Flap { from, .. } => *from = rng.gen_range(0..NRANKS),
        },
        // Add a bit-flip on a random stored replica (or a whole server).
        5 => {
            let rank = if rng.gen_bool(0.5) {
                Some(rng.gen_range(0..NRANKS))
            } else {
                None
            };
            g.genes.push(Gene::Corrupt {
                at_ns: rng.gen_range(1_000_000_000..30_000_000_000u64),
                server: rng.gen_range(0..NSERVERS),
                rank,
            });
        }
        // Drop a gene.
        _ => {
            if g.genes.len() > 1 {
                g.genes.remove(idx);
            }
        }
    }
    g
}

/// Shrink a violating genome: greedily drop genes while the outcome class
/// persists, then round surviving times to 100 ms. Every probe run counts
/// toward `runs`.
fn shrink(genome: &Genome, class: OutcomeClass, runs: &mut u64) -> Genome {
    let reproduces = |g: &Genome, runs: &mut u64| -> bool {
        if !g.well_formed() {
            return false;
        }
        *runs += 1;
        let o = run_storm("mine.shrink", g.build_spec());
        classify(&o) == class
    };
    let mut best = genome.clone();
    let mut improved = true;
    while improved && best.genes.len() > 1 {
        improved = false;
        for i in 0..best.genes.len() {
            let mut cand = best.clone();
            cand.genes.remove(i);
            if reproduces(&cand, runs) {
                best = cand;
                improved = true;
                break;
            }
        }
    }
    const GRAIN: u64 = 100_000_000;
    let mut rounded = best.clone();
    for g in &mut rounded.genes {
        match g {
            Gene::Kill { at_ns, .. }
            | Gene::ServerKill { at_ns, .. }
            | Gene::Corrupt { at_ns, .. } => *at_ns = (*at_ns / GRAIN).max(1) * GRAIN,
            Gene::Partition {
                start_ns, dur_ns, ..
            }
            | Gene::ServerPartition {
                start_ns, dur_ns, ..
            }
            | Gene::Flap {
                start_ns, dur_ns, ..
            }
            | Gene::Rot {
                start_ns, dur_ns, ..
            } => {
                *start_ns = (*start_ns / GRAIN).max(1) * GRAIN;
                *dur_ns = (*dur_ns / GRAIN).max(1) * GRAIN;
            }
        }
    }
    if rounded != best && reproduces(&rounded, runs) {
        best = rounded;
    }
    best
}

/// Run the miner: seed the corpus from the measured wave windows, then
/// spend `rounds` seeded mutations per protocol, keeping every schedule
/// that lights a new coverage state and shrinking every violation.
pub fn mine(opts: MineOptions) -> MineReport {
    let mut report = MineReport {
        runs: 0,
        discarded: 0,
        coverage: BTreeSet::new(),
        corpus: Vec::new(),
        violations: Vec::new(),
    };
    for proto in [ProtocolChoice::Pcl, ProtocolChoice::Vcl] {
        let prof = match profile(ring_spec(proto)) {
            Ok(p) if p.waves.len() >= 2 => p,
            _ => continue,
        };
        let (w0s, w0c) = prof.waves[0];
        let (_, w1c) = prof.waves[1];
        let mut rng = StdRng::seed_from_u64(
            opts.seed
                ^ if matches!(proto, ProtocolChoice::Pcl) {
                    0
                } else {
                    0x9e37_79b9
                },
        );
        // The per-protocol corpus slice starts here; mutation parents are
        // drawn from it so each protocol evolves its own lineage.
        let corpus_base = report.corpus.len();
        let admit = |report: &mut MineReport, genome: Genome| {
            report.runs += 1;
            let o = run_storm("mine.run", genome.build_spec());
            let class = classify(&o);
            let key = coverage_key(proto, class, &o);
            let fresh = report.coverage.insert(key);
            if fresh {
                report.corpus.push((genome.clone(), class));
            }
            if class.is_violation() && fresh {
                let detail = o
                    .failures
                    .first()
                    .cloned()
                    .or_else(|| {
                        o.report
                            .as_ref()
                            .and_then(|r| r.violations.first())
                            .map(|v| format!("{v:?}"))
                    })
                    .unwrap_or_else(|| "unknown".to_string());
                let minimal = shrink(&genome, class, &mut report.runs);
                report.violations.push(MinedViolation {
                    genome: minimal,
                    class,
                    detail,
                });
            }
        };
        for genome in seed_genomes(proto, w0s, w0c, w1c) {
            if genome.well_formed() {
                admit(&mut report, genome);
            }
        }
        for _ in 0..opts.rounds {
            if report.corpus.len() == corpus_base {
                break;
            }
            let parent_idx = corpus_base + rng.gen_range(0..report.corpus.len() - corpus_base);
            let parent = report.corpus[parent_idx].0.clone();
            let mutant = mutate(&mut rng, &parent);
            if !mutant.well_formed() {
                report.discarded += 1;
                continue;
            }
            admit(&mut report, mutant);
        }
    }
    report
}

/// Serialize one reproducer in the explorer's `key=value` artifact format.
pub fn encode_artifact(v: &MinedViolation) -> String {
    let proto = match v.genome.proto {
        ProtocolChoice::Pcl => "pcl",
        _ => "vcl",
    };
    let genes: Vec<String> = v.genome.genes.iter().map(Gene::encode).collect();
    format!(
        "# ftmpi-check storm miner reproducer\n\
         proto={proto}\n\
         replicas={}\n\
         genes={}\n\
         kind={}\n\
         detail={}\n",
        v.genome.replicas,
        genes.join(";"),
        v.class.as_str(),
        v.detail.replace('\n', " "),
    )
}

/// Parse a miner reproducer. Unknown keys and comment lines are ignored;
/// missing mandatory keys are an error.
pub fn parse_mined_artifact(text: &str) -> Result<(Genome, String), String> {
    let mut kind = None;
    let mut pairs = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let Some((k, v)) = line.split_once('=') else {
            return Err(format!("malformed line: {line}"));
        };
        if k == "kind" {
            kind = Some(v.to_string());
        }
        pairs.push((k.to_string(), v.to_string()));
    }
    let genome = Genome::parse(pairs.into_iter())?;
    Ok((genome, kind.ok_or("missing kind=")?))
}

/// Re-run a reproducer artifact from disk and report whether the recorded
/// outcome class still reproduces.
pub fn replay(path: &Path) -> Result<(OutcomeClass, bool), String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))?;
    let (genome, kind) = parse_mined_artifact(&text)?;
    let o = run_storm("mine.replay", genome.build_spec());
    let class = classify(&o);
    Ok((class, class.as_str() == kind))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_genome() -> Genome {
        Genome {
            proto: ProtocolChoice::Vcl,
            replicas: 2,
            genes: vec![
                Gene::Kill {
                    at_ns: 3_000_000_000,
                    victim: 2,
                },
                Gene::ServerPartition {
                    server: 1,
                    direction: CutDirection::Inbound,
                    start_ns: 2_500_000_000,
                    dur_ns: 4_000_000_000,
                },
                Gene::Flap {
                    from: 3,
                    to: 9,
                    start_ns: 1_000_000_000,
                    dur_ns: 6_000_000_000,
                    mttf_ns: 800_000_000,
                    mttr_ns: 200_000_000,
                    seed: 42,
                },
                Gene::Corrupt {
                    at_ns: 4_200_000_000,
                    server: 0,
                    rank: Some(5),
                },
                Gene::Corrupt {
                    at_ns: 4_700_000_000,
                    server: 1,
                    rank: None,
                },
                Gene::Rot {
                    server: 0,
                    start_ns: 2_000_000_000,
                    dur_ns: 8_000_000_000,
                    mtbc_ns: 700_000_000,
                    seed: 9,
                },
            ],
        }
    }

    #[test]
    fn gene_encoding_round_trips() {
        for g in sample_genome().genes {
            assert_eq!(Gene::parse(&g.encode()).expect("parse"), g);
        }
    }

    #[test]
    fn artifact_round_trips() {
        let v = MinedViolation {
            genome: sample_genome(),
            class: OutcomeClass::InvariantViolation,
            detail: "orphan message".to_string(),
        };
        let text = encode_artifact(&v);
        let (genome, kind) = parse_mined_artifact(&text).expect("parse");
        assert_eq!(genome, v.genome);
        assert_eq!(kind, "invariant");
    }

    #[test]
    fn corpus_line_round_trips() {
        let g = sample_genome();
        let line = g.encode();
        let pairs = line
            .split_whitespace()
            .map(|t| t.split_once('=').expect("token"))
            .map(|(k, v)| (k.to_string(), v.to_string()));
        assert_eq!(Genome::parse(pairs).expect("parse"), g);
    }

    #[test]
    fn mutants_stay_well_formed_or_are_discarded() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut genome = sample_genome();
        let mut kept = 0;
        for _ in 0..200 {
            let m = mutate(&mut rng, &genome);
            if m.well_formed() {
                genome = m;
                kept += 1;
            }
        }
        assert!(kept > 0, "no mutant survived validation");
    }

    #[test]
    fn mutation_stream_is_seed_deterministic() {
        let run = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut g = sample_genome();
            for _ in 0..50 {
                let m = mutate(&mut rng, &g);
                if m.well_formed() {
                    g = m;
                }
            }
            g
        };
        assert_eq!(run(3), run(3));
        assert_ne!(run(3), run(4));
    }

    #[test]
    fn seed_genomes_validate() {
        for proto in [ProtocolChoice::Pcl, ProtocolChoice::Vcl] {
            for g in seed_genomes(proto, 2_000_000_000, 2_400_000_000, 6_400_000_000) {
                assert!(g.well_formed(), "seed genome invalid: {}", g.encode());
            }
        }
    }
}
