//! Structured views over raw kernel traces.
//!
//! The checker reasons about *trace indices* — positions in the recorded
//! execution order — rather than virtual timestamps, because many protocol
//! steps share an instant and only their execution order defines the cut.

use ftmpi_sim::{ProtoEvent, SimTime, TraceEvent, TraceKind};

/// A protocol event with its position in the execution order and the
/// virtual time it was recorded at.
#[derive(Debug, Clone, Copy)]
pub struct Indexed {
    /// Position among the trace's protocol events, in execution order.
    pub idx: usize,
    /// Virtual time of the record.
    pub time: SimTime,
    /// The event itself.
    pub ev: ProtoEvent,
}

/// The protocol events of one era: the span between two global restarts
/// (or the run's start/end). Era `k` is the execution after the `k`-th
/// restart, so era numbers coincide with message epochs.
#[derive(Debug, Clone)]
pub struct Era {
    /// Era number as claimed by the `Restart` event that opened it
    /// (0 for the initial era).
    pub era: u64,
    /// Events of the era, in execution order. `Restart` markers themselves
    /// are not included; they live in the boundary between eras.
    pub events: Vec<Indexed>,
}

/// Extract the protocol events of a trace, split into eras at `Restart`
/// boundaries. Non-protocol records (spawns, exits, model lines) are
/// skipped but do not perturb the index numbering of protocol events.
pub fn eras(trace: &[TraceEvent]) -> Vec<Era> {
    let mut out = vec![Era {
        era: 0,
        events: Vec::new(),
    }];
    let mut idx = 0;
    for te in trace {
        if let TraceKind::Proto(ev) = te.kind {
            let i = idx;
            idx += 1;
            if let ProtoEvent::Restart { epoch } = ev {
                out.push(Era {
                    era: epoch,
                    events: Vec::new(),
                });
                continue;
            }
            let cur = out.last_mut().expect("era list starts non-empty");
            cur.events.push(Indexed {
                idx: i,
                time: te.time,
                ev,
            });
        }
    }
    out
}

/// Total number of protocol events in a trace.
pub fn proto_count(trace: &[TraceEvent]) -> usize {
    trace
        .iter()
        .filter(|te| matches!(te.kind, TraceKind::Proto(_)))
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn te(ev: ProtoEvent) -> TraceEvent {
        TraceEvent {
            time: SimTime::ZERO,
            kind: TraceKind::Proto(ev),
            pid: None,
            detail: String::new(),
        }
    }

    #[test]
    fn splits_on_restarts_and_keeps_global_indices() {
        let trace = vec![
            te(ProtoEvent::WaveStart { wave: 1 }),
            TraceEvent {
                time: SimTime::ZERO,
                kind: TraceKind::Spawn,
                pid: None,
                detail: String::new(),
            },
            te(ProtoEvent::Restart { epoch: 1 }),
            te(ProtoEvent::WaveStart { wave: 2 }),
        ];
        let e = eras(&trace);
        assert_eq!(e.len(), 2);
        assert_eq!(e[0].era, 0);
        assert_eq!(e[0].events.len(), 1);
        assert_eq!(e[0].events[0].idx, 0);
        assert_eq!(e[1].era, 1);
        // The non-proto Spawn record does not consume a protocol index.
        assert_eq!(e[1].events[0].idx, 2);
        assert_eq!(proto_count(&trace), 3);
    }
}
