//! Order-canonical trace fingerprints for the race detector.
//!
//! Two runs of the same configuration under different same-time event
//! tiebreaks execute independent events in a different order, which
//! permutes trace records *within* a virtual instant without changing the
//! protocol's behaviour. The fingerprint therefore buckets protocol events
//! by identical timestamp and sorts each bucket before hashing: schedules
//! that differ only in the order of independent same-instant events hash
//! identically, while any semantic divergence (different timings, counts,
//! or event contents) changes the digest.
//!
//! Only protocol events contribute. Kernel records (spawn/exit/kill) carry
//! pids, and restart-time spawn ties can permute pid assignment without
//! any semantic difference.

use ftmpi_sim::{TraceEvent, TraceKind};

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn mix(h: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *h ^= u64::from(b);
        *h = h.wrapping_mul(FNV_PRIME);
    }
}

fn flush_bucket(h: &mut u64, time: u64, bucket: &mut Vec<String>) {
    bucket.sort_unstable();
    mix(h, &time.to_le_bytes());
    for s in bucket.drain(..) {
        mix(h, s.as_bytes());
        mix(h, b"\n");
    }
}

/// FNV-1a digest of a trace's protocol content, canonical under
/// permutations of same-instant events.
pub fn trace_fingerprint(trace: &[TraceEvent]) -> u64 {
    let mut h = FNV_OFFSET;
    let mut bucket: Vec<String> = Vec::new();
    let mut bucket_time: Option<u64> = None;
    for te in trace {
        if let TraceKind::Proto(ev) = te.kind {
            let t = te.time.as_nanos();
            if bucket_time != Some(t) {
                if let Some(pt) = bucket_time {
                    flush_bucket(&mut h, pt, &mut bucket);
                }
                bucket_time = Some(t);
            }
            bucket.push(format!("{ev:?}"));
        }
    }
    if let Some(pt) = bucket_time {
        flush_bucket(&mut h, pt, &mut bucket);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftmpi_sim::{ProtoEvent, SimTime};

    fn te(t: u64, ev: ProtoEvent) -> TraceEvent {
        TraceEvent {
            time: SimTime::from_nanos(t),
            kind: TraceKind::Proto(ev),
            pid: None,
            detail: String::new(),
        }
    }

    #[test]
    fn same_instant_permutations_hash_identically() {
        let a = ProtoEvent::WaveStart { wave: 1 };
        let b = ProtoEvent::Fork {
            wave: 1,
            rank: 0,
            ops: 7,
        };
        let fwd = vec![te(10, a), te(10, b), te(20, a)];
        let rev = vec![te(10, b), te(10, a), te(20, a)];
        assert_eq!(trace_fingerprint(&fwd), trace_fingerprint(&rev));
    }

    #[test]
    fn cross_instant_moves_change_the_hash() {
        let a = ProtoEvent::WaveStart { wave: 1 };
        let b = ProtoEvent::Fork {
            wave: 1,
            rank: 0,
            ops: 7,
        };
        let x = vec![te(10, a), te(20, b)];
        let y = vec![te(10, b), te(20, a)];
        assert_ne!(trace_fingerprint(&x), trace_fingerprint(&y));
    }

    #[test]
    fn content_changes_change_the_hash() {
        let base = vec![te(10, ProtoEvent::WaveCommit { wave: 1 })];
        let other = vec![te(10, ProtoEvent::WaveCommit { wave: 2 })];
        assert_ne!(trace_fingerprint(&base), trace_fingerprint(&other));
        assert_ne!(trace_fingerprint(&base), trace_fingerprint(&[]));
    }
}
