//! Schedule-perturbation race detection.
//!
//! The simulation kernel breaks ties among same-time events by scheduling
//! order. Model code must not *depend* on that accident: any two
//! executions that differ only in the order of independent same-instant
//! events must produce the same protocol behaviour. This module probes
//! exactly that property — it re-runs a configuration under seeded
//! permutations of the tiebreak order
//! ([`ftmpi_core::RunOptions::tiebreak_seed`]) and compares
//! order-canonical trace fingerprints. A divergent fingerprint means some
//! state transition read the accidental order: a schedule-sensitivity bug
//! of the same family as a data race in a real MPI implementation.

use ftmpi_core::{run_job_with, JobError, JobSpec, RunOptions};

use crate::fingerprint::trace_fingerprint;

/// Fingerprints of one configuration under perturbed schedules.
#[derive(Debug)]
pub struct PerturbReport {
    /// Fingerprint of the canonical (unperturbed) schedule.
    pub baseline: u64,
    /// `(seed, fingerprint)` of every perturbed run.
    pub perturbed: Vec<(u64, u64)>,
}

impl PerturbReport {
    /// Seeds whose fingerprint diverged from the baseline.
    pub fn divergent(&self) -> Vec<u64> {
        self.perturbed
            .iter()
            .filter(|&&(_, fp)| fp != self.baseline)
            .map(|&(seed, _)| seed)
            .collect()
    }

    /// `true` when every perturbed schedule reproduced the baseline.
    pub fn ok(&self) -> bool {
        self.divergent().is_empty()
    }
}

/// Run the configuration produced by `mk_spec` once canonically and once
/// per perturbation seed, fingerprinting each trace.
pub fn perturbation_check(
    mk_spec: impl Fn() -> JobSpec,
    seeds: &[u64],
) -> Result<PerturbReport, JobError> {
    let (_, trace) = run_job_with(
        mk_spec(),
        RunOptions {
            trace: true,
            tiebreak_seed: None,
            ..RunOptions::default()
        },
    )?;
    let baseline = trace_fingerprint(&trace);
    let mut perturbed = Vec::with_capacity(seeds.len());
    for &seed in seeds {
        let (_, t) = run_job_with(
            mk_spec(),
            RunOptions {
                trace: true,
                tiebreak_seed: Some(seed),
                ..RunOptions::default()
            },
        )?;
        perturbed.push((seed, trace_fingerprint(&t)));
    }
    Ok(PerturbReport {
        baseline,
        perturbed,
    })
}
