//! `ftmpi-check explore`: exhaustive schedule exploration (DPOR).
//!
//! The perturbation pass (PR 2) *samples* same-instant event orders with
//! random seeds; this module *enumerates* them. A schedule is identified
//! by its decision prefix — the list of candidate indices a
//! [`ftmpi_sim::PrescribedPolicy`] feeds the kernel, canonical (index 0)
//! beyond the prefix — so the schedule space is a tree of prescriptions
//! explored depth-first:
//!
//! 1. Run the current prescription to completion; record its trace, its
//!    [`ScheduleLog`] (every choice point and executed step), its
//!    canonical fingerprint, and its invariant-checker verdict.
//! 2. For every decision at or beyond the prescription's end, consider
//!    each non-chosen candidate:
//!    * **Sleep/memo pruning**: the pair `(state fingerprint at the
//!      decision, candidate identity)` is memoized; a pair already
//!      expanded anywhere in the tree is not expanded again.
//!    * **Persistent-set pruning**: if the candidate's own effect window
//!      (observed later in this very run — every same-instant candidate
//!      executes within the instant) commutes with every step that ran
//!      between the decision and the candidate's own execution, then
//!      running the candidate first yields a Mazurkiewicz-equivalent
//!      execution of this run, and the branch is pruned.
//!    * Otherwise the branch `prefix + [candidate]` joins the frontier.
//! 3. A *violation* is an invariant-checker failure, a run error (a
//!    schedule-induced deadlock), or a canonical-fingerprint divergence
//!    from the prescription-free run — the observable outcome depended
//!    on scheduler freedom, which the determinism contract forbids.
//!    Violating schedules are shrunk to a minimal prescription (greedily
//!    zeroing choices from the back, then dropping the canonical tail)
//!    and dumped as a replayable `key=value` artifact.
//!
//! The state fingerprint is the trace-prefix fingerprint
//! ([`crate::fingerprint::trace_fingerprint`]), which buckets and sorts
//! same-instant records — so commuting reorders collapse to one state,
//! and proto-silent steps don't split states at all. It is an
//! *abstraction*: exploration is exhaustive relative to this reduction
//! (memoized states are not re-expanded), which is exactly the
//! partial-order-reduction bargain.
//!
//! The explorer doubles as a backend-equivalence proof: exploration pops
//! every same-instant candidate out of the queue and pushes the losers
//! back ([`EventQueue::unpop`](ftmpi_sim::EventQueue)), exercising the
//! ladder's push-below-drained-minimum path on every decision. Running
//! the same config under both backends must visit the same states.

use std::collections::HashSet;
use std::path::{Path, PathBuf};

use ftmpi_core::{
    run_job_explored, FtConfig, JobError, JobSpec, ProtocolChoice, RunOptions, ScheduleLog,
};
use ftmpi_mpi::RaceFixture;
use ftmpi_sim::{Candidate, ProtoEvent, SimDuration, SimTime, TraceEvent, TraceKind};

use crate::fingerprint::trace_fingerprint;
use crate::hb::commutes;
use crate::invariants::check_trace;
use crate::suite::{ring_app, stream_app};

/// One explorable configuration: a small job plus the fixture (if any)
/// that re-opens a historical race in it.
pub struct ExploreConfig {
    /// Stable config name (artifact and report key).
    pub name: &'static str,
    /// Protocol under test (redundant with the spec; kept for reports).
    pub protocol: ProtocolChoice,
    /// Ranks (redundant with the spec; kept for reports).
    pub nranks: usize,
    /// The race fixture driving this config, if any.
    pub fixture: Option<RaceFixture>,
    /// Whether exploration is expected to find a violation.
    pub expect_violation: bool,
    mk: fn() -> Result<JobSpec, JobError>,
}

impl ExploreConfig {
    /// Build the config's job spec (may run deterministic probe
    /// simulations — the laneless-markers fixture tunes its wave delay so
    /// a marker provably collides with a data delivery).
    pub fn spec(&self) -> Result<JobSpec, JobError> {
        (self.mk)()
    }
}

/// Exploration budget and mode.
pub struct ExploreOptions {
    /// Force the queue backend (`Some(true)` = ladder); `None` keeps the
    /// environment default.
    pub ladder: Option<bool>,
    /// Force the process backend (`Some(true)` = legacy OS threads);
    /// `None` keeps the environment default (coroutines).
    pub threaded: Option<bool>,
    /// Abort (non-exhausted) after this many complete runs.
    pub max_runs: u64,
    /// Minimize violating schedules before reporting.
    pub shrink: bool,
    /// Where to dump reproducer artifacts (`None`: don't).
    pub artifact_dir: Option<PathBuf>,
}

impl Default for ExploreOptions {
    fn default() -> ExploreOptions {
        ExploreOptions {
            ladder: None,
            threaded: None,
            max_runs: 4000,
            shrink: true,
            artifact_dir: None,
        }
    }
}

/// A violating schedule, minimized and (optionally) dumped to disk.
#[derive(Debug, Clone)]
pub struct ViolationReport {
    /// The prescription that first exhibited the violation.
    pub schedule: Vec<usize>,
    /// The shrunk prescription (still violating; no shorter zero-suffix
    /// form exists under the greedy shrinker).
    pub minimized: Vec<usize>,
    /// What went wrong: `divergence`, `invariant:<...>`, or `error:<...>`.
    pub kind: String,
    /// Reproducer file, when an artifact dir was configured.
    pub artifact: Option<PathBuf>,
}

/// The result of exploring one config.
#[derive(Debug)]
pub struct ExploreOutcome {
    /// Config name.
    pub name: String,
    /// Complete runs executed (including canonical and shrink runs).
    pub runs: u64,
    /// Distinct terminal fingerprints observed (1 for a deterministic,
    /// race-free config).
    pub distinct_outcomes: usize,
    /// Most decisions recorded by any single run.
    pub max_decisions: usize,
    /// Branches pruned by the commutation argument.
    pub pruned: u64,
    /// Branches skipped by the state-memo.
    pub deduped: u64,
    /// `true` when the frontier emptied within budget.
    pub exhausted: bool,
    /// First violation found, if any.
    pub violation: Option<ViolationReport>,
    /// Wall-clock milliseconds spent.
    pub wall_ms: u64,
    /// Terminal fingerprint of the canonical schedule.
    pub canonical_fp: u64,
}

/// One run's classification, internal to the DFS.
struct RunOutcome {
    fp: u64,
    trace: Vec<TraceEvent>,
    log: ScheduleLog,
    /// `Some(kind)` when the run violated (invariant or error). Divergence
    /// is judged by the caller against the canonical fingerprint.
    broken: Option<String>,
}

fn run_one(
    cfg: &ExploreConfig,
    spec: &JobSpec,
    opts: &ExploreOptions,
    prescription: Vec<usize>,
) -> Result<RunOutcome, JobError> {
    let run_opts = RunOptions {
        trace: true,
        tiebreak_seed: None,
        schedule: Some(prescription.clone()),
        ladder: opts.ladder,
        threaded: opts.threaded,
        race_fixture: cfg.fixture,
    };
    match run_job_explored(spec.clone(), run_opts) {
        Ok((_res, trace, log)) => {
            let report = check_trace(cfg.protocol, cfg.nranks, &trace);
            let broken = report
                .violations
                .first()
                .map(|v| format!("invariant:{v:?}"));
            Ok(RunOutcome {
                fp: trace_fingerprint(&trace),
                trace,
                log,
                broken,
            })
        }
        Err(e) if prescription.is_empty() => Err(e),
        Err(e) => Ok(RunOutcome {
            // A schedule-induced failure (e.g. a reorder deadlocking the
            // protocol) is a violation of the strongest kind, not a tool
            // error: record it and keep the canonical run authoritative.
            fp: 0,
            trace: Vec::new(),
            log: ScheduleLog::default(),
            broken: Some(format!("error:{e}")),
        }),
    }
}

/// The proto events of step `i`'s effect window.
fn step_effects(trace: &[TraceEvent], log: &ScheduleLog, i: usize) -> Vec<ProtoEvent> {
    let lo = log.steps[i].trace_lo;
    let hi = log
        .steps
        .get(i + 1)
        .map(|s| s.trace_lo)
        .unwrap_or(trace.len());
    trace[lo..hi]
        .iter()
        .filter_map(|te| match te.kind {
            TraceKind::Proto(ev) => Some(ev),
            _ => None,
        })
        .collect()
}

/// A candidate's run-independent identity at a decision: its lane, its
/// kind, and its occurrence index among look-alike candidates (sequence
/// numbers are an accident of scheduling history and would defeat the
/// memo across different prefixes).
type CandidateDigest = (Option<u64>, ftmpi_sim::CandidateKind, usize);

fn candidate_digest(cands: &[Candidate], idx: usize) -> CandidateDigest {
    let c = cands[idx];
    let occ = cands[..idx]
        .iter()
        .filter(|o| o.lane == c.lane && o.kind == c.kind)
        .count();
    (c.lane, c.kind, occ)
}

/// Explore one config's schedule space exhaustively (up to the budget).
pub fn explore(cfg: &ExploreConfig, opts: &ExploreOptions) -> Result<ExploreOutcome, JobError> {
    let wall = std::time::Instant::now();
    let spec = cfg.spec()?;
    let mut outcome = ExploreOutcome {
        name: cfg.name.to_string(),
        runs: 0,
        distinct_outcomes: 0,
        max_decisions: 0,
        pruned: 0,
        deduped: 0,
        exhausted: false,
        violation: None,
        wall_ms: 0,
        canonical_fp: 0,
    };
    let mut fps: HashSet<u64> = HashSet::new();
    let mut expanded: HashSet<(u64, CandidateDigest)> = HashSet::new();
    let mut frontier: Vec<Vec<usize>> = vec![Vec::new()];
    let mut canonical_fp: Option<u64> = None;

    while let Some(prescription) = frontier.pop() {
        if outcome.runs >= opts.max_runs {
            frontier.clear();
            break;
        }
        let run = run_one(cfg, &spec, opts, prescription.clone())?;
        outcome.runs += 1;
        outcome.max_decisions = outcome.max_decisions.max(run.log.decisions.len());
        let canonical = *canonical_fp.get_or_insert(run.fp);
        if run.broken.is_none() {
            fps.insert(run.fp);
        }
        let kind = run
            .broken
            .clone()
            .or_else(|| (run.fp != canonical).then(|| "divergence".to_string()));
        if let Some(kind) = kind {
            let minimized = if opts.shrink {
                shrink(
                    cfg,
                    &spec,
                    opts,
                    canonical,
                    &mut outcome.runs,
                    &prescription,
                )
            } else {
                prescription.clone()
            };
            let artifact = opts
                .artifact_dir
                .as_ref()
                .map(|dir| write_artifact(dir, cfg, opts, &minimized, &kind, canonical, run.fp));
            outcome.violation = Some(ViolationReport {
                schedule: prescription,
                minimized,
                kind,
                artifact,
            });
            break;
        }
        // Expand every decision this run made beyond its prescription.
        let step_of: std::collections::HashMap<u64, usize> = run
            .log
            .steps
            .iter()
            .enumerate()
            .map(|(i, s)| (s.seq, i))
            .collect();
        for d in prescription.len()..run.log.decisions.len() {
            let dec = &run.log.decisions[d];
            let state_fp = trace_fingerprint(&run.trace[..run.log.steps[dec.step].trace_lo]);
            for (a, _) in dec.candidates.iter().enumerate() {
                if a == dec.chosen {
                    continue;
                }
                let key = (state_fp, candidate_digest(&dec.candidates, a));
                if expanded.contains(&key) {
                    outcome.deduped += 1;
                    continue;
                }
                expanded.insert(key);
                // Persistent-set argument: if the candidate commutes with
                // every step that executed between this decision and its
                // own execution in this run, candidate-first is
                // Mazurkiewicz-equivalent to this run — prune.
                let alt = dec.candidates[a];
                let equivalent = step_of.get(&alt.seq).is_some_and(|&sa| {
                    let alt_fx = step_effects(&run.trace, &run.log, sa);
                    (dec.step..sa)
                        .all(|i| commutes(&alt_fx, &step_effects(&run.trace, &run.log, i)))
                });
                if equivalent {
                    outcome.pruned += 1;
                    continue;
                }
                let mut branch: Vec<usize> =
                    run.log.decisions[..d].iter().map(|x| x.chosen).collect();
                branch.push(a);
                frontier.push(branch);
            }
        }
    }
    outcome.exhausted = frontier.is_empty() && outcome.violation.is_none();
    outcome.distinct_outcomes = fps.len();
    outcome.canonical_fp = canonical_fp.unwrap_or(0);
    outcome.wall_ms = wall.elapsed().as_millis() as u64;
    Ok(outcome)
}

/// `true` when `prescription` still exhibits a violation.
fn violates(
    cfg: &ExploreConfig,
    spec: &JobSpec,
    opts: &ExploreOptions,
    canonical: u64,
    runs: &mut u64,
    prescription: &[usize],
) -> bool {
    *runs += 1;
    match run_one(cfg, spec, opts, prescription.to_vec()) {
        Ok(r) => r.broken.is_some() || r.fp != canonical,
        Err(_) => false,
    }
}

/// Greedy shrinker: set nonzero choices to 0 (back to front) while the
/// violation persists, to a fixpoint; trailing zeros are then dropped —
/// a prescription is canonical beyond its end, so they are no-ops.
fn shrink(
    cfg: &ExploreConfig,
    spec: &JobSpec,
    opts: &ExploreOptions,
    canonical: u64,
    runs: &mut u64,
    schedule: &[usize],
) -> Vec<usize> {
    let mut best: Vec<usize> = schedule.to_vec();
    loop {
        let mut improved = false;
        for i in (0..best.len()).rev() {
            if best[i] == 0 {
                continue;
            }
            let mut cand = best.clone();
            cand[i] = 0;
            if violates(cfg, spec, opts, canonical, runs, &cand) {
                best = cand;
                improved = true;
            }
        }
        if !improved {
            break;
        }
    }
    while best.last() == Some(&0) {
        best.pop();
    }
    best
}

/// Serialize a reproducer (see [`parse_artifact`] for the format) into
/// `dir/<config>.<backend>.repro`, creating the directory as needed.
fn write_artifact(
    dir: &Path,
    cfg: &ExploreConfig,
    opts: &ExploreOptions,
    minimized: &[usize],
    kind: &str,
    canonical_fp: u64,
    observed_fp: u64,
) -> PathBuf {
    let backend = match opts.ladder {
        None => "default",
        Some(true) => "ladder",
        Some(false) => "heap",
    };
    let schedule = minimized
        .iter()
        .map(|c| c.to_string())
        .collect::<Vec<_>>()
        .join(",");
    let text = format!(
        "# ftmpi-check explore reproducer\n\
         config={}\n\
         backend={backend}\n\
         schedule={schedule}\n\
         kind={kind}\n\
         canonical_fp={canonical_fp:016x}\n\
         observed_fp={observed_fp:016x}\n",
        cfg.name
    );
    let _ = std::fs::create_dir_all(dir);
    let path = dir.join(format!("{}.{backend}.repro", cfg.name));
    if let Err(e) = std::fs::write(&path, text) {
        eprintln!("warning: could not write {}: {e}", path.display());
    }
    path
}

/// A parsed reproducer artifact.
#[derive(Debug, PartialEq, Eq)]
pub struct Repro {
    /// Config name (must match an [`explore_configs`] entry).
    pub config: String,
    /// Queue backend the violation was found under.
    pub ladder: Option<bool>,
    /// The minimized prescription.
    pub schedule: Vec<usize>,
    /// Violation kind at dump time.
    pub kind: String,
}

/// Parse a reproducer written by the explorer. Unknown keys and comment
/// lines are ignored; missing mandatory keys are an error.
pub fn parse_artifact(text: &str) -> Result<Repro, String> {
    let mut config = None;
    let mut ladder = None;
    let mut schedule = None;
    let mut kind = None;
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let Some((k, v)) = line.split_once('=') else {
            return Err(format!("malformed line: {line}"));
        };
        match k {
            "config" => config = Some(v.to_string()),
            "backend" => {
                ladder = Some(match v {
                    "ladder" => Some(true),
                    "heap" => Some(false),
                    _ => None,
                })
            }
            "schedule" => {
                let parsed: Result<Vec<usize>, _> = if v.is_empty() {
                    Ok(Vec::new())
                } else {
                    v.split(',').map(|c| c.trim().parse()).collect()
                };
                schedule = Some(parsed.map_err(|e| format!("bad schedule: {e}"))?);
            }
            "kind" => kind = Some(v.to_string()),
            _ => {}
        }
    }
    Ok(Repro {
        config: config.ok_or("missing config=")?,
        ladder: ladder.ok_or("missing backend=")?,
        schedule: schedule.ok_or("missing schedule=")?,
        kind: kind.ok_or("missing kind=")?,
    })
}

/// Re-run a reproducer and report whether the violation still shows.
pub fn replay(repro: &Repro) -> Result<Option<String>, String> {
    let cfg = explore_configs()
        .into_iter()
        .find(|c| c.name == repro.config)
        .ok_or_else(|| format!("unknown explore config `{}`", repro.config))?;
    let opts = ExploreOptions {
        ladder: repro.ladder,
        ..ExploreOptions::default()
    };
    let spec = cfg.spec().map_err(|e| e.to_string())?;
    let canonical = run_one(&cfg, &spec, &opts, Vec::new()).map_err(|e| e.to_string())?;
    if let Some(kind) = canonical.broken {
        return Ok(Some(format!("canonical run itself violates: {kind}")));
    }
    let run = run_one(&cfg, &spec, &opts, repro.schedule.clone()).map_err(|e| e.to_string())?;
    Ok(run
        .broken
        .or_else(|| (run.fp != canonical.fp).then(|| "divergence".to_string())))
}

// --- Config registry ---------------------------------------------------

/// A small ring job: `nranks` ranks, a handful of iterations, exactly one
/// checkpoint wave mid-run.
fn tiny_ring(nranks: usize, protocol: ProtocolChoice) -> JobSpec {
    let mut spec = JobSpec::new(
        nranks,
        protocol,
        ring_app(4, 1_000, SimDuration::from_millis(50)),
    );
    spec.servers = 1;
    spec.ft = FtConfig {
        period: SimDuration::from_secs(30),
        first_wave_delay: SimDuration::from_millis(60),
        image_bytes: 256 << 10,
        ..FtConfig::default()
    };
    spec.max_virtual_time = Some(SimTime::from_nanos(120_000_000_000));
    spec
}

/// The stream job hosting the laneless-markers fixture, parameterized by
/// the wave delay (tuned by [`tuned_laneless_spec`]).
fn laneless_base(first_wave_delay: SimDuration) -> JobSpec {
    let mut spec = JobSpec::new(
        2,
        ProtocolChoice::Vcl,
        stream_app(40, 64 << 10, SimDuration::from_millis(1)),
    );
    spec.servers = 1;
    spec.ft = FtConfig {
        period: SimDuration::from_secs(30),
        first_wave_delay,
        image_bytes: 128 << 10,
        ..FtConfig::default()
    };
    spec.max_virtual_time = Some(SimTime::from_nanos(120_000_000_000));
    spec
}

/// Rank 1's control-marker arrival instant in a trace. The scheduler's
/// control marker is not itself a traced proto event, but it triggers the
/// local checkpoint in the nanosecond it arrives — `Fork { rank: 1 }` is
/// its same-instant proxy. (The *channel* marker `MarkerRecv { to: 1 }`
/// is useless here: it rides the data channel FIFO and by construction
/// arrives strictly after every queued message.)
fn rank1_fork_ns(trace: &[TraceEvent]) -> Option<u64> {
    trace.iter().find_map(|te| match te.kind {
        TraceKind::Proto(ProtoEvent::Fork { rank: 1, .. }) => Some(te.time.as_nanos()),
        _ => None,
    })
}

/// Tune the laneless-markers fixture so the scheduler's control marker
/// arrives at rank 1 in the *same nanosecond* as a data delivery — the
/// collision whose arbitration the fixture un-pins. Two deterministic
/// probe runs suffice: one with the wave pushed past completion
/// (collecting the undisturbed delivery instants) and one with an early
/// wave (measuring the wave-start → control-arrival latency, which is
/// delay-independent). Candidate targets are then verified — the first
/// delivery instant whose implied wave delay really yields a same-instant
/// fork+delivery pair wins — so the returned spec provably collides.
fn tuned_laneless_spec() -> Result<JobSpec, JobError> {
    let run = |fwd: SimDuration| {
        run_job_explored(
            laneless_base(fwd),
            RunOptions {
                trace: true,
                ..RunOptions::default()
            },
        )
    };
    let (_r, quiet, _) = run(SimDuration::from_secs(100))?;
    let delivers: Vec<u64> = quiet
        .iter()
        .filter_map(|te| match te.kind {
            TraceKind::Proto(ProtoEvent::Deliver { dst: 1, .. }) => Some(te.time.as_nanos()),
            _ => None,
        })
        .collect();
    let d0 = SimDuration::from_millis(3);
    let (_r, probe, _) = run(d0)?;
    let f0 = rank1_fork_ns(&probe)
        .ok_or_else(|| JobError::Sim("laneless probe: rank 1 never forked".into()))?;
    let latency = f0.saturating_sub(d0.as_nanos());
    for &target in delivers.iter().filter(|&&t| t > latency) {
        let delay = SimDuration::from_nanos(target - latency);
        let (_r, t, _) = run(delay)?;
        let Some(fork_at) = rank1_fork_ns(&t) else {
            continue;
        };
        let collides = t.iter().any(|te| {
            te.time.as_nanos() == fork_at
                && matches!(
                    te.kind,
                    TraceKind::Proto(ProtoEvent::Deliver { dst: 1, .. })
                )
        });
        if collides {
            return Ok(laneless_base(delay));
        }
    }
    Err(JobError::Sim(
        "laneless-markers fixture: no wave delay collides the control marker with a delivery"
            .into(),
    ))
}

/// Every explorable config: the two clean 3-rank jobs (expected to
/// exhaust without violations, under both backends) and the two
/// historical-race fixtures (expected to violate, minimally).
pub fn explore_configs() -> Vec<ExploreConfig> {
    vec![
        ExploreConfig {
            name: "pcl3.ring",
            protocol: ProtocolChoice::Pcl,
            nranks: 3,
            fixture: None,
            expect_violation: false,
            mk: || Ok(tiny_ring(3, ProtocolChoice::Pcl)),
        },
        ExploreConfig {
            name: "vcl3.ring",
            protocol: ProtocolChoice::Vcl,
            nranks: 3,
            fixture: None,
            expect_violation: false,
            mk: || Ok(tiny_ring(3, ProtocolChoice::Vcl)),
        },
        ExploreConfig {
            name: "vcl2.laneless-markers",
            protocol: ProtocolChoice::Vcl,
            nranks: 2,
            fixture: Some(RaceFixture::LanelessMarkers),
            expect_violation: true,
            mk: tuned_laneless_spec,
        },
        ExploreConfig {
            name: "pcl3.unstaggered-flows",
            protocol: ProtocolChoice::Pcl,
            nranks: 3,
            fixture: Some(RaceFixture::UnstaggeredFlows),
            expect_violation: true,
            mk: || Ok(tiny_ring(3, ProtocolChoice::Pcl)),
        },
    ]
}

/// Explore a clean config under both queue backends and check they agree
/// state-for-state: same run count, same prune/memo counts, same
/// fingerprint set. Returns the two outcomes (heap, ladder).
pub fn differential(
    cfg: &ExploreConfig,
    base: &ExploreOptions,
) -> Result<(ExploreOutcome, ExploreOutcome), JobError> {
    let heap = explore(
        cfg,
        &ExploreOptions {
            ladder: Some(false),
            threaded: base.threaded,
            max_runs: base.max_runs,
            shrink: base.shrink,
            artifact_dir: base.artifact_dir.clone(),
        },
    )?;
    let ladder = explore(
        cfg,
        &ExploreOptions {
            ladder: Some(true),
            threaded: base.threaded,
            max_runs: base.max_runs,
            shrink: base.shrink,
            artifact_dir: base.artifact_dir.clone(),
        },
    )?;
    Ok((heap, ladder))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn artifact_round_trips() {
        let text = "# ftmpi-check explore reproducer\n\
                    config=pcl3.ring\n\
                    backend=ladder\n\
                    schedule=2,0,1\n\
                    kind=divergence\n\
                    canonical_fp=00000000deadbeef\n\
                    observed_fp=0000000012345678\n";
        let r = parse_artifact(text).expect("parse");
        assert_eq!(
            r,
            Repro {
                config: "pcl3.ring".into(),
                ladder: Some(true),
                schedule: vec![2, 0, 1],
                kind: "divergence".into(),
            }
        );
        assert_eq!(
            parse_artifact("config=x\nbackend=default\nschedule=\nkind=k\n")
                .expect("empty schedule")
                .schedule,
            Vec::<usize>::new()
        );
        assert!(parse_artifact("config=x\n").is_err());
        assert!(parse_artifact("schedule=1,x\nconfig=c\nbackend=heap\nkind=k").is_err());
    }

    #[test]
    fn digest_counts_lookalikes() {
        use ftmpi_sim::CandidateKind;
        let cands = [
            Candidate {
                seq: 10,
                lane: None,
                kind: CandidateKind::Call,
            },
            Candidate {
                seq: 11,
                lane: Some(3),
                kind: CandidateKind::Call,
            },
            Candidate {
                seq: 12,
                lane: None,
                kind: CandidateKind::Call,
            },
        ];
        assert_eq!(candidate_digest(&cands, 0), (None, CandidateKind::Call, 0));
        assert_eq!(
            candidate_digest(&cands, 1),
            (Some(3), CandidateKind::Call, 0)
        );
        assert_eq!(candidate_digest(&cands, 2), (None, CandidateKind::Call, 1));
    }
}
