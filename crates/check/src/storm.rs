//! Failure-storm campaigns: seeded fault-injection over the failure paths
//! the paper's experiments never stress.
//!
//! A *storm* is a schedule of rank kills and checkpoint-server failures
//! aimed at the protocol's most fragile windows — mid-wave (partial images
//! on the servers), mid-recovery (a second failure while the first restart
//! is still respawning), and the detection-lag gap between a kill and the
//! dispatcher noticing it. Every storm run is traced and pushed through the
//! [`crate::invariants`] checker; on top of the per-wave cut proofs the
//! campaign asserts the robustness contract end-to-end:
//!
//! * every run completes (no deadlock, no panic, no fatal recovery error);
//! * no wave is both aborted and committed (partial commits);
//! * rollback depth never exceeds the configured retention;
//! * the server bookkeeping ends with zero orphaned partial images;
//! * lost work grows monotonically with detection lag.
//!
//! Correlated failures and network partitions get their own scenario
//! families: node kills (every colocated rank and server dies atomically),
//! partitions that heal inside the heartbeat grace window (the watchdog
//! must suppress the false positive — zero rollbacks, zero aborted waves),
//! partitions that outlive it (one correlated rollback of the cut-off
//! side), and partitions straddling a restart's image fetch (the probe
//! chain must resume across the heal without duplicating a fetch). On top
//! of the invariant checker these assert:
//!
//! * no wave commits while a partition cuts a participant off;
//! * link retries stay bounded (no livelock spinning on a dead path);
//! * a heal inside the grace window causes zero restarts;
//! * recovery across a heal fetches each image exactly once.
//!
//! [`storm_campaign`] runs deterministic scenarios covering each window for
//! both protocols, then seeded randomized storms whose kill times are
//! biased toward wave and recovery windows measured from a clean profiling
//! run of the same workload.

use ftmpi_core::{run_job_with, FailurePlan, JobSpec, ProtocolChoice, RunOptions};
use ftmpi_net::{CutDirection, LinkFlapSpec, NetFaultPlan, NodeId};
use ftmpi_sim::{ProtoEvent, SimDuration, SimTime, TraceEvent, TraceKind};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::invariants::{check_trace, CheckReport};
use crate::suite::{ring_app, stream_app};

/// Outcome of one storm run: the invariant-checker verdict plus the
/// robustness counters and any scenario-level assertion failures.
#[derive(Debug)]
pub struct StormOutcome {
    /// Scenario label.
    pub name: String,
    /// Committed checkpoint waves.
    pub waves: u64,
    /// Failure-restarts performed.
    pub restarts: u64,
    /// In-flight waves aborted (restarts and server losses).
    pub waves_aborted: u64,
    /// Deepest rollback past the newest committed wave.
    pub rollback_depth_max: u64,
    /// Computation discarded by rollbacks, in seconds.
    pub lost_work_secs: f64,
    /// Partial images left in the server bookkeeping at the end.
    pub orphan_images_end: u64,
    /// Flow chunks / restore probes that paused on an unreachable path.
    pub link_retries: u64,
    /// Partition watchdog firings suppressed because the cut healed first.
    pub partitions_suppressed: u64,
    /// Partition watchdog grace windows that expired with the cut active.
    pub partitions_expired: u64,
    /// Bounded retry ladders that ran out (pushes rerouted, replica walks).
    pub retries_exhausted: u64,
    /// Deepest replica index a restore fetch had to walk to.
    pub replica_depth_max: u64,
    /// Image pushes re-aimed at another server after retry exhaustion.
    pub images_rerouted: u64,
    /// Images fetched back from servers during restores.
    pub images_refetched: u64,
    /// Damaged replicas caught by verify-on-fetch or the scrubber.
    pub images_corrupt_detected: u64,
    /// Slots walked past damage to a verified copy, or re-replicated.
    pub images_repaired: u64,
    /// Servers quarantined for exceeding the corruption threshold.
    pub servers_quarantined: u64,
    /// The invariant-checker verdict (`None` when the run itself failed).
    pub report: Option<CheckReport>,
    /// Scenario assertions that did not hold, including run errors.
    pub failures: Vec<String>,
}

impl StormOutcome {
    /// `true` when the run completed, every invariant held, and every
    /// scenario assertion passed.
    pub fn ok(&self) -> bool {
        self.failures.is_empty() && self.report.as_ref().is_some_and(CheckReport::ok)
    }

    fn expect(&mut self, cond: bool, msg: String) {
        if !cond {
            self.failures.push(msg);
        }
    }
}

/// Wave windows and completion time measured from a clean (failure-free)
/// run, used to aim storms at the protocol's fragile windows.
pub(crate) struct CleanProfile {
    /// Completion time of the clean run, ns.
    pub(crate) end_ns: u64,
    /// `(start_ns, commit_ns)` of every committed wave, in commit order.
    pub(crate) waves: Vec<(u64, u64)>,
}

pub(crate) fn profile(spec: JobSpec) -> Result<CleanProfile, String> {
    let (res, trace) = run_job_with(
        spec,
        RunOptions {
            trace: true,
            tiebreak_seed: None,
            ..RunOptions::default()
        },
    )
    .map_err(|e| format!("clean profiling run failed: {e}"))?;
    let mut starts: Vec<(u64, u64)> = Vec::new();
    let mut waves = Vec::new();
    for te in &trace {
        if let TraceKind::Proto(ev) = te.kind {
            match ev {
                ProtoEvent::WaveStart { wave } => starts.push((wave, te.time.as_nanos())),
                ProtoEvent::WaveCommit { wave } => {
                    if let Some(&(_, s)) = starts.iter().find(|&&(w, _)| w == wave) {
                        waves.push((s, te.time.as_nanos()));
                    }
                }
                _ => {}
            }
        }
    }
    Ok(CleanProfile {
        end_ns: res.completion.as_nanos(),
        waves,
    })
}

/// The storm workload: the smoke ring at 8 ranks over two servers, long
/// enough for several waves, short enough to run dozens of variants.
pub(crate) fn ring_spec(proto: ProtocolChoice) -> JobSpec {
    let mut spec = JobSpec::new(
        8,
        proto,
        ring_app(100, 10_000, SimDuration::from_millis(200)),
    );
    spec.servers = 2;
    spec.ft.period = SimDuration::from_secs(4);
    spec.ft.first_wave_delay = SimDuration::from_secs(2);
    spec.ft.image_bytes = 4 << 20;
    spec.max_virtual_time = Some(SimTime::from_nanos(900_000_000_000));
    spec
}

/// The logging-heavy two-rank Vcl stream (messages genuinely in the
/// channel when the wave cuts through).
fn stream_spec() -> JobSpec {
    let mut spec = JobSpec::new(
        2,
        ProtocolChoice::Vcl,
        stream_app(200, 256 << 10, SimDuration::from_millis(2)),
    );
    spec.servers = 2;
    spec.ft.period = SimDuration::from_secs(1);
    spec.ft.first_wave_delay = SimDuration::from_millis(200);
    spec.ft.image_bytes = 4 << 20;
    spec.max_virtual_time = Some(SimTime::from_nanos(900_000_000_000));
    spec
}

/// Run one storm scenario: trace it, check every invariant, and apply the
/// campaign-wide robustness assertions (bounded rollback, empty server
/// bookkeeping).
pub fn run_storm(name: &str, spec: JobSpec) -> StormOutcome {
    run_storm_traced(name, spec).0
}

/// Like [`run_storm`] but hands the protocol trace back too, so scenario
/// code can assert time-window properties (no wave commits across a
/// partition cut) on top of the campaign-wide checks. The trace is empty
/// when the run itself failed.
pub fn run_storm_traced(name: &str, spec: JobSpec) -> (StormOutcome, Vec<TraceEvent>) {
    let nranks = spec.nranks;
    let protocol = spec.protocol;
    let retained = spec.ft.retained_waves.max(1) as u64;
    match run_job_with(
        spec,
        RunOptions {
            trace: true,
            tiebreak_seed: None,
            ..RunOptions::default()
        },
    ) {
        Ok((res, trace)) => {
            let mut o = StormOutcome {
                name: name.to_string(),
                waves: res.waves(),
                restarts: res.rt.restarts,
                waves_aborted: res.ft.waves_aborted,
                rollback_depth_max: res.ft.rollback_depth_max,
                lost_work_secs: res.ft.lost_work_secs(),
                orphan_images_end: res.ft.orphan_images_end,
                link_retries: res.rt.link_retries,
                partitions_suppressed: res.ft.partitions_suppressed,
                partitions_expired: res.ft.partitions_expired,
                retries_exhausted: res.ft.retries_exhausted,
                replica_depth_max: res.ft.replica_depth_max,
                images_rerouted: res.ft.images_rerouted,
                images_refetched: res.ft.images_refetched,
                images_corrupt_detected: res.ft.images_corrupt_detected,
                images_repaired: res.ft.images_repaired,
                servers_quarantined: res.ft.servers_quarantined,
                report: Some(check_trace(protocol, nranks, &trace)),
                failures: Vec::new(),
            };
            let depth = o.rollback_depth_max;
            o.expect(
                depth <= retained,
                format!("rollback depth {depth} exceeds the {retained} retained wave(s)"),
            );
            let orphans = o.orphan_images_end;
            o.expect(
                orphans == 0,
                format!("{orphans} orphan image(s) left in the server bookkeeping"),
            );
            (o, trace)
        }
        Err(e) => (
            profile_failure(name, format!("run failed: {e}")),
            Vec::new(),
        ),
    }
}

pub(crate) fn profile_failure(name: &str, msg: String) -> StormOutcome {
    StormOutcome {
        name: name.to_string(),
        waves: 0,
        restarts: 0,
        waves_aborted: 0,
        rollback_depth_max: 0,
        lost_work_secs: 0.0,
        orphan_images_end: 0,
        link_retries: 0,
        partitions_suppressed: 0,
        partitions_expired: 0,
        retries_exhausted: 0,
        replica_depth_max: 0,
        images_rerouted: 0,
        images_refetched: 0,
        images_corrupt_detected: 0,
        images_repaired: 0,
        servers_quarantined: 0,
        report: None,
        failures: vec![msg],
    }
}

/// Wave ids whose `WaveCommit` lands strictly inside `(start_ns, end_ns)`.
fn commits_within(trace: &[TraceEvent], start_ns: u64, end_ns: u64) -> Vec<u64> {
    trace
        .iter()
        .filter_map(|te| match te.kind {
            TraceKind::Proto(ProtoEvent::WaveCommit { wave })
                if te.time.as_nanos() > start_ns && te.time.as_nanos() < end_ns =>
            {
                Some(wave)
            }
            _ => None,
        })
        .collect()
}

/// Retry-boundedness guard: a handful of stalled flows backing off over a
/// few-second cut land well under this; a zero-delay livelock spinning on a
/// dead path blows through it immediately.
const RETRY_BOUND: u64 = 512;

/// Deterministic scenarios for one protocol on the ring workload.
fn ring_scenarios(proto: ProtocolChoice, out: &mut Vec<StormOutcome>) {
    let tag = match proto {
        ProtocolChoice::Pcl => "pcl",
        _ => "vcl",
    };
    let base = ring_spec(proto);
    let prof = match profile(base.clone()) {
        Ok(p) => p,
        Err(e) => {
            out.push(profile_failure(&format!("storm.profile.{tag}"), e));
            return;
        }
    };
    if prof.waves.len() < 2 {
        out.push(profile_failure(
            &format!("storm.profile.{tag}"),
            format!("clean run committed only {} wave(s)", prof.waves.len()),
        ));
        return;
    }
    let n = base.nranks;
    let (w0s, w0c) = prof.waves[0];
    let (_, w1c) = prof.waves[1];

    // Mid-wave rank kill: partial images must be garbage-collected and the
    // wave aborted, not committed.
    let mut spec = base.clone();
    spec.failures = FailurePlan::kill_at(SimTime::from_nanos(w0s + (w0c - w0s) * 3 / 10), n - 1);
    let mut o = run_storm(&format!("storm.midwave.kill.{tag}"), spec);
    let (restarts, aborted) = (o.restarts, o.waves_aborted);
    o.expect(restarts == 1, format!("expected 1 restart, got {restarts}"));
    o.expect(
        aborted >= 1,
        "a mid-wave kill must abort the in-flight wave".to_string(),
    );
    out.push(o);

    // Mid-recovery kill: a second failure lands while the first restart is
    // still respawning; the nested restart must recover cleanly.
    let k1 = w0c + (prof.end_ns - w0c) / 4;
    let k2 = k1 + base.ft.restart_delay.as_nanos() / 2;
    let mut spec = base.clone();
    spec.failures =
        FailurePlan::kill_at(SimTime::from_nanos(k1), 1).with_kill(SimTime::from_nanos(k2), 2);
    let mut o = run_storm(&format!("storm.midrecovery.kill.{tag}"), spec);
    let restarts = o.restarts;
    o.expect(
        restarts == 2,
        format!("expected 2 restarts, got {restarts}"),
    );
    out.push(o);

    // Detection lag: the same kill with growing heartbeat-timeout lag; the
    // work the survivors do while the victim sits undetected is discarded
    // by the restart, so lost work must grow with the lag. The kill sits in
    // the quiet zone right after a commit so no wave commits during any lag
    // window (which would legitimately shrink the rollback).
    let lag_kill = SimTime::from_nanos(w0c + 500_000_000);
    let mut lag_outcomes = Vec::new();
    for (label, lag) in [("0", 0.0), ("200ms", 0.2), ("1s", 1.0)] {
        let mut spec = base.clone();
        spec.ft = spec.ft.with_detection_delay_secs(lag);
        spec.failures = FailurePlan::kill_at(lag_kill, 1);
        let mut o = run_storm(&format!("storm.lag.{label}.{tag}"), spec);
        let restarts = o.restarts;
        o.expect(restarts == 1, format!("expected 1 restart, got {restarts}"));
        lag_outcomes.push(o);
    }
    let lost: Vec<f64> = lag_outcomes.iter().map(|o| o.lost_work_secs).collect();
    for i in 1..lost.len() {
        if lost[i] + 1e-9 < lost[i - 1] {
            lag_outcomes[i].failures.push(format!(
                "lost work shrank as detection lag grew ({} < {})",
                lost[i],
                lost[i - 1]
            ));
        }
    }
    out.append(&mut lag_outcomes);

    // Server loss, single copy: rank 1's images live on server 1 only, so
    // killing that server forces the restore past every retained wave.
    let sk = SimTime::from_nanos(w1c + 200_000_000);
    let rk = SimTime::from_nanos(w1c + 500_000_000);
    let mut spec = base.clone();
    spec.ft = spec.ft.with_retained_waves(2);
    spec.failures = FailurePlan::server_kill_at(sk, 1).with_kill(rk, 1);
    let mut o = run_storm(&format!("storm.serverloss.fallback.{tag}"), spec);
    let depth = o.rollback_depth_max;
    o.expect(
        depth >= 1,
        "losing the victim's only server must roll back past the newest wave".to_string(),
    );
    out.push(o);

    // Server loss, two replicas: the surviving copy keeps the newest wave
    // restorable — no rollback at all.
    let mut spec = base.clone();
    spec.ft = spec.ft.with_replicas(2);
    spec.failures = FailurePlan::server_kill_at(sk, 1).with_kill(rk, 1);
    let mut o = run_storm(&format!("storm.serverloss.replicas.{tag}"), spec);
    let depth = o.rollback_depth_max;
    o.expect(
        depth == 0,
        format!("a surviving replica should keep the newest wave restorable (depth {depth})"),
    );
    out.push(o);

    // Server loss mid-wave, no rank failure: the in-flight wave aborts, its
    // partial images are collected, and checkpointing continues on the
    // surviving server without any restart.
    let mut spec = base.clone();
    spec.failures = FailurePlan::server_kill_at(SimTime::from_nanos(w0s + (w0c - w0s) / 2), 0);
    let mut o = run_storm(&format!("storm.serverloss.midwave.{tag}"), spec);
    let (restarts, aborted, waves) = (o.restarts, o.waves_aborted, o.waves);
    o.expect(
        restarts == 0,
        format!("expected no restart, got {restarts}"),
    );
    o.expect(
        aborted >= 1,
        "a mid-wave server loss must abort the in-flight wave".to_string(),
    );
    o.expect(
        waves >= 1,
        "checkpointing must continue on the surviving server".to_string(),
    );
    out.push(o);
}

/// Partition scenarios for one protocol on the ring workload. Node 0
/// (hosting rank 0) is split from the rest of the platform — servers,
/// dispatcher and every peer — so checkpoint pushes, wave control traffic
/// and restore fetches touching it must pause, retry with bounded backoff,
/// and resume at heal.
fn partition_scenarios(proto: ProtocolChoice, out: &mut Vec<StormOutcome>) {
    let tag = match proto {
        ProtocolChoice::Pcl => "pcl",
        _ => "vcl",
    };
    let base = ring_spec(proto);
    let prof = match profile(base.clone()) {
        Ok(p) => p,
        Err(e) => {
            out.push(profile_failure(
                &format!("storm.partition.profile.{tag}"),
                e,
            ));
            return;
        }
    };
    if prof.waves.len() < 2 {
        out.push(profile_failure(
            &format!("storm.partition.profile.{tag}"),
            format!("clean run committed only {} wave(s)", prof.waves.len()),
        ));
        return;
    }
    let cut_node = vec![NodeId(0)];
    let (w0s, _) = prof.waves[0];
    let (_, w1c) = prof.waves[1];

    // Heal inside the grace window: the cut opens just before wave 0's
    // first marker so none of rank 0's contribution precedes it, stalls the
    // wave for 1.5 s, and heals 1.5 s before the 3 s watchdog. A false
    // positive the layer must fully suppress: no restart, no aborted wave,
    // no commit across the cut, every stall a bounded link retry, and zero
    // image fetches (acceptance criterion for partition tolerance).
    let cut = w0s - 1_000_000;
    let heal = cut + 1_500_000_000;
    let mut spec = base.clone();
    spec.ft = spec.ft.with_partition_rollback_after_secs(3.0);
    spec.net_faults = NetFaultPlan::none().with_partition(
        "storm-heal",
        cut_node.clone(),
        SimTime::from_nanos(cut),
        Some(SimTime::from_nanos(heal)),
    );
    let (mut o, trace) = run_storm_traced(&format!("storm.partition.heal.{tag}"), spec);
    let (restarts, aborted, suppressed) = (o.restarts, o.waves_aborted, o.partitions_suppressed);
    let (retries, refetched, waves) = (o.link_retries, o.images_refetched, o.waves);
    o.expect(
        restarts == 0,
        format!("a cut healing inside the grace window must not restart anyone (got {restarts})"),
    );
    o.expect(
        aborted == 0,
        format!("a cut healing inside the grace window must not abort a wave (got {aborted})"),
    );
    o.expect(
        suppressed == 1,
        format!("the watchdog must record exactly one suppressed cut (got {suppressed})"),
    );
    o.expect(
        retries >= 1,
        "the stalled wave must show link retries".to_string(),
    );
    o.expect(
        retries <= RETRY_BOUND,
        format!("{retries} link retries for a 1.5 s cut — retry loop unbounded?"),
    );
    o.expect(
        refetched == 0,
        format!("no restart happened, so no image may be refetched (got {refetched})"),
    );
    o.expect(
        waves >= 1,
        "the stalled wave must still commit after the heal".to_string(),
    );
    let crossing = commits_within(&trace, cut, heal);
    o.expect(
        crossing.is_empty(),
        format!("wave(s) {crossing:?} committed across the partition cut"),
    );
    out.push(o);

    // Cut outliving the grace, mid-wave: the watchdog rolls the cut-off
    // rank back (one correlated restart, the in-flight wave aborted), and
    // still nothing commits while the cut stands.
    let heal = cut + 3_000_000_000;
    let mut spec = base.clone();
    spec.ft = spec.ft.with_partition_rollback_after_secs(1.0);
    spec.net_faults = NetFaultPlan::none().with_partition(
        "storm-rollback",
        cut_node.clone(),
        SimTime::from_nanos(cut),
        Some(SimTime::from_nanos(heal)),
    );
    let (mut o, trace) = run_storm_traced(&format!("storm.partition.midwave.{tag}"), spec);
    let (restarts, aborted, suppressed) = (o.restarts, o.waves_aborted, o.partitions_suppressed);
    o.expect(
        restarts == 1,
        format!("a cut outliving the grace must cost one correlated restart (got {restarts})"),
    );
    o.expect(
        aborted >= 1,
        "the wave in flight when the watchdog fired must abort".to_string(),
    );
    o.expect(
        suppressed == 0,
        format!("nothing to suppress when the cut outlives the grace (got {suppressed})"),
    );
    let retries = o.link_retries;
    o.expect(
        retries <= RETRY_BOUND,
        format!("{retries} link retries for a 3 s cut — retry loop unbounded?"),
    );
    let crossing = commits_within(&trace, cut, heal);
    o.expect(
        crossing.is_empty(),
        format!("wave(s) {crossing:?} committed across the partition cut"),
    );
    out.push(o);

    // Cut outliving the grace in the quiet zone after a commit: the
    // watchdog restart needs rank 0's image back from its server, but the
    // rank is still cut off when the fetch first tries to reserve (the cut
    // covers watchdog + restart delay) — the fetch rides the probe chain
    // and lands after the heal (partition healing mid-recovery). Exactly
    // one fetch.
    let cut = w1c + 300_000_000;
    let heal = cut + 6_000_000_000;
    let mut spec = base.clone();
    spec.ft = spec.ft.with_partition_rollback_after_secs(1.0);
    spec.net_faults = NetFaultPlan::none().with_partition(
        "storm-recovery",
        cut_node.clone(),
        SimTime::from_nanos(cut),
        Some(SimTime::from_nanos(heal)),
    );
    let (mut o, trace) = run_storm_traced(&format!("storm.partition.recovery.{tag}"), spec);
    let (restarts, refetched, retries) = (o.restarts, o.images_refetched, o.link_retries);
    o.expect(
        restarts == 1,
        format!("expected the watchdog's single correlated restart, got {restarts}"),
    );
    o.expect(
        refetched == 1,
        format!("the blocked restore must fetch the victim's image exactly once (got {refetched})"),
    );
    o.expect(
        retries >= 1,
        "the blocked restore fetch must show probe retries".to_string(),
    );
    o.expect(
        retries <= RETRY_BOUND,
        format!("{retries} link retries for a 6 s cut — retry loop unbounded?"),
    );
    let crossing = commits_within(&trace, cut, heal);
    o.expect(
        crossing.is_empty(),
        format!("wave(s) {crossing:?} committed across the partition cut"),
    );
    out.push(o);

    // Rank kill with its node partitioned across the restart window (the
    // cut covers the kill and the fetch's first reservation attempt),
    // against a partition-free control: the probe chain must not duplicate
    // the image fetch — both runs fetch exactly the same number of images.
    let k = w1c + 500_000_000;
    let mut control = base.clone();
    control.failures = FailurePlan::kill_at(SimTime::from_nanos(k), 1);
    let mut c = run_storm(&format!("storm.partition.fetchdup.control.{tag}"), control);
    let (restarts, retries) = (c.restarts, c.link_retries);
    c.expect(restarts == 1, format!("expected 1 restart, got {restarts}"));
    c.expect(
        retries == 0,
        format!("the partition-free control saw {retries} link retries"),
    );
    let control_refetched = c.images_refetched;
    out.push(c);
    let mut spec = base.clone();
    spec.failures = FailurePlan::kill_at(SimTime::from_nanos(k), 1);
    spec.net_faults = NetFaultPlan::none().with_partition(
        "storm-fetchdup",
        vec![NodeId(1)],
        SimTime::from_nanos(k - 200_000_000),
        Some(SimTime::from_nanos(k + 4_200_000_000)),
    );
    let mut o = run_storm(&format!("storm.partition.fetchdup.{tag}"), spec);
    let (restarts, retries, refetched) = (o.restarts, o.link_retries, o.images_refetched);
    o.expect(restarts == 1, format!("expected 1 restart, got {restarts}"));
    o.expect(
        retries >= 1,
        "the partitioned fetch must ride the probe chain".to_string(),
    );
    o.expect(
        refetched == control_refetched,
        format!(
            "recovery across the heal fetched {refetched} image(s), control fetched \
             {control_refetched} — duplicate fetch after heal"
        ),
    );
    out.push(o);
}

/// Correlated node-death scenarios for one protocol: a node kill takes out
/// everything the node hosted in one atomic event.
fn node_kill_scenarios(proto: ProtocolChoice, out: &mut Vec<StormOutcome>) {
    let tag = match proto {
        ProtocolChoice::Pcl => "pcl",
        _ => "vcl",
    };

    // Colocated ranks: two ranks per node (threshold forced down), so one
    // node death kills both in a single correlated restart.
    let mut base = ring_spec(proto);
    base.single_threshold = 4;
    match profile(base.clone()) {
        Ok(prof) if !prof.waves.is_empty() => {
            let (_, w0c) = prof.waves[0];
            let mut spec = base.clone();
            spec.failures = FailurePlan::node_kill_at(SimTime::from_nanos(w0c + 500_000_000), 0);
            let mut o = run_storm(&format!("storm.nodekill.colocated.{tag}"), spec);
            let (restarts, refetched) = (o.restarts, o.images_refetched);
            o.expect(
                restarts == 1,
                format!("both colocated ranks must die in one correlated restart (got {restarts})"),
            );
            o.expect(
                refetched == 2,
                format!("both colocated victims must refetch their image (got {refetched})"),
            );
            out.push(o);
        }
        Ok(prof) => out.push(profile_failure(
            &format!("storm.nodekill.colocated.{tag}"),
            format!("clean run committed only {} wave(s)", prof.waves.len()),
        )),
        Err(e) => out.push(profile_failure(
            &format!("storm.nodekill.colocated.{tag}"),
            e,
        )),
    }

    // Server node and rank node die together, and the dead server held the
    // victim's only replica (round-robin puts every one of rank 0's images
    // on server 0): the restore must roll back past every retained wave.
    let base = ring_spec(proto);
    match profile(base.clone()) {
        Ok(prof) if prof.waves.len() >= 2 => {
            let (_, w1c) = prof.waves[1];
            let t = SimTime::from_nanos(w1c + 300_000_000);
            let mut spec = base.clone();
            spec.ft = spec.ft.with_retained_waves(2);
            // Node 8 hosts server 0; node 0 hosts rank 0 (its client).
            spec.failures = FailurePlan::node_kill_at(t, 8).with_node_kill(t, 0);
            let mut o = run_storm(&format!("storm.nodekill.soloreplica.{tag}"), spec);
            let (restarts, depth) = (o.restarts, o.rollback_depth_max);
            o.expect(
                restarts == 1,
                format!("expected one correlated restart, got {restarts}"),
            );
            o.expect(
                depth >= 1,
                "losing the victim's only replica server must roll back past the newest wave"
                    .to_string(),
            );
            out.push(o);
        }
        Ok(prof) => out.push(profile_failure(
            &format!("storm.nodekill.soloreplica.{tag}"),
            format!("clean run committed only {} wave(s)", prof.waves.len()),
        )),
        Err(e) => out.push(profile_failure(
            &format!("storm.nodekill.soloreplica.{tag}"),
            e,
        )),
    }
}

/// Asymmetric-fault scenarios for one protocol: flapping push links,
/// one-directional partitions, and server-group cuts. These exercise the
/// directed reachability model end-to-end — transport must stall (not
/// double-send) across half-open cuts, pushes must reroute or walk replicas
/// when a server group goes dark, and the watchdog must classify every
/// grace window as suppressed or expired.
fn asymmetry_scenarios(proto: ProtocolChoice, out: &mut Vec<StormOutcome>) {
    let tag = match proto {
        ProtocolChoice::Pcl => "pcl",
        _ => "vcl",
    };
    let base = ring_spec(proto);
    let prof = match profile(base.clone()) {
        Ok(p) => p,
        Err(e) => {
            out.push(profile_failure(&format!("storm.asym.profile.{tag}"), e));
            return;
        }
    };
    if prof.waves.len() < 2 {
        out.push(profile_failure(
            &format!("storm.asym.profile.{tag}"),
            format!("clean run committed only {} wave(s)", prof.waves.len()),
        ));
        return;
    }
    let (w0s, _) = prof.waves[0];
    let (_, w1c) = prof.waves[1];

    // Flapping push link: rank 0's image path (node 0 → server node 8)
    // alternates seeded up/down intervals across the first two waves. The
    // retry ladder must ride every down interval out — no restart, no
    // unbounded spinning, and checkpointing still makes progress.
    let mut spec = base.clone();
    spec.net_faults = NetFaultPlan::none().with_link_flap(LinkFlapSpec {
        from: NodeId(0),
        to: NodeId(8),
        start: SimTime::from_nanos(w0s.saturating_sub(500_000_000)),
        end: SimTime::from_nanos(w1c + 2_000_000_000),
        mttf: SimDuration::from_secs(2),
        mttr: SimDuration::from_millis(300),
        seed: 11,
    });
    let mut o = run_storm(&format!("storm.flap.push.{tag}"), spec);
    let (restarts, retries, waves) = (o.restarts, o.link_retries, o.waves);
    o.expect(
        restarts == 0,
        format!("a flapping push link must not kill anyone (got {restarts} restarts)"),
    );
    o.expect(
        retries <= RETRY_BOUND,
        format!("{retries} link retries across a flap window — retry loop unbounded?"),
    );
    o.expect(
        waves >= 1,
        "checkpointing must make progress through the flap window".to_string(),
    );
    out.push(o);

    // Outbound-only cut of rank 0's node, healing inside the grace window:
    // data still reaches node 0 but nothing (pushes, acks) gets out — at
    // the wave controller this is indistinguishable from a full cut, so
    // the same false-positive suppression contract applies, and nothing
    // may commit across the half-open window.
    let cut = w0s - 1_000_000;
    let heal = cut + 1_500_000_000;
    let mut spec = base.clone();
    spec.ft = spec.ft.with_partition_rollback_after_secs(3.0);
    spec.net_faults = NetFaultPlan::none().with_partition_directed(
        "storm-outbound",
        vec![NodeId(0)],
        CutDirection::Outbound,
        SimTime::from_nanos(cut),
        Some(SimTime::from_nanos(heal)),
    );
    let (mut o, trace) = run_storm_traced(&format!("storm.partition.outbound.{tag}"), spec);
    let (restarts, aborted, suppressed) = (o.restarts, o.waves_aborted, o.partitions_suppressed);
    o.expect(
        restarts == 0,
        format!(
            "a half-open cut healing inside the grace must not restart anyone (got {restarts})"
        ),
    );
    o.expect(
        aborted == 0,
        format!("a half-open cut healing inside the grace must not abort a wave (got {aborted})"),
    );
    o.expect(
        suppressed == 1,
        format!("the watchdog must suppress exactly one half-open cut (got {suppressed})"),
    );
    let retries = o.link_retries;
    o.expect(
        retries >= 1,
        "the stalled outbound traffic must show link retries".to_string(),
    );
    o.expect(
        retries <= RETRY_BOUND,
        format!("{retries} link retries for a 1.5 s half-open cut — retry loop unbounded?"),
    );
    let crossing = commits_within(&trace, cut, heal);
    o.expect(
        crossing.is_empty(),
        format!("wave(s) {crossing:?} committed across the half-open cut"),
    );
    out.push(o);

    // Server-group partition, single replica: checkpoint server 0 goes
    // dark behind a cut while the ranks and dispatcher stay connected. The
    // watchdog's grace expires without victims (no rank is cut off), and
    // every push aimed at the dark server must exhaust its ladder and
    // reroute to the surviving server — checkpointing continues.
    let cut = w0s.saturating_sub(200_000_000);
    let mut spec = base.clone();
    spec.ft = spec.ft.with_partition_rollback_after_secs(1.5);
    spec.net_faults = NetFaultPlan::none().with_server_partition(
        "storm-server-dark",
        vec![0],
        CutDirection::Both,
        SimTime::from_nanos(cut),
        Some(SimTime::from_nanos(cut + 8_000_000_000)),
    );
    let mut o = run_storm(&format!("storm.serverpart.reroute.{tag}"), spec);
    let (restarts, expired, exhausted, rerouted, waves) = (
        o.restarts,
        o.partitions_expired,
        o.retries_exhausted,
        o.images_rerouted,
        o.waves,
    );
    o.expect(
        restarts == 0,
        format!("a server-only cut must not restart any rank (got {restarts})"),
    );
    o.expect(
        expired == 1,
        format!("the grace window must expire exactly once, without victims (got {expired})"),
    );
    o.expect(
        exhausted >= 1,
        "pushes at the dark server must exhaust their retry ladder".to_string(),
    );
    o.expect(
        rerouted >= 1,
        "pushes must reroute to the surviving server".to_string(),
    );
    o.expect(
        waves >= 1,
        "checkpointing must continue on the surviving server".to_string(),
    );
    out.push(o);

    // Server-group partition plus a rank kill: rank 0's primary server is
    // dark when its restore fetch fires, so the probe chain must exhaust
    // the primary's ladder and walk to the replica copy on the surviving
    // server (replica depth 1) instead of waiting out the cut.
    let kill = w1c + 300_000_000;
    let mut spec = base.clone();
    spec.ft = spec.ft.with_replicas(2);
    spec.failures = FailurePlan::kill_at(SimTime::from_nanos(kill), 0);
    spec.net_faults = NetFaultPlan::none().with_server_partition(
        "storm-server-fetch",
        vec![0],
        CutDirection::Both,
        SimTime::from_nanos(w1c + 100_000_000),
        Some(SimTime::from_nanos(w1c + 20_000_000_000)),
    );
    let mut o = run_storm(&format!("storm.serverpart.fetch.{tag}"), spec);
    let (restarts, depth, rdepth, exhausted) = (
        o.restarts,
        o.rollback_depth_max,
        o.replica_depth_max,
        o.retries_exhausted,
    );
    o.expect(restarts == 1, format!("expected 1 restart, got {restarts}"));
    o.expect(
        rdepth >= 1,
        format!("the restore must walk to a replica copy (replica depth {rdepth})"),
    );
    o.expect(
        exhausted >= 1,
        "the dark primary's ladder must exhaust before the replica walk".to_string(),
    );
    o.expect(
        depth == 0,
        format!("the replica copy keeps the newest wave restorable (depth {depth})"),
    );
    out.push(o);
}

/// Checkpoint-image integrity scenarios for one protocol: injected
/// bit-flips, torn writes behind tearing cuts, the scrubber racing a
/// restart, and a newest wave whose only replica is damaged. On top of the
/// invariant checker's whole-trace integrity rules (no restore from a
/// damaged replica, no placement on a quarantined server) these assert the
/// repair accounting: every injected corruption is either walked past /
/// re-replicated (counted) or pushes the restore to an older retained wave.
fn integrity_scenarios(proto: ProtocolChoice, out: &mut Vec<StormOutcome>) {
    let tag = match proto {
        ProtocolChoice::Pcl => "pcl",
        _ => "vcl",
    };
    let base = ring_spec(proto);

    // Flip-under-restore and scrubber-races-restart share a two-replica
    // spec; its wave windows differ from the single-replica base (a second
    // stream per rank), so profile the spec actually run.
    let mut twin = base.clone();
    twin.ft = twin.ft.with_replicas(2);
    match profile(twin.clone()) {
        Ok(prof) if prof.waves.len() >= 2 => {
            let (_, w1c) = prof.waves[1];

            // Flip-under-restore: rank 1's newest image is damaged on its
            // primary server right before the rank dies. Verify-on-fetch
            // must walk to the intact replica on the other server — the
            // newest wave stays restorable, the damage is detected and
            // counted as repaired-by-walk.
            let mut spec = twin.clone();
            spec.failures = FailurePlan::none()
                .with_corruption(SimTime::from_nanos(w1c + 100_000_000), 1, 1)
                .with_kill(SimTime::from_nanos(w1c + 300_000_000), 1);
            let mut o = run_storm(&format!("storm.corrupt.flipfetch.{tag}"), spec);
            let (restarts, depth) = (o.restarts, o.rollback_depth_max);
            let (detected, repaired) = (o.images_corrupt_detected, o.images_repaired);
            o.expect(restarts == 1, format!("expected 1 restart, got {restarts}"));
            o.expect(
                depth == 0,
                format!("the intact replica keeps the newest wave restorable (depth {depth})"),
            );
            o.expect(
                detected >= 1,
                "the damaged replica must be detected at fetch".to_string(),
            );
            o.expect(
                repaired >= 1,
                "walking past the damaged replica must count as a repair".to_string(),
            );
            out.push(o);

            // Scrubber-races-restart: same damage, but a 500 ms scrub pass
            // runs concurrently and the kill lands right around a tick, so
            // the repair flow and the restart's fetch race. Whichever wins,
            // the damage is detected, the slot ends verified, and the
            // restore never consumes corrupt bits (checker-proven).
            let mut spec = twin.clone();
            spec.ft = spec.ft.with_scrub_interval_secs(0.5);
            spec.failures = FailurePlan::none()
                .with_corruption(SimTime::from_nanos(w1c + 100_000_000), 1, 1)
                .with_kill(SimTime::from_nanos(w1c + 550_000_000), 1);
            let mut o = run_storm(&format!("storm.corrupt.scrubrace.{tag}"), spec);
            let (restarts, depth) = (o.restarts, o.rollback_depth_max);
            let (detected, repaired) = (o.images_corrupt_detected, o.images_repaired);
            o.expect(restarts == 1, format!("expected 1 restart, got {restarts}"));
            o.expect(
                depth == 0,
                format!("scrub or walk must keep the newest wave restorable (depth {depth})"),
            );
            o.expect(
                detected >= 1,
                "the scrubber or the fetch must detect the damage".to_string(),
            );
            o.expect(
                repaired >= 1,
                "the race must end with the slot repaired or walked past".to_string(),
            );
            out.push(o);
        }
        Ok(prof) => out.push(profile_failure(
            &format!("storm.corrupt.flipfetch.{tag}"),
            format!("clean run committed only {} wave(s)", prof.waves.len()),
        )),
        Err(e) => out.push(profile_failure(
            &format!("storm.corrupt.flipfetch.{tag}"),
            e,
        )),
    }

    let prof = match profile(base.clone()) {
        Ok(p) => p,
        Err(e) => {
            out.push(profile_failure(&format!("storm.corrupt.profile.{tag}"), e));
            return;
        }
    };
    if prof.waves.len() < 2 {
        out.push(profile_failure(
            &format!("storm.corrupt.profile.{tag}"),
            format!("clean run committed only {} wave(s)", prof.waves.len()),
        ));
        return;
    }
    let (w0s, w0c) = prof.waves[0];
    let (_, w1c) = prof.waves[1];

    // All replicas corrupt: the single copy of rank 1's newest image is
    // damaged, so the restore must reject the newest wave and fall back to
    // the older retained one — rollback past the corruption, never through
    // it.
    let mut spec = base.clone();
    spec.ft = spec.ft.with_retained_waves(2);
    spec.failures = FailurePlan::none()
        .with_corruption(SimTime::from_nanos(w1c + 200_000_000), 1, 1)
        .with_kill(SimTime::from_nanos(w1c + 500_000_000), 1);
    let mut o = run_storm(&format!("storm.corrupt.allreplicas.{tag}"), spec);
    let (restarts, depth) = (o.restarts, o.rollback_depth_max);
    let (detected, repaired) = (o.images_corrupt_detected, o.images_repaired);
    o.expect(restarts == 1, format!("expected 1 restart, got {restarts}"));
    o.expect(
        depth >= 1,
        "a fully-damaged newest wave must roll back to the older retained one".to_string(),
    );
    o.expect(
        detected >= 1,
        "the damaged copy must be detected while planning the restore".to_string(),
    );
    o.expect(
        repaired >= 1,
        "salvaging the slot from the older wave must count as a repair".to_string(),
    );
    out.push(o);

    // Torn-write-then-fallback: a *tearing* cut darkens server 0 across a
    // wave, so the severed push leaves a truncated replica there and
    // reroutes to server 1. The scrubber keeps re-detecting the torn copy
    // (and re-replicates it after the heal); the post-heal restart must
    // restore from verified bits only.
    let cut = w0s.saturating_sub(200_000_000);
    let heal = cut + 8_000_000_000;
    let mut spec = base.clone();
    spec.ft = spec
        .ft
        .with_retained_waves(2)
        .with_torn_writes()
        .with_scrub_interval_secs(0.5)
        .with_partition_rollback_after_secs(1.5);
    spec.failures = FailurePlan::kill_at(SimTime::from_nanos(heal + 1_000_000_000), 0);
    spec.net_faults = NetFaultPlan::none().with_server_partition_tearing(
        "storm-torn",
        vec![0],
        CutDirection::Both,
        SimTime::from_nanos(cut),
        Some(SimTime::from_nanos(heal)),
    );
    let mut o = run_storm(&format!("storm.corrupt.tornwrite.{tag}"), spec);
    let (restarts, exhausted, rerouted) = (o.restarts, o.retries_exhausted, o.images_rerouted);
    let detected = o.images_corrupt_detected;
    o.expect(restarts == 1, format!("expected 1 restart, got {restarts}"));
    o.expect(
        exhausted >= 1,
        "pushes at the dark server must exhaust their retry ladder".to_string(),
    );
    o.expect(
        rerouted >= 1,
        "the severed push must reroute to the surviving server".to_string(),
    );
    o.expect(
        detected >= 1,
        "the torn replica must be detected (scrub or fetch walk)".to_string(),
    );
    out.push(o);

    // Quarantine: whole-disk rot on server 0 with a threshold of one
    // detection. The scrubber's first pass over the damage must quarantine
    // the server; every later placement lands on server 1 only
    // (checker-proven via `QuarantinedPlacement`), and checkpointing
    // continues.
    let mut spec = base.clone();
    spec.ft = spec
        .ft
        .with_scrub_interval_secs(0.5)
        .with_quarantine_threshold(1);
    spec.failures =
        FailurePlan::none().with_server_corruption(SimTime::from_nanos(w0c + 200_000_000), 0);
    let mut o = run_storm(&format!("storm.corrupt.quarantine.{tag}"), spec);
    let (restarts, detected, quarantined, waves) = (
        o.restarts,
        o.images_corrupt_detected,
        o.servers_quarantined,
        o.waves,
    );
    o.expect(
        restarts == 0,
        format!("disk rot alone must not restart anyone (got {restarts})"),
    );
    o.expect(
        detected >= 1,
        "the scrubber must detect the rotted replicas".to_string(),
    );
    o.expect(
        quarantined == 1,
        format!("one detection must quarantine the server exactly once (got {quarantined})"),
    );
    o.expect(
        waves >= 1,
        "checkpointing must continue on the surviving server".to_string(),
    );
    out.push(o);
}

/// Build a seeded random failure schedule biased toward the measured wave
/// windows (partial-image exposure) and recovery windows (nested restarts).
fn random_plan(rng: &mut StdRng, prof: &CleanProfile, spec: &JobSpec) -> FailurePlan {
    let mut plan = FailurePlan::none();
    let restart_ns = spec.ft.restart_delay.as_nanos().max(2);
    let mut last_kill = 0u64;
    for _ in 0..rng.gen_range(1usize..4) {
        let at = match rng.gen_range(0u32..4) {
            // Half the kills land inside a wave window.
            0 | 1 => {
                let (s, c) = prof.waves[rng.gen_range(0..prof.waves.len())];
                rng.gen_range(s..c.max(s + 1))
            }
            // A quarter land inside the previous kill's recovery window.
            2 if last_kill > 0 => last_kill + rng.gen_range(1..restart_ns),
            // The rest anywhere in the clean run's lifetime.
            _ => rng.gen_range(1..prof.end_ns),
        };
        last_kill = at;
        plan = plan.with_kill(SimTime::from_nanos(at), rng.gen_range(0..spec.nranks));
    }
    // Half the storms also lose a checkpoint server (at most one, so the
    // fleet keeps a survivor and checkpointing can continue).
    if spec.servers > 1 && rng.gen_range(0u32..2) == 0 {
        plan = plan.with_server_kill(
            SimTime::from_nanos(rng.gen_range(1..prof.end_ns)),
            rng.gen_range(0..spec.servers),
        );
    }
    plan
}

/// Seeded randomized storms for one protocol.
fn random_storms(proto: ProtocolChoice, seeds: &[u64], out: &mut Vec<StormOutcome>) {
    let tag = match proto {
        ProtocolChoice::Pcl => "pcl",
        _ => "vcl",
    };
    let base = ring_spec(proto);
    let prof = match profile(base.clone()) {
        Ok(p) => p,
        Err(e) => {
            out.push(profile_failure(&format!("storm.random.{tag}"), e));
            return;
        }
    };
    if prof.waves.is_empty() {
        out.push(profile_failure(
            &format!("storm.random.{tag}"),
            "clean run committed no waves".to_string(),
        ));
        return;
    }
    for &seed in seeds {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut spec = base.clone();
        spec.failures = random_plan(&mut rng, &prof, &spec);
        // Half the storms run with a 200 ms heartbeat-timeout lag.
        if rng.gen_range(0u32..2) == 0 {
            spec.ft = spec.ft.with_detection_delay_secs(0.2);
        }
        out.push(run_storm(&format!("storm.random.{tag}.seed{seed}"), spec));
    }
}

/// Mid-wave kill on the logging-heavy Vcl stream: the aborted wave holds
/// real channel-log state.
fn stream_scenario(out: &mut Vec<StormOutcome>) {
    let base = stream_spec();
    let prof = match profile(base.clone()) {
        Ok(p) => p,
        Err(e) => {
            out.push(profile_failure("storm.midwave.kill.stream2", e));
            return;
        }
    };
    let Some(&(w0s, w0c)) = prof.waves.first() else {
        out.push(profile_failure(
            "storm.midwave.kill.stream2",
            "clean stream run committed no waves".to_string(),
        ));
        return;
    };
    // The stream's wave can outlive the application (acks land after the
    // last receive): aim inside the wave window but before completion.
    let kill = w0s + (w0c.min(prof.end_ns) - w0s.min(prof.end_ns)) / 2;
    let mut spec = base.clone();
    spec.failures = FailurePlan::kill_at(SimTime::from_nanos(kill), 1);
    let mut o = run_storm("storm.midwave.kill.stream2", spec);
    let (restarts, aborted) = (o.restarts, o.waves_aborted);
    o.expect(restarts == 1, format!("expected 1 restart, got {restarts}"));
    o.expect(
        aborted >= 1,
        "a mid-wave kill must abort the in-flight wave".to_string(),
    );
    out.push(o);
}

/// Run the whole campaign: deterministic window scenarios for both
/// protocols (kills, partitions, node deaths), the stream variant, and
/// seeded randomized storms (`smoke` uses fewer seeds; CI runs the smoke
/// set — the partition and node-kill families are deterministic and run in
/// both modes).
pub fn storm_campaign(smoke: bool) -> Vec<StormOutcome> {
    let seeds: &[u64] = if smoke { &[1, 2] } else { &[1, 2, 3, 4, 5] };
    let mut out = Vec::new();
    for proto in [ProtocolChoice::Pcl, ProtocolChoice::Vcl] {
        ring_scenarios(proto, &mut out);
    }
    for proto in [ProtocolChoice::Pcl, ProtocolChoice::Vcl] {
        partition_scenarios(proto, &mut out);
        node_kill_scenarios(proto, &mut out);
        asymmetry_scenarios(proto, &mut out);
        integrity_scenarios(proto, &mut out);
    }
    stream_scenario(&mut out);
    for proto in [ProtocolChoice::Pcl, ProtocolChoice::Vcl] {
        random_storms(proto, seeds, &mut out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_profile_measures_a_wave_window() {
        let p = profile(stream_spec()).expect("profile");
        assert!(p.end_ns > 0);
        let (start, commit) = *p.waves.first().expect("a committed wave");
        assert!(start < commit);
    }

    #[test]
    fn random_plans_are_seed_deterministic_and_in_range() {
        let spec = ring_spec(ProtocolChoice::Pcl);
        let prof = CleanProfile {
            end_ns: 40_000_000_000,
            waves: vec![
                (2_000_000_000, 4_000_000_000),
                (9_000_000_000, 11_000_000_000),
            ],
        };
        let mk = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            random_plan(&mut rng, &prof, &spec)
        };
        let (a, b) = (mk(7), mk(7));
        assert_eq!(a.kills, b.kills);
        assert_eq!(a.server_kills, b.server_kills);
        assert!(!a.kills.is_empty() && a.kills.len() <= 3);
        for &(_, victim) in &a.kills {
            assert!(victim < spec.nranks);
        }
        for &(_, server) in &a.server_kills {
            assert!(server < spec.servers);
        }
    }
}
