//! Consistent-cut invariants over protocol traces.
//!
//! The checker splits a trace into eras (spans between global restarts)
//! and proves, per era:
//!
//! * every message carries the epoch of the era it was launched in;
//! * per channel, deliveries replay the send order exactly (FIFO), with
//!   no duplication, and — in the final era — no loss;
//! * deliveries of pre-restart messages are preceded by a recorded
//!   `Replay` (a checkpointed message re-injected during recovery);
//!
//! and, for every *committed* checkpoint wave:
//!
//! * each rank forked exactly once before the commit;
//! * exactly one channel marker crossed every ordered rank pair, each
//!   matching a recorded marker send;
//! * no orphan messages (sent after the source's fork yet delivered
//!   before the destination's — a message "from the future" that would
//!   be received twice after a rollback);
//! * blocking protocol (Pcl): channels are empty at fork — every message
//!   sent before the source forked was delivered before the destination
//!   forked;
//! * non-blocking protocol (Vcl): the channel logs hold *exactly* the
//!   messages crossing the cut (sent before the source's fork, delivered
//!   after the destination's).

use std::collections::{BTreeMap, BTreeSet};

use ftmpi_core::ProtocolChoice;
use ftmpi_sim::{ProtoEvent, TraceEvent};

use crate::proto::{eras, proto_count, Era};

/// One invariant violation found in a trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// A message was launched with an epoch different from its era.
    SendEpochMismatch {
        /// Era the send was recorded in.
        era: u64,
        /// Sending rank.
        src: usize,
        /// Destination rank.
        dst: usize,
        /// Channel sequence number.
        seq: u64,
        /// Epoch stamped on the message.
        epoch: u64,
    },
    /// Restart events did not arrive in epoch order.
    EraOutOfOrder {
        /// Expected era number at this position.
        expected: u64,
        /// Era number actually recorded.
        got: u64,
    },
    /// Per-channel delivery order diverged from send order.
    FifoMismatch {
        /// Era of the channel segment.
        era: u64,
        /// Sending rank.
        src: usize,
        /// Destination rank.
        dst: usize,
        /// Position in the channel's delivery order.
        pos: usize,
        /// Sequence number sent at that position.
        sent: u64,
        /// Sequence number delivered at that position.
        delivered: u64,
    },
    /// More deliveries than sends on a channel (duplication).
    DuplicatedDelivery {
        /// Era of the channel segment.
        era: u64,
        /// Sending rank.
        src: usize,
        /// Destination rank.
        dst: usize,
        /// Number of surplus deliveries.
        extra: usize,
    },
    /// The final era ended with sent-but-never-delivered messages.
    LostMessages {
        /// Era of the channel segment (the last one).
        era: u64,
        /// Sending rank.
        src: usize,
        /// Destination rank.
        dst: usize,
        /// Number of undelivered sends.
        missing: usize,
    },
    /// A pre-restart message was delivered without a recorded replay.
    UnreplayedDelivery {
        /// Era the delivery happened in.
        era: u64,
        /// Sending rank.
        src: usize,
        /// Destination rank.
        dst: usize,
        /// Channel sequence number.
        seq: u64,
        /// Epoch stamped on the message.
        epoch: u64,
    },
    /// A committed wave saw `count` forks for a rank instead of one.
    ForkCount {
        /// Wave number.
        wave: u64,
        /// The rank concerned.
        rank: usize,
        /// Forks recorded before the commit.
        count: usize,
    },
    /// A committed wave saw `recvs` marker receptions on an ordered rank
    /// pair instead of exactly one.
    MarkerMismatch {
        /// Wave number.
        wave: u64,
        /// Marker origin rank.
        from: usize,
        /// Marker destination rank.
        to: usize,
        /// Receptions recorded before the commit.
        recvs: usize,
    },
    /// A marker was received without a matching recorded send.
    UnmatchedMarker {
        /// Wave number.
        wave: u64,
        /// Marker origin rank.
        from: usize,
        /// Marker destination rank.
        to: usize,
    },
    /// Orphan message: sent after the source's fork, delivered before the
    /// destination's — it would be resent *and* already consumed after a
    /// rollback to this wave.
    OrphanMessage {
        /// Wave number.
        wave: u64,
        /// Sending rank.
        src: usize,
        /// Destination rank.
        dst: usize,
        /// Channel sequence number.
        seq: u64,
    },
    /// Blocking protocol: a message was still in the channel when the
    /// endpoint forked (Pcl's synchronization exists to prevent this).
    ChannelNotEmptyAtFork {
        /// Wave number.
        wave: u64,
        /// Sending rank.
        src: usize,
        /// Destination rank.
        dst: usize,
        /// Channel sequence number.
        seq: u64,
    },
    /// A wave was both aborted and committed: the protocol garbage-collected
    /// images for a cut it also declared durable.
    AbortedWaveCommitted {
        /// Wave number.
        wave: u64,
    },
    /// Vcl: a channel's log differs from the messages that actually
    /// crossed the cut.
    LogMismatch {
        /// Wave number.
        wave: u64,
        /// Sending rank of the channel.
        src: usize,
        /// Receiving (logging) rank of the channel.
        dst: usize,
        /// Seqnos crossing the cut per the send/deliver records.
        crossing: Vec<u64>,
        /// Seqnos actually logged.
        logged: Vec<u64>,
    },
    /// A restore consumed a replica whose recorded damage was never
    /// repaired: verify-on-fetch let corrupt bits through.
    CorruptRestore {
        /// Wave number restored from.
        wave: u64,
        /// Rank whose image was fetched.
        rank: usize,
        /// Server node the damaged replica lived on.
        node: u64,
    },
    /// A replica landed on a server after its quarantine: placement and
    /// reroute must exclude quarantined servers.
    QuarantinedPlacement {
        /// Wave number of the replica.
        wave: u64,
        /// Rank whose image landed.
        rank: usize,
        /// The quarantined server node.
        node: u64,
    },
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Violation::SendEpochMismatch {
                era,
                src,
                dst,
                seq,
                epoch,
            } => write!(
                f,
                "era {era}: send {src}->{dst} seq {seq} stamped epoch {epoch}"
            ),
            Violation::EraOutOfOrder { expected, got } => {
                write!(
                    f,
                    "restart out of order: expected era {expected}, got {got}"
                )
            }
            Violation::FifoMismatch {
                era,
                src,
                dst,
                pos,
                sent,
                delivered,
            } => write!(
                f,
                "era {era}: channel {src}->{dst} position {pos} sent seq {sent} \
                 but delivered seq {delivered}"
            ),
            Violation::DuplicatedDelivery {
                era,
                src,
                dst,
                extra,
            } => write!(
                f,
                "era {era}: channel {src}->{dst} delivered {extra} more message(s) than sent"
            ),
            Violation::LostMessages {
                era,
                src,
                dst,
                missing,
            } => write!(
                f,
                "era {era}: channel {src}->{dst} lost {missing} message(s)"
            ),
            Violation::UnreplayedDelivery {
                era,
                src,
                dst,
                seq,
                epoch,
            } => write!(
                f,
                "era {era}: delivery of epoch-{epoch} message {src}->{dst} seq {seq} \
                 without a recorded replay"
            ),
            Violation::ForkCount { wave, rank, count } => write!(
                f,
                "wave {wave}: rank {rank} forked {count} time(s) before commit (expected 1)"
            ),
            Violation::MarkerMismatch {
                wave,
                from,
                to,
                recvs,
            } => write!(
                f,
                "wave {wave}: marker {from}->{to} received {recvs} time(s) before commit \
                 (expected 1)"
            ),
            Violation::UnmatchedMarker { wave, from, to } => {
                write!(
                    f,
                    "wave {wave}: marker {from}->{to} received but never sent"
                )
            }
            Violation::OrphanMessage {
                wave,
                src,
                dst,
                seq,
            } => write!(
                f,
                "wave {wave}: orphan message {src}->{dst} seq {seq} (sent after source fork, \
                 delivered before destination fork)"
            ),
            Violation::ChannelNotEmptyAtFork {
                wave,
                src,
                dst,
                seq,
            } => write!(
                f,
                "wave {wave}: channel {src}->{dst} not empty at fork (seq {seq} in transit)"
            ),
            Violation::AbortedWaveCommitted { wave } => {
                write!(f, "wave {wave}: both aborted and committed")
            }
            Violation::LogMismatch {
                wave,
                src,
                dst,
                crossing,
                logged,
            } => write!(
                f,
                "wave {wave}: channel {src}->{dst} log mismatch: crossing seqs {crossing:?} \
                 vs logged {logged:?}"
            ),
            Violation::CorruptRestore { wave, rank, node } => write!(
                f,
                "wave {wave}: rank {rank} restored from damaged replica on node {node}"
            ),
            Violation::QuarantinedPlacement { wave, rank, node } => write!(
                f,
                "wave {wave}: rank {rank}'s replica placed on quarantined node {node}"
            ),
        }
    }
}

/// Result of checking one trace.
#[derive(Debug, Default)]
pub struct CheckReport {
    /// Every violation found, in detection order.
    pub violations: Vec<Violation>,
    /// Protocol events examined.
    pub proto_events: usize,
    /// Eras (1 + restarts) in the trace.
    pub eras: usize,
    /// Committed waves whose cut was verified.
    pub waves_checked: usize,
}

impl CheckReport {
    /// `true` when no invariant was violated.
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }
}

type Chan = (usize, usize);

/// Bookkeeping for one era, filled by a single pass over its events.
#[derive(Default)]
struct EraData {
    /// Per channel: `(trace idx, seq)` of current-epoch sends, in order.
    sends: BTreeMap<Chan, Vec<(usize, u64)>>,
    /// Per channel: `(trace idx, seq)` of current-epoch deliveries.
    delivers: BTreeMap<Chan, Vec<(usize, u64)>>,
    /// Replayed checkpointed messages not yet claimed by a delivery.
    replays: Vec<(usize, usize, u64, u64)>,
    /// Per wave: `(trace idx, rank)` of forks.
    forks: BTreeMap<u64, Vec<(usize, usize)>>,
    /// Marker sends seen, keyed `(wave, from, to)`.
    marker_sends: BTreeMap<(u64, usize, usize), usize>,
    /// Per wave: `(trace idx, from, to)` of marker receptions.
    marker_recvs: BTreeMap<u64, Vec<(usize, usize, usize)>>,
    /// Per wave: logged channel-state entries `(src, dst, seq)`.
    logs: BTreeMap<u64, Vec<(usize, usize, u64)>>,
    /// Per wave: trace idx of the commit.
    commits: BTreeMap<u64, usize>,
    /// Waves whose in-flight checkpoint was aborted.
    aborts: BTreeSet<u64>,
}

/// Check every invariant the trace supports for `protocol`.
///
/// `nranks` is the job size (defines the marker/fork completeness
/// expectations); `trace` is the raw record from
/// [`ftmpi_core::run_job_with`] with tracing enabled.
pub fn check_trace(protocol: ProtocolChoice, nranks: usize, trace: &[TraceEvent]) -> CheckReport {
    let mut report = CheckReport {
        proto_events: proto_count(trace),
        ..CheckReport::default()
    };
    let split = eras(trace);
    report.eras = split.len();
    for (pos, era) in split.iter().enumerate() {
        if era.era != pos as u64 {
            report.violations.push(Violation::EraOutOfOrder {
                expected: pos as u64,
                got: era.era,
            });
        }
        let is_final = pos + 1 == split.len();
        check_era(protocol, nranks, era, is_final, &mut report);
    }
    check_integrity(trace, &mut report);
    report
}

/// Checkpoint-image integrity, proven over the whole trace (the store and
/// its quarantine set belong to the fleet, not a job era, so the state
/// machine must not reset at restarts):
///
/// * a `RestoreImage` must never name a `(wave, rank, node)` whose damage
///   (`Corrupt`) was not overwritten by a verified write (`ImageStore` /
///   `Repair`) first — verify-on-fetch walked past every damaged copy;
/// * after a node's `Quarantine`, no replica may land on it — placement,
///   reroute, and scrub re-replication all exclude quarantined servers
///   (fetching a pre-quarantine replica *from* it stays legal).
fn check_integrity(trace: &[TraceEvent], report: &mut CheckReport) {
    use ftmpi_sim::TraceKind;
    let mut damaged: BTreeSet<(u64, usize, u64)> = BTreeSet::new();
    let mut quarantined: BTreeSet<u64> = BTreeSet::new();
    for te in trace {
        let TraceKind::Proto(ev) = te.kind else {
            continue;
        };
        match ev {
            ProtoEvent::Corrupt { wave, rank, node } => {
                damaged.insert((wave, rank, node));
            }
            ProtoEvent::ImageStore { wave, rank, node }
            | ProtoEvent::Repair { wave, rank, node } => {
                // A verified write replaces whatever bits the slot held.
                damaged.remove(&(wave, rank, node));
                if quarantined.contains(&node) {
                    report
                        .violations
                        .push(Violation::QuarantinedPlacement { wave, rank, node });
                }
            }
            ProtoEvent::RestoreImage { wave, rank, node }
                if damaged.contains(&(wave, rank, node)) =>
            {
                report
                    .violations
                    .push(Violation::CorruptRestore { wave, rank, node });
            }
            ProtoEvent::Quarantine { node } => {
                quarantined.insert(node);
            }
            _ => {}
        }
    }
}

fn check_era(
    protocol: ProtocolChoice,
    nranks: usize,
    era: &Era,
    is_final: bool,
    report: &mut CheckReport,
) {
    let data = collect_era(era, &mut report.violations);
    check_fifo(era.era, &data, is_final, &mut report.violations);
    check_waves(protocol, nranks, &data, report);
}

/// Single pass: bucket the era's events and validate epoch stamping and
/// replay pairing, which depend on in-era ordering.
fn collect_era(era: &Era, violations: &mut Vec<Violation>) -> EraData {
    let mut data = EraData::default();
    for ind in &era.events {
        match ind.ev {
            ProtoEvent::Send {
                src,
                dst,
                seq,
                epoch,
                ..
            } => {
                if epoch != era.era {
                    violations.push(Violation::SendEpochMismatch {
                        era: era.era,
                        src,
                        dst,
                        seq,
                        epoch,
                    });
                }
                data.sends
                    .entry((src, dst))
                    .or_default()
                    .push((ind.idx, seq));
            }
            ProtoEvent::Deliver {
                src,
                dst,
                seq,
                epoch,
            } => {
                if epoch == era.era {
                    data.delivers
                        .entry((src, dst))
                        .or_default()
                        .push((ind.idx, seq));
                } else {
                    // A pre-restart message: legitimate only as the
                    // re-injection of a checkpointed message, which records
                    // a Replay just before.
                    let found = data
                        .replays
                        .iter()
                        .position(|&(s, d, q, e)| (s, d, q, e) == (src, dst, seq, epoch));
                    match found {
                        Some(i) => {
                            data.replays.swap_remove(i);
                        }
                        None => violations.push(Violation::UnreplayedDelivery {
                            era: era.era,
                            src,
                            dst,
                            seq,
                            epoch,
                        }),
                    }
                }
            }
            ProtoEvent::Replay {
                src,
                dst,
                seq,
                epoch,
            } => {
                data.replays.push((src, dst, seq, epoch));
            }
            ProtoEvent::MarkerSend { wave, from, to } => {
                *data.marker_sends.entry((wave, from, to)).or_default() += 1;
            }
            ProtoEvent::MarkerRecv { wave, from, to } => {
                data.marker_recvs
                    .entry(wave)
                    .or_default()
                    .push((ind.idx, from, to));
            }
            ProtoEvent::Fork { wave, rank, .. } => {
                data.forks.entry(wave).or_default().push((ind.idx, rank));
            }
            ProtoEvent::LogMsg {
                wave,
                src,
                dst,
                seq,
            } => {
                data.logs.entry(wave).or_default().push((src, dst, seq));
            }
            ProtoEvent::WaveCommit { wave } => {
                data.commits.insert(wave, ind.idx);
            }
            ProtoEvent::WaveAbort { wave } => {
                data.aborts.insert(wave);
            }
            ProtoEvent::WaveStart { .. }
            | ProtoEvent::Restart { .. }
            | ProtoEvent::ServerFail { .. } => {}
            // Integrity events are checked in a whole-trace pass (the
            // store outlives eras); see `check_integrity`.
            ProtoEvent::ImageStore { .. }
            | ProtoEvent::Corrupt { .. }
            | ProtoEvent::CorruptDetected { .. }
            | ProtoEvent::Repair { .. }
            | ProtoEvent::RestoreImage { .. }
            | ProtoEvent::Quarantine { .. } => {}
        }
    }
    data
}

/// Per-channel FIFO: deliveries must replay the send order as a prefix
/// (exactly, in the final era). Replayed pre-restart messages are checked
/// separately in [`collect_era`]; duplicate-suppressed replays are legal.
fn check_fifo(era: u64, data: &EraData, is_final: bool, violations: &mut Vec<Violation>) {
    for (&(src, dst), dvec) in &data.delivers {
        let svec = data
            .sends
            .get(&(src, dst))
            .map(Vec::as_slice)
            .unwrap_or(&[]);
        if dvec.len() > svec.len() {
            violations.push(Violation::DuplicatedDelivery {
                era,
                src,
                dst,
                extra: dvec.len() - svec.len(),
            });
        }
        for (pos, &(_, dseq)) in dvec.iter().enumerate() {
            let Some(&(_, sseq)) = svec.get(pos) else {
                break;
            };
            if dseq != sseq {
                violations.push(Violation::FifoMismatch {
                    era,
                    src,
                    dst,
                    pos,
                    sent: sseq,
                    delivered: dseq,
                });
                break;
            }
        }
    }
    if is_final {
        for (&(src, dst), svec) in &data.sends {
            let delivered = data.delivers.get(&(src, dst)).map(Vec::len).unwrap_or(0);
            if delivered < svec.len() {
                violations.push(Violation::LostMessages {
                    era,
                    src,
                    dst,
                    missing: svec.len() - delivered,
                });
            }
        }
    }
}

/// Cut consistency for every committed wave of the era.
fn check_waves(protocol: ProtocolChoice, nranks: usize, data: &EraData, report: &mut CheckReport) {
    for (&wave, &commit_idx) in &data.commits {
        report.waves_checked += 1;
        if data.aborts.contains(&wave) {
            report
                .violations
                .push(Violation::AbortedWaveCommitted { wave });
        }
        // Exactly one fork per rank, before the commit.
        let mut fork_of: Vec<Option<usize>> = vec![None; nranks];
        let mut fork_count = vec![0usize; nranks];
        for &(idx, rank) in data.forks.get(&wave).map(Vec::as_slice).unwrap_or(&[]) {
            if rank < nranks && idx < commit_idx {
                fork_count[rank] += 1;
                fork_of[rank].get_or_insert(idx);
            }
        }
        for (rank, &count) in fork_count.iter().enumerate() {
            if count != 1 {
                report
                    .violations
                    .push(Violation::ForkCount { wave, rank, count });
            }
        }
        // Exactly one marker per ordered pair, each matching a send.
        let mut recv_count: BTreeMap<Chan, usize> = BTreeMap::new();
        for &(idx, from, to) in data
            .marker_recvs
            .get(&wave)
            .map(Vec::as_slice)
            .unwrap_or(&[])
        {
            if idx < commit_idx {
                *recv_count.entry((from, to)).or_default() += 1;
                if data
                    .marker_sends
                    .get(&(wave, from, to))
                    .copied()
                    .unwrap_or(0)
                    == 0
                {
                    report
                        .violations
                        .push(Violation::UnmatchedMarker { wave, from, to });
                }
            }
        }
        for from in 0..nranks {
            for to in 0..nranks {
                if from == to {
                    continue;
                }
                let recvs = recv_count.get(&(from, to)).copied().unwrap_or(0);
                if recvs != 1 {
                    report.violations.push(Violation::MarkerMismatch {
                        wave,
                        from,
                        to,
                        recvs,
                    });
                }
            }
        }
        // Per-channel cut checks need the fork on both endpoints.
        for (&(src, dst), svec) in &data.sends {
            if src == dst {
                continue; // self-channels never cross the cut
            }
            let (Some(fs), Some(fd)) = (
                fork_of.get(src).copied().flatten(),
                fork_of.get(dst).copied().flatten(),
            ) else {
                continue; // fork violations already reported above
            };
            let dvec = data
                .delivers
                .get(&(src, dst))
                .map(Vec::as_slice)
                .unwrap_or(&[]);
            let mut crossing: Vec<u64> = Vec::new();
            for (pos, &(sidx, seq)) in svec.iter().enumerate() {
                // Positional pairing; if FIFO already failed the pairing is
                // unreliable, but those traces are rejected regardless.
                match dvec.get(pos) {
                    Some(&(didx, _)) => {
                        if sidx > fs && didx < fd {
                            report.violations.push(Violation::OrphanMessage {
                                wave,
                                src,
                                dst,
                                seq,
                            });
                        }
                        if sidx < fs && didx > fd {
                            crossing.push(seq);
                        }
                    }
                    None => {
                        // Sent before the fork but never delivered this
                        // era: the message was in the channel at the cut.
                        if sidx < fs {
                            crossing.push(seq);
                        }
                    }
                }
            }
            match protocol {
                ProtocolChoice::Pcl => {
                    for &seq in &crossing {
                        report.violations.push(Violation::ChannelNotEmptyAtFork {
                            wave,
                            src,
                            dst,
                            seq,
                        });
                    }
                }
                ProtocolChoice::Vcl => {
                    let mut logged: Vec<u64> = data
                        .logs
                        .get(&wave)
                        .map(Vec::as_slice)
                        .unwrap_or(&[])
                        .iter()
                        .filter(|&&(s, d, _)| (s, d) == (src, dst))
                        .map(|&(_, _, q)| q)
                        .collect();
                    let mut crossing = crossing;
                    crossing.sort_unstable();
                    logged.sort_unstable();
                    if crossing != logged {
                        report.violations.push(Violation::LogMismatch {
                            wave,
                            src,
                            dst,
                            crossing,
                            logged,
                        });
                    }
                }
                _ => {}
            }
        }
        // Vcl: logged entries on channels that never sent anything are
        // fabrications (the per-channel loop above cannot see them).
        if protocol == ProtocolChoice::Vcl {
            for &(src, dst, seq) in data.logs.get(&wave).map(Vec::as_slice).unwrap_or(&[]) {
                if !data.sends.contains_key(&(src, dst)) {
                    report.violations.push(Violation::LogMismatch {
                        wave,
                        src,
                        dst,
                        crossing: Vec::new(),
                        logged: vec![seq],
                    });
                }
            }
        }
    }
}
