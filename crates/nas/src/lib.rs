//! NAS Parallel Benchmark communication skeletons and synthetic workloads.
//!
//! The paper evaluates the protocols with NPB 2.3 — primarily **BT**
//! (compute-heavy, nearest-neighbour exchanges on a square process grid)
//! and **CG** (latency-bound, many small messages and reductions). The
//! protocols only observe the *communication pattern, message volumes and
//! compute gaps*, so each benchmark is reproduced as a skeleton that issues
//! the NPB-derived message sizes and NPB-derived flop counts (converted to
//! time through a [`Machine`] rate), not the numerics — see DESIGN.md §5.3.
//!
//! Besides BT and CG, skeletons for LU, MG and FT cover the other NPB
//! communication styles (pipelined wavefronts, multigrid V-cycles,
//! transpose all-to-alls), and [`synth`] provides NetPIPE-style ping-pong
//! and other microworkloads used by the §5.4 platform characterization.

#![warn(missing_docs)]

pub mod bt;
pub mod cg;
pub mod ftb;
pub mod lu;
pub mod machine;
pub mod mg;
pub mod params;
pub mod synth;

pub use machine::Machine;
pub use params::NasClass;

use ftmpi_mpi::AppFn;

/// A ready-to-run workload: the application closure plus the
/// fault-tolerance sizing that goes with it.
pub struct Workload {
    /// Display name, e.g. `"bt.B.64"`.
    pub name: String,
    /// Per-rank application.
    pub app: AppFn,
    /// Per-rank system-level checkpoint image size.
    pub image_bytes: u64,
}
