//! NPB 2.3 problem classes and their published parameters.

/// NPB problem classes used in the paper (plus S for tests).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NasClass {
    /// Sample (tiny, for tests).
    S,
    /// Class A.
    A,
    /// Class B (the paper's cluster/grid experiments).
    B,
    /// Class C (the paper's Myrinet experiments).
    C,
}

impl NasClass {
    /// Single-letter label.
    pub fn letter(self) -> char {
        match self {
            NasClass::S => 'S',
            NasClass::A => 'A',
            NasClass::B => 'B',
            NasClass::C => 'C',
        }
    }
}

/// BT parameters: cubic grid dimension, iterations, total flop count.
pub struct BtParams {
    /// Grid points per dimension.
    pub problem_size: u64,
    /// Time steps.
    pub niter: u64,
    /// Total floating-point operations of the full benchmark.
    pub total_flops: f64,
}

impl BtParams {
    /// NPB 2.3 published values (flop totals from the NPB "Mop/s total"
    /// accounting).
    pub fn of(class: NasClass) -> BtParams {
        match class {
            NasClass::S => BtParams {
                problem_size: 12,
                niter: 60,
                total_flops: 0.3e9,
            },
            NasClass::A => BtParams {
                problem_size: 64,
                niter: 200,
                total_flops: 168.3e9,
            },
            NasClass::B => BtParams {
                problem_size: 102,
                niter: 200,
                total_flops: 721.5e9,
            },
            NasClass::C => BtParams {
                problem_size: 162,
                niter: 200,
                total_flops: 2940.0e9,
            },
        }
    }
}

/// CG parameters: matrix order, outer iterations, total flop count.
pub struct CgParams {
    /// Matrix order.
    pub na: u64,
    /// Outer iterations.
    pub niter: u64,
    /// Inner conjugate-gradient iterations per outer iteration.
    pub cgitmax: u64,
    /// Total floating-point operations.
    pub total_flops: f64,
}

impl CgParams {
    /// NPB 2.3 published values.
    pub fn of(class: NasClass) -> CgParams {
        match class {
            NasClass::S => CgParams {
                na: 1400,
                niter: 15,
                cgitmax: 25,
                total_flops: 0.07e9,
            },
            NasClass::A => CgParams {
                na: 14000,
                niter: 15,
                cgitmax: 25,
                total_flops: 1.5e9,
            },
            NasClass::B => CgParams {
                na: 75000,
                niter: 75,
                cgitmax: 25,
                total_flops: 54.9e9,
            },
            NasClass::C => CgParams {
                na: 150000,
                niter: 75,
                cgitmax: 25,
                total_flops: 143.3e9,
            },
        }
    }
}

/// LU parameters.
pub struct LuParams {
    /// Grid points per dimension.
    pub problem_size: u64,
    /// Time steps.
    pub niter: u64,
    /// Total floating-point operations.
    pub total_flops: f64,
}

impl LuParams {
    /// NPB 2.3 published values.
    pub fn of(class: NasClass) -> LuParams {
        match class {
            NasClass::S => LuParams {
                problem_size: 12,
                niter: 50,
                total_flops: 0.1e9,
            },
            NasClass::A => LuParams {
                problem_size: 64,
                niter: 250,
                total_flops: 119.3e9,
            },
            NasClass::B => LuParams {
                problem_size: 102,
                niter: 250,
                total_flops: 544.7e9,
            },
            NasClass::C => LuParams {
                problem_size: 162,
                niter: 250,
                total_flops: 2200.0e9,
            },
        }
    }
}

/// MG parameters.
pub struct MgParams {
    /// Grid points per dimension (finest level).
    pub problem_size: u64,
    /// V-cycle iterations.
    pub niter: u64,
    /// Total floating-point operations.
    pub total_flops: f64,
}

impl MgParams {
    /// NPB 2.3 published values.
    pub fn of(class: NasClass) -> MgParams {
        match class {
            NasClass::S => MgParams {
                problem_size: 32,
                niter: 4,
                total_flops: 0.01e9,
            },
            NasClass::A => MgParams {
                problem_size: 256,
                niter: 4,
                total_flops: 3.9e9,
            },
            NasClass::B => MgParams {
                problem_size: 256,
                niter: 20,
                total_flops: 19.5e9,
            },
            NasClass::C => MgParams {
                problem_size: 512,
                niter: 20,
                total_flops: 156.0e9,
            },
        }
    }
}

/// FT parameters.
pub struct FtParams {
    /// Grid dimensions (nx = ny = nz for our classes of interest).
    pub nx: u64,
    /// Iterations.
    pub niter: u64,
    /// Total floating-point operations.
    pub total_flops: f64,
}

impl FtParams {
    /// NPB 2.3 published values (class B/C use 512×256×256 and 512³; we
    /// approximate with cubes of the geometric mean for sizing).
    pub fn of(class: NasClass) -> FtParams {
        match class {
            NasClass::S => FtParams {
                nx: 64,
                niter: 6,
                total_flops: 0.2e9,
            },
            NasClass::A => FtParams {
                nx: 256,
                niter: 6,
                total_flops: 7.1e9,
            },
            NasClass::B => FtParams {
                nx: 322,
                niter: 20,
                total_flops: 92.8e9,
            },
            NasClass::C => FtParams {
                nx: 512,
                niter: 20,
                total_flops: 390.0e9,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classes_grow_monotonically() {
        for cl in [
            (NasClass::S, NasClass::A),
            (NasClass::A, NasClass::B),
            (NasClass::B, NasClass::C),
        ] {
            assert!(BtParams::of(cl.0).total_flops < BtParams::of(cl.1).total_flops);
            assert!(CgParams::of(cl.0).na < CgParams::of(cl.1).na);
        }
    }

    #[test]
    fn paper_classes_match_npb() {
        let b = BtParams::of(NasClass::B);
        assert_eq!(b.problem_size, 102);
        assert_eq!(b.niter, 200);
        let c = CgParams::of(NasClass::C);
        assert_eq!(c.na, 150000);
        assert_eq!(c.niter, 75);
    }
}
