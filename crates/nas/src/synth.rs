//! Synthetic microworkloads: the NetPIPE-style ping-pong used for the
//! §5.4 platform characterization, plus simple patterns for tests and
//! ablations.

use std::sync::Arc;

use ftmpi_mpi::{app_fn, AppFn};
use ftmpi_sim::SimDuration;
use parking_lot::Mutex;

/// One NetPIPE sample: message size and measured one-way time.
#[derive(Debug, Clone, Copy)]
pub struct PingPongSample {
    /// Message size in bytes.
    pub bytes: u64,
    /// Measured one-way latency in seconds (round trip / 2).
    pub one_way_secs: f64,
    /// Effective bandwidth in bytes/second.
    pub bandwidth: f64,
}

/// Shared result sink for [`netpipe_app`].
pub type PingPongResults = Arc<Mutex<Vec<PingPongSample>>>;

/// NetPIPE: rank 0 and rank 1 ping-pong messages of exponentially growing
/// sizes (with small perturbations, as the original tool does), recording
/// one-way latency and bandwidth into `results`. Other ranks idle.
pub fn netpipe_app(max_bytes: u64, reps: usize, results: PingPongResults) -> AppFn {
    app_fn(move |mut mpi| {
        let results = Arc::clone(&results);
        async move {
            if mpi.rank() > 1 || mpi.size() < 2 {
                return mpi;
            }
            let mut sizes = vec![1u64];
            let mut b = 2u64;
            while b <= max_bytes {
                // Perturbations around each power of two.
                sizes.push(b - 1);
                sizes.push(b);
                sizes.push(b + 1);
                b *= 2;
            }
            for (si, &bytes) in sizes.iter().enumerate() {
                let tag = (si % 1000) as i32;
                let t0 = mpi.wtime();
                for _ in 0..reps {
                    if mpi.rank() == 0 {
                        mpi.send(1, tag, bytes).await;
                        mpi.recv(Some(1), Some(tag)).await;
                    } else {
                        mpi.recv(Some(0), Some(tag)).await;
                        mpi.send(0, tag, bytes).await;
                    }
                }
                let t1 = mpi.wtime();
                if mpi.rank() == 0 {
                    let one_way = (t1 - t0) / (2.0 * reps as f64);
                    results.lock().push(PingPongSample {
                        bytes,
                        one_way_secs: one_way,
                        bandwidth: bytes as f64 / one_way,
                    });
                }
            }
            mpi
        }
    })
}

/// Token ring: `iters` laps of a single token — strict serialization,
/// useful for ordering tests.
pub fn token_ring(iters: usize, bytes: u64) -> AppFn {
    app_fn(move |mut mpi| async move {
        let n = mpi.size();
        if n < 2 {
            return mpi;
        }
        let right = (mpi.rank() + 1) % n;
        let left = (mpi.rank() + n - 1) % n;
        for i in 0..iters {
            let tag = (i % 1000) as i32;
            if mpi.rank() == 0 {
                mpi.send(right, tag, bytes).await;
                mpi.recv(Some(left), Some(tag)).await;
            } else {
                mpi.recv(Some(left), Some(tag)).await;
                mpi.send(right, tag, bytes).await;
            }
        }
        mpi
    })
}

/// Bulk-synchronous compute/allreduce loop (generic BSP workload).
pub fn bsp(iters: usize, compute: SimDuration, reduce_bytes: u64) -> AppFn {
    app_fn(move |mut mpi| async move {
        for _ in 0..iters {
            mpi.compute(compute);
            mpi.allreduce(reduce_bytes).await;
        }
        mpi
    })
}
