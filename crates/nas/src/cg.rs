//! CG (Conjugate Gradient) skeleton.
//!
//! NPB CG runs on a **power-of-two** number of processes arranged as an
//! `nprows × npcols` grid. Every inner CG iteration performs a sparse
//! matrix-vector product whose result is summed across each process row
//! (log₂(npcols) pairwise exchange steps carrying vector segments),
//! followed by scalar reductions for ρ and the residual norm. The result is
//! the paper's *latency-bound* benchmark: "a lot of small communications" —
//! which is what exposes the Vcl daemon's per-message overhead on fast
//! networks (Fig. 7).

use ftmpi_mpi::{app_fn, AppFn};

use crate::machine::Machine;
use crate::params::CgParams;
use crate::{NasClass, Workload};

/// Is `p` a valid CG process count (a power of two)?
pub fn valid_procs(p: usize) -> bool {
    p.is_power_of_two()
}

/// NPB CG process grid: `nprows × npcols`, both powers of two with
/// `nprows >= npcols` (`npcols = nprows` or `2·npcols = nprows`).
pub fn grid(p: usize) -> (usize, usize) {
    assert!(valid_procs(p), "CG requires a power-of-two process count");
    let log = p.trailing_zeros();
    let npcols = 1usize << (log / 2);
    let nprows = p / npcols;
    (nprows, npcols)
}

/// Per-rank checkpoint image size: base footprint plus this rank's share of
/// the sparse matrix (≈ 14 nonzeros per row, 12 bytes each) and vectors.
pub fn image_bytes(class: NasClass, nprocs: usize) -> u64 {
    let p = CgParams::of(class);
    let matrix = p.na * 14 * 12;
    let vectors = p.na * 6 * 8;
    30_000_000 + (matrix + vectors) / nprocs as u64
}

/// Build the CG application for `nprocs` ranks.
pub fn app(class: NasClass, nprocs: usize, machine: Machine) -> AppFn {
    let params = CgParams::of(class);
    let (nprows, npcols) = grid(nprocs);
    let _ = nprows;
    // Vector segment exchanged within a row-sum step.
    let seg_bytes = (8 * params.na / npcols as u64).max(64);
    let inner_total = params.niter * params.cgitmax;
    let flops_per_inner = params.total_flops / (inner_total as f64 * nprocs as f64);
    let niter = params.niter as usize;
    let cgitmax = params.cgitmax as usize;

    app_fn(move |mut mpi| async move {
        let me = mpi.rank();
        let t_spmv = machine.time_for(flops_per_inner * 0.85);
        let t_axpy = machine.time_for(flops_per_inner * 0.15);
        let exchange_steps = npcols.trailing_zeros() as usize;
        for _outer in 0..niter {
            for it in 0..cgitmax {
                let tag = (it % 1000) as i32;
                mpi.compute(t_spmv);
                // Row-sum of the SpMV result: pairwise exchange with the
                // transpose partners (recursive halving over the row).
                for step in 0..exchange_steps {
                    let partner = me ^ (1 << step);
                    if partner < mpi.size() {
                        mpi.exchange(partner, tag, seg_bytes).await;
                    }
                }
                mpi.compute(t_axpy);
                // ρ reduction: one tiny allreduce per inner iteration.
                mpi.allreduce(8).await;
            }
            // Residual norm at the end of the outer iteration.
            mpi.allreduce(8).await;
        }
        mpi
    })
}

/// CG as a [`Workload`].
pub fn workload(class: NasClass, nprocs: usize, machine: Machine) -> Workload {
    Workload {
        name: format!("cg.{}.{}", class.letter(), nprocs),
        app: app(class, nprocs, machine),
        image_bytes: image_bytes(class, nprocs),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grids_match_npb_shapes() {
        assert_eq!(grid(1), (1, 1));
        assert_eq!(grid(2), (2, 1));
        assert_eq!(grid(4), (2, 2));
        assert_eq!(grid(8), (4, 2));
        assert_eq!(grid(16), (4, 4));
        assert_eq!(grid(64), (8, 8));
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn non_power_rejected() {
        grid(6);
    }

    #[test]
    fn segment_shrinks_with_more_columns() {
        let p = CgParams::of(NasClass::C);
        let (_, c64) = grid(64);
        let (_, c4) = grid(4);
        assert!((8 * p.na / c64 as u64) < (8 * p.na / c4 as u64));
    }
}
