//! MG (Multi-Grid) skeleton.
//!
//! NPB MG performs V-cycles over a grid hierarchy: halo exchanges whose
//! message sizes shrink geometrically towards the coarse levels and grow
//! back — a mix of large and tiny messages in quick succession.

use ftmpi_mpi::{app_fn, AppFn};

use crate::machine::Machine;
use crate::params::MgParams;
use crate::{NasClass, Workload};

/// Per-rank checkpoint image size.
pub fn image_bytes(class: NasClass, nprocs: usize) -> u64 {
    let p = MgParams::of(class);
    30_000_000 + p.problem_size.pow(3) * 8 * 4 / nprocs as u64
}

/// Build the MG application (any process count; neighbours on a ring for
/// the halo pattern).
pub fn app(class: NasClass, nprocs: usize, machine: Machine) -> AppFn {
    let params = MgParams::of(class);
    let levels = (params.problem_size as f64).log2().floor() as usize;
    let n = params.problem_size;
    let flops_per_iter = params.total_flops / (params.niter as f64 * nprocs as f64);
    let niter = params.niter as usize;

    app_fn(move |mut mpi| async move {
        let me = mpi.rank();
        let p = mpi.size();
        let right = (me + 1) % p;
        let left = (me + p - 1) % p;
        let t_level = machine.time_for(flops_per_iter / (2.0 * levels as f64));
        for iter in 0..niter {
            // Down the V: halos shrink by 4× per level.
            for level in 0..levels {
                let face = ((n * n * 8) >> (2 * level)).max(64) / p as u64;
                let face = face.max(64);
                let tag = ((iter * 64 + level) % 1000) as i32;
                if p > 1 {
                    mpi.shift(right, left, tag, face).await;
                }
                mpi.compute(t_level);
            }
            // Back up the V.
            for level in (0..levels).rev() {
                let face = ((n * n * 8) >> (2 * level)).max(64) / p as u64;
                let face = face.max(64);
                let tag = ((iter * 64 + level) % 1000) as i32 + 1000;
                if p > 1 {
                    mpi.shift(left, right, tag, face).await;
                }
                mpi.compute(t_level);
            }
        }
        mpi.allreduce(8).await;
        mpi
    })
}

/// MG as a [`Workload`].
pub fn workload(class: NasClass, nprocs: usize, machine: Machine) -> Workload {
    Workload {
        name: format!("mg.{}.{}", class.letter(), nprocs),
        app: app(class, nprocs, machine),
        image_bytes: image_bytes(class, nprocs),
    }
}
