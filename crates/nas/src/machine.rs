//! Per-process compute-rate model.

use ftmpi_sim::SimDuration;

/// Sustained floating-point rate of one MPI process.
///
/// The paper's nodes are 2 GHz AMD Opteron 248s (peak 4 GFlop/s per
/// processor). NPB kernels are memory-bound and sustain a small fraction of
/// peak; the default (150 MFlop/s) lands the BT.B/64 completion time in the
/// low hundreds of seconds, the regime of the paper's cluster figures.
/// EXPERIMENTS.md records the calibration.
#[derive(Debug, Clone, Copy)]
pub struct Machine {
    /// Sustained flops per second per process.
    pub flops_per_sec: f64,
}

impl Default for Machine {
    fn default() -> Self {
        Machine {
            flops_per_sec: 150e6,
        }
    }
}

impl Machine {
    /// A machine with the given sustained MFlop/s.
    pub fn mflops(m: f64) -> Machine {
        Machine {
            flops_per_sec: m * 1e6,
        }
    }

    /// Time to execute `flops` floating-point operations.
    pub fn time_for(&self, flops: f64) -> SimDuration {
        SimDuration::from_secs_f64(flops / self.flops_per_sec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rate_conversion() {
        let m = Machine::mflops(100.0);
        assert_eq!(m.time_for(1e8), SimDuration::from_secs(1));
        assert_eq!(m.time_for(5e7), SimDuration::from_millis(500));
    }
}
