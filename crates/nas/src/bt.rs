//! BT (Block Tri-diagonal) skeleton.
//!
//! NPB BT runs on a **square** number of processes arranged as a p×p grid
//! (the multi-partition decomposition). Every time step computes the
//! right-hand side, then performs ADI sweeps along x, y and z; each sweep
//! exchanges cell faces with grid neighbours (forward then backward
//! substitution). The skeleton issues, per phase, one forward and one
//! backward exchange carrying the phase's aggregate face volume
//! (`5 doubles × N²/p` bytes per direction), with the NPB flop budget
//! spread over the iteration — the pattern of moderately large
//! nearest-neighbour messages separated by compute that makes BT the
//! paper's bandwidth/compute stress test.

use ftmpi_mpi::{app_fn, AppFn, Rank};

use crate::machine::Machine;
use crate::params::BtParams;
use crate::{NasClass, Workload};

/// Cap on *simulated* pipeline stages per sweep. The multi-partition sweep
/// has p−1 physical stages; beyond this cap, consecutive stages are batched
/// (message sizes scale up so the per-phase volume is exact, while the
/// per-stage latency count saturates). Keeps the event count of very large
/// jobs (p up to 23 on the grid) tractable on one host; raise it for
/// full-fidelity latency studies.
pub const MAX_SIM_STAGES: usize = 8;

/// Is `p` a valid BT process count (a perfect square)?
pub fn valid_procs(p: usize) -> bool {
    let r = (p as f64).sqrt().round() as usize;
    r * r == p && p > 0
}

/// The square process counts in `lo..=hi` (experiment sweeps).
pub fn square_sizes(lo: usize, hi: usize) -> Vec<usize> {
    (1..)
        .map(|k| k * k)
        .skip_while(|&s| s < lo)
        .take_while(|&s| s <= hi)
        .collect()
}

/// Per-rank checkpoint image size: base runtime footprint plus this rank's
/// share of the solution/RHS/metric arrays (≈ 40 doubles per grid point).
pub fn image_bytes(class: NasClass, nprocs: usize) -> u64 {
    let p = BtParams::of(class);
    let points = p.problem_size.pow(3);
    let data = points * 40 * 8 / nprocs as u64;
    30_000_000 + data
}

/// Build the BT application for `nprocs` ranks.
pub fn app(class: NasClass, nprocs: usize, machine: Machine) -> AppFn {
    assert!(
        valid_procs(nprocs),
        "BT requires a square number of processes, got {nprocs}"
    );
    let params = BtParams::of(class);
    let p = (nprocs as f64).sqrt().round() as usize; // grid side
    let n = params.problem_size;
    // Per physical pipeline stage, one cell face travels: 5 doubles per
    // face point over an (N/p)² face. Simulated stages batch the physical
    // ones beyond MAX_SIM_STAGES, preserving total volume.
    let phys_stages = p.saturating_sub(1); // multi-partition sweep depth
    let stages = phys_stages.min(MAX_SIM_STAGES);
    let stage_bytes = if stages == 0 {
        64
    } else {
        (5 * 8 * (n / p as u64).max(1).pow(2) * phys_stages as u64 / stages as u64).max(64)
    };
    let flops_per_iter = params.total_flops / (params.niter as f64 * nprocs as f64);
    let niter = params.niter as usize;

    app_fn(move |mut mpi| async move {
        let me = mpi.rank();
        let (row, col) = (me / p, me % p);
        let at = |r: usize, c: usize| -> Rank { (r % p) * p + (c % p) };
        // Sweep partners: x along the row, y along the column, z along the
        // cell diagonal (multi-partition successor).
        let x_next = at(row, col + 1);
        let x_prev = at(row, col + p - 1);
        let y_next = at(row + 1, col);
        let y_prev = at(row + p - 1, col);
        let z_next = at(row + 1, col + 1);
        let z_prev = at(row + p - 1, col + p - 1);

        let t_rhs = machine.time_for(flops_per_iter * 0.4);
        let t_solve = machine.time_for(flops_per_iter * 0.2);
        // Each sweep direction interleaves compute slices with its pipeline
        // stages (forward then backward substitution).
        let t_slice = if stages > 0 {
            t_solve / (2 * stages as u64)
        } else {
            t_solve
        };

        for iter in 0..niter {
            let tag = (iter % 500) as i32 * 2;
            mpi.compute(t_rhs);
            for &(next, prev) in &[(x_next, x_prev), (y_next, y_prev), (z_next, z_prev)] {
                if stages == 0 {
                    mpi.compute(t_solve);
                    continue;
                }
                // Forward substitution: recv from prev, send to next, one
                // cell per stage (multi-partition keeps every rank busy).
                for _ in 0..stages {
                    mpi.shift(next, prev, tag, stage_bytes).await;
                    mpi.compute(t_slice);
                }
                // Backward substitution runs the pipeline in reverse.
                for _ in 0..stages {
                    mpi.shift(prev, next, tag + 1, stage_bytes).await;
                    mpi.compute(t_slice);
                }
            }
        }
        // Verification step: a reduction of the residual norms.
        mpi.allreduce(5 * 8).await;
        mpi
    })
}

/// BT as a [`Workload`].
pub fn workload(class: NasClass, nprocs: usize, machine: Machine) -> Workload {
    Workload {
        name: format!("bt.{}.{}", class.letter(), nprocs),
        app: app(class, nprocs, machine),
        image_bytes: image_bytes(class, nprocs),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn square_validation() {
        assert!(valid_procs(1));
        assert!(valid_procs(64));
        assert!(valid_procs(529));
        assert!(!valid_procs(50));
        assert_eq!(square_sizes(4, 36), vec![4, 9, 16, 25, 36]);
    }

    #[test]
    fn image_size_shrinks_with_more_ranks() {
        assert!(image_bytes(NasClass::B, 4) > image_bytes(NasClass::B, 64));
        // But never below the base runtime footprint.
        assert!(image_bytes(NasClass::B, 1024) >= 30_000_000);
    }

    #[test]
    #[should_panic(expected = "square")]
    fn non_square_rejected() {
        app(NasClass::S, 6, Machine::default());
    }
}
