//! LU (SSOR) skeleton.
//!
//! NPB LU runs on a 2D process grid and performs SSOR sweeps whose lower-
//! and upper-triangular solves propagate as *wavefronts*: each rank
//! receives thin pencil messages from its north/west neighbours, computes,
//! and forwards south/east — many small messages with tight dependencies.

use ftmpi_mpi::{app_fn, AppFn};

use crate::machine::Machine;
use crate::params::LuParams;
use crate::{NasClass, Workload};

/// LU accepts any process count ≥ 1; NPB factors it into a near-square
/// grid (power-of-two in the original; we accept rectangles).
pub fn grid(p: usize) -> (usize, usize) {
    assert!(p > 0);
    let mut rows = (p as f64).sqrt().floor() as usize;
    while !p.is_multiple_of(rows) {
        rows -= 1;
    }
    (rows, p / rows)
}

/// Per-rank checkpoint image size.
pub fn image_bytes(class: NasClass, nprocs: usize) -> u64 {
    let p = LuParams::of(class);
    30_000_000 + p.problem_size.pow(3) * 25 * 8 / nprocs as u64
}

/// Build the LU application.
pub fn app(class: NasClass, nprocs: usize, machine: Machine) -> AppFn {
    let params = LuParams::of(class);
    let (rows, cols) = grid(nprocs);
    let n = params.problem_size;
    // Pencil exchanged per wavefront block: 5 doubles × (N/side) × nz-block.
    let pencil = (5 * 8 * n / rows.max(1) as u64 * 8).max(64);
    let flops_per_iter = params.total_flops / (params.niter as f64 * nprocs as f64);
    let niter = params.niter as usize;

    app_fn(move |mut mpi| async move {
        let me = mpi.rank();
        let (r, c) = (me / cols, me % cols);
        let north = if r > 0 { Some(me - cols) } else { None };
        let south = if r + 1 < rows { Some(me + cols) } else { None };
        let west = if c > 0 { Some(me - 1) } else { None };
        let east = if c + 1 < cols { Some(me + 1) } else { None };
        let t_block = machine.time_for(flops_per_iter / 4.0);
        for iter in 0..niter {
            let tag = (iter % 1000) as i32;
            // Lower-triangular sweep: wavefront from the north-west.
            if let Some(n) = north {
                mpi.recv(Some(n), Some(tag)).await;
            }
            if let Some(w) = west {
                mpi.recv(Some(w), Some(tag)).await;
            }
            mpi.compute(t_block * 2);
            if let Some(s) = south {
                mpi.send(s, tag, pencil).await;
            }
            if let Some(e) = east {
                mpi.send(e, tag, pencil).await;
            }
            // Upper-triangular sweep: wavefront from the south-east.
            let utag = tag + 1000;
            if let Some(s) = south {
                mpi.recv(Some(s), Some(utag)).await;
            }
            if let Some(e) = east {
                mpi.recv(Some(e), Some(utag)).await;
            }
            mpi.compute(t_block * 2);
            if let Some(n) = north {
                mpi.send(n, utag, pencil).await;
            }
            if let Some(w) = west {
                mpi.send(w, utag, pencil).await;
            }
        }
        mpi.allreduce(5 * 8).await;
        mpi
    })
}

/// LU as a [`Workload`].
pub fn workload(class: NasClass, nprocs: usize, machine: Machine) -> Workload {
    Workload {
        name: format!("lu.{}.{}", class.letter(), nprocs),
        app: app(class, nprocs, machine),
        image_bytes: image_bytes(class, nprocs),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_factorization() {
        assert_eq!(grid(1), (1, 1));
        assert_eq!(grid(4), (2, 2));
        assert_eq!(grid(6), (2, 3));
        assert_eq!(grid(8), (2, 4));
        assert_eq!(grid(7), (1, 7));
    }
}
