//! FT (3D FFT) skeleton — the all-to-all stress pattern.
//!
//! NPB FT transposes a 3D array between pencil decompositions every
//! iteration: one large `alltoall` whose aggregate volume is the whole
//! dataset. (Named `ftb` to avoid clashing with the crate prefix.)

use ftmpi_mpi::{app_fn, AppFn};

use crate::machine::Machine;
use crate::params::FtParams;
use crate::{NasClass, Workload};

/// Per-rank checkpoint image size.
pub fn image_bytes(class: NasClass, nprocs: usize) -> u64 {
    let p = FtParams::of(class);
    // Complex doubles, two copies of the dataset.
    30_000_000 + p.nx.pow(3) * 16 * 2 / nprocs as u64
}

/// Build the FT application.
pub fn app(class: NasClass, nprocs: usize, machine: Machine) -> AppFn {
    let params = FtParams::of(class);
    let dataset = params.nx.pow(3) * 16; // complex doubles
    let block = (dataset / (nprocs as u64 * nprocs as u64)).max(64);
    let flops_per_iter = params.total_flops / (params.niter as f64 * nprocs as f64);
    let niter = params.niter as usize;

    app_fn(move |mut mpi| async move {
        let t_fft = machine.time_for(flops_per_iter);
        for _ in 0..niter {
            mpi.compute(t_fft);
            // Global transpose.
            mpi.alltoall(block).await;
            // Checksum reduction.
            mpi.allreduce(16).await;
        }
        mpi
    })
}

/// FT as a [`Workload`].
pub fn workload(class: NasClass, nprocs: usize, machine: Machine) -> Workload {
    Workload {
        name: format!("ft.{}.{}", class.letter(), nprocs),
        app: app(class, nprocs, machine),
        image_bytes: image_bytes(class, nprocs),
    }
}
