//! The runtime core: per-rank state, the matching engine, and message
//! injection/delivery mechanics shared by all protocols.

use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Weak};

use parking_lot::Mutex;

use ftmpi_net::{NetModel, NodeId};
use ftmpi_sim::{Pid, Reply, SimCtx, SimDuration, SimTime};

use crate::config::RuntimeConfig;
use crate::placement::Placement;
use crate::types::{AppMsg, Rank, RecvInfo, Tag};
use crate::world::World;

/// Life-cycle state of a rank.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RankStatus {
    /// Application code running (or parked in the library).
    Running,
    /// Application code returned (reached finalize).
    Finished,
    /// Killed by a failure and not yet restarted.
    Dead,
}

/// Where a matched message should be delivered.
pub(crate) enum RecvSink {
    /// A blocking receive: complete the parked application thread.
    Blocking(Reply<RecvInfo>),
    /// A nonblocking request: fill the request slot (and wake a waiter).
    Request(u64),
}

pub(crate) struct PostedRecv {
    pub src: Option<Rank>,
    pub tag: Option<Tag>,
    pub sink: RecvSink,
    /// Extra completion delay (fork pauses, progress-engine drag) charged
    /// to the operation that posted this receive.
    pub delay: SimDuration,
}

#[derive(Default)]
pub(crate) struct ReqState {
    /// Completion record: receive info, completion time, and the matched
    /// message with its arrival index (needed to snapshot still-unconsumed
    /// messages into checkpoint images).
    pub done: Option<DoneRec>,
    /// Application thread parked in `wait` on this request.
    pub waiter: Option<Reply<RecvInfo>>,
}

pub(crate) struct DoneRec {
    pub info: RecvInfo,
    pub at: SimTime,
    pub arrival_idx: u64,
    pub msg: AppMsg,
}

/// Per-rank runtime state.
pub struct RankState {
    /// Node hosting this rank.
    pub node: NodeId,
    /// Simulated process currently running the rank (None between restarts).
    pub pid: Option<Pid>,
    /// Life-cycle state.
    pub status: RankStatus,
    /// Completed application operations (kernel-interacting ops only);
    /// recorded into checkpoint images.
    pub ops_completed: u64,
    /// Local time of the rank's most recent runtime interaction.
    pub last_entry: SimTime,
    /// True while the rank's thread is parked inside a blocking op —
    /// i.e. the progress engine is running and control traffic can be
    /// handled immediately (relevant to the blocking protocol).
    pub blocked_in_lib: bool,
    /// Ops to skip-replay after a restart (0 in normal operation).
    pub skip_ops: u64,
    /// Compute time already performed before the checkpoint within the
    /// first non-skipped compute phases (credited back on replay).
    pub time_credit: SimDuration,
    /// One-shot delay added to the rank's next operation (fork pauses).
    pub pending_penalty: SimDuration,
    /// Standing per-operation delay while the rank's progress engine is
    /// time-shared with a checkpoint image stream (blocking protocol).
    pub op_drag: SimDuration,
    /// Matching engine: receives posted and waiting for a message.
    pub(crate) posted: VecDeque<PostedRecv>,
    /// Matching engine: arrived messages not yet matched, with their
    /// arrival indices.
    pub(crate) unexpected: VecDeque<(u64, AppMsg)>,
    /// Monotonic per-rank arrival counter (orders image snapshots).
    pub(crate) arrival_counter: u64,
    /// Nonblocking request table.
    pub(crate) requests: HashMap<u64, ReqState>,
    pub(crate) next_req_id: u64,
    /// Next app sequence number per destination rank. Sparse: a missing
    /// entry means 0, so a rank only pays for peers it actually talks to —
    /// dense per-peer vectors are O(n²) across the job and at 10⁵ ranks
    /// would dwarf every other runtime structure.
    pub(crate) next_seq_to: HashMap<Rank, u64>,
    /// Next expected sequence number per source rank (duplicate
    /// suppression for single-rank-restart protocols; only consulted when
    /// `RuntimeCore::suppress_duplicate_seq` is set). Sparse like
    /// `next_seq_to`: a missing entry means 0.
    pub(crate) expect_seq_from: HashMap<Rank, u64>,
    /// Local time at which the rank posted its current blocking operation
    /// (valid while `blocked_in_lib`); bounds checkpoint time credits.
    pub last_post: SimTime,
    /// Bumped on every (global or single-rank) restart of this rank; lets
    /// per-rank timers and in-flight per-rank events detect staleness.
    pub incarnation: u64,
}

impl RankState {
    fn new(node: NodeId) -> RankState {
        RankState {
            node,
            pid: None,
            status: RankStatus::Running,
            ops_completed: 0,
            last_entry: SimTime::ZERO,
            blocked_in_lib: false,
            skip_ops: 0,
            time_credit: SimDuration::ZERO,
            pending_penalty: SimDuration::ZERO,
            op_drag: SimDuration::ZERO,
            posted: VecDeque::new(),
            unexpected: VecDeque::new(),
            arrival_counter: 0,
            requests: HashMap::new(),
            next_req_id: 0,
            next_seq_to: HashMap::new(),
            expect_seq_from: HashMap::new(),
            last_post: SimTime::ZERO,
            incarnation: 0,
        }
    }

    /// One-line state dump for diagnostics.
    pub fn debug_summary(&self) -> String {
        let unexp: Vec<String> = self
            .unexpected
            .iter()
            .take(4)
            .map(|(_, m)| format!("({}t{}#{})", m.src, m.tag, m.seq))
            .collect();
        let posted: Vec<String> = self
            .posted
            .iter()
            .take(4)
            .map(|p| format!("({:?} t{:?})", p.src, p.tag))
            .collect();
        format!(
            "{:?} ops={} skip={} blocked={} unexpected={}{:?} posted={}{:?} reqs={}",
            self.status,
            self.ops_completed,
            self.skip_ops,
            self.blocked_in_lib,
            self.unexpected.len(),
            unexp,
            self.posted.len(),
            posted,
            self.requests.len()
        )
    }

    /// Reset communication state for a restart, keeping node assignment.
    /// `skip_ops` and `time_credit` come from the restored image.
    pub fn reset_for_restart(&mut self, skip_ops: u64, time_credit: SimDuration) {
        self.pid = None;
        self.status = RankStatus::Running;
        // Operation counting stays aligned with the application's total
        // logical progress: skip-replayed ops never reach the kernel, so
        // the counter resumes from the restored baseline. (A checkpoint
        // taken after this restart must record total progress, or a later
        // restore from it would roll the rank back to the wrong point.)
        self.ops_completed = skip_ops;
        self.blocked_in_lib = false;
        self.skip_ops = skip_ops;
        self.time_credit = time_credit;
        self.pending_penalty = SimDuration::ZERO;
        self.op_drag = SimDuration::ZERO;
        self.posted.clear();
        self.unexpected.clear();
        self.requests.clear();
        self.next_req_id = 0;
        self.incarnation += 1;
        self.next_seq_to.clear();
        // `expect_seq_from` is deliberately *not* reset: duplicate
        // suppression must remember what was delivered before the restart
        // (single-rank-restart protocols restore the watermarks from the
        // image; the coordinated protocols never enable suppression).
    }
}

/// Counters accumulated over a run.
#[derive(Debug, Default, Clone)]
pub struct RuntimeStats {
    /// Application messages injected into the network.
    pub msgs_sent: u64,
    /// Application bytes injected.
    pub bytes_sent: u64,
    /// Application messages delivered to the matching engine.
    pub msgs_delivered: u64,
    /// Ranks that reached finalize in the current epoch.
    pub finished_ranks: usize,
    /// Virtual time at which all ranks finished (job completion).
    pub completion_time: Option<SimTime>,
    /// Number of failure-restarts performed.
    pub restarts: u64,
    /// Backoff probes scheduled because a checkpoint stream, control
    /// message, or restore fetch found its destination unreachable (link
    /// down or partition). Zero whenever no network faults are scheduled.
    pub link_retries: u64,
}

/// Regression fixtures for the schedule explorer: each re-opens one of the
/// two real races PR 2's perturbation detector caught (and tiebreak lanes
/// fixed), so `ftmpi-check explore` can prove it rediscovers them and
/// minimizes a reproducer. Default `None` everywhere — ordinary runs never
/// take a fixture branch, keeping all figure outputs byte-identical.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RaceFixture {
    /// Schedule marker arrivals laneless: a marker racing a same-instant
    /// data delivery at one rank loses its defined channel order, flipping
    /// Vcl's logged-message set (the original race's symptom).
    LanelessMarkers,
    /// Start flows unstaggered and laneless: same-instant transfer starts
    /// on one server arbitrate in whatever order the scheduler picks,
    /// perturbing delivery timing (the original flow-arbitration race).
    UnstaggeredFlows,
}

/// The protocol-independent runtime: network, placement, ranks, stats.
pub struct RuntimeCore {
    /// The platform model.
    pub net: NetModel,
    /// Per-message software costs and stack selection.
    pub cfg: RuntimeConfig,
    /// Rank-to-node mapping.
    pub placement: Placement,
    /// Per-rank state, indexed by rank.
    pub ranks: Vec<RankState>,
    /// Job incarnation; bumped on every *global* failure-restart.
    pub epoch: u64,
    /// Drop application messages whose per-channel sequence number was
    /// already delivered (single-rank-restart protocols re-execute sends).
    pub suppress_duplicate_seq: bool,
    /// Counters.
    pub stats: RuntimeStats,
    /// First fatal error hit inside a scheduled event (failure-path routing
    /// bugs that have no caller to return to). The runner surfaces it as a
    /// job error after the simulation drains.
    pub fatal_error: Option<String>,
    /// Active explorer regression fixture, if any (see [`RaceFixture`]).
    pub race_fixture: Option<RaceFixture>,
    /// Back-reference for scheduling world events from core methods.
    pub(crate) world: Weak<Mutex<World>>,
}

impl RuntimeCore {
    /// Build a runtime over a platform and placement.
    pub fn new(net: NetModel, placement: Placement, cfg: RuntimeConfig) -> RuntimeCore {
        let nranks = placement.ranks();
        let ranks = (0..nranks)
            .map(|r| RankState::new(placement.node_of(r)))
            .collect();
        RuntimeCore {
            net,
            cfg,
            placement,
            ranks,
            epoch: 0,
            suppress_duplicate_seq: false,
            stats: RuntimeStats::default(),
            fatal_error: None,
            race_fixture: None,
            world: Weak::new(),
        }
    }

    /// Record a fatal error (first one wins).
    pub fn record_fatal(&mut self, msg: &str) {
        self.fatal_error.get_or_insert_with(|| msg.to_string());
    }

    /// Number of ranks in the job.
    pub fn size(&self) -> usize {
        self.ranks.len()
    }

    /// Weak handle to the world, for scheduling events from protocol code.
    pub fn world_handle(&self) -> Weak<Mutex<World>> {
        self.world.clone()
    }

    /// Has the job completed (all ranks finished)?
    pub fn job_complete(&self) -> bool {
        self.stats.completion_time.is_some()
    }

    /// Consume the rank's pending one-shot penalty (fork pause).
    pub fn take_penalty(&mut self, rank: Rank) -> SimDuration {
        std::mem::take(&mut self.ranks[rank].pending_penalty)
    }

    /// Add a one-shot penalty to the rank's next operation.
    pub fn add_penalty(&mut self, rank: Rank, d: SimDuration) {
        self.ranks[rank].pending_penalty += d;
    }

    /// Inject an application message into the network and schedule its
    /// arrival at the destination runtime. Also used by protocols to release
    /// held (delayed) sends.
    pub fn launch_send(&mut self, sc: &SimCtx, msg: AppMsg) {
        self.stats.msgs_sent += 1;
        self.stats.bytes_sent += msg.bytes;
        sc.trace_proto(ftmpi_sim::ProtoEvent::Send {
            src: msg.src,
            dst: msg.dst,
            seq: msg.seq,
            bytes: msg.bytes,
            epoch: msg.epoch,
        });
        let src_node = self.placement.node_of(msg.src);
        let dst_node = self.placement.node_of(msg.dst);
        let penalty = self.cfg.profile.message_penalty(msg.bytes);
        let delivery =
            self.net
                .transfer_with_overhead(src_node, dst_node, msg.bytes, sc.now(), penalty);
        let arrive_at = delivery.delivered;
        let world = self.world.clone();
        let epoch = self.epoch;
        // Keyed by the destination process: a data arrival racing a marker
        // or wakeup at the same rank has defined order (channel FIFO), which
        // the tiebreak perturbation must not scramble.
        let lane = self.ranks[msg.dst].pid.map(ftmpi_sim::Pid::lane);
        sc.schedule_keyed(arrive_at, lane, move |sc| {
            let Some(world) = world.upgrade() else { return };
            let mut w = world.lock();
            if w.rt.epoch != epoch {
                return; // in-flight message from before a restart
            }
            w.handle_arrival(sc, msg);
        });
    }

    /// Hand an arrived (or replayed) message to the matching engine,
    /// bypassing protocol hooks. Completion replies fire at
    /// `now + recv_overhead`.
    pub fn deliver_to_matching(&mut self, sc: &SimCtx, msg: AppMsg) {
        if self.suppress_duplicate_seq {
            let rank = &mut self.ranks[msg.dst];
            let e = rank.expect_seq_from.entry(msg.src).or_insert(0);
            if msg.seq < *e {
                return; // replayed duplicate of an already-delivered message
            }
            *e = msg.seq + 1;
        }
        self.stats.msgs_delivered += 1;
        sc.trace_proto(ftmpi_sim::ProtoEvent::Deliver {
            src: msg.src,
            dst: msg.dst,
            seq: msg.seq,
            epoch: msg.epoch,
        });
        let o_recv = self.cfg.profile.recv_overhead;
        let rank = &mut self.ranks[msg.dst];
        let arrival_idx = rank.arrival_counter;
        rank.arrival_counter += 1;
        // Find the first posted receive matching (src, tag), in post order.
        let pos = rank.posted.iter().position(|p| {
            p.src.map(|s| s == msg.src).unwrap_or(true)
                && p.tag.map(|t| t == msg.tag).unwrap_or(true)
        });
        let info = RecvInfo {
            src: msg.src,
            tag: msg.tag,
            bytes: msg.bytes,
        };
        match pos {
            None => rank.unexpected.push_back((arrival_idx, msg)),
            Some(i) => {
                let posted = rank.posted.remove(i).expect("index valid");
                let complete_at = sc.now() + o_recv + posted.delay;
                match posted.sink {
                    RecvSink::Blocking(reply) => {
                        // The blocking-recv op completes here.
                        rank.ops_completed += 1;
                        rank.last_entry = complete_at;
                        rank.blocked_in_lib = false;
                        reply.complete_at(sc, complete_at, info);
                    }
                    RecvSink::Request(req_id) => {
                        let req = rank.requests.entry(req_id).or_default();
                        let had_waiter = req.waiter.is_some();
                        req.done = Some(DoneRec {
                            info,
                            at: complete_at,
                            arrival_idx,
                            msg,
                        });
                        if had_waiter {
                            // The parked wait op completes here.
                            let req = rank.requests.remove(&req_id).expect("present");
                            let waiter = req.waiter.expect("had waiter");
                            rank.ops_completed += 1;
                            rank.last_entry = complete_at;
                            rank.blocked_in_lib = false;
                            waiter.complete_at(sc, complete_at, info);
                        }
                    }
                }
            }
        }
    }

    /// Deliver a message restored from a checkpoint image or log: bypasses
    /// duplicate suppression (the message predates the tracking state being
    /// rebuilt) while still advancing the expected-sequence watermark so
    /// later *network* duplicates are caught.
    pub fn inject_restored(&mut self, sc: &SimCtx, msg: AppMsg) {
        sc.trace_proto(ftmpi_sim::ProtoEvent::Replay {
            src: msg.src,
            dst: msg.dst,
            seq: msg.seq,
            epoch: msg.epoch,
        });
        {
            let rank = &mut self.ranks[msg.dst];
            let e = rank.expect_seq_from.entry(msg.src).or_insert(0);
            *e = (*e).max(msg.seq + 1);
        }
        let suppress = std::mem::replace(&mut self.suppress_duplicate_seq, false);
        self.deliver_to_matching(sc, msg);
        self.suppress_duplicate_seq = suppress;
    }

    /// Compute the time credit to record in a checkpoint image: the local
    /// compute the rank performed after its last completed operation. A
    /// rank parked in a blocking op has done nothing since it *posted*
    /// that op, so the credit is bounded by the posting time — waiting
    /// time is not compute.
    pub fn capture_credit(&self, rank: Rank, now: SimTime) -> SimDuration {
        let rs = &self.ranks[rank];
        if rs.blocked_in_lib {
            rs.last_post.saturating_since(rs.last_entry)
        } else {
            now.saturating_since(rs.last_entry)
        }
    }

    /// Current duplicate-suppression watermarks of a rank (image capture).
    /// Sparse and sorted by peer so images are deterministic byte-for-byte.
    pub fn expect_seq_snapshot(&self, rank: Rank) -> Vec<(Rank, u64)> {
        sorted_seq_pairs(&self.ranks[rank].expect_seq_from)
    }

    /// Current per-destination send sequence counters (image capture —
    /// restored so a rolled-back rank's re-executed sends continue the
    /// sequence its peers already advanced through). Sparse and sorted.
    pub fn send_seq_snapshot(&self, rank: Rank) -> Vec<(Rank, u64)> {
        sorted_seq_pairs(&self.ranks[rank].next_seq_to)
    }

    /// Restore per-destination send sequence counters (image restore).
    pub fn set_send_seq(&mut self, rank: Rank, counters: Vec<(Rank, u64)>) {
        self.ranks[rank].next_seq_to = counters.into_iter().collect();
    }

    /// Restore duplicate-suppression watermarks (image restore).
    pub fn set_expect_seq(&mut self, rank: Rank, watermarks: Vec<(Rank, u64)>) {
        self.ranks[rank].expect_seq_from = watermarks.into_iter().collect();
    }

    /// Snapshot messages that reached this rank's runtime but have not been
    /// consumed by the application: the unexpected queue plus messages
    /// matched to nonblocking requests whose `wait` has not completed.
    /// These belong to a system-level checkpoint image (daemon / library
    /// memory) and are re-injected at restart, in arrival order.
    pub fn snapshot_pending(&self, rank: Rank) -> Vec<AppMsg> {
        let r = &self.ranks[rank];
        let mut pending: Vec<(u64, AppMsg)> = r.unexpected.iter().cloned().collect();
        for req in r.requests.values() {
            if let Some(done) = &req.done {
                pending.push((done.arrival_idx, done.msg.clone()));
            }
        }
        pending.sort_by_key(|(idx, _)| *idx);
        pending.into_iter().map(|(_, m)| m).collect()
    }

    /// Post a receive: match an already-arrived message or queue the sink.
    /// Returns true if the receive completed immediately.
    pub(crate) fn post_recv_sink(
        &mut self,
        sc: &SimCtx,
        dst: Rank,
        src: Option<Rank>,
        tag: Option<Tag>,
        sink: RecvSink,
        delay: SimDuration,
    ) -> bool {
        let o_recv = self.cfg.profile.recv_overhead + delay;
        let rank = &mut self.ranks[dst];
        let pos = rank.unexpected.iter().position(|(_, m)| {
            src.map(|s| s == m.src).unwrap_or(true) && tag.map(|t| t == m.tag).unwrap_or(true)
        });
        match pos {
            Some(i) => {
                let (arrival_idx, msg) = rank.unexpected.remove(i).expect("index valid");
                let info = RecvInfo {
                    src: msg.src,
                    tag: msg.tag,
                    bytes: msg.bytes,
                };
                let complete_at = sc.now() + o_recv;
                match sink {
                    RecvSink::Blocking(reply) => {
                        rank.ops_completed += 1;
                        rank.last_entry = complete_at;
                        reply.complete_at(sc, complete_at, info);
                    }
                    RecvSink::Request(req_id) => {
                        // The irecv op is counted by its posting handler;
                        // the completion record waits for a later `wait`.
                        let req = rank.requests.entry(req_id).or_default();
                        req.done = Some(DoneRec {
                            info,
                            at: complete_at,
                            arrival_idx,
                            msg,
                        });
                    }
                }
                true
            }
            None => {
                rank.posted.push_back(PostedRecv {
                    src,
                    tag,
                    sink,
                    delay,
                });
                false
            }
        }
    }

    /// Post-run audit: `(unconsumed arrived messages, unmatched posted
    /// receives)` across all ranks. Both are zero after a clean run of a
    /// well-formed application — including runs with failure-restarts,
    /// where nonzero values indicate a broken recovery cut.
    pub fn leftover_messages(&self) -> (usize, usize) {
        let unexpected = self.ranks.iter().map(|r| r.unexpected.len()).sum();
        let posted = self.ranks.iter().map(|r| r.posted.len()).sum();
        (unexpected, posted)
    }

    /// Next per-channel sequence number for `src → dst`.
    pub(crate) fn next_seq(&mut self, src: Rank, dst: Rank) -> u64 {
        let s = self.ranks[src].next_seq_to.entry(dst).or_insert(0);
        let v = *s;
        *s += 1;
        v
    }
}

/// Flatten a sparse per-peer counter map into `(peer, value)` pairs sorted
/// by peer, dropping zero entries (a missing key already means 0). Sorting
/// keeps image contents independent of hash-map iteration order.
fn sorted_seq_pairs(map: &HashMap<Rank, u64>) -> Vec<(Rank, u64)> {
    let mut pairs: Vec<(Rank, u64)> = map
        .iter()
        .filter(|(_, &v)| v != 0)
        .map(|(&k, &v)| (k, v))
        .collect();
    pairs.sort_unstable();
    pairs
}

/// Cheap handle pattern: `Arc<Mutex<World>>` with a weak back-reference
/// inside, created by [`World::new_ref`](crate::world::World::new_ref).
pub(crate) fn _assert_send<T: Send>() {}
const _: () = {
    fn _check() {
        _assert_send::<Arc<Mutex<World>>>();
    }
};
