//! The shared world: runtime core + protocol engine behind one lock, plus
//! the application-operation entry points and rank process spawning.

use std::sync::Arc;

use parking_lot::Mutex;

use ftmpi_sim::{Reply, SimCtx, SimDuration, SimTime};

use crate::handle::Mpi;
use crate::protocol::{ArrivalAction, Protocol, SendAction};
use crate::runtime::{RankStatus, RecvSink, RuntimeCore};
use crate::types::{AppMsg, Rank, RecvInfo, Tag};

/// Shared mutable simulation state: the runtime core and the protocol.
///
/// Kept as two fields so protocol hooks can borrow the core mutably while
/// the protocol itself is borrowed (`let World { rt, proto } = ...`).
pub struct World {
    /// Protocol-independent runtime state.
    pub rt: RuntimeCore,
    /// The fault-tolerance protocol engine.
    pub proto: Box<dyn Protocol>,
}

/// Shared handle to the world.
pub type WorldRef = Arc<Mutex<World>>;

/// The future returned by one invocation of a rank's application function.
pub type AppFuture = std::pin::Pin<Box<dyn std::future::Future<Output = Mpi> + Send>>;

/// A rank's application function (shared so restarts can respawn it).
///
/// The function takes ownership of the rank's [`Mpi`] handle and returns it
/// when the application code completes; the rank trampoline then finalizes.
/// Build one with [`app_fn`], which boxes an ordinary `async` closure body:
///
/// ```ignore
/// let app = app_fn(move |mut mpi| async move {
///     mpi.barrier().await;
///     mpi
/// });
/// ```
pub type AppFn = Arc<dyn Fn(Mpi) -> AppFuture + Send + Sync>;

/// Wrap an async application body as an [`AppFn`].
pub fn app_fn<F, Fut>(f: F) -> AppFn
where
    F: Fn(Mpi) -> Fut + Send + Sync + 'static,
    Fut: std::future::Future<Output = Mpi> + Send + 'static,
{
    Arc::new(move |mpi| Box::pin(f(mpi)))
}

impl World {
    /// Build the world and wire the internal back-reference used to
    /// schedule arrival events.
    pub fn new_ref(mut rt: RuntimeCore, proto: Box<dyn Protocol>) -> WorldRef {
        rt.world = std::sync::Weak::new(); // placeholder; set below
        let world = Arc::new(Mutex::new(World { rt, proto }));
        world.lock().rt.world = Arc::downgrade(&world);
        world
    }

    /// Common prologue of every application operation: consume pending
    /// penalties (fork pauses) and run the protocol's runtime-entry hook.
    /// Returns the penalty to add to the op's completion time.
    fn op_entry(&mut self, sc: &SimCtx, rank: Rank) -> SimDuration {
        // Hook first: a checkpoint taken on entry adds its fork pause to the
        // pending penalty, which this op then absorbs.
        self.proto.on_runtime_entry(&mut self.rt, sc, rank);
        self.rt.take_penalty(rank) + self.rt.ranks[rank].op_drag
    }

    /// Public runtime-entry notification (used by trivially-completing ops
    /// like waits on already-complete requests).
    pub fn proto_entry(&mut self, sc: &SimCtx, rank: Rank) {
        let penalty = self.op_entry(sc, rank);
        if !penalty.is_zero() {
            // This op completes instantly; the pending pause carries over.
            self.rt.add_penalty(rank, penalty);
        }
        let r = &mut self.rt.ranks[rank];
        r.ops_completed += 1;
        r.last_entry = sc.now();
    }

    /// An application message arrived at its destination's runtime.
    pub fn handle_arrival(&mut self, sc: &SimCtx, msg: AppMsg) {
        if self.rt.ranks[msg.dst].status == RankStatus::Dead {
            return; // message raced with a failure; dropped with the socket
        }
        match self.proto.on_arrival(&mut self.rt, sc, &msg) {
            ArrivalAction::Deliver => self.rt.deliver_to_matching(sc, msg),
            ArrivalAction::Hold => {}
        }
    }

    /// Application blocking send (eager/buffered semantics: completes once
    /// the message is handed to the communication layer).
    pub fn post_send(
        &mut self,
        sc: &SimCtx,
        src: Rank,
        dst: Rank,
        tag: Tag,
        bytes: u64,
        reply: Reply<()>,
    ) {
        let penalty = self.op_entry(sc, src);
        let o_send = self.rt.cfg.profile.send_overhead + penalty;
        let seq = self.rt.next_seq(src, dst);
        let msg = AppMsg {
            src,
            dst,
            tag,
            bytes,
            seq,
            epoch: self.rt.epoch,
            posted_at: sc.now(),
        };
        let complete_at = sc.now() + o_send;
        {
            let r = &mut self.rt.ranks[src];
            r.ops_completed += 1;
            r.last_entry = complete_at;
        }
        match self.proto.on_send_post(&mut self.rt, sc, &msg) {
            SendAction::Proceed => self.rt.launch_send(sc, msg),
            SendAction::Hold => {}
        }
        reply.complete_at(sc, complete_at, ());
    }

    /// Fused shift operation: send `bytes` to `to` and receive a message
    /// from `from` with the same tag, as a single runtime operation. This
    /// is the hot pattern of pipelined sweeps and ring collectives; fusing
    /// it keeps large simulations to one kernel interaction per stage.
    #[allow(clippy::too_many_arguments)]
    pub fn post_shift(
        &mut self,
        sc: &SimCtx,
        me: Rank,
        to: Rank,
        from: Rank,
        tag: Tag,
        bytes: u64,
        reply: Reply<RecvInfo>,
    ) {
        // A shift stands for two MPI calls (send + recv): it pays the
        // standing per-operation drag twice so fusing operations does not
        // dilute progress-engine sharing costs. The penalty lands on this
        // shift's own completion.
        let penalty = self.op_entry(sc, me) + self.rt.ranks[me].op_drag;
        let seq = self.rt.next_seq(me, to);
        let msg = AppMsg {
            src: me,
            dst: to,
            tag,
            bytes,
            seq,
            epoch: self.rt.epoch,
            posted_at: sc.now(),
        };
        match self.proto.on_send_post(&mut self.rt, sc, &msg) {
            SendAction::Proceed => self.rt.launch_send(sc, msg),
            SendAction::Hold => {}
        }
        // The send half completes here (eager), the receive half when the
        // message arrives — two countable operations (see `Mpi::shift`).
        {
            let r = &mut self.rt.ranks[me];
            r.ops_completed += 1;
            r.last_entry = sc.now() + self.rt.cfg.profile.send_overhead;
        }
        let done = self.rt.post_recv_sink(
            sc,
            me,
            Some(from),
            Some(tag),
            RecvSink::Blocking(reply),
            penalty,
        );
        if !done {
            let r = &mut self.rt.ranks[me];
            r.blocked_in_lib = true;
            r.last_post = sc.now();
            self.proto.on_progress_poll(&mut self.rt, sc, me);
        }
    }

    /// Application blocking receive.
    pub fn post_recv_blocking(
        &mut self,
        sc: &SimCtx,
        dst: Rank,
        src: Option<Rank>,
        tag: Option<Tag>,
        reply: Reply<RecvInfo>,
    ) {
        let penalty = self.op_entry(sc, dst);
        let done = self
            .rt
            .post_recv_sink(sc, dst, src, tag, RecvSink::Blocking(reply), penalty);
        if !done {
            let r = &mut self.rt.ranks[dst];
            r.blocked_in_lib = true;
            r.last_post = sc.now();
            // The rank is now inside the progress engine: deferred control
            // traffic (blocking-protocol markers) can be handled.
            self.proto.on_progress_poll(&mut self.rt, sc, dst);
        }
    }

    /// Application nonblocking receive: registers a request and returns its
    /// id immediately.
    pub fn post_irecv(
        &mut self,
        sc: &SimCtx,
        dst: Rank,
        src: Option<Rank>,
        tag: Option<Tag>,
        reply: Reply<u64>,
    ) {
        let penalty = self.op_entry(sc, dst);
        let req_id = {
            let r = &mut self.rt.ranks[dst];
            let id = r.next_req_id;
            r.next_req_id += 1;
            r.requests.insert(id, Default::default());
            id
        };
        self.rt.post_recv_sink(
            sc,
            dst,
            src,
            tag,
            RecvSink::Request(req_id),
            SimDuration::ZERO,
        );
        let complete_at = sc.now() + self.rt.cfg.profile.recv_overhead + penalty;
        {
            let r = &mut self.rt.ranks[dst];
            r.ops_completed += 1;
            r.last_entry = complete_at;
        }
        reply.complete_at(sc, complete_at, req_id);
    }

    /// Application wait on a nonblocking receive request.
    pub fn wait_request(&mut self, sc: &SimCtx, rank: Rank, req_id: u64, reply: Reply<RecvInfo>) {
        let penalty = self.op_entry(sc, rank);
        let r = &mut self.rt.ranks[rank];
        let req = r
            .requests
            .get_mut(&req_id)
            .expect("wait on unknown request (application bug)");
        if let Some(done) = &req.done {
            let (info, done_at) = (done.info, done.at);
            r.requests.remove(&req_id);
            let complete_at = done_at.max(sc.now()) + penalty;
            r.ops_completed += 1;
            r.last_entry = complete_at;
            reply.complete_at(sc, complete_at, info);
        } else {
            req.waiter = Some(reply);
            r.blocked_in_lib = true;
            r.last_post = sc.now();
            if !penalty.is_zero() {
                // The wait completes on message arrival; carry the pause over.
                self.rt.add_penalty(rank, penalty);
            }
            self.proto.on_progress_poll(&mut self.rt, sc, rank);
        }
    }

    /// Rank finished its application code.
    pub fn mark_finished(&mut self, sc: &SimCtx, rank: Rank, reply: Reply<()>) {
        self.op_entry(sc, rank);
        let r = &mut self.rt.ranks[rank];
        if r.status == RankStatus::Running {
            r.status = RankStatus::Finished;
            self.rt.stats.finished_ranks += 1;
            if self.rt.stats.finished_ranks == self.rt.size() {
                self.rt.stats.completion_time = Some(sc.now());
            }
        }
        self.proto.on_rank_finished(&mut self.rt, sc, rank);
        reply.complete(sc, ());
    }
}

/// Spawn the simulated process running rank `rank` of the application.
///
/// The image parameters (`skip_ops`, `time_credit`) are read from the rank
/// state at spawn time: zero for an initial launch, restored values after a
/// failure-restart.
pub fn spawn_rank(sc: &SimCtx, world: &WorldRef, rank: Rank, app: AppFn) {
    let (size, skip_ops, time_credit, start_at) = {
        let w = world.lock();
        let r = &w.rt.ranks[rank];
        (w.rt.size(), r.skip_ops, r.time_credit, sc.now())
    };
    let world2 = Arc::clone(world);
    let pid = sc.spawn_at(start_at, format!("rank{rank}"), move |ctx| async move {
        let mpi = Mpi::new(ctx, world2, rank, size, skip_ops, time_credit);
        let mut mpi = app(mpi).await;
        mpi.finalize().await;
    });
    {
        let mut w = world.lock();
        let r = &mut w.rt.ranks[rank];
        r.pid = Some(pid);
        // The rank's activity clock starts now: a checkpoint captured
        // before its first operation must not credit pre-crash compute.
        r.last_entry = sc.now();
    }
}

/// Convenience for tests: synchronisation point recording a value.
pub(crate) fn _noop(_: SimTime) {}
