//! Runtime configuration.

use ftmpi_net::{SoftwareStack, StackProfile};

/// Parameters of the message-passing runtime.
#[derive(Debug, Clone)]
pub struct RuntimeConfig {
    /// Which software stack carries messages (selects per-message costs).
    pub stack: SoftwareStack,
    /// Resolved per-message cost profile (derived from `stack` by default).
    pub profile: StackProfile,
}

impl RuntimeConfig {
    /// Configuration for a given stack with its default cost profile.
    pub fn for_stack(stack: SoftwareStack) -> RuntimeConfig {
        RuntimeConfig {
            stack,
            profile: StackProfile::for_stack(stack),
        }
    }
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig::for_stack(SoftwareStack::TcpSock)
    }
}
