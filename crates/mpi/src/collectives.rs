//! Collective operations built over point-to-point messages.
//!
//! Algorithms follow the classic MPICH choices: binomial trees for
//! bcast/reduce, recursive doubling for power-of-two allreduce (reduce+bcast
//! otherwise), dissemination barrier, ring allgather, and pairwise
//! alltoall. Each collective instance draws a fresh tag block from the
//! rank-local collective round counter, so concurrent collectives cannot
//! cross-match (all ranks call collectives in the same order, as MPI
//! requires).
//!
//! Because collectives decompose into ordinary countable operations,
//! skip-replay after a restart works through them unchanged.

use crate::handle::Mpi;
use crate::types::{Rank, Tag};

/// Tags below this value are reserved for collectives.
const COLL_TAG_BASE: Tag = -1_000;
/// Distinct tag slots per collective instance.
const COLL_TAG_STRIDE: Tag = 8;

impl Mpi {
    /// A fresh tag for phase `phase` of the next collective instance.
    fn coll_tag(&self, phase: Tag) -> Tag {
        debug_assert!(phase < COLL_TAG_STRIDE);
        COLL_TAG_BASE - (self.coll_seq as Tag % 1_000_000) * COLL_TAG_STRIDE - phase
    }

    fn begin_coll(&mut self) -> u64 {
        let seq = self.coll_seq;
        self.coll_seq += 1;
        seq
    }

    /// Dissemination barrier: ceil(log2 n) rounds of pairwise exchange.
    pub async fn barrier(&mut self) {
        self.begin_coll();
        let n = self.size();
        if n <= 1 {
            return;
        }
        let me = self.rank();
        let tag = self.coll_tag(0);
        let mut dist = 1;
        while dist < n {
            let to = (me + dist) % n;
            let from = (me + n - dist) % n;
            self.shift(to, from, tag, 1).await;
            dist <<= 1;
        }
    }

    /// Binomial-tree broadcast of `bytes` from `root`.
    pub async fn bcast(&mut self, root: Rank, bytes: u64) {
        self.begin_coll();
        let n = self.size();
        if n <= 1 {
            return;
        }
        let me = self.rank();
        let tag = self.coll_tag(1);
        let vrank = (me + n - root) % n;
        let mut mask = 1usize;
        while mask < n {
            if vrank & mask != 0 {
                let vsrc = vrank - mask;
                self.recv(Some((vsrc + root) % n), Some(tag)).await;
                break;
            }
            mask <<= 1;
        }
        mask >>= 1;
        while mask > 0 {
            if vrank + mask < n && vrank & (mask - 1) == 0 && vrank & mask == 0 {
                let vdst = vrank + mask;
                self.send((vdst + root) % n, tag, bytes).await;
            }
            mask >>= 1;
        }
    }

    /// Binomial-tree reduction of `bytes` to `root`.
    pub async fn reduce(&mut self, root: Rank, bytes: u64) {
        self.begin_coll();
        let n = self.size();
        if n <= 1 {
            return;
        }
        let me = self.rank();
        let tag = self.coll_tag(2);
        let vrank = (me + n - root) % n;
        let mut mask = 1usize;
        while mask < n {
            if vrank & mask == 0 {
                let vsrc = vrank + mask;
                if vsrc < n {
                    self.recv(Some((vsrc + root) % n), Some(tag)).await;
                }
            } else {
                let vdst = vrank - mask;
                self.send((vdst + root) % n, tag, bytes).await;
                break;
            }
            mask <<= 1;
        }
    }

    /// Allreduce of `bytes`: recursive doubling when the size is a power of
    /// two, reduce-to-0 + bcast otherwise.
    pub async fn allreduce(&mut self, bytes: u64) {
        let n = self.size();
        if n <= 1 {
            self.begin_coll();
            return;
        }
        if n.is_power_of_two() {
            self.begin_coll();
            let me = self.rank();
            let tag = self.coll_tag(3);
            let mut mask = 1usize;
            while mask < n {
                let partner = me ^ mask;
                self.exchange(partner, tag, bytes).await;
                mask <<= 1;
            }
        } else {
            self.reduce(0, bytes).await;
            self.bcast(0, bytes).await;
        }
    }

    /// Ring allgather: each rank contributes a block of `block_bytes`.
    pub async fn allgather(&mut self, block_bytes: u64) {
        self.begin_coll();
        let n = self.size();
        if n <= 1 {
            return;
        }
        let me = self.rank();
        let tag = self.coll_tag(4);
        let right = (me + 1) % n;
        let left = (me + n - 1) % n;
        for _ in 0..n - 1 {
            self.shift(right, left, tag, block_bytes).await;
        }
    }

    /// Pairwise alltoall: each rank sends a distinct block of `block_bytes`
    /// to every other rank.
    pub async fn alltoall(&mut self, block_bytes: u64) {
        self.begin_coll();
        let n = self.size();
        if n <= 1 {
            return;
        }
        let me = self.rank();
        let tag = self.coll_tag(5);
        for i in 1..n {
            let to = (me + i) % n;
            let from = (me + n - i) % n;
            self.shift(to, from, tag, block_bytes).await;
        }
    }

    /// Linear gather of one `block_bytes` block per rank to `root`.
    pub async fn gather(&mut self, root: Rank, block_bytes: u64) {
        self.begin_coll();
        let n = self.size();
        if n <= 1 {
            return;
        }
        let me = self.rank();
        let tag = self.coll_tag(6);
        if me == root {
            for r in 0..n {
                if r != root {
                    self.recv(Some(r), Some(tag)).await;
                }
            }
        } else {
            self.send(root, tag, block_bytes).await;
        }
    }

    /// Linear scatter of one `block_bytes` block per rank from `root`.
    pub async fn scatter(&mut self, root: Rank, block_bytes: u64) {
        self.begin_coll();
        let n = self.size();
        if n <= 1 {
            return;
        }
        let me = self.rank();
        let tag = self.coll_tag(7);
        if me == root {
            for r in 0..n {
                if r != root {
                    self.send(r, tag, block_bytes).await;
                }
            }
        } else {
            self.recv(Some(root), Some(tag)).await;
        }
    }
}
